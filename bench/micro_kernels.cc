// google-benchmark microbenches for the kernels the figure benches lean
// on: CSR products, the dual evaluation (legacy and fused/allocation-free),
// term indexing, invariant generation, rule mining, the Anatomy
// partitioner and the closed form.
//
// --json=PATH additionally writes {name, iterations, seconds_per_iter}
// per benchmark for the BENCH_*.json perf trajectory; remaining flags are
// passed through to google-benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"

#include "anonymize/anatomy.h"
#include "anonymize/bucketized_table.h"
#include "common/arena.h"
#include "common/prng.h"
#include "common/vec_math.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "core/posterior.h"
#include "data/adult_synth.h"
#include "knowledge/miner.h"
#include "maxent/closed_form.h"
#include "maxent/decomposed.h"
#include "maxent/dual.h"
#include "maxent/problem.h"
#include "maxent/solver.h"

namespace {

using pme::anonymize::BucketizeDataset;
using pme::anonymize::DatasetBucketization;

DatasetBucketization MakeBucketization(size_t records) {
  pme::data::AdultSynthOptions options;
  options.num_records = records;
  auto dataset = pme::data::GenerateAdultLike(options).ValueOrDie();
  auto partition = pme::anonymize::AnatomyPartition(dataset, {}).ValueOrDie();
  return BucketizeDataset(dataset, partition).ValueOrDie();
}

void BM_AdultSynthGenerate(benchmark::State& state) {
  pme::data::AdultSynthOptions options;
  options.num_records = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto d = pme::data::GenerateAdultLike(options).ValueOrDie();
    benchmark::DoNotOptimize(d.num_records());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AdultSynthGenerate)->Arg(1000)->Arg(10000);

void BM_AnatomyPartition(benchmark::State& state) {
  pme::data::AdultSynthOptions options;
  options.num_records = static_cast<size_t>(state.range(0));
  auto dataset = pme::data::GenerateAdultLike(options).ValueOrDie();
  for (auto _ : state) {
    auto partition =
        pme::anonymize::AnatomyPartition(dataset, {}).ValueOrDie();
    benchmark::DoNotOptimize(partition.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnatomyPartition)->Arg(1000)->Arg(10000);

void BM_TermIndexBuild(benchmark::State& state) {
  // range(1) = worker threads for the sharded build (1 = serial).
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  const size_t threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto index = pme::constraints::TermIndex::Build(bz.table, threads);
    benchmark::DoNotOptimize(index.num_variables());
  }
}
BENCHMARK(BM_TermIndexBuild)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({10000, 4});

void BM_InvariantGeneration(benchmark::State& state) {
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  for (auto _ : state) {
    auto invariants = pme::constraints::GenerateInvariants(bz.table, index);
    benchmark::DoNotOptimize(invariants.size());
  }
}
BENCHMARK(BM_InvariantGeneration)->Arg(1000)->Arg(10000);

void BM_RuleMining(benchmark::State& state) {
  pme::data::AdultSynthOptions options;
  options.num_records = 2000;
  auto dataset = pme::data::GenerateAdultLike(options).ValueOrDie();
  pme::knowledge::MinerOptions miner;
  miner.min_support_records = 3;
  miner.max_attrs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto rules =
        pme::knowledge::MineAssociationRules(dataset, miner).ValueOrDie();
    benchmark::DoNotOptimize(rules.size());
  }
}
BENCHMARK(BM_RuleMining)->Arg(1)->Arg(2)->Arg(3);

void BM_DualEvaluate(benchmark::State& state) {
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  auto problem = pme::maxent::BuildProblem(system).ValueOrDie();
  pme::maxent::DualFunction dual(&problem.eq, problem.eq_rhs);
  std::vector<double> lambda(dual.dim(), 0.1), grad;
  for (auto _ : state) {
    double v = dual.Evaluate(lambda, &grad, nullptr);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(problem.eq.nnz()));
}
// The 100-record point is the block-decomposition regime: tiny duals
// where per-call allocation is a visible fraction of the kernel.
BENCHMARK(BM_DualEvaluate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DualEvaluateFused(benchmark::State& state) {
  // The solver hot path: EvaluateInto against a persistent workspace.
  // After the first call every iteration is allocation-free, which is
  // what separates this curve from BM_DualEvaluate's.
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  auto problem = pme::maxent::BuildProblem(system).ValueOrDie();
  pme::maxent::DualFunction dual(&problem.eq, problem.eq_rhs);
  std::vector<double> lambda(dual.dim(), 0.1), grad;
  pme::maxent::DualWorkspace ws;
  for (auto _ : state) {
    double v = dual.EvaluateInto(lambda, &grad, &ws);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(problem.eq.nnz()));
}
BENCHMARK(BM_DualEvaluateFused)->Arg(100)->Arg(1000)->Arg(10000);

/// RAII guard: forces a dispatch mode for one benchmark body and restores
/// the previous mode afterwards (benchmarks run in one process; dispatch
/// is global, and a --simd=off run must stay off for the other benches).
class SimdModeGuard {
 public:
  explicit SimdModeGuard(pme::kernels::SimdMode mode)
      : saved_(pme::kernels::GetSimdMode()) {
    pme::kernels::SetSimdMode(mode);
  }
  ~SimdModeGuard() { pme::kernels::SetSimdMode(saved_); }

 private:
  pme::kernels::SimdMode saved_;
};

/// Per-ISA A/B column encoding for the benchmark arg: 0 = scalar,
/// 1 = AVX2+FMA, 2 = AVX-512. Forcing a tier the host lacks falls back
/// down the dispatch ladder, so on an AVX2-only machine the tier-2 rows
/// duplicate the tier-1 numbers (the row name records what was asked).
pme::kernels::SimdMode ModeFromArg(int64_t arg) {
  switch (arg) {
    case 0:
      return pme::kernels::SimdMode::kOff;
    case 1:
      return pme::kernels::SimdMode::kAvx2;
    case 2:
      return pme::kernels::SimdMode::kAvx512;
    default:
      return pme::kernels::SimdMode::kAuto;
  }
}

void BM_ExpM1Kernel(benchmark::State& state) {
  // The p = exp(Aᵀλ − 1) pass in isolation: range(0) elements, range(1)
  // selects the ISA tier (see ModeFromArg). The ≥2x SIMD-vs-scalar claim
  // in BENCH_kernels.json comes from these columns.
  const size_t n = static_cast<size_t>(state.range(0));
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  pme::Prng prng(11);
  std::vector<double> x(n), y(n);
  // Typical dual exponents live in a modest range; seed a few clamp
  // boundaries so the bench covers the branchy path too.
  for (auto& v : x) v = prng.NextDouble(-30.0, 10.0);
  for (size_t i = 0; i < n; i += 1024) x[i] = (i % 2048 == 0) ? 710.0 : -710.0;
  for (auto _ : state) {
    pme::kernels::ExpM1Shifted(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExpM1Kernel)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({65536, 2});

void BM_ExpM1SumFused(benchmark::State& state) {
  // The fused in-place exp + horizontal-accumulate kernel the dual
  // objective actually calls.
  const size_t n = static_cast<size_t>(state.range(0));
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  pme::Prng prng(13);
  std::vector<double> x0(n), x(n);
  for (auto& v : x0) v = prng.NextDouble(-30.0, 10.0);
  for (auto _ : state) {
    x = x0;
    double s = pme::kernels::ExpM1SumInPlace(x);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExpM1SumFused)
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({65536, 2});

void BM_LnLibm(benchmark::State& state) {
  // The per-element std::log baseline the batched Ln kernel is measured
  // against (the >= 2x claim in BENCH_kernels.json).
  const size_t n = static_cast<size_t>(state.range(0));
  pme::Prng prng(29);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = std::exp(prng.NextDouble(-20.0, 20.0));
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) y[i] = std::log(x[i]);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_LnLibm)->Arg(4096)->Arg(65536);

void BM_Ln(benchmark::State& state) {
  // Batched natural log (the GIS multiplier update, entropy deltas).
  const size_t n = static_cast<size_t>(state.range(0));
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  pme::Prng prng(29);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = std::exp(prng.NextDouble(-20.0, 20.0));
  for (auto _ : state) {
    pme::kernels::Ln(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Ln)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({65536, 2});

void BM_NegXLogXSum(benchmark::State& state) {
  // Fused entropy reduction -sum x ln x (Entropy(), the per-q effective
  // candidate count).
  const size_t n = static_cast<size_t>(state.range(0));
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  pme::Prng prng(31);
  std::vector<double> x(n);
  for (auto& v : x) v = prng.NextDouble(0.0, 1.0);
  x[n / 3] = 0.0;  // keep the zero-handling lane honest
  for (auto _ : state) {
    double h = pme::kernels::NegXLogXSum(x);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NegXLogXSum)
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({65536, 2});

void BM_KlDivergence(benchmark::State& state) {
  // Fused KL reduction (estimation accuracy, per-q evaluation).
  const size_t n = static_cast<size_t>(state.range(0));
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  pme::Prng prng(37);
  std::vector<double> p(n), q(n);
  for (auto& v : p) v = prng.NextDouble(0.0, 1.0);
  for (auto& v : q) v = prng.NextDouble(0.0, 1.0);
  p[n / 5] = 0.0;
  q[n / 7] = 0.0;  // exercises the q-floor clamp
  for (auto _ : state) {
    double d = pme::kernels::KlDivergence(p, q, 1e-12);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KlDivergence)
    ->Args({65536, 0})
    ->Args({65536, 1})
    ->Args({65536, 2});

void BM_EvaluatePerQ(benchmark::State& state) {
  // The serving layer's per-q evaluation sweep (KL + best guess +
  // effective candidates per q row) end to end, per ISA tier.
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  const auto truth = pme::core::PosteriorTable::GroundTruth(bz.table);
  const auto estimate = pme::core::PosteriorTable::FromSolution(
      bz.table, index, pme::maxent::ClosedFormNoKnowledge(bz.table, index));
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  for (auto _ : state) {
    auto eval = pme::core::EvaluatePerQ(truth, estimate);
    benchmark::DoNotOptimize(eval.kl.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(truth.num_qi()));
}
BENCHMARK(BM_EvaluatePerQ)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2});

void BM_SolveDecomposedArena(benchmark::State& state) {
  // The block-decomposed solve with the per-block scratch arena on (1)
  // vs off (0): the off rows are the heap-allocation A/B control. The
  // arena.* census for both rows lands in the JSON metrics snapshot.
  auto bz = MakeBucketization(2000);
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  pme::knowledge::KnowledgeBase kb;
  pme::Prng prng(5);
  for (int i = 0; i < 64; ++i) {
    const uint32_t q = static_cast<uint32_t>(
        prng.NextBounded(bz.table.num_qi_values()));
    const uint32_t s = static_cast<uint32_t>(
        prng.NextBounded(bz.table.num_sa_values()));
    kb.Add(pme::knowledge::AbstractConditional(
        q, {s}, bz.table.TrueConditional(q, s)));
  }
  auto compiled =
      pme::constraints::CompileKnowledge(kb, bz.table, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));
  pme::Arena::SetEnabled(state.range(0) != 0);
  auto& registry = pme::metrics::Registry::Global();
  const uint64_t arena_before = registry.GetCounter("arena.allocs").Value();
  const uint64_t heap_before =
      registry.GetCounter("arena.heap_fallback_allocs").Value();
  for (auto _ : state) {
    auto result =
        pme::maxent::SolveDecomposed(bz.table, index, system).ValueOrDie();
    benchmark::DoNotOptimize(result.iterations);
  }
  // Per-solve allocation census for this arm alone (the global arena.*
  // counters in the metrics snapshot mix both A/B arms): with the arena
  // on, heap_fallback_allocs_per_solve must read ~0.
  const double solves = static_cast<double>(std::max<int64_t>(
      state.iterations(), 1));
  state.counters["arena_allocs_per_solve"] = static_cast<double>(
      registry.GetCounter("arena.allocs").Value() - arena_before) / solves;
  state.counters["heap_fallback_allocs_per_solve"] = static_cast<double>(
      registry.GetCounter("arena.heap_fallback_allocs").Value() -
      heap_before) / solves;
  pme::Arena::SetEnabled(true);
}
BENCHMARK(BM_SolveDecomposedArena)->Arg(0)->Arg(1);

void BM_DualEvaluateSimd(benchmark::State& state) {
  // End-to-end dual evaluation (CSR transpose product, fused exp-sum,
  // fused gradient pass) under both dispatch modes.
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  auto problem = pme::maxent::BuildProblem(system).ValueOrDie();
  pme::maxent::DualFunction dual(&problem.eq, problem.eq_rhs);
  std::vector<double> lambda(dual.dim(), 0.1), grad;
  pme::maxent::DualWorkspace ws;
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  for (auto _ : state) {
    double v = dual.EvaluateInto(lambda, &grad, &ws);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(problem.eq.nnz()));
}
// 14210 records = the paper's full scale (2,842 buckets of 5).
BENCHMARK(BM_DualEvaluateSimd)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({14210, 0})
    ->Args({14210, 1})
    ->Args({14210, 2});

void BM_SolveSimd(benchmark::State& state) {
  // Whole LBFGS solve (invariant system, no knowledge) under both
  // dispatch modes: the end-to-end view of the kernel gains.
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  auto problem = pme::maxent::BuildProblem(system).ValueOrDie();
  SimdModeGuard guard(ModeFromArg(state.range(1)));
  for (auto _ : state) {
    auto result = pme::maxent::Solve(problem).ValueOrDie();
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_SolveSimd)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({2000, 2});

void BM_ClosedForm(benchmark::State& state) {
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  for (auto _ : state) {
    auto p = pme::maxent::ClosedFormNoKnowledge(bz.table, index);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_ClosedForm)->Arg(1000)->Arg(10000);

void BM_SolveNoKnowledge(benchmark::State& state) {
  auto bz = MakeBucketization(static_cast<size_t>(state.range(0)));
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  auto problem = pme::maxent::BuildProblem(system).ValueOrDie();
  for (auto _ : state) {
    auto result = pme::maxent::Solve(problem).ValueOrDie();
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_SolveNoKnowledge)->Arg(500)->Arg(2000);

void BM_PresolveZeroHeavy(benchmark::State& state) {
  // Zero-heavy systems (many hard-zero knowledge rows) are presolve's
  // worst case: cascades of forcing passes.
  auto bz = MakeBucketization(2000);
  auto index = pme::constraints::TermIndex::Build(bz.table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(bz.table, index));
  pme::knowledge::KnowledgeBase kb;
  pme::Prng prng(3);
  for (int i = 0; i < state.range(0); ++i) {
    const uint32_t q = static_cast<uint32_t>(
        prng.NextBounded(bz.table.num_qi_values()));
    const uint32_t s = static_cast<uint32_t>(
        prng.NextBounded(bz.table.num_sa_values()));
    kb.Add(pme::knowledge::AbstractConditional(
        q, {s}, bz.table.TrueConditional(q, s)));
  }
  auto compiled =
      pme::constraints::CompileKnowledge(kb, bz.table, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));
  auto problem = pme::maxent::BuildProblem(system).ValueOrDie();
  for (auto _ : state) {
    auto pre = pme::maxent::Presolve(problem).ValueOrDie();
    benchmark::DoNotOptimize(pre.num_fixed);
  }
}
BENCHMARK(BM_PresolveZeroHeavy)->Arg(100)->Arg(1000);

/// Console reporter that additionally captures (name, iterations,
/// seconds/iter) for the --json trajectory file.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    int64_t iterations;
    double seconds_per_iter;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      row.seconds_per_iter =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

void WriteJson(const std::string& path,
               const std::vector<CapturingReporter::Row>& rows) {
  pme::bench::JsonWriter json(path, "micro_kernels");
  // The host's active ISA tier plus the process metrics snapshot (which
  // carries the arena.* allocation census the arena A/B rows explain).
  json.Field("simd", std::string(pme::kernels::SimdModeName()));
  json.Field("avx2_supported", static_cast<size_t>(
                                   pme::kernels::Avx2Supported() ? 1 : 0));
  json.Field("avx512_supported",
             static_cast<size_t>(pme::kernels::Avx512Supported() ? 1 : 0));
  json.EmbedMetricsSnapshot();
  for (const auto& row : rows) {
    json.BeginRow();
    json.RowField("name", row.name);
    json.RowField("iterations", static_cast<size_t>(row.iterations));
    json.RowField("seconds_per_iter", row.seconds_per_iter);
    for (const auto& [name, value] : row.counters) {
      json.RowField(name, value);
    }
  }
  json.Write();
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json=PATH and --simd=MODE before google-benchmark sees
  // (and rejects) them.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--simd=", 7) == 0) {
      pme::kernels::SetSimdMode(pme::kernels::ParseSimdMode(argv[i] + 7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) WriteJson(json_path, reporter.rows());
  benchmark::Shutdown();
  return 0;
}
