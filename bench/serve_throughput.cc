// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Closed-loop throughput bench for `pme serve`: an in-process
// AnalysisServer (one shared TableArtifact, one solver pool, one
// solution cache) driven over real sockets by {1, 2, 4, 8} concurrent
// clients, against the cold baseline of a per-request legacy
// core::Analyze — which rebuilds the table-side state (TermIndex,
// invariants, component partition) every call, exactly what every
// request paid before the artifact/session split.
//
// Emits BENCH_serve.json: per-concurrency requests/sec and p50/p99
// latency for both modes, plus the warm/cold throughput speedup (the
// PR's acceptance gate: >= 5x at 8 clients).
//
//   serve_throughput --records=1000 --warm-requests=60 --cold-requests=6
//
// Requests rotate through informative mined rules (away from 0/1, so
// the iterative solver actually runs), one statement per request.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/analysis_session.h"
#include "core/table_artifact.h"
#include "knowledge/parser.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/server.h"

namespace {

struct PhaseResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t requests = 0;
  size_t failures = 0;
};

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t i = static_cast<size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(i, sorted_ms.size() - 1)];
}

PhaseResult Summarize(const std::vector<std::vector<double>>& per_thread,
                      double wall_seconds, size_t failures) {
  std::vector<double> all;
  for (const auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  PhaseResult r;
  r.requests = all.size();
  r.failures = failures;
  r.rps = wall_seconds > 0 ? static_cast<double>(all.size()) / wall_seconds
                           : 0.0;
  r.p50_ms = Percentile(all, 0.50);
  r.p99_ms = Percentile(all, 0.99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 1000);
  const size_t warm_requests =
      static_cast<size_t>(flags.GetInt("warm-requests", 60));
  const size_t cold_requests =
      static_cast<size_t>(flags.GetInt("cold-requests", 6));
  // The acceptance gate; CI runners with unpredictable load can relax it
  // (--min-speedup=0) and still publish the measured series.
  const double min_speedup = flags.GetDouble("min-speedup", 5.0);

  std::printf("# pme serve closed-loop throughput (warm artifact reuse vs "
              "cold per-request Analyze)\n");
  std::printf("# records=%zu\n", scale.records);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, /*max_attrs=*/2);
  const auto rules = pme::bench::SampleInformativeRules(pipeline.rules, 64);
  if (rules.empty()) {
    std::fprintf(stderr, "no informative rules mined; increase --records\n");
    return 1;
  }
  std::vector<std::string> statements;
  for (const auto& rule : rules) {
    statements.push_back(rule.ToStatement(pipeline.dataset));
  }

  auto artifact = pme::bench::Unwrap(
      pme::core::TableArtifact::BuildBorrowed(
          pipeline.bucketization.table, &pipeline.bucketization.qi_encoder),
      "artifact build");

  pme::serve::ServeOptions options;
  options.port = 0;
  options.solver_threads = scale.threads == 0 ? 0 : scale.threads;
  options.max_connections = 64;
  pme::serve::AnalysisServer server(
      artifact,
      std::shared_ptr<const pme::data::Dataset>(
          std::shared_ptr<const pme::data::Dataset>(), &pipeline.dataset),
      options);
  if (pme::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  pme::bench::JsonWriter json(scale.json_path, "serve_throughput");
  json.Field("records", scale.records);
  json.Field("statements", statements.size());
  json.Field("warm_requests_per_client", warm_requests);
  json.Field("cold_requests_per_client", cold_requests);

  std::printf("%8s %10s %10s %10s %10s %10s %10s %9s\n", "clients",
              "warm_rps", "w_p50ms", "w_p99ms", "cold_rps", "c_p50ms",
              "c_p99ms", "speedup");

  // One closed-loop warm phase: `clients` socket clients, `requests`
  // calls each, against the shared-artifact server. Reused for the main
  // sweep and for the instrumentation-overhead A/B.
  const auto run_warm_phase = [&](size_t clients,
                                  size_t requests) -> PhaseResult {
    std::vector<std::vector<double>> warm_lat(clients);
    std::atomic<size_t> warm_failures{0};
    pme::Timer warm_timer;
    {
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          auto connected =
              pme::serve::ServeClient::Connect("127.0.0.1", server.port());
          if (!connected.ok()) {
            warm_failures += requests;
            return;
          }
          pme::serve::ServeClient client = std::move(connected).value();
          for (size_t i = 0; i < requests; ++i) {
            const std::string& statement =
                statements[(c * requests + i) % statements.size()];
            pme::Timer t;
            auto reply = client.Call(R"({"id":"w","knowledge":[")" +
                                     statement + R"("]})");
            if (reply.ok()) {
              warm_lat[c].push_back(t.ElapsedSeconds() * 1e3);
            } else {
              ++warm_failures;
            }
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    return Summarize(warm_lat, warm_timer.ElapsedSeconds(), warm_failures);
  };

  double speedup_at_8 = 0.0;
  for (size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const PhaseResult warm = run_warm_phase(clients, warm_requests);

    // Cold phase: the same concurrency, but every request is a full
    // legacy Analyze — table-side rebuild included, no shared pool, no
    // cache (what each request cost before this refactor).
    std::vector<std::vector<double>> cold_lat(clients);
    std::atomic<size_t> cold_failures{0};
    pme::Timer cold_timer;
    {
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (size_t i = 0; i < cold_requests; ++i) {
            const std::string& statement =
                statements[(c * cold_requests + i) % statements.size()];
            pme::knowledge::KnowledgeBase kb;
            pme::knowledge::ParserContext context;
            context.dataset = &pipeline.dataset;
            if (!pme::knowledge::ParseKnowledge(statement, context, &kb)
                     .ok()) {
              ++cold_failures;
              continue;
            }
            pme::Timer t;
            auto analysis = pme::core::Analyze(
                pipeline.bucketization.table, kb, {},
                &pipeline.bucketization.qi_encoder);
            if (analysis.ok()) {
              cold_lat[c].push_back(t.ElapsedSeconds() * 1e3);
            } else {
              ++cold_failures;
            }
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const PhaseResult cold =
        Summarize(cold_lat, cold_timer.ElapsedSeconds(), cold_failures);

    const double speedup = cold.rps > 0 ? warm.rps / cold.rps : 0.0;
    if (clients == 8) speedup_at_8 = speedup;
    std::printf("%8zu %10.1f %10.3f %10.3f %10.1f %10.3f %10.3f %8.1fx\n",
                clients, warm.rps, warm.p50_ms, warm.p99_ms, cold.rps,
                cold.p50_ms, cold.p99_ms, speedup);

    json.BeginRow();
    json.RowField("clients", clients);
    json.RowField("warm_rps", warm.rps);
    json.RowField("warm_p50_ms", warm.p50_ms);
    json.RowField("warm_p99_ms", warm.p99_ms);
    json.RowField("warm_requests", warm.requests);
    json.RowField("warm_failures", warm.failures);
    json.RowField("cold_rps", cold.rps);
    json.RowField("cold_p50_ms", cold.p50_ms);
    json.RowField("cold_p99_ms", cold.p99_ms);
    json.RowField("cold_requests", cold.requests);
    json.RowField("cold_failures", cold.failures);
    json.RowField("speedup", speedup);
  }
  json.Field("speedup_at_8_clients", speedup_at_8);

  // Instrumentation overhead A/B: the same warm closed loop with the
  // metrics + trace kill switches on vs off. Both runs hit the same
  // hot cache, so the delta is the cost of the counters and spans
  // themselves (acceptance: within 2% — but a socket-bound loop is
  // noisy, so the gate is advisory via --max-overhead-pct).
  const double max_overhead_pct = flags.GetDouble("max-overhead-pct", 0.0);
  const size_t ab_clients = static_cast<size_t>(flags.GetInt("ab-clients", 4));
  const PhaseResult instrumented = run_warm_phase(ab_clients, warm_requests);
  pme::metrics::SetEnabled(false);
  pme::trace::SetEnabled(false);
  const PhaseResult uninstrumented = run_warm_phase(ab_clients, warm_requests);
  pme::metrics::SetEnabled(true);
  pme::trace::SetEnabled(true);
  const double overhead_pct =
      instrumented.rps > 0
          ? (uninstrumented.rps / instrumented.rps - 1.0) * 100.0
          : 0.0;
  std::printf("# instrumentation A/B at %zu clients: %.1f rps on, %.1f rps "
              "off, overhead %.2f%%\n",
              ab_clients, instrumented.rps, uninstrumented.rps,
              overhead_pct);
  json.Field("instrumented_rps", instrumented.rps);
  json.Field("uninstrumented_rps", uninstrumented.rps);
  json.Field("instrumentation_overhead_pct", overhead_pct);

  // --stats-check: issue a `stats` request over the wire and fail when
  // the core counters of the request path are zero — the CI smoke gate
  // that the registry is actually wired through serve, solve, and cache.
  bool stats_ok = true;
  if (flags.GetBool("stats-check", false)) {
    auto connected =
        pme::serve::ServeClient::Connect("127.0.0.1", server.port());
    if (!connected.ok()) {
      std::fprintf(stderr, "stats-check: connect failed: %s\n",
                   connected.status().ToString().c_str());
      stats_ok = false;
    } else {
      pme::serve::ServeClient client = std::move(connected).value();
      auto reply = client.Call(R"({"id":"stats","verb":"stats"})");
      auto doc = reply.ok() ? pme::serve::ParseJson(reply.value())
                            : pme::Result<pme::serve::JsonValue>(
                                  reply.status());
      if (!doc.ok()) {
        std::fprintf(stderr, "stats-check: bad stats reply: %s\n",
                     doc.status().ToString().c_str());
        stats_ok = false;
      } else {
        const auto counter = [&doc](const char* name) -> double {
          const pme::serve::JsonValue* stats = doc.value().Find("stats");
          if (stats == nullptr) return 0.0;
          const pme::serve::JsonValue* counters = stats->Find("counters");
          if (counters == nullptr) return 0.0;
          const pme::serve::JsonValue* v = counters->Find(name);
          return v != nullptr && v->is_number() ? v->number_value : 0.0;
        };
        const double requests_ok = counter("serve.requests_ok");
        const double solve_runs = counter("solve.runs");
        const double cache_touches = counter("cache.exact_hits") +
                                     counter("cache.warm_hits") +
                                     counter("cache.misses");
        if (requests_ok <= 0 || solve_runs <= 0 || cache_touches <= 0) {
          std::fprintf(stderr,
                       "stats-check FAILED: serve.requests_ok=%.0f "
                       "solve.runs=%.0f cache_touches=%.0f\n",
                       requests_ok, solve_runs, cache_touches);
          stats_ok = false;
        } else {
          std::printf("# stats-check ok: serve.requests_ok=%.0f "
                      "solve.runs=%.0f cache_touches=%.0f\n",
                      requests_ok, solve_runs, cache_touches);
        }
      }
    }
  }

  server.Shutdown();
  json.EmbedMetricsSnapshot();

  const std::string trace_path = flags.GetString("trace-out", "");
  if (!trace_path.empty()) {
    if (pme::trace::WriteChromeTrace(trace_path)) {
      std::printf("# trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
    }
  }

  std::printf("# acceptance: warm/cold throughput speedup at 8 clients = "
              "%.1fx (gate: >= %.1fx)\n", speedup_at_8, min_speedup);
  if (!stats_ok) return 1;
  if (max_overhead_pct > 0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "instrumentation overhead %.2f%% exceeds gate "
                 "%.2f%%\n", overhead_pct, max_overhead_pct);
    return 1;
  }
  return speedup_at_8 >= min_speedup ? 0 : 1;
}
