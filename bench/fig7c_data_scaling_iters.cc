// Reproduces Figure 7(c): "Iterations vs Data Size" — LBFGS iteration
// count of the monolithic MaxEnt solve as the number of buckets grows,
// one curve per background-knowledge budget.
//
// Expected shape (paper): iteration counts stay nearly flat in the
// bucket count (the per-iteration cost, not the iteration count, drives
// Figure 7(b)'s growth).
//
// Default: up to 400 buckets; --full: up to 2,842.

#include <cstdio>

#include "bench/fig7bc_common.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 2000);

  std::printf("# Figure 7(c) reproduction: iterations vs #buckets\n");
  std::vector<size_t> buckets, budgets;
  auto cells = pme::bench::RunFig7Grid(flags, scale.full, scale.seed,
                                       &buckets, &budgets);

  pme::bench::CsvWriter csv(scale.csv_path,
                            {"buckets", "constraints", "iterations"});
  std::printf("%10s", "#buckets");
  for (size_t b : budgets) std::printf("   #c=%-7zu", b);
  std::printf("   (solver iterations)\n");
  size_t i = 0;
  for (size_t nb : buckets) {
    std::printf("%10zu", nb);
    for (size_t b : budgets) {
      (void)b;
      std::printf("   %9zu ", cells[i].iterations);
      csv.Row({static_cast<double>(cells[i].buckets),
               static_cast<double>(cells[i].constraints),
               static_cast<double>(cells[i].iterations)});
      ++i;
    }
    std::printf("\n");
  }
  std::printf(
      "# shape check: iteration counts stay nearly constant as buckets "
      "grow; knowledge budget moves them more than data size does.\n");
  return 0;
}
