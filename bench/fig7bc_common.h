// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared sweep for Figures 7(b) and 7(c): vary the dataset size (number
// of buckets, with 5 records per bucket) under fixed background-knowledge
// budgets, and record the monolithic solve's running time and iteration
// count. 7(b) plots seconds; 7(c) plots iterations.

#ifndef PME_BENCH_FIG7BC_COMMON_H_
#define PME_BENCH_FIG7BC_COMMON_H_

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace pme::bench {

struct Fig7Cell {
  size_t buckets = 0;
  size_t constraints = 0;
  double seconds = 0.0;
  size_t iterations = 0;
};

/// Runs the grid: bucket counts x knowledge budgets. The knowledge budget
/// is the number of mined-rule constraints fed to the solver (0 = no
/// knowledge, matching the paper's "#Constraints = 0" curve).
inline std::vector<Fig7Cell> RunFig7Grid(const Flags& flags, bool full,
                                         uint64_t seed,
                                         std::vector<size_t>* bucket_axis,
                                         std::vector<size_t>* budget_axis) {
  *bucket_axis = full ? std::vector<size_t>{500, 1000, 1500, 2000, 2842}
                      : std::vector<size_t>{200, 300, 400, 500};
  *budget_axis = full ? std::vector<size_t>{0, 100, 1000, 10000}
                      : std::vector<size_t>{0, 100, 400};
  if (flags.Has("maxbuckets")) {
    const size_t cap =
        static_cast<size_t>(flags.GetInt("maxbuckets", bucket_axis->back()));
    while (!bucket_axis->empty() && bucket_axis->back() > cap) {
      bucket_axis->pop_back();
    }
  }

  std::vector<Fig7Cell> cells;
  for (size_t buckets : *bucket_axis) {
    BenchScale scale;
    scale.records = buckets * 5;
    scale.seed = seed;
    auto pipeline = BuildStandardPipeline(scale, /*max_attrs=*/3);
    pme::core::AnalysisOptions options;
    options.use_decomposition = false;  // Section 7.2: no optimization
    options.solver_options.presolve = false;  // measure the solver itself
    options.solver_options.tolerance = 1e-6;
    options.solver_options.max_iterations = 20000;
    for (size_t budget : *budget_axis) {
      auto rules = SampleInformativeRules(pipeline.rules, budget);
      auto analysis =
          Unwrap(pme::core::AnalyzeWithRules(pipeline, rules, options),
                 "analysis");
      Fig7Cell cell;
      cell.buckets = pipeline.bucketization.table.num_buckets();
      cell.constraints = budget;
      cell.seconds = analysis.solver.seconds;
      cell.iterations = analysis.solver.iterations;
      cells.push_back(cell);
    }
  }
  return cells;
}

}  // namespace pme::bench

#endif  // PME_BENCH_FIG7BC_COMMON_H_
