// Ablation: incremental re-analysis through the component-solution cache.
//
// The interactive workflow the cache targets: an analyst publishes a
// table, runs the analysis, then repeatedly re-runs it while toggling or
// editing individual knowledge statements. Components untouched by an
// edit are byte-identical subproblems — the cache answers them without
// solving (exact hit) — and the one edited component keeps its variable
// structure, so its solve warm-starts from the cached dual multipliers.
//
// Three measurements per knowledge budget K:
//   cold    fresh cache, full solve (the baseline)
//   exact   identical re-run against the warm cache — every component is
//           an exact hit, no solver iterations at all
//   toggle  one statement's asserted probability is changed, then the
//           re-run is compared against a cold solve of the same edited
//           knowledge: same posterior (parity), far fewer iterations
//
// Expected outcome: exact re-runs are >=10x faster than cold; the toggled
// re-run spends >=3x fewer solver iterations than its cold equivalent;
// posteriors agree to solver tolerance either way. --json=PATH records
// the series (committed as BENCH_incremental.json).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "maxent/solution_cache.h"

namespace {

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 2500);

  std::printf("# Incremental re-analysis ablation (solution cache)\n");
  std::printf("# records=%zu threads=%zu\n", scale.records, scale.threads);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, 3);

  pme::bench::CsvWriter csv(
      scale.csv_path,
      {"k", "sec_cold", "sec_exact", "speedup_exact", "iters_toggle_cold",
       "iters_toggle_warm", "iter_reduction_warm"});
  pme::bench::JsonWriter json(scale.json_path, "ablation_incremental");
  json.Field("records", scale.records);
  json.Field("threads", scale.threads);

  std::printf("%6s %8s %10s %10s %9s %12s %12s %10s %11s %11s\n", "K",
              "blocks", "cold(s)", "exact(s)", "speedup", "iters-cold",
              "iters-warm", "iter-red", "|p| exact", "|p| warm");
  for (size_t k : {16, 64, 256}) {
    auto rules = pme::knowledge::TopK(pipeline.rules, k / 2, k - k / 2);
    // The edit: one statement's asserted conditional moves by one point.
    // Support (and therefore the component structure) is unchanged — only
    // that component's constraint rows differ, the warm-start case.
    auto toggled = rules;
    if (!toggled.empty()) {
      toggled[0].conditional = toggled[0].conditional <= 0.5
                                   ? toggled[0].conditional + 0.01
                                   : toggled[0].conditional - 0.01;
    }

    pme::core::AnalysisOptions options;
    options.solver_options.threads = scale.threads;
    options.solver_options.cache_mode = pme::maxent::CacheMode::kWarm;

    // Cold, then the byte-identical re-run against the now-warm cache.
    pme::maxent::SolutionCache cache;
    options.solver_options.solution_cache = &cache;
    auto cold = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, rules, options), "cold");
    auto exact = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, rules, options), "exact");

    // The toggled re-run against the same cache, and its cold baseline
    // (fresh cache) for the iteration comparison.
    auto warm = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, toggled, options),
        "toggle-warm");
    pme::maxent::SolutionCache fresh;
    options.solver_options.solution_cache = &fresh;
    auto toggle_cold = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, toggled, options),
        "toggle-cold");

    const double speedup = exact.solver.seconds > 0
                               ? cold.solver.seconds / exact.solver.seconds
                               : 0.0;
    const double iter_reduction =
        warm.solver.iterations > 0
            ? static_cast<double>(toggle_cold.solver.iterations) /
                  static_cast<double>(warm.solver.iterations)
            : 0.0;
    const double parity_exact = MaxAbsDiff(cold.solver.p, exact.solver.p);
    const double parity_warm =
        MaxAbsDiff(toggle_cold.solver.p, warm.solver.p);
    const size_t blocks =
        cold.decomposition.num_coupled_components;

    std::printf(
        "%6zu %8zu %10.4f %10.4f %8.1fx %12zu %12zu %9.1fx %11.2e %11.2e\n",
        k, blocks, cold.solver.seconds, exact.solver.seconds, speedup,
        toggle_cold.solver.iterations, warm.solver.iterations, iter_reduction,
        parity_exact, parity_warm);
    csv.Row({static_cast<double>(k), cold.solver.seconds,
             exact.solver.seconds, speedup,
             static_cast<double>(toggle_cold.solver.iterations),
             static_cast<double>(warm.solver.iterations), iter_reduction});
    json.BeginRow();
    json.RowField("k", k);
    json.RowField("coupled_components", blocks);
    json.RowField("sec_cold", cold.solver.seconds);
    json.RowField("sec_exact", exact.solver.seconds);
    json.RowField("speedup_exact", speedup);
    json.RowField("iters_cold", cold.solver.iterations);
    json.RowField("iters_exact", exact.solver.iterations);
    json.RowField("exact_hits", exact.solver.cache_exact_hits);
    json.RowField("sec_toggle_cold", toggle_cold.solver.seconds);
    json.RowField("sec_toggle_warm", warm.solver.seconds);
    json.RowField("iters_toggle_cold", toggle_cold.solver.iterations);
    json.RowField("iters_toggle_warm", warm.solver.iterations);
    json.RowField("iter_reduction_warm", iter_reduction);
    json.RowField("warm_hits", warm.solver.cache_warm_hits);
    json.RowField("warm_exact_hits", warm.solver.cache_exact_hits);
    json.RowField("posterior_max_abs_diff_exact", parity_exact);
    json.RowField("posterior_max_abs_diff_warm", parity_warm);
    // Per-component iteration counts of the cold run, for the block-level
    // view of where the warm run saves its work.
    size_t max_block_iters = 0;
    for (size_t it : cold.decomposition.coupled_component_iterations) {
      max_block_iters = std::max(max_block_iters, it);
    }
    json.RowField("max_block_iters_cold", max_block_iters);
  }
  std::printf(
      "# expected: exact re-runs skip every solve (>=10x); the toggled "
      "re-run solves one warm-started block (>=3x fewer iterations); "
      "posterior parity stays at solver tolerance.\n");
  return 0;
}
