// Ablation: solver comparison in the style of Malouf [18] (cited in
// Section 3.3 as the justification for choosing LBFGS).
//
// Runs LBFGS, GIS, IIS, steepest descent and (on the small instance)
// Newton's method on the same Privacy-MaxEnt problems and reports
// iterations, wall-clock time and the final constraint violation.
//
// Expected outcome: LBFGS converges in far fewer iterations than the
// iterative-scaling family and steepest descent, matching Malouf's
// finding; Newton is competitive only while the dual stays small.

#include <cstdio>

#include "bench/bench_common.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "maxent/problem.h"
#include "maxent/solver.h"

namespace {

pme::maxent::MaxEntProblem BuildInstance(size_t records, size_t rules_k,
                                         uint64_t seed) {
  pme::bench::BenchScale scale;
  scale.records = records;
  scale.seed = seed;
  auto pipeline = pme::bench::BuildStandardPipeline(scale, 2);
  auto top = pme::knowledge::TopK(pipeline.rules, rules_k / 2, rules_k / 2);

  const auto& table = pipeline.bucketization.table;
  auto index = pme::constraints::TermIndex::Build(table);
  pme::constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(pme::constraints::GenerateInvariants(table, index));
  pme::knowledge::KnowledgeBase kb;
  kb.AddRules(top);
  auto compiled = pme::bench::Unwrap(
      pme::constraints::CompileKnowledge(kb, table, index,
                                         &pipeline.bucketization.qi_encoder),
      "knowledge compilation");
  system.AddAll(std::move(compiled.constraints));
  return pme::bench::Unwrap(pme::maxent::BuildProblem(system), "problem");
}

void RunSuite(const char* title, const pme::maxent::MaxEntProblem& problem,
              bool include_newton) {
  std::printf("\n%s: %zu variables, %zu constraints\n", title,
              problem.num_vars, problem.num_constraints());
  std::printf("%12s %12s %12s %14s %10s\n", "solver", "iterations",
              "seconds", "violation", "converged");
  using pme::maxent::SolverKind;
  std::vector<SolverKind> kinds = {SolverKind::kLbfgs, SolverKind::kGis,
                                   SolverKind::kIis, SolverKind::kSteepest};
  if (include_newton) kinds.push_back(SolverKind::kNewton);
  for (auto kind : kinds) {
    pme::maxent::SolverOptions options;
    options.max_iterations = 20000;
    auto result = pme::maxent::Solve(problem, kind, options);
    if (!result.ok()) {
      std::printf("%12s %40s\n", pme::maxent::SolverKindToString(kind),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%12s %12zu %12.3f %14.2e %10s\n",
                pme::maxent::SolverKindToString(kind),
                result.value().iterations, result.value().seconds,
                result.value().max_violation,
                result.value().converged ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const bool full = flags.GetBool("full", false);

  std::printf("# Solver-comparison ablation (Malouf-style, Section 3.3)\n");

  // Small instance: all five solvers, including dense Newton.
  auto small = BuildInstance(250, 20, 7);
  RunSuite("small instance", small, /*include_newton=*/true);

  // Medium instance: Newton's dense Hessian would be prohibitive.
  auto medium = BuildInstance(full ? 5000 : 1250, 200, 7);
  RunSuite("medium instance", medium, /*include_newton=*/false);

  std::printf(
      "\n# expected: LBFGS needs the fewest iterations; GIS/IIS take "
      "hundreds-to-thousands; steepest descent trails far behind.\n");
  return 0;
}
