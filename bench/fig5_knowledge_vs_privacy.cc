// Reproduces Figure 5: "Positive and negative association rules" —
// estimation accuracy (weighted KL between the MaxEnt posterior and the
// original data) versus the amount of background knowledge K, for three
// bounds: K- (negative rules only), K+ (positive only), and (K+, K-)
// (half each).
//
// Expected shape (paper): all three curves drop steeply for small K and
// flatten as redundancy grows; the mixed (K+, K-) curve drops fastest.
//
// Default: 2,000 records (seconds). --full: 14,210 records / 2,842
// buckets as in the paper.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 1000);
  const size_t max_attrs = pme::bench::MaxAttrsFlag(flags, scale, 8);

  std::printf("# Figure 5 reproduction: estimation accuracy vs K\n");
  std::printf("# records=%zu full=%d\n", scale.records, scale.full);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, max_attrs);
  size_t pos = 0, neg = 0;
  for (const auto& r : pipeline.rules) (r.positive ? pos : neg) += 1;
  std::printf("# mined rules: %zu positive, %zu negative\n", pos, neg);

  const size_t max_k = pme::bench::KMaxFlag(flags, scale, 150000, pos + neg);
  pme::bench::CsvWriter csv(scale.csv_path,
                           {"k", "acc_neg", "acc_pos", "acc_mixed"});

  std::printf("%10s %14s %14s %14s\n", "K", "K- (neg)", "K+ (pos)",
              "(K+,K-)");
  for (size_t k : pme::bench::KSweep(max_k)) {
    auto run = [&](size_t kp, size_t kn) {
      auto top = pme::knowledge::TopK(pipeline.rules, kp, kn);
      auto analysis = pme::bench::Unwrap(
          pme::core::AnalyzeWithRules(pipeline, top), "analysis");
      return analysis.estimation_accuracy;
    };
    const double acc_neg = run(0, k);
    const double acc_pos = run(k, 0);
    const double acc_mixed = run(k / 2, k - k / 2);
    std::printf("%10zu %14.4f %14.4f %14.4f\n", k, acc_neg, acc_pos,
                acc_mixed);
    csv.Row({static_cast<double>(k), acc_neg, acc_pos, acc_mixed});
  }
  std::printf(
      "# shape check: all curves should fall with K; the mixed bound "
      "should fall fastest.\n");
  return 0;
}
