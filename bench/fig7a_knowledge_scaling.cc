// Reproduces Figure 7(a): "Performance vs Knowledge" — running time and
// LBFGS iteration count as the number of background-knowledge constraints
// grows (log-scale x axis), with the dataset fixed.
//
// Matching Section 7.2, the bucket-decomposition optimization of Section
// 5.5 is NOT applied here: every run solves the whole table monolithically.
//
// Expected shape (paper): both series grow slowly — roughly log-linear in
// the number of knowledge constraints, with fluctuations from the changed
// search paths.
//
// Default: 1,500 records; --full: 14,210.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 1500);
  const size_t max_attrs = pme::bench::MaxAttrsFlag(flags, scale, 4);

  std::printf("# Figure 7(a) reproduction: solver cost vs #BK constraints\n");
  std::printf("# records=%zu full=%d (no Section-5.5 decomposition)\n",
              scale.records, scale.full);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, max_attrs);
  std::printf("# available rules: %zu\n", pipeline.rules.size());

  pme::bench::CsvWriter csv(scale.csv_path,
                           {"constraints", "seconds", "iterations"});

  pme::core::AnalysisOptions options;
  options.use_decomposition = false;
  // Match the paper's measurement: pure LBFGS work, no structural
  // presolve (our presolve would otherwise solve high-K instances outright
  // and the figure would chart the presolver, not the solver), and the
  // era-typical 1e-6 convergence threshold so hard-zero targets stay
  // reachable with finite multipliers.
  options.solver_options.presolve = false;
  options.solver_options.tolerance = 1e-6;

  std::printf("%14s %12s %12s %14s\n", "#constraints", "seconds",
              "iterations", "violation");
  const size_t cap = scale.full ? 120000 : 12000;
  for (size_t n = 100; n <= cap; n *= 3) {
    auto rules = pme::bench::SampleInformativeRules(pipeline.rules, n);
    if (rules.size() < n) break;  // rule supply exhausted
    auto analysis = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, rules, options), "analysis");
    std::printf("%14zu %12.3f %12zu %14.2e\n",
                analysis.num_background_constraints, analysis.solver.seconds,
                analysis.solver.iterations, analysis.solver.max_violation);
    csv.Row({static_cast<double>(analysis.num_background_constraints),
             analysis.solver.seconds,
             static_cast<double>(analysis.solver.iterations)});
  }
  std::printf(
      "# shape check: time/iterations grow slowly (log-linear) in the "
      "constraint count.\n");
  return 0;
}
