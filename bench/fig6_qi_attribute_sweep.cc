// Reproduces Figure 6: "Number of QI attributes in knowledge" —
// estimation accuracy vs K when the background knowledge is restricted to
// association rules with exactly T QI attributes, for T = 1..8.
//
// Expected shape (paper): the effect of knowledge weakens from T=1 to
// T=4 (fewer records per rule as support thins out), then strengthens
// again toward T=8 (each rule pins the full-QI conditional the metric is
// evaluated on).
//
// Default: 2,000 records and T in {1..4} (seconds);
// --full: 14,210 records and T = 1..8.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 1000);
  const size_t max_t =
      static_cast<size_t>(flags.GetInt("maxt", scale.full ? 8 : 4));

  std::printf("# Figure 6 reproduction: accuracy vs K per rule width T\n");
  std::printf("# records=%zu full=%d T=1..%zu\n", scale.records, scale.full,
              max_t);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, max_t);

  const size_t max_k = pme::bench::KMaxFlag(flags, scale, 300000);

  std::vector<std::string> header = {"k"};
  for (size_t t = 1; t <= max_t; ++t) header.push_back("T" + std::to_string(t));
  pme::bench::CsvWriter csv(scale.csv_path, header);

  // Pre-split the rules by T.
  std::vector<std::vector<pme::knowledge::AssociationRule>> by_t(max_t + 1);
  for (size_t t = 1; t <= max_t; ++t) {
    by_t[t] = pme::knowledge::FilterByNumAttributes(pipeline.rules, t);
  }

  std::printf("%10s", "K");
  for (size_t t = 1; t <= max_t; ++t) std::printf("        T=%zu", t);
  std::printf("\n");
  for (size_t k : pme::bench::KSweep(max_k)) {
    std::printf("%10zu", k);
    std::vector<double> row = {static_cast<double>(k)};
    for (size_t t = 1; t <= max_t; ++t) {
      auto top = pme::knowledge::TopK(by_t[t], k / 2, k - k / 2);
      auto analysis = pme::bench::Unwrap(
          pme::core::AnalyzeWithRules(pipeline, top), "analysis");
      std::printf(" %10.4f", analysis.estimation_accuracy);
      row.push_back(analysis.estimation_accuracy);
    }
    std::printf("\n");
    csv.Row(row);
  }
  std::printf(
      "# shape check: at fixed K the accuracy drop should weaken from T=1 "
      "toward mid T, then strengthen again as T approaches the full QI "
      "width.\n");
  return 0;
}
