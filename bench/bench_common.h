// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --records=N     dataset size (default: scaled-down; --full = 14210)
//   --full          paper scale (14,210 records -> 2,842 buckets of 5)
//   --csv=PATH      also write the series to a CSV file
//   --json=PATH     also write a machine-readable result file (for the
//                   BENCH_*.json perf trajectory tracked across PRs)
//   --threads=N     worker threads for the block-decomposed solve
//                   (0 = hardware concurrency)
//   --simd=MODE     kernel dispatch: auto (default; best of AVX-512 /
//                   AVX2+FMA the CPU supports), avx512, avx2, or off
//                   (portable scalar, for A/B runs)
//   --seed=S        dataset seed
// and prints the same series the corresponding paper figure plots.

#ifndef PME_BENCH_BENCH_COMMON_H_
#define PME_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/vec_math.h"
#include "core/experiment.h"
#include "knowledge/miner.h"

namespace pme::bench {

/// Scale configuration resolved from flags.
struct BenchScale {
  size_t records = 0;
  bool full = false;
  uint64_t seed = 0;
  size_t threads = 1;
  std::string simd = "auto";
  std::string csv_path;
  std::string json_path;
};

inline BenchScale ResolveScale(const Flags& flags, size_t default_records) {
  BenchScale scale;
  scale.full = flags.GetBool("full", false);
  scale.records = static_cast<size_t>(
      flags.GetInt("records", scale.full ? 14210 : default_records));
  scale.seed = static_cast<uint64_t>(flags.GetInt("seed", 20080612));
  scale.threads = static_cast<size_t>(flags.GetInt("threads", 1));
  scale.simd = flags.GetString("simd", "auto");
  // Applied here, once, before any pipeline work: kernel dispatch is
  // process-global state and benches measure whatever is active.
  kernels::SetSimdMode(kernels::ParseSimdMode(scale.simd));
  scale.csv_path = flags.GetString("csv", "");
  scale.json_path = flags.GetString("json", "");
  return scale;
}

/// --maxattrs: widest QI subset the miner considers. The small-scale
/// default is 3 everywhere; the paper-scale default varies per figure.
inline size_t MaxAttrsFlag(const Flags& flags, const BenchScale& scale,
                           size_t full_default) {
  return static_cast<size_t>(
      flags.GetInt("maxattrs", scale.full ? full_default : 3));
}

/// --kmax: largest knowledge budget K in a sweep, capped at `available`
/// (e.g. the number of mined rules) and at a per-figure paper-scale limit.
inline size_t KMaxFlag(const Flags& flags, const BenchScale& scale,
                       size_t full_cap, size_t available = SIZE_MAX) {
  const size_t cap =
      std::min(available, scale.full ? full_cap : size_t{800});
  return static_cast<size_t>(
      flags.GetInt("kmax", static_cast<long long>(cap)));
}

/// Minimal CSV emitter for bench series (one header + rows of doubles).
/// An empty path disables output (all writes become no-ops).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header) {
    if (path.empty()) return;
    out_.open(path);
    if (!out_) {
      ok_ = false;
      return;
    }
    out_ << Join(header, ",") << "\n";
  }

  /// Appends one row.
  void Row(const std::vector<double>& values) {
    if (!out_.is_open()) return;
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out_ << ",";
      out_ << FormatDouble(values[i]);
    }
    out_ << "\n";
  }

  /// True when the file opened successfully (or output is disabled).
  bool ok() const { return ok_; }

 private:
  std::ofstream out_;
  bool ok_ = true;
};

/// Minimal JSON emitter for bench result files: one top-level object of
/// scalar fields plus a "series" array of flat row objects. The file is
/// written by `Write()` (or the destructor). An empty path disables all
/// output. No escaping is performed — keys and string values are plain
/// identifiers by construction.
class JsonWriter {
 public:
  JsonWriter(std::string path, std::string bench)
      : path_(std::move(path)) {
    Field("bench", bench);
  }
  ~JsonWriter() { Write(); }

  void Field(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }
  void Field(const std::string& key, double value) {
    fields_.emplace_back(key, FormatDouble(value));
  }
  void Field(const std::string& key, size_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// Embeds `json` verbatim as the value of `key` — the caller vouches
  /// it is well-formed JSON (e.g. a metrics registry snapshot).
  void RawField(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
  }
  /// Captures the process metrics registry under a "metrics" key, so
  /// BENCH_*.json files carry the cache/solver censuses alongside the
  /// timings they explain.
  void EmbedMetricsSnapshot() {
    RawField("metrics", metrics::Registry::Global().RenderJson());
  }

  /// Starts a fresh row in the "series" array.
  void BeginRow() { rows_.emplace_back(); }
  void RowField(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + value + "\"");
  }
  void RowField(const std::string& key, double value) {
    rows_.back().emplace_back(key, FormatDouble(value));
  }
  void RowField(const std::string& key, size_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }

  /// Writes the file (idempotent; subsequent calls are no-ops).
  void Write() {
    if (path_.empty() || written_) return;
    written_ = true;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return;
    }
    std::fprintf(out, "{\n");
    for (const auto& [key, value] : fields_) {
      std::fprintf(out, "  \"%s\": %s,\n", key.c_str(), value.c_str());
    }
    std::fprintf(out, "  \"series\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(out, "    {");
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(out, "%s\"%s\": %s", i > 0 ? ", " : "",
                     rows_[r][i].first.c_str(), rows_[r][i].second.c_str());
      }
      std::fprintf(out, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

 private:
  std::string path_;
  bool written_ = false;
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Builds the standard evaluation pipeline (Adult-like data, 5-diversity
/// Anatomy buckets, mined rules over QI subsets up to `max_attrs`).
inline core::ExperimentPipeline BuildStandardPipeline(const BenchScale& scale,
                                                      size_t max_attrs,
                                                      bool mine = true) {
  core::PipelineOptions options;
  options.data.num_records = scale.records;
  options.data.seed = scale.seed;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;  // paper: 3/14210 support floor
  options.miner.max_attrs = max_attrs;
  options.mine_rules = mine;
  auto pipeline = core::BuildPipeline(options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline construction failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(pipeline).value();
}

/// Fails fast with the status message.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// A default K sweep, denser at the low end (the paper's curves drop
/// fastest there), capped by the number of available rules.
inline std::vector<size_t> KSweep(size_t max_k) {
  std::vector<size_t> ks = {0};
  for (size_t k = 25; k < max_k; k = k < 100 ? k * 2 : k * 2) {
    ks.push_back(k);
  }
  ks.push_back(max_k);
  return ks;
}

/// Selects `n` *informative, non-degenerate* rules for the performance
/// experiments (Figure 7): rules asserting conditionals away from 0/1 are
/// sampled evenly across the ranked list. Hard-zero rules are excluded on
/// purpose — presolve resolves them structurally (zero iterations), which
/// would measure the presolver instead of the iterative solver the figure
/// is about.
inline std::vector<knowledge::AssociationRule> SampleInformativeRules(
    const std::vector<knowledge::AssociationRule>& rules, size_t n) {
  std::vector<knowledge::AssociationRule> informative;
  for (const auto& r : rules) {
    if (r.conditional > 0.02 && r.conditional < 0.98) {
      informative.push_back(r);
    }
  }
  std::vector<knowledge::AssociationRule> out;
  if (informative.empty() || n == 0) return out;
  const double stride =
      std::max(1.0, static_cast<double>(informative.size()) /
                        static_cast<double>(n));
  for (double i = 0; i < static_cast<double>(informative.size()) &&
                     out.size() < n;
       i += stride) {
    out.push_back(informative[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace pme::bench

#endif  // PME_BENCH_BENCH_COMMON_H_
