// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --records=N     dataset size (default: scaled-down; --full = 14210)
//   --full          paper scale (14,210 records -> 2,842 buckets of 5)
//   --csv=PATH      also write the series to a CSV file
//   --seed=S        dataset seed
// and prints the same series the corresponding paper figure plots.

#ifndef PME_BENCH_BENCH_COMMON_H_
#define PME_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/experiment.h"
#include "knowledge/miner.h"

namespace pme::bench {

/// Scale configuration resolved from flags.
struct BenchScale {
  size_t records = 0;
  bool full = false;
  uint64_t seed = 0;
  std::string csv_path;
};

inline BenchScale ResolveScale(const Flags& flags, size_t default_records) {
  BenchScale scale;
  scale.full = flags.GetBool("full", false);
  scale.records = static_cast<size_t>(
      flags.GetInt("records", scale.full ? 14210 : default_records));
  scale.seed = static_cast<uint64_t>(flags.GetInt("seed", 20080612));
  scale.csv_path = flags.GetString("csv", "");
  return scale;
}

/// Builds the standard evaluation pipeline (Adult-like data, 5-diversity
/// Anatomy buckets, mined rules over QI subsets up to `max_attrs`).
inline core::ExperimentPipeline BuildStandardPipeline(const BenchScale& scale,
                                                      size_t max_attrs,
                                                      bool mine = true) {
  core::PipelineOptions options;
  options.data.num_records = scale.records;
  options.data.seed = scale.seed;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;  // paper: 3/14210 support floor
  options.miner.max_attrs = max_attrs;
  options.mine_rules = mine;
  auto pipeline = core::BuildPipeline(options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline construction failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(pipeline).value();
}

/// Fails fast with the status message.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// A default K sweep, denser at the low end (the paper's curves drop
/// fastest there), capped by the number of available rules.
inline std::vector<size_t> KSweep(size_t max_k) {
  std::vector<size_t> ks = {0};
  for (size_t k = 25; k < max_k; k = k < 100 ? k * 2 : k * 2) {
    ks.push_back(k);
  }
  ks.push_back(max_k);
  return ks;
}

/// Selects `n` *informative, non-degenerate* rules for the performance
/// experiments (Figure 7): rules asserting conditionals away from 0/1 are
/// sampled evenly across the ranked list. Hard-zero rules are excluded on
/// purpose — presolve resolves them structurally (zero iterations), which
/// would measure the presolver instead of the iterative solver the figure
/// is about.
inline std::vector<knowledge::AssociationRule> SampleInformativeRules(
    const std::vector<knowledge::AssociationRule>& rules, size_t n) {
  std::vector<knowledge::AssociationRule> informative;
  for (const auto& r : rules) {
    if (r.conditional > 0.02 && r.conditional < 0.98) {
      informative.push_back(r);
    }
  }
  std::vector<knowledge::AssociationRule> out;
  if (informative.empty() || n == 0) return out;
  const double stride =
      std::max(1.0, static_cast<double>(informative.size()) /
                        static_cast<double>(n));
  for (double i = 0; i < static_cast<double>(informative.size()) &&
                     out.size() < n;
       i += stride) {
    out.push_back(informative[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace pme::bench

#endif  // PME_BENCH_BENCH_COMMON_H_
