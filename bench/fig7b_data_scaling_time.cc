// Reproduces Figure 7(b): "Running time vs Data Size" — wall-clock
// seconds of the monolithic MaxEnt solve as the number of buckets grows,
// one curve per background-knowledge budget (#Constraints in
// {0, 100, 1000, 10000}).
//
// Expected shape (paper): running time grows roughly linearly with the
// bucket count; larger knowledge budgets shift the curves upward.
//
// Default: up to 400 buckets (2,000 records); --full: up to 2,842
// buckets (14,210 records) as in the paper.

#include <cstdio>

#include "bench/fig7bc_common.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 2000);

  std::printf("# Figure 7(b) reproduction: running time vs #buckets\n");
  std::vector<size_t> buckets, budgets;
  auto cells = pme::bench::RunFig7Grid(flags, scale.full, scale.seed,
                                       &buckets, &budgets);

  pme::bench::CsvWriter csv(scale.csv_path,
                            {"buckets", "constraints", "seconds"});
  std::printf("%10s", "#buckets");
  for (size_t b : budgets) std::printf("   #c=%-7zu", b);
  std::printf("   (seconds per solve)\n");
  size_t i = 0;
  for (size_t nb : buckets) {
    std::printf("%10zu", nb);
    for (size_t b : budgets) {
      (void)b;
      std::printf("   %9.3f ", cells[i].seconds);
      csv.Row({static_cast<double>(cells[i].buckets),
               static_cast<double>(cells[i].constraints), cells[i].seconds});
      ++i;
    }
    std::printf("\n");
  }
  std::printf(
      "# shape check: each column grows ~linearly in #buckets; larger "
      "budgets sit higher.\n");
  return 0;
}
