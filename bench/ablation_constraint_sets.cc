// Ablation: why the invariant theory matters (Sections 5.3/5.4).
//
// Three constraint-set variants are compared, each combined with the same
// Top-K background knowledge:
//   complete          — QI + SA invariants (the paper's sound & complete set)
//   concise           — complete minus the one redundant row per bucket
//                       (Theorem 3): same optimum, smaller dual
//   qi-only (unsound) — SA-invariants dropped: the constraint set is no
//                       longer complete
//
// Two measurements per variant: the estimation accuracy of the resulting
// posterior, and the worst violation of the *full* invariant set at the
// solution — i.e. whether the "posterior" is even consistent with the
// published table.
//
// Expected outcome: complete and concise agree to solver tolerance
// (concise with a slightly smaller dual); qi-only produces a solution
// that visibly violates the published SA counts, demonstrating that
// completeness is load-bearing, not cosmetic.

#include <cstdio>

#include "bench/bench_common.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "core/posterior.h"
#include "maxent/problem.h"
#include "maxent/solver.h"

namespace {

struct VariantResult {
  double seconds = 0.0;
  size_t iterations = 0;
  size_t constraints = 0;
  double accuracy = 0.0;
  /// Worst violation of the complete invariant set at this solution.
  double table_violation = 0.0;
};

VariantResult RunVariant(const pme::core::ExperimentPipeline& pipeline,
                         const std::vector<pme::knowledge::AssociationRule>&
                             rules,
                         bool drop_redundant, bool drop_sa_invariants) {
  const auto& table = pipeline.bucketization.table;
  auto index = pme::constraints::TermIndex::Build(table);

  pme::constraints::InvariantOptions inv;
  inv.drop_redundant_row = drop_redundant;
  auto invariants = pme::constraints::GenerateInvariants(table, index, inv);
  pme::constraints::ConstraintSystem system(index.num_variables());
  for (auto& c : invariants) {
    if (drop_sa_invariants &&
        c.source == pme::constraints::ConstraintSource::kSaInvariant) {
      continue;
    }
    system.Add(std::move(c));
  }
  pme::knowledge::KnowledgeBase kb;
  kb.AddRules(rules);
  auto compiled = pme::bench::Unwrap(
      pme::constraints::CompileKnowledge(kb, table, index,
                                         &pipeline.bucketization.qi_encoder),
      "knowledge");
  system.AddAll(std::move(compiled.constraints));

  auto problem =
      pme::bench::Unwrap(pme::maxent::BuildProblem(system), "problem");
  auto result = pme::bench::Unwrap(pme::maxent::Solve(problem), "solve");

  VariantResult out;
  out.seconds = result.seconds;
  out.iterations = result.iterations;
  out.constraints = system.size();
  auto posterior =
      pme::core::PosteriorTable::FromSolution(table, index, result.p);
  out.accuracy = pme::core::EstimationAccuracy(
      pme::core::PosteriorTable::GroundTruth(table), posterior);
  // Evaluate against the *complete* invariant set regardless of variant.
  auto full_invariants = pme::constraints::GenerateInvariants(table, index);
  out.table_violation =
      pme::constraints::MaxInvariantViolation(full_invariants, result.p);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 1500);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 100));

  std::printf("# Constraint-set ablation (Sections 5.3/5.4)\n");
  std::printf("# records=%zu, Top-(%zu,%zu) knowledge in every variant\n",
              scale.records, k / 2, k - k / 2);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, 3);
  auto rules = pme::knowledge::TopK(pipeline.rules, k / 2, k - k / 2);

  auto complete = RunVariant(pipeline, rules, false, false);
  auto concise = RunVariant(pipeline, rules, true, false);
  auto qi_only = RunVariant(pipeline, rules, false, true);

  std::printf("%-22s %12s %12s %12s %14s %16s\n", "variant", "constraints",
              "seconds", "iterations", "est.accuracy", "table.violation");
  auto row = [](const char* name, const VariantResult& r) {
    std::printf("%-22s %12zu %12.3f %12zu %14.4f %16.2e\n", name,
                r.constraints, r.seconds, r.iterations, r.accuracy,
                r.table_violation);
  };
  row("complete (paper)", complete);
  row("concise (Thm. 3)", concise);
  row("qi-only (unsound)", qi_only);

  std::printf(
      "# expected: complete == concise accuracy with table.violation at "
      "solver tolerance; qi-only violates the published SA counts by a "
      "large margin — its posterior is not consistent with D'.\n");
  return 0;
}
