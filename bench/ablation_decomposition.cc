// Ablation: the Section-5.5 bucket decomposition.
//
// With background knowledge touching only a few buckets, the decomposed
// solver handles irrelevant buckets in closed form (Theorem 5) and runs
// the iterative solve on the small coupled core. This bench measures the
// speedup across knowledge budgets and verifies both paths agree on the
// estimation accuracy.
//
// Expected outcome: large speedups while the knowledge is sparse (few
// relevant buckets) that shrink as the knowledge blankets the table.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 2500);

  std::printf("# Decomposition ablation (Section 5.5)\n");
  std::printf("# records=%zu\n", scale.records);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, 3);
  const size_t total_buckets = pipeline.bucketization.table.num_buckets();

  pme::core::CsvWriter csv(
      scale.csv_path,
      {"k", "relevant_buckets", "sec_monolithic", "sec_decomposed",
       "speedup"});

  std::printf("%8s %20s %14s %14s %10s %12s\n", "K", "relevant/buckets",
              "monolithic(s)", "decomposed(s)", "speedup", "|acc diff|");
  for (size_t k : {1, 4, 16, 64, 256, 1024}) {
    auto top = pme::knowledge::TopK(pipeline.rules, k / 2, k - k / 2);

    pme::core::AnalysisOptions mono, decomp;
    mono.use_decomposition = false;
    decomp.use_decomposition = true;
    auto a = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, top, mono), "monolithic");
    auto b = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, top, decomp), "decomposed");

    const double speedup =
        b.solver.seconds > 0 ? a.solver.seconds / b.solver.seconds : 0.0;
    const double diff =
        std::fabs(a.estimation_accuracy - b.estimation_accuracy);
    std::printf("%8zu %13zu/%-6zu %14.3f %14.3f %9.1fx %12.2e\n", k,
                b.decomposition.relevant_buckets, total_buckets,
                a.solver.seconds, b.solver.seconds, speedup, diff);
    csv.Row({static_cast<double>(k),
             static_cast<double>(b.decomposition.relevant_buckets),
             a.solver.seconds, b.solver.seconds, speedup});
  }
  std::printf(
      "# expected: speedup is largest while relevant buckets << total and "
      "decays as knowledge coverage grows; accuracy differences stay at "
      "solver tolerance.\n");
  return 0;
}
