// Ablation: the Section-5.5 bucket decomposition, extended to connected
// components.
//
// With background knowledge touching only a few buckets, the decomposed
// solver handles irrelevant buckets in closed form (Theorem 5) and splits
// the knowledge-coupled core into independent connected components, each
// solved as its own small dual (in parallel with --threads=N). This bench
// measures the speedup across knowledge budgets, prints the per-component
// size histogram, and verifies both paths return the same posterior.
//
// Expected outcome: large speedups while the knowledge is sparse (few,
// small coupled components) that shrink as the knowledge blankets the
// table. --json=PATH records the series for the perf trajectory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"

namespace {

/// Log2-binned histogram of coupled-component sizes (in variables):
/// "1-1:3 2-3:1 8-15:2" means three singleton-variable blocks, etc.
std::string SizeHistogram(const std::vector<size_t>& sizes) {
  if (sizes.empty()) return "(none)";
  std::vector<size_t> bins;
  for (size_t s : sizes) {
    size_t bin = 0;
    for (size_t edge = 1; edge * 2 <= s; edge *= 2) ++bin;
    if (bins.size() <= bin) bins.resize(bin + 1, 0);
    ++bins[bin];
  }
  std::string out;
  for (size_t b = 0; b < bins.size(); ++b) {
    if (bins[b] == 0) continue;
    const size_t lo = size_t{1} << b;
    const size_t hi = (size_t{1} << (b + 1)) - 1;
    if (!out.empty()) out += " ";
    out += std::to_string(lo) + "-" + std::to_string(hi) + ":" +
           std::to_string(bins[b]);
  }
  return out;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  // A length mismatch is exactly the scatter-bug class this bench guards
  // against — report it as an infinite diff, never as agreement.
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const auto scale = pme::bench::ResolveScale(flags, 2500);

  std::printf("# Decomposition ablation (Section 5.5 + components)\n");
  std::printf("# records=%zu threads=%zu\n", scale.records, scale.threads);
  auto pipeline = pme::bench::BuildStandardPipeline(scale, 3);
  const size_t total_buckets = pipeline.bucketization.table.num_buckets();

  pme::bench::CsvWriter csv(
      scale.csv_path,
      {"k", "relevant_buckets", "components", "coupled_components",
       "sec_monolithic", "sec_decomposed", "speedup"});
  pme::bench::JsonWriter json(scale.json_path, "ablation_decomposition");
  json.Field("records", scale.records);
  json.Field("threads", scale.threads);
  json.Field("total_buckets", total_buckets);

  std::printf("%8s %17s %8s %14s %14s %10s %12s  %s\n", "K",
              "relevant/buckets", "blocks", "monolithic(s)", "decomposed(s)",
              "speedup", "|p diff|", "block-size histogram");
  for (size_t k : {1, 4, 16, 64, 256, 1024}) {
    auto top = pme::knowledge::TopK(pipeline.rules, k / 2, k - k / 2);

    pme::core::AnalysisOptions mono, decomp;
    mono.use_decomposition = false;
    decomp.use_decomposition = true;
    decomp.solver_options.threads = scale.threads;
    auto a = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, top, mono), "monolithic");
    auto b = pme::bench::Unwrap(
        pme::core::AnalyzeWithRules(pipeline, top, decomp), "decomposed");

    const double speedup =
        b.solver.seconds > 0 ? a.solver.seconds / b.solver.seconds : 0.0;
    const double diff = MaxAbsDiff(a.solver.p, b.solver.p);
    const auto& stats = b.decomposition;
    const std::string histogram =
        SizeHistogram(stats.coupled_component_variables);
    std::printf("%8zu %10zu/%-6zu %8zu %14.3f %14.3f %9.1fx %12.2e  %s\n", k,
                stats.relevant_buckets, total_buckets,
                stats.num_coupled_components, a.solver.seconds,
                b.solver.seconds, speedup, diff, histogram.c_str());
    csv.Row({static_cast<double>(k),
             static_cast<double>(stats.relevant_buckets),
             static_cast<double>(stats.num_components),
             static_cast<double>(stats.num_coupled_components),
             a.solver.seconds, b.solver.seconds, speedup});
    json.BeginRow();
    json.RowField("k", k);
    json.RowField("relevant_buckets", stats.relevant_buckets);
    json.RowField("components", stats.num_components);
    json.RowField("coupled_components", stats.num_coupled_components);
    json.RowField("largest_block_variables",
                  stats.coupled_component_variables.empty()
                      ? size_t{0}
                      : *std::max_element(
                            stats.coupled_component_variables.begin(),
                            stats.coupled_component_variables.end()));
    json.RowField("sec_monolithic", a.solver.seconds);
    json.RowField("sec_decomposed", b.solver.seconds);
    json.RowField("speedup", speedup);
    json.RowField("iterations_monolithic", a.solver.iterations);
    json.RowField("iterations_decomposed", b.solver.iterations);
    json.RowField("posterior_max_abs_diff", diff);
  }
  std::printf(
      "# expected: speedup is largest while coupled blocks are few and "
      "small, and decays as knowledge coverage grows; |p diff| stays at "
      "solver tolerance.\n");
  return 0;
}
