// Property-based suites (parameterized over random table shapes): the
// invariant theory (soundness / completeness / conciseness), solver
// consistency, decomposition equivalence, and posterior sanity must hold
// for *every* bucketized table, not just the paper's example.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "anonymize/bucketized_table.h"
#include "common/prng.h"
#include "constraints/assignment.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "core/posterior.h"
#include "core/privacy_maxent.h"
#include "maxent/closed_form.h"
#include "maxent/decomposed.h"
#include "maxent/problem.h"
#include "maxent/solver.h"

namespace pme {
namespace {

using anonymize::AbstractRecord;
using anonymize::BucketizedTable;
using constraints::TermIndex;

/// (num_buckets, bucket_size, qi_pool, sa_pool, seed)
using TableShape = std::tuple<int, int, int, int, int>;

BucketizedTable RandomTable(const TableShape& shape) {
  const auto [buckets, size, qi_pool, sa_pool, seed] = shape;
  Prng prng(static_cast<uint64_t>(seed) * 7919 + 13);
  std::vector<AbstractRecord> records;
  for (int b = 0; b < buckets; ++b) {
    for (int r = 0; r < size; ++r) {
      AbstractRecord rec;
      rec.qi = static_cast<uint32_t>(prng.NextBounded(qi_pool));
      rec.sa = static_cast<uint32_t>(prng.NextBounded(sa_pool));
      rec.bucket = static_cast<uint32_t>(b);
      records.push_back(rec);
    }
  }
  // Instance ids must be dense: remap to first-seen order.
  std::vector<int64_t> qi_map(qi_pool, -1), sa_map(sa_pool, -1);
  uint32_t next_qi = 0, next_sa = 0;
  for (auto& rec : records) {
    if (qi_map[rec.qi] < 0) qi_map[rec.qi] = next_qi++;
    if (sa_map[rec.sa] < 0) sa_map[rec.sa] = next_sa++;
    rec.qi = static_cast<uint32_t>(qi_map[rec.qi]);
    rec.sa = static_cast<uint32_t>(sa_map[rec.sa]);
  }
  return BucketizedTable::Create(std::move(records)).ValueOrDie();
}

class TableProperty : public ::testing::TestWithParam<TableShape> {};

TEST_P(TableProperty, InvariantsSoundUnderRandomAssignments) {
  auto t = RandomTable(GetParam());
  auto index = TermIndex::Build(t);
  auto invariants = constraints::GenerateInvariants(t, index);
  Prng prng(std::get<4>(GetParam()) + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    auto p = constraints::Assignment::Random(t, prng)
                 .TermProbabilities(index);
    EXPECT_LT(constraints::MaxInvariantViolation(invariants, p), 1e-12);
  }
}

TEST_P(TableProperty, ConcisenessRankHolds) {
  auto t = RandomTable(GetParam());
  auto index = TermIndex::Build(t);
  for (uint32_t b = 0; b < t.num_buckets(); ++b) {
    const size_t g = index.BucketQiList(b).size();
    const size_t h = index.BucketSaList(b).size();
    EXPECT_EQ(constraints::BucketInvariantRank(t, index, b), g + h - 1);
  }
}

TEST_P(TableProperty, SingleTermsAreNotInvariantsUnlessForced) {
  // A single probability term lies in the invariant row space only in the
  // degenerate case where the bucket has g == 1 or h == 1 (the term is
  // then pinned by its QI- or SA-invariant).
  auto t = RandomTable(GetParam());
  auto index = TermIndex::Build(t);
  for (uint32_t b = 0; b < t.num_buckets(); ++b) {
    const size_t g = index.BucketQiList(b).size();
    const size_t h = index.BucketSaList(b).size();
    const auto [first, last] = index.BucketRange(b);
    std::vector<double> e(last - first, 0.0);
    e[0] = 1.0;
    const bool in_space = constraints::InRowSpaceOfInvariants(t, index, b, e);
    EXPECT_EQ(in_space, g == 1 || h == 1);
    e[0] = 0.0;
  }
}

TEST_P(TableProperty, NoKnowledgeSolveMatchesClosedForm) {
  auto t = RandomTable(GetParam());
  auto index = TermIndex::Build(t);
  constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  auto problem = maxent::BuildProblem(system).ValueOrDie();
  auto result = maxent::Solve(problem).ValueOrDie();
  auto closed = maxent::ClosedFormNoKnowledge(t, index);
  for (size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(result.p[i], closed[i], 1e-6);
  }
}

TEST_P(TableProperty, DroppedRedundantRowChangesNothing) {
  // Theorem 3: the concise invariant set defines the same feasible set,
  // so the MaxEnt optimum is identical.
  auto t = RandomTable(GetParam());
  auto index = TermIndex::Build(t);
  constraints::InvariantOptions full, concise;
  concise.drop_redundant_row = true;

  constraints::ConstraintSystem sys_full(index.num_variables());
  sys_full.AddAll(constraints::GenerateInvariants(t, index, full));
  constraints::ConstraintSystem sys_concise(index.num_variables());
  sys_concise.AddAll(constraints::GenerateInvariants(t, index, concise));

  auto a = maxent::Solve(maxent::BuildProblem(sys_full).ValueOrDie())
               .ValueOrDie();
  auto b = maxent::Solve(maxent::BuildProblem(sys_concise).ValueOrDie())
               .ValueOrDie();
  for (size_t i = 0; i < a.p.size(); ++i) {
    EXPECT_NEAR(a.p[i], b.p[i], 1e-6);
  }
}

TEST_P(TableProperty, GroundTruthIsAlwaysFeasibleWithTrueKnowledge) {
  // Constraints derived from the original data can never contradict the
  // published table (Section 4.2); the solver must converge and the
  // solution must satisfy everything.
  auto t = RandomTable(GetParam());
  auto index = TermIndex::Build(t);
  Prng prng(std::get<4>(GetParam()) + 500);

  knowledge::KnowledgeBase kb;
  for (int k = 0; k < 5; ++k) {
    const uint32_t q =
        static_cast<uint32_t>(prng.NextBounded(t.num_qi_values()));
    const uint32_t s =
        static_cast<uint32_t>(prng.NextBounded(t.num_sa_values()));
    kb.Add(knowledge::AbstractConditional(q, {s}, t.TrueConditional(q, s)));
  }
  auto analysis = core::Analyze(t, kb).ValueOrDie();
  EXPECT_LT(analysis.solver.max_violation, 1e-6);
}

TEST_P(TableProperty, PosteriorRowsAreDistributions) {
  auto t = RandomTable(GetParam());
  knowledge::KnowledgeBase empty;
  auto analysis = core::Analyze(t, empty).ValueOrDie();
  for (uint32_t q = 0; q < analysis.posterior.num_qi(); ++q) {
    double sum = 0.0;
    for (uint32_t s = 0; s < analysis.posterior.num_sa(); ++s) {
      EXPECT_GE(analysis.posterior.Conditional(q, s), -1e-9);
      sum += analysis.posterior.Conditional(q, s);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST_P(TableProperty, FullTrueKnowledgeDrivesAccuracyToZero) {
  // With the complete set of true conditionals P(s | q) as knowledge, the
  // MaxEnt posterior reproduces the original conditionals exactly, so the
  // weighted KL distance vanishes (the adversary knows everything).
  auto t = RandomTable(GetParam());
  knowledge::KnowledgeBase kb;
  for (uint32_t q = 0; q < t.num_qi_values(); ++q) {
    for (uint32_t s = 0; s < t.num_sa_values(); ++s) {
      kb.Add(knowledge::AbstractConditional(q, {s}, t.TrueConditional(q, s)));
    }
  }
  auto analysis = core::Analyze(t, kb).ValueOrDie();
  EXPECT_NEAR(analysis.estimation_accuracy, 0.0, 1e-4);
}

TEST_P(TableProperty, DecompositionEquivalence) {
  // Proposition 1: decomposed and monolithic solves agree, with any
  // knowledge placement.
  auto t = RandomTable(GetParam());
  Prng prng(std::get<4>(GetParam()) + 99);
  knowledge::KnowledgeBase kb;
  const uint32_t q =
      static_cast<uint32_t>(prng.NextBounded(t.num_qi_values()));
  const uint32_t s =
      static_cast<uint32_t>(prng.NextBounded(t.num_sa_values()));
  kb.Add(knowledge::AbstractConditional(q, {s}, t.TrueConditional(q, s)));

  core::AnalysisOptions mono, decomp;
  mono.use_decomposition = false;
  decomp.use_decomposition = true;
  auto a = core::Analyze(t, kb, mono).ValueOrDie();
  auto b = core::Analyze(t, kb, decomp).ValueOrDie();
  for (uint32_t qq = 0; qq < t.num_qi_values(); ++qq) {
    for (uint32_t ss = 0; ss < t.num_sa_values(); ++ss) {
      EXPECT_NEAR(a.posterior.Conditional(qq, ss),
                  b.posterior.Conditional(qq, ss), 1e-5);
    }
  }
}

TEST_P(TableProperty, EntropyNeverIncreasesWithKnowledge) {
  // Adding constraints can only shrink the feasible set, so the maximum
  // entropy cannot rise.
  auto t = RandomTable(GetParam());
  knowledge::KnowledgeBase empty, kb;
  kb.Add(knowledge::AbstractConditional(0, {0}, t.TrueConditional(0, 0)));
  auto base = core::Analyze(t, empty).ValueOrDie();
  auto informed = core::Analyze(t, kb).ValueOrDie();
  EXPECT_LE(informed.solver.entropy, base.solver.entropy + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TableProperty,
    ::testing::Values(std::make_tuple(3, 4, 5, 4, 1),
                      std::make_tuple(5, 5, 8, 6, 2),
                      std::make_tuple(8, 3, 6, 5, 3),
                      std::make_tuple(2, 6, 4, 6, 4),
                      std::make_tuple(10, 4, 12, 8, 5),
                      std::make_tuple(1, 5, 3, 4, 6),
                      std::make_tuple(6, 5, 20, 5, 7),
                      std::make_tuple(4, 2, 3, 3, 8)),
    [](const ::testing::TestParamInfo<TableShape>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param)) + "q" +
             std::to_string(std::get<2>(info.param)) + "a" +
             std::to_string(std::get<3>(info.param)) + "seed" +
             std::to_string(std::get<4>(info.param));
    });

}  // namespace
}  // namespace pme
