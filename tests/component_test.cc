// Tests for the connected-component block decomposition: the union-find
// bucket partition (constraints::ComponentAnalysis), the block-decomposed
// parallel solver, randomized agreement with the monolithic solve, and
// thread-count determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/prng.h"
#include "common/vec_math.h"
#include "constraints/bk_compiler.h"
#include "constraints/component_analysis.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "maxent/decomposed.h"
#include "maxent/problem.h"
#include "maxent/solver.h"
#include "tests/test_util.h"

namespace pme {
namespace {

using anonymize::AbstractRecord;
using anonymize::BucketizedTable;
using constraints::ComponentAnalysis;
using constraints::ConstraintSystem;
using constraints::LinearConstraint;
using constraints::TermIndex;
using pme::testing::kQ3;
using pme::testing::kQ4;
using pme::testing::kQ5;
using pme::testing::kS1;
using pme::testing::kS3;
using pme::testing::kS5;

ConstraintSystem InvariantSystem(const BucketizedTable& t,
                                 const TermIndex& index) {
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  return system;
}

void AddConditional(const BucketizedTable& t, const TermIndex& index,
                    ConstraintSystem* system, uint32_t q, uint32_t s,
                    double value) {
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(q, {s}, value));
  auto compiled = constraints::CompileKnowledge(kb, t, index).ValueOrDie();
  system->AddAll(std::move(compiled.constraints));
}

// ------------------------------------------------------ ComponentAnalysis

TEST(ComponentAnalysisTest, NoKnowledgeYieldsSingletonFreeComponents) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto analysis = ComponentAnalysis::Build(index, system);

  // Invariants never couple buckets: every bucket is its own component
  // and none needs the iterative solver.
  EXPECT_EQ(analysis.num_components(), t.num_buckets());
  EXPECT_EQ(analysis.num_coupled(), 0u);
  for (uint32_t b = 0; b < t.num_buckets(); ++b) {
    const auto& comp = analysis.components()[analysis.ComponentOf(b)];
    EXPECT_EQ(comp.buckets, std::vector<uint32_t>{b});
    EXPECT_FALSE(comp.coupled);
    const auto [first, last] = index.BucketRange(b);
    EXPECT_EQ(comp.num_variables, static_cast<size_t>(last - first));
  }
}

TEST(ComponentAnalysisTest, KnowledgeMergesBucketsSharingItsSupport) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  // q3 occurs in buckets 0 and 1: one statement about q3 couples them.
  AddConditional(t, index, &system, kQ3, kS3, 0.5);
  auto analysis = ComponentAnalysis::Build(index, system);

  EXPECT_EQ(analysis.num_components(), 2u);
  EXPECT_EQ(analysis.num_coupled(), 1u);
  EXPECT_EQ(analysis.ComponentOf(0), analysis.ComponentOf(1));
  EXPECT_NE(analysis.ComponentOf(0), analysis.ComponentOf(2));
  const auto& coupled = analysis.components()[analysis.ComponentOf(0)];
  EXPECT_TRUE(coupled.coupled);
  EXPECT_EQ(coupled.buckets, (std::vector<uint32_t>{0, 1}));
  EXPECT_FALSE(analysis.components()[analysis.ComponentOf(2)].coupled);
}

TEST(ComponentAnalysisTest, DisjointKnowledgeYieldsIndependentBlocks) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  // q4 occurs only in bucket 1, q5 only in bucket 2: two independent
  // coupled blocks, and bucket 0 stays closed-form.
  AddConditional(t, index, &system, kQ4, kS1, 0.9);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);
  auto analysis = ComponentAnalysis::Build(index, system);

  EXPECT_EQ(analysis.num_components(), 3u);
  EXPECT_EQ(analysis.num_coupled(), 2u);
  EXPECT_FALSE(analysis.components()[analysis.ComponentOf(0)].coupled);
  EXPECT_TRUE(analysis.components()[analysis.ComponentOf(1)].coupled);
  EXPECT_TRUE(analysis.components()[analysis.ComponentOf(2)].coupled);
  EXPECT_NE(analysis.ComponentOf(1), analysis.ComponentOf(2));
}

TEST(ComponentAnalysisTest, StatsReportComponentCensus) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);
  auto stats = maxent::AnalyzeDecomposition(index, system);

  EXPECT_EQ(stats.num_components, 3u);
  EXPECT_EQ(stats.num_coupled_components, 1u);
  EXPECT_EQ(stats.relevant_buckets, 1u);
  EXPECT_EQ(stats.irrelevant_buckets, 2u);
  ASSERT_EQ(stats.coupled_component_variables.size(), 1u);
  EXPECT_EQ(stats.coupled_component_variables[0], stats.relevant_variables);
  EXPECT_EQ(stats.total_variables, index.num_variables());
}

// -------------------------------------------- Block solves vs monolithic

TEST(SolveDecomposedTest, IndependentBlocksMatchMonolithicSolve) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);

  auto problem = maxent::BuildProblem(system).ValueOrDie();
  auto mono = maxent::Solve(problem).ValueOrDie();
  auto block = maxent::SolveDecomposed(t, index, system).ValueOrDie();
  ASSERT_EQ(block.p.size(), mono.p.size());
  for (size_t i = 0; i < mono.p.size(); ++i) {
    EXPECT_NEAR(block.p[i], mono.p[i], 1e-6) << index.TermName(i, t);
  }
  EXPECT_LT(block.max_violation, 1e-7);
}

TEST(SolveDecomposedTest, InequalityRowsSliceIntoTheRightBlock) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);

  // A hand-made inequality on bucket 1 plus an equality on bucket 2:
  // two coupled blocks, one of which exercises the projected solver.
  const auto [b1_first, b1_last] = index.BucketRange(1);
  (void)b1_last;
  LinearConstraint le;
  le.vars = {b1_first};
  le.coefs = {1.0};
  le.rel = knowledge::Relation::kLe;
  le.rhs = 0.02;
  le.source = constraints::ConstraintSource::kBackground;
  le.label = "test-le";
  system.Add(le);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);

  auto problem = maxent::BuildProblem(system).ValueOrDie();
  auto mono = maxent::Solve(problem).ValueOrDie();
  auto block = maxent::SolveDecomposed(t, index, system).ValueOrDie();
  for (size_t i = 0; i < mono.p.size(); ++i) {
    EXPECT_NEAR(block.p[i], mono.p[i], 1e-5) << index.TermName(i, t);
  }
  EXPECT_LT(block.max_violation, 1e-6);
}

// ------------------------------------------------- Randomized agreement

/// (num_buckets, bucket_size, qi_pool, sa_pool, seed), as in
/// property_test.cc.
BucketizedTable RandomTable(int buckets, int size, int qi_pool, int sa_pool,
                            int seed) {
  Prng prng(static_cast<uint64_t>(seed) * 7919 + 13);
  std::vector<AbstractRecord> records;
  for (int b = 0; b < buckets; ++b) {
    for (int r = 0; r < size; ++r) {
      AbstractRecord rec;
      rec.qi = static_cast<uint32_t>(prng.NextBounded(qi_pool));
      rec.sa = static_cast<uint32_t>(prng.NextBounded(sa_pool));
      rec.bucket = static_cast<uint32_t>(b);
      records.push_back(rec);
    }
  }
  std::vector<int64_t> qi_map(qi_pool, -1), sa_map(sa_pool, -1);
  uint32_t next_qi = 0, next_sa = 0;
  for (auto& rec : records) {
    if (qi_map[rec.qi] < 0) qi_map[rec.qi] = next_qi++;
    if (sa_map[rec.sa] < 0) sa_map[rec.sa] = next_sa++;
    rec.qi = static_cast<uint32_t>(qi_map[rec.qi]);
    rec.sa = static_cast<uint32_t>(sa_map[rec.sa]);
  }
  return BucketizedTable::Create(std::move(records)).ValueOrDie();
}

TEST(SolveDecomposedTest, RandomMultiComponentSystemsAgreeWithMonolithic) {
  // Wide QI pools keep most statements confined to few buckets, so the
  // systems decompose into several independent blocks — the property the
  // block solver must not change the answer under.
  for (int seed = 1; seed <= 6; ++seed) {
    auto t = RandomTable(8, 3, 18, 5, seed);
    auto index = TermIndex::Build(t);
    auto system = InvariantSystem(t, index);
    Prng prng(seed * 31 + 7);
    for (int k = 0; k < 4; ++k) {
      const uint32_t q =
          static_cast<uint32_t>(prng.NextBounded(t.num_qi_values()));
      const uint32_t s =
          static_cast<uint32_t>(prng.NextBounded(t.num_sa_values()));
      // True conditionals keep the system feasible for any placement.
      AddConditional(t, index, &system, q, s, t.TrueConditional(q, s));
    }

    auto stats = maxent::AnalyzeDecomposition(index, system);
    EXPECT_GE(stats.num_components, stats.num_coupled_components);

    auto problem = maxent::BuildProblem(system).ValueOrDie();
    auto mono = maxent::Solve(problem).ValueOrDie();
    auto block = maxent::SolveDecomposed(t, index, system).ValueOrDie();
    ASSERT_EQ(block.p.size(), mono.p.size());
    double max_diff = 0.0;
    for (size_t i = 0; i < mono.p.size(); ++i) {
      max_diff = std::max(max_diff, std::fabs(block.p[i] - mono.p[i]));
    }
    EXPECT_LT(max_diff, 1e-6) << "seed " << seed;
    EXPECT_LT(block.max_violation, 1e-6) << "seed " << seed;
  }
}

// ------------------------------------------------ Thread-count invariance

TEST(SolveDecomposedTest, ThreadCountDoesNotChangeThePosterior) {
  auto t = RandomTable(10, 3, 24, 6, 42);
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  Prng prng(4242);
  for (int k = 0; k < 6; ++k) {
    const uint32_t q =
        static_cast<uint32_t>(prng.NextBounded(t.num_qi_values()));
    const uint32_t s =
        static_cast<uint32_t>(prng.NextBounded(t.num_sa_values()));
    AddConditional(t, index, &system, q, s, t.TrueConditional(q, s));
  }

  maxent::SolverOptions serial, parallel;
  serial.threads = 1;
  parallel.threads = 8;
  auto a = maxent::SolveDecomposed(t, index, system, maxent::SolverKind::kLbfgs,
                                   serial)
               .ValueOrDie();
  auto b = maxent::SolveDecomposed(t, index, system, maxent::SolverKind::kLbfgs,
                                   parallel)
               .ValueOrDie();
  ASSERT_EQ(a.p.size(), b.p.size());
  for (size_t i = 0; i < a.p.size(); ++i) {
    // Bitwise identical: the block solves are deterministic and the
    // scatter targets are disjoint, so threading must not perturb them.
    EXPECT_EQ(a.p[i], b.p[i]) << index.TermName(i, t);
  }
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.entropy, b.entropy);
}

// ------------------------------------------------- Monolithic fallback

/// Couples every bucket of the Figure 1 table into one component. The
/// statements are chosen so their *materialized* support really spans
/// buckets (a conditional whose SA occurs in only one of the QI's
/// buckets collapses to a single-bucket constraint after invariant
/// substitution): P(s3 | q1) touches buckets 1-2, and P({s1, s2} | q2)
/// touches buckets 1 and 3.
ConstraintSystem FullyCoupledSystem(const BucketizedTable& t,
                                    const TermIndex& index) {
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, pme::testing::kQ1, kS3,
                 t.TrueConditional(pme::testing::kQ1, kS3));
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(
      pme::testing::kQ2, {kS1, pme::testing::kS2}, 0.5));
  auto compiled = constraints::CompileKnowledge(kb, t, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));
  return system;
}

TEST(SolveDecomposedTest, FullyCoupledSystemFallsBackToMonolithicSolve) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = FullyCoupledSystem(t, index);

  // Sanity: the knowledge really does couple the whole variable space.
  auto stats = maxent::AnalyzeDecomposition(index, system);
  EXPECT_EQ(stats.relevant_variables, stats.total_variables);

  auto decomposed = maxent::SolveDecomposed(t, index, system).ValueOrDie();
  EXPECT_TRUE(decomposed.used_monolithic_fallback);

  // The fallback literally runs Solve on the original system, so the
  // posterior matches the monolithic result exactly.
  auto problem = maxent::BuildProblem(system).ValueOrDie();
  auto mono = maxent::Solve(problem).ValueOrDie();
  ASSERT_EQ(decomposed.p.size(), mono.p.size());
  for (size_t i = 0; i < mono.p.size(); ++i) {
    EXPECT_EQ(decomposed.p[i], mono.p[i]) << index.TermName(i, t);
  }
}

TEST(SolveDecomposedTest, FallbackThresholdAboveOneAlwaysDecomposes) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = FullyCoupledSystem(t, index);

  maxent::SolverOptions options;
  options.monolithic_fallback_fraction = 1.5;  // disabled
  auto decomposed =
      maxent::SolveDecomposed(t, index, system, maxent::SolverKind::kLbfgs,
                              options)
          .ValueOrDie();
  EXPECT_FALSE(decomposed.used_monolithic_fallback);

  // Decomposed or not, the answer is the same distribution.
  auto problem = maxent::BuildProblem(system).ValueOrDie();
  auto mono = maxent::Solve(problem).ValueOrDie();
  for (size_t i = 0; i < mono.p.size(); ++i) {
    EXPECT_NEAR(decomposed.p[i], mono.p[i], 1e-6) << index.TermName(i, t);
  }
}

TEST(SolveDecomposedTest, SparseKnowledgeStaysDecomposed) {
  // One conditional touching a single bucket: the largest coupled
  // component is far below the threshold, so no fallback.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);
  auto decomposed = maxent::SolveDecomposed(t, index, system).ValueOrDie();
  EXPECT_FALSE(decomposed.used_monolithic_fallback);
}

// ----------------------------------------------- SIMD dispatch parity

TEST(SolveDecomposedTest, SimdOffAndAutoPosteriorsAgree) {
  // Tightly converged solves are where the 1e-10 parity claim is
  // meaningful: with both dispatch paths driving the residual to 1e-12,
  // the remaining posterior difference is pure kernel rounding. (At the
  // default 1e-8 tolerance each mode may stop at a different iterate
  // within tolerance of the optimum — that difference is solver slack,
  // not kernel error; the integration suite covers it separately.)
  auto saved = kernels::GetSimdMode();
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = FullyCoupledSystem(t, index);
  maxent::SolverOptions options;
  options.tolerance = 1e-12;
  options.monolithic_fallback_fraction = 1.5;  // exercise the block path

  kernels::SetSimdMode(kernels::SimdMode::kOff);
  auto off = maxent::SolveDecomposed(t, index, system,
                                     maxent::SolverKind::kLbfgs, options)
                 .ValueOrDie();
  kernels::SetSimdMode(kernels::SimdMode::kAuto);
  auto vec = maxent::SolveDecomposed(t, index, system,
                                     maxent::SolverKind::kLbfgs, options)
                 .ValueOrDie();
  kernels::SetSimdMode(saved);

  EXPECT_TRUE(off.converged);
  EXPECT_TRUE(vec.converged);
  ASSERT_EQ(off.p.size(), vec.p.size());
  for (size_t i = 0; i < off.p.size(); ++i) {
    EXPECT_NEAR(off.p[i], vec.p[i], 1e-10) << index.TermName(i, t);
  }
}

// ------------------------------------------------ Sharded TermIndex build

TEST(TermIndexBuildTest, ParallelBuildIsByteIdenticalToSerial) {
  for (int seed = 1; seed <= 3; ++seed) {
    auto t = RandomTable(64, 4, 40, 8, seed);
    const TermIndex serial = TermIndex::Build(t, 1);
    for (size_t threads : {2, 4, 8}) {
      const TermIndex sharded = TermIndex::Build(t, threads);
      ASSERT_EQ(sharded.num_variables(), serial.num_variables());
      ASSERT_EQ(sharded.num_buckets(), serial.num_buckets());
      for (uint32_t b = 0; b < serial.num_buckets(); ++b) {
        EXPECT_EQ(sharded.BucketRange(b), serial.BucketRange(b));
        EXPECT_EQ(sharded.BucketQiList(b), serial.BucketQiList(b));
        EXPECT_EQ(sharded.BucketSaList(b), serial.BucketSaList(b));
      }
      for (uint32_t v = 0; v < serial.num_variables(); ++v) {
        EXPECT_TRUE(sharded.TermOf(v) == serial.TermOf(v)) << "var " << v;
      }
    }
  }
}

}  // namespace
}  // namespace pme
