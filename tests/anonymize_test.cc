// Tests for src/anonymize: the bucketized table (Figure 1(c)), the
// Anatomy ℓ-diversity bucketizer, diversity checkers, and the pseudonym
// expansion (Figure 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "anonymize/anatomy.h"
#include "anonymize/bucketized_table.h"
#include "anonymize/diversity.h"
#include "anonymize/pseudonym.h"
#include "data/adult_synth.h"
#include "tests/test_util.h"

namespace pme::anonymize {
namespace {

using testing::kQ1;
using testing::kQ2;
using testing::kQ3;
using testing::kQ4;
using testing::kQ5;
using testing::kQ6;
using testing::kS1;
using testing::kS2;
using testing::kS3;
using testing::kS4;
using testing::kS5;

// ----------------------------------------------------- BucketizedTable

TEST(BucketizedTableTest, Figure1Shape) {
  auto t = testing::MakeFigure1Table();
  EXPECT_EQ(t.num_records(), 10u);
  EXPECT_EQ(t.num_buckets(), 3u);
  EXPECT_EQ(t.num_qi_values(), 6u);
  EXPECT_EQ(t.num_sa_values(), 5u);
  EXPECT_EQ(t.BucketQis(0).size(), 4u);
  EXPECT_EQ(t.BucketQis(1).size(), 3u);
  EXPECT_EQ(t.BucketQis(2).size(), 3u);
}

TEST(BucketizedTableTest, PaperProbabilities) {
  auto t = testing::MakeFigure1Table();
  // Paper: P(q1, 1) = 2/10.
  EXPECT_DOUBLE_EQ(t.ProbQB(kQ1, 0), 0.2);
  // Paper: P(s4, 2) = 1/10 (bucket index 1 here).
  EXPECT_DOUBLE_EQ(t.ProbSB(kS4, 1), 0.1);
  // P(q1) = 3/10 (twice in bucket 1, once in bucket 2).
  EXPECT_DOUBLE_EQ(t.ProbQ(kQ1), 0.3);
  // P(male) analog: q3 occurs in buckets 1 and 2.
  EXPECT_DOUBLE_EQ(t.ProbQ(kQ3), 0.2);
  EXPECT_DOUBLE_EQ(t.ProbB(0), 0.4);
  EXPECT_DOUBLE_EQ(t.ProbB(1), 0.3);
}

TEST(BucketizedTableTest, MembershipAndZeroInvariantFacts) {
  auto t = testing::MakeFigure1Table();
  // Paper: q1 does not appear in the 3rd bucket; s1 does not either.
  EXPECT_FALSE(t.QiInBucket(kQ1, 2));
  EXPECT_FALSE(t.SaInBucket(kS1, 2));
  EXPECT_TRUE(t.QiInBucket(kQ1, 0));
  EXPECT_TRUE(t.SaInBucket(kS4, 1));
  EXPECT_EQ(t.BucketsWithQi(kQ1), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(t.BucketsWithSa(kS2), (std::vector<uint32_t>{0, 2}));
}

TEST(BucketizedTableTest, SaMultisetIsSortedAndCounted) {
  auto t = testing::MakeFigure1Table();
  EXPECT_EQ(t.BucketSas(0), (std::vector<uint32_t>{kS1, kS2, kS2, kS3}));
  const auto& counts = t.BucketSaCounts(0);
  EXPECT_EQ(counts.at(kS2), 2u);
  EXPECT_EQ(counts.at(kS1), 1u);
}

TEST(BucketizedTableTest, TrueConditionalMatchesOriginalData) {
  auto t = testing::MakeFigure1Table();
  // Allen/Brian/Ethan are q1 with diseases s2, s3, s4: each 1/3.
  EXPECT_NEAR(t.TrueConditional(kQ1, kS2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.TrueConditional(kQ1, kS1), 0.0, 1e-12);
  // Cathy and Helen are q2 with s1 and s4.
  EXPECT_NEAR(t.TrueConditional(kQ2, kS1), 0.5, 1e-12);
  EXPECT_NEAR(t.TrueConditional(kQ2, kS4), 0.5, 1e-12);
}

TEST(BucketizedTableTest, DefaultNamesFollowPaperNotation) {
  auto t = testing::MakeFigure1Table();
  EXPECT_EQ(t.QiName(kQ1), "q1");
  EXPECT_EQ(t.SaName(kS5), "s5");
}

TEST(BucketizedTableTest, RejectsEmptyAndSparseBuckets) {
  EXPECT_FALSE(BucketizedTable::Create({}).ok());
  // Bucket 0 missing (only bucket 1 used).
  std::vector<AbstractRecord> sparse = {{0, 0, 1}};
  EXPECT_FALSE(BucketizedTable::Create(sparse).ok());
}

TEST(BucketizeDatasetTest, MatchesAbstractForm) {
  auto dataset = testing::MakeFigure1Dataset();
  auto bz = BucketizeDataset(dataset, testing::Figure1Partition()).ValueOrDie();
  const auto& t = bz.table;
  auto ref = testing::MakeFigure1Table();
  ASSERT_EQ(t.num_records(), ref.num_records());
  ASSERT_EQ(t.num_qi_values(), ref.num_qi_values());
  for (size_t i = 0; i < t.records().size(); ++i) {
    EXPECT_EQ(t.records()[i].qi, ref.records()[i].qi);
    EXPECT_EQ(t.records()[i].sa, ref.records()[i].sa);
    EXPECT_EQ(t.records()[i].bucket, ref.records()[i].bucket);
  }
  EXPECT_EQ(t.QiName(kQ1), "gender=male,degree=college");
  EXPECT_EQ(t.SaName(kS1), "breast-cancer");
}

TEST(BucketizeDatasetTest, PartitionSizeMustMatch) {
  auto dataset = testing::MakeFigure1Dataset();
  EXPECT_FALSE(BucketizeDataset(dataset, {0, 1}).ok());
}

// ------------------------------------------------------------- Anatomy

TEST(AnatomyTest, ProducesEllSizedDiverseBuckets) {
  data::AdultSynthOptions options;
  options.num_records = 1000;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  AnatomyOptions anatomy;
  anatomy.ell = 5;
  auto partition = AnatomyPartition(dataset, anatomy).ValueOrDie();
  auto bz = BucketizeDataset(dataset, partition).ValueOrDie();
  EXPECT_EQ(bz.table.num_buckets(), 200u);  // 1000 / 5

  const uint32_t exempt = MostFrequentSa(bz.table);
  for (uint32_t b = 0; b < bz.table.num_buckets(); ++b) {
    EXPECT_EQ(bz.table.BucketQis(b).size(), 5u);
    // Non-exempt values must be distinct within the bucket.
    for (const auto& [s, cnt] : bz.table.BucketSaCounts(b)) {
      if (s != exempt) EXPECT_EQ(cnt, 1u) << "bucket " << b;
    }
  }
  EXPECT_TRUE(SatisfiesDistinctDiversity(bz.table, 4, exempt) ||
              SatisfiesDistinctDiversity(bz.table, 5, exempt));
}

TEST(AnatomyTest, PaperScaleBucketCount) {
  data::AdultSynthOptions options;
  options.num_records = 14210;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  auto partition = AnatomyPartition(dataset, {}).ValueOrDie();
  uint32_t max_bucket = 0;
  for (uint32_t b : partition) max_bucket = std::max(max_bucket, b);
  EXPECT_EQ(max_bucket + 1, 2842u);  // paper: 2842 buckets of 5
}

TEST(AnatomyTest, DeterministicForSeed) {
  data::AdultSynthOptions options;
  options.num_records = 300;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  auto p1 = AnatomyPartition(dataset, {}).ValueOrDie();
  auto p2 = AnatomyPartition(dataset, {}).ValueOrDie();
  EXPECT_EQ(p1, p2);
}

TEST(AnatomyTest, FailsWhenOneValueDominatesWithoutExemption) {
  data::Schema schema;
  schema.AddAttribute("q", data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("s", data::AttributeRole::kSensitive);
  data::Dataset d(std::move(schema));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(d.AppendRecordValues({"x", "dominant"}).ok());
  }
  ASSERT_TRUE(d.AppendRecordValues({"x", "rare"}).ok());
  AnatomyOptions options;
  options.ell = 2;
  options.exempt_most_frequent = false;
  EXPECT_EQ(AnatomyPartition(d, options).status().code(),
            StatusCode::kFailedPrecondition);
  // With the exemption (paper footnote 3) the same data partitions fine.
  options.exempt_most_frequent = true;
  EXPECT_TRUE(AnatomyPartition(d, options).ok());
}

TEST(AnatomyTest, RejectsBadArguments) {
  auto dataset = testing::MakeFigure1Dataset();
  AnatomyOptions options;
  options.ell = 0;
  EXPECT_FALSE(AnatomyPartition(dataset, options).ok());
}

// ----------------------------------------------------------- Diversity

TEST(DiversityTest, DistinctCounts) {
  auto t = testing::MakeFigure1Table();
  EXPECT_EQ(DistinctDiversity(t, 0), 3u);  // {s1, s2, s3}
  EXPECT_EQ(DistinctDiversity(t, 1), 3u);
  EXPECT_EQ(DistinctDiversity(t, 2), 3u);
  // Exempting s2 removes one distinct value from buckets 1 and 3.
  EXPECT_EQ(DistinctDiversity(t, 0, kS2), 2u);
  EXPECT_EQ(DistinctDiversity(t, 1, kS2), 3u);
}

TEST(DiversityTest, EntropyDiversity) {
  auto t = testing::MakeFigure1Table();
  // Bucket 2 has three equiprobable values: effective candidates = 3.
  EXPECT_NEAR(EntropyDiversity(t, 1), 3.0, 1e-9);
  // Bucket 1 has {1/4, 2/4, 1/4}: entropy < log 4 but > log 2.
  EXPECT_LT(EntropyDiversity(t, 0), 4.0);
  EXPECT_GT(EntropyDiversity(t, 0), 2.0);
}

TEST(DiversityTest, MeasureAndSatisfy) {
  auto t = testing::MakeFigure1Table();
  auto report = MeasureDiversity(t);
  EXPECT_EQ(report.min_distinct, 3u);
  EXPECT_TRUE(SatisfiesDistinctDiversity(t, 3));
  EXPECT_FALSE(SatisfiesDistinctDiversity(t, 4));
}

TEST(DiversityTest, MostFrequentSa) {
  auto t = testing::MakeFigure1Table();
  EXPECT_EQ(MostFrequentSa(t), kS2);  // Flu appears 3 times
}

// ----------------------------------------------------------- Pseudonyms

TEST(PseudonymTest, Figure4Expansion) {
  auto t = testing::MakeFigure1Table();
  auto p = PseudonymTable::Create(&t).ValueOrDie();
  EXPECT_EQ(p.num_pseudonyms(), 10u);
  // Figure 4: q1 -> {i1, i2, i3}; q2 -> {i4, i5}; q4 -> {i8}; q5 -> {i9}.
  EXPECT_EQ(p.PseudonymsOf(kQ1), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(p.PseudonymsOf(kQ2), (std::vector<uint32_t>{3, 4}));
  EXPECT_EQ(p.PseudonymsOf(kQ4), (std::vector<uint32_t>{7}));
  EXPECT_EQ(p.Name(0), "i1");
  EXPECT_EQ(p.Name(9), "i10");
  EXPECT_EQ(p.QiOf(8), kQ5);
}

TEST(PseudonymTest, CandidateBucketsFollowQi) {
  auto t = testing::MakeFigure1Table();
  auto p = PseudonymTable::Create(&t).ValueOrDie();
  // Any of q1's pseudonyms may sit in bucket 1 or bucket 2.
  EXPECT_EQ(p.CandidateBuckets(0), (std::vector<uint32_t>{0, 1}));
  // q6 is unique to bucket 3.
  EXPECT_EQ(p.CandidateBuckets(9), (std::vector<uint32_t>{2}));
}

TEST(PseudonymTest, ClaimingExhaustsOccurrences) {
  auto t = testing::MakeFigure1Table();
  auto p = PseudonymTable::Create(&t).ValueOrDie();
  EXPECT_EQ(p.ClaimPseudonym(kQ2).ValueOrDie(), 3u);
  EXPECT_EQ(p.ClaimPseudonym(kQ2).ValueOrDie(), 4u);
  EXPECT_EQ(p.ClaimPseudonym(kQ2).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(p.ClaimPseudonym(99).ok());
}

}  // namespace
}  // namespace pme::anonymize
