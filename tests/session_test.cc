// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Artifact/session split: the TableArtifact + AnalysisSession pair must
// be a drop-in replacement for the legacy one-shot core::Analyze — same
// posteriors to 1e-10 across every solver kind and thread count — while
// supporting what Analyze never could: one immutable artifact shared by
// many concurrent sessions with different knowledge bases, a shared
// solution cache, and a shared worker pool.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "constraints/bk_compiler.h"
#include "constraints/component_analysis.h"
#include "constraints/system.h"
#include "core/analysis_session.h"
#include "core/experiment.h"
#include "core/table_artifact.h"
#include "knowledge/miner.h"
#include "maxent/solution_cache.h"

namespace pme::core {
namespace {

PipelineOptions SmallPipeline() {
  PipelineOptions options;
  options.data.num_records = 400;
  options.data.seed = 20080612;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;
  options.miner.max_attrs = 2;
  return options;
}

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new ExperimentPipeline(
        BuildPipeline(SmallPipeline()).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static knowledge::KnowledgeBase RuleKb(size_t positive, size_t negative) {
    knowledge::KnowledgeBase kb;
    kb.AddRules(knowledge::TopK(pipeline_->rules, positive, negative));
    return kb;
  }

  static std::shared_ptr<const TableArtifact> BuildArtifact(
      size_t threads = 1) {
    TableArtifactOptions options;
    options.threads = threads;
    return TableArtifact::BuildBorrowed(pipeline_->bucketization.table,
                                        &pipeline_->bucketization.qi_encoder,
                                        options)
        .ValueOrDie();
  }

  static double MaxPosteriorDiff(const PosteriorTable& a,
                                 const PosteriorTable& b) {
    EXPECT_EQ(a.num_qi(), b.num_qi());
    EXPECT_EQ(a.num_sa(), b.num_sa());
    double worst = 0.0;
    for (uint32_t q = 0; q < a.num_qi(); ++q) {
      for (uint32_t s = 0; s < a.num_sa(); ++s) {
        worst = std::max(worst,
                         std::fabs(a.Conditional(q, s) - b.Conditional(q, s)));
      }
    }
    return worst;
  }

  static ExperimentPipeline* pipeline_;
};

ExperimentPipeline* SessionTest::pipeline_ = nullptr;

// (a) Parity: artifact + session must reproduce the legacy Analyze
// posterior to 1e-10 for every solver kind and thread count.
TEST_F(SessionTest, MatchesLegacyAnalyzeAcrossSolversAndThreads) {
  const knowledge::KnowledgeBase kb = RuleKb(8, 8);
  const auto artifact = BuildArtifact();
  const maxent::SolverKind kinds[] = {
      maxent::SolverKind::kLbfgs,    maxent::SolverKind::kGis,
      maxent::SolverKind::kIis,      maxent::SolverKind::kSteepest,
      maxent::SolverKind::kNewton,   maxent::SolverKind::kProjected,
  };
  for (maxent::SolverKind kind : kinds) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(std::string("solver=") + maxent::SolverKindToString(kind) +
                   " threads=" + std::to_string(threads));
      AnalysisOptions options;
      options.solver = kind;
      options.solver_options.threads = threads;
      // Keep the slow first-order kinds affordable: parity must hold at
      // whatever iterate the budget reaches, converged or not.
      options.solver_options.max_iterations = 300;

      const auto legacy =
          Analyze(pipeline_->bucketization.table, kb, options,
                  &pipeline_->bucketization.qi_encoder)
              .ValueOrDie();
      const AnalysisSession session(artifact, options);
      const auto via_session = session.Run(kb).ValueOrDie();

      EXPECT_LE(MaxPosteriorDiff(legacy.posterior, via_session.posterior),
                1e-10);
      EXPECT_NEAR(legacy.estimation_accuracy,
                  via_session.estimation_accuracy, 1e-10);
      EXPECT_EQ(legacy.num_background_constraints,
                via_session.num_background_constraints);
      EXPECT_EQ(legacy.decomposition.num_components,
                via_session.decomposition.num_components);
    }
  }
}

// The serving configuration — block tasks scheduled on a shared
// ThreadPool instead of a per-solve private pool — must change nothing
// about the result.
TEST_F(SessionTest, SharedPoolMatchesPrivatePool) {
  const knowledge::KnowledgeBase kb = RuleKb(12, 12);
  const auto artifact = BuildArtifact();

  AnalysisOptions options;
  options.solver_options.threads = 4;
  const auto reference =
      AnalysisSession(artifact, options).Run(kb).ValueOrDie();

  ThreadPool pool(4);
  AnalysisOptions pooled = options;
  pooled.solver_options.pool = &pool;
  const auto via_pool =
      AnalysisSession(artifact, pooled).Run(kb).ValueOrDie();

  EXPECT_LE(MaxPosteriorDiff(reference.posterior, via_pool.posterior), 1e-10);
  EXPECT_EQ(reference.solver.components_solved,
            via_pool.solver.components_solved);
  EXPECT_EQ(reference.solver.components_failed,
            via_pool.solver.components_failed);
}

// (b) Independence: sessions with different knowledge bases share one
// artifact, one solution cache, and one worker pool, run concurrently,
// and each must keep producing exactly its own single-threaded answer.
// Run under TSan, this is also the data-race check for the whole
// artifact-sharing design.
TEST_F(SessionTest, ConcurrentSessionsOnOneArtifactAreIndependent) {
  const auto artifact = BuildArtifact();
  const std::vector<knowledge::KnowledgeBase> kbs = {
      RuleKb(10, 0), RuleKb(0, 10), RuleKb(6, 6)};

  // Single-threaded references, one per knowledge base.
  std::vector<PosteriorTable> reference;
  for (const auto& kb : kbs) {
    reference.push_back(
        AnalysisSession(artifact).Run(kb).ValueOrDie().posterior);
  }

  ThreadPool pool(4);
  maxent::SolutionCache cache;
  AnalysisOptions options;
  options.solver_options.pool = &pool;
  options.solver_options.solution_cache = &cache;

  std::vector<AnalysisSession> sessions;
  sessions.reserve(kbs.size());
  for (size_t i = 0; i < kbs.size(); ++i) {
    sessions.emplace_back(artifact, options);
  }

  constexpr size_t kRoundsPerWorker = 3;
  std::vector<double> worst(kbs.size() * 2, 0.0);
  std::vector<std::thread> workers;
  for (size_t w = 0; w < kbs.size() * 2; ++w) {
    workers.emplace_back([&, w] {
      const size_t which = w % kbs.size();
      double local_worst = 0.0;
      for (size_t round = 0; round < kRoundsPerWorker; ++round) {
        const auto result = sessions[which].Run(kbs[which]);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        local_worst = std::max(
            local_worst,
            MaxPosteriorDiff(reference[which], result.value().posterior));
      }
      worst[w] = local_worst;
    });
  }
  for (auto& t : workers) t.join();
  for (size_t w = 0; w < worst.size(); ++w) {
    EXPECT_LE(worst[w], 1e-10) << "worker " << w;
  }
}

// (c) The content hash is a pure function of the published table: the
// thread count of the parallel TermIndex build must not leak into it.
TEST_F(SessionTest, ContentHashByteStableAcrossThreads) {
  const auto serial = BuildArtifact(/*threads=*/1);
  const auto parallel = BuildArtifact(/*threads=*/4);
  EXPECT_EQ(serial->content_hash(), parallel->content_hash());
  EXPECT_EQ(serial->content_hash().ToHex(), parallel->content_hash().ToHex());
  // And the artifact itself is structurally identical.
  EXPECT_EQ(serial->index().num_variables(), parallel->index().num_variables());
  EXPECT_EQ(serial->invariants().size(), parallel->invariants().size());
}

// Distinct invariant options are distinct table-side systems, so the
// namespaces (and thus cache keys) must differ.
TEST_F(SessionTest, ContentHashCoversInvariantOptions) {
  TableArtifactOptions flipped;
  flipped.invariant_options.drop_redundant_row =
      !TableArtifactOptions{}.invariant_options.drop_redundant_row;
  const auto a = BuildArtifact();
  const auto b = TableArtifact::BuildBorrowed(
                     pipeline_->bucketization.table,
                     &pipeline_->bucketization.qi_encoder, flipped)
                     .ValueOrDie();
  EXPECT_NE(a->content_hash(), b->content_hash());
}

// ComponentAnalysis::Extend — the session's one-pass merge of knowledge
// rows into the artifact's invariants-only partition — must agree with a
// from-scratch Build over the concatenated system.
TEST_F(SessionTest, ExtendMatchesBuildOnConcatenatedSystem) {
  const auto artifact = BuildArtifact();
  const knowledge::KnowledgeBase kb = RuleKb(15, 15);
  auto compiled = constraints::CompileKnowledge(
                      kb, artifact->table(), artifact->index(),
                      artifact->qi_encoder())
                      .ValueOrDie();

  const constraints::ComponentAnalysis extended =
      constraints::ComponentAnalysis::Extend(artifact->base_components(),
                                             artifact->index(),
                                             compiled.constraints);

  constraints::ConstraintSystem full(artifact->index().num_variables());
  full.AddAll(artifact->invariants());
  full.AddAll(std::move(compiled.constraints));
  const constraints::ComponentAnalysis rebuilt =
      constraints::ComponentAnalysis::Build(artifact->index(), full);

  ASSERT_EQ(extended.num_components(), rebuilt.num_components());
  EXPECT_EQ(extended.num_coupled(), rebuilt.num_coupled());
  const size_t num_buckets = artifact->table().num_buckets();
  for (uint32_t b = 0; b < num_buckets; ++b) {
    EXPECT_EQ(extended.ComponentOf(b), rebuilt.ComponentOf(b)) << "bucket "
                                                               << b;
  }
  for (size_t c = 0; c < extended.num_components(); ++c) {
    EXPECT_EQ(extended.components()[c].buckets, rebuilt.components()[c].buckets)
        << "component " << c;
    EXPECT_EQ(extended.components()[c].coupled, rebuilt.components()[c].coupled)
        << "component " << c;
    EXPECT_EQ(extended.components()[c].num_variables,
              rebuilt.components()[c].num_variables)
        << "component " << c;
  }
}

// The legacy wrapper and a session must agree on an empty knowledge base
// too (the pure Theorem-5 closed-form path).
TEST_F(SessionTest, KnowledgeFreeRunMatchesLegacy) {
  const knowledge::KnowledgeBase empty;
  const auto artifact = BuildArtifact();
  const auto legacy = Analyze(pipeline_->bucketization.table, empty, {},
                              &pipeline_->bucketization.qi_encoder)
                          .ValueOrDie();
  const auto via_session =
      AnalysisSession(artifact).Run(empty).ValueOrDie();
  EXPECT_LE(MaxPosteriorDiff(legacy.posterior, via_session.posterior), 1e-10);
  EXPECT_EQ(via_session.decomposition.num_coupled_components, 0u);
}

// The session's incremental evaluation — prior posterior copied from the
// artifact with only the knowledge-touched q rows recomputed, per-q
// metric slices re-aggregated — must reproduce a from-scratch rebuild of
// posterior, accuracy, and metrics off the same joint solution exactly
// (the touched rows replay the identical arithmetic; untouched rows are
// untouched by construction).
TEST_F(SessionTest, IncrementalEvaluationMatchesFullRebuild) {
  const knowledge::KnowledgeBase kb = RuleKb(10, 6);
  const auto artifact = BuildArtifact();
  const auto analysis = AnalysisSession(artifact).Run(kb).ValueOrDie();

  const PosteriorTable full = PosteriorTable::FromSolution(
      artifact->table(), artifact->index(), analysis.solver.p);
  EXPECT_EQ(MaxPosteriorDiff(full, analysis.posterior), 0.0);
  EXPECT_EQ(EstimationAccuracy(artifact->ground_truth(), full),
            analysis.estimation_accuracy);
  const PrivacyMetrics metrics = ComputePrivacyMetrics(full);
  EXPECT_EQ(metrics.max_disclosure, analysis.metrics.max_disclosure);
  EXPECT_EQ(metrics.expected_best_guess, analysis.metrics.expected_best_guess);
  EXPECT_EQ(metrics.min_effective_candidates,
            analysis.metrics.min_effective_candidates);
  // The incremental entropy shortcut must stay within rounding noise of
  // the full -Σ p ln p pass.
  EXPECT_NEAR(analysis.solver.entropy, Entropy(analysis.solver.p), 1e-9);
}

}  // namespace
}  // namespace pme::core
