// Tests for the Section-6 IndividualModel: pseudonym-expanded MaxEnt with
// knowledge about individuals, exercised on the paper's Figure 4 examples.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "anonymize/pseudonym.h"
#include "core/individual_model.h"
#include "tests/test_util.h"

namespace pme::core {
namespace {

using pme::testing::kQ1;
using pme::testing::kQ2;
using pme::testing::kQ5;
using pme::testing::kS1;
using pme::testing::kS2;
using pme::testing::kS3;
using pme::testing::kS4;
using pme::testing::kS5;

class IndividualModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pseudonyms_ = std::make_unique<anonymize::PseudonymTable>(
        anonymize::PseudonymTable::Create(&table_).ValueOrDie());
    model_ = std::make_unique<IndividualModel>(
        IndividualModel::Build(pseudonyms_.get()).ValueOrDie());
  }

  anonymize::BucketizedTable table_{pme::testing::MakeFigure1Table()};
  std::unique_ptr<anonymize::PseudonymTable> pseudonyms_;
  std::unique_ptr<IndividualModel> model_;
};

TEST_F(IndividualModelTest, VariableSpaceShape) {
  // q1's pseudonyms (3 of them) see buckets 1 and 2 with 3 SAs each: 6
  // variables per pseudonym. q4/q5/q6 pseudonyms see one bucket: 3 each.
  // q2: buckets 1 and 3 (3+3); q3: buckets 1 and 2 (3+3).
  // Total = 3*6 (q1) + 2*6 (q2) + 2*6 (q3) + 3 + 3 + 3 = 51.
  EXPECT_EQ(model_->num_variables(), 51u);
  // Invariants: 10 pseudonym rows + per-(q,b): q1:2,q2:2,q3:2,q4:1,q5:1,
  // q6:1 = 9 rows + per-(s,b): 3+3+3 = 9 rows.
  EXPECT_EQ(model_->num_constraints(), 28u);
}

TEST_F(IndividualModelTest, NoKnowledgeMatchesAggregatePosterior) {
  // Without individual knowledge the individual posterior must coincide
  // with the bucket-portion rule for the person's QI instance.
  auto result = model_->Solve().ValueOrDie();
  EXPECT_LT(result.max_violation, 1e-7);
  // i10 = James (q6), only bucket 3: uniform over {s2, s4, s5}.
  auto posterior = model_->PosteriorFor(9, result.p);
  EXPECT_NEAR(posterior[kS2], 1.0 / 3, 1e-6);
  EXPECT_NEAR(posterior[kS4], 1.0 / 3, 1e-6);
  EXPECT_NEAR(posterior[kS5], 1.0 / 3, 1e-6);
  // Any of q1's pseudonyms: P*(s1|i) = 5/18 (as in the aggregate model).
  auto p_q1 = model_->PosteriorFor(0, result.p);
  EXPECT_NEAR(p_q1[kS1], 5.0 / 18, 1e-6);
}

TEST_F(IndividualModelTest, PaperType1Knowledge) {
  // Section 6 (1): "P(Breast Cancer | Alice with q1) = 0.2" compiles to
  // P(i1,q1,s1,1) + P(i1,q1,s1,2) = 0.2/N.
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.kind = knowledge::IndividualKind::kPersonSaSet;
  stmt.terms = {{0, kS1}};
  stmt.probability = 0.2;
  stmt.label = "Alice breast cancer 0.2";
  kb.Add(stmt);
  ASSERT_TRUE(model_->AddKnowledge(kb).ok());
  auto result = model_->Solve().ValueOrDie();
  EXPECT_LT(result.max_violation, 1e-7);
  auto posterior = model_->PosteriorFor(0, result.p);
  EXPECT_NEAR(posterior[kS1], 0.2, 1e-6);
  // The other pseudonyms of q1 must compensate: total s1 mass attributable
  // to q1 is untouched by who exactly carries it... their posterior stays
  // a proper distribution.
  double sum = 0.0;
  for (double v : model_->PosteriorFor(1, result.p)) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(IndividualModelTest, PaperType2KnowledgeEitherOr) {
  // Section 6 (2): "Alice (q1) has either Breast Cancer (s1) or HIV (s4)"
  // => P(i1,q1,s1,1) + P(i1,q1,s1,2) + P(i1,q1,s4,2) = 1/N.
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.terms = {{0, kS1}, {0, kS4}};
  stmt.probability = 1.0;
  kb.Add(stmt);
  ASSERT_TRUE(model_->AddKnowledge(kb).ok());
  auto result = model_->Solve().ValueOrDie();
  auto posterior = model_->PosteriorFor(0, result.p);
  EXPECT_NEAR(posterior[kS1] + posterior[kS4], 1.0, 1e-6);
  EXPECT_NEAR(posterior[kS2] + posterior[kS3] + posterior[kS5], 0.0, 1e-6);
}

TEST_F(IndividualModelTest, PaperType3GroupCount) {
  // Section 6 (3): "Two people among Alice (q1), Bob (q2) and Charlie
  // (q5) have HIV (s4)" => the three candidate terms sum to 2/N.
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.kind = knowledge::IndividualKind::kGroupCount;
  stmt.terms = {{0, kS4}, {3, kS4}, {8, kS4}};
  stmt.probability = 2.0;
  kb.Add(stmt);
  ASSERT_TRUE(model_->AddKnowledge(kb).ok());
  auto result = model_->Solve().ValueOrDie();
  EXPECT_LT(result.max_violation, 1e-7);
  const double p_alice = model_->PosteriorFor(0, result.p)[kS4];
  const double p_bob = model_->PosteriorFor(3, result.p)[kS4];
  const double p_charlie = model_->PosteriorFor(8, result.p)[kS4];
  EXPECT_NEAR(p_alice + p_bob + p_charlie, 2.0, 1e-6);
  // Charlie (q5) sits in bucket 3 whose SA multiset {s2,s4,s5} contains
  // s4, so his share is positive; everyone's is at most 1.
  EXPECT_GT(p_charlie, 0.0);
  EXPECT_LE(p_alice, 1.0 + 1e-6);
}

TEST_F(IndividualModelTest, CertainKnowledgeForcesAssignment) {
  // "Frank has Pneumonia" (introduction): Frank is a q3 person; claim a
  // q3 pseudonym and assert s3 with probability 1.
  auto frank = pseudonyms_->ClaimPseudonym(pme::testing::kQ3).ValueOrDie();
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.terms = {{frank, kS3}};
  stmt.probability = 1.0;
  kb.Add(stmt);
  ASSERT_TRUE(model_->AddKnowledge(kb).ok());
  auto result = model_->Solve().ValueOrDie();
  auto posterior = model_->PosteriorFor(frank, result.p);
  EXPECT_NEAR(posterior[kS3], 1.0, 1e-6);
}

TEST_F(IndividualModelTest, AbstractConditionalAggregates) {
  // Distribution knowledge in the individual space: P(s3 | q3) = 0.5.
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(pme::testing::kQ3, {kS3}, 0.5));
  ASSERT_TRUE(model_->AddKnowledge(kb).ok());
  auto result = model_->Solve().ValueOrDie();
  // Aggregated over q3's two pseudonyms, s3 mass must be 0.5 * P(q3) * N
  // = 0.5 * 2 records = posterior sum 1.0.
  const double total = model_->PosteriorFor(5, result.p)[kS3] +
                       model_->PosteriorFor(6, result.p)[kS3];
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_F(IndividualModelTest, InfeasibleIndividualKnowledgeDetected) {
  // Charlie (q5, bucket 3) cannot have s1 — bucket 3 has no s1.
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.terms = {{8, kS1}};
  stmt.probability = 1.0;
  kb.Add(stmt);
  EXPECT_EQ(model_->AddKnowledge(kb).code(), StatusCode::kInfeasible);
}

TEST_F(IndividualModelTest, InequalityIndividualKnowledge) {
  // "At least two of {Alice, Bob, Charlie} have HIV" — the extended model
  // with a >= row (Section 6 discussion of inequality knowledge).
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.kind = knowledge::IndividualKind::kGroupCount;
  stmt.terms = {{0, kS4}, {3, kS4}, {8, kS4}};
  stmt.rel = knowledge::Relation::kGe;
  stmt.probability = 2.0;
  kb.Add(stmt);
  ASSERT_TRUE(model_->AddKnowledge(kb).ok());
  auto result = model_->Solve().ValueOrDie();
  const double total = model_->PosteriorFor(0, result.p)[kS4] +
                       model_->PosteriorFor(3, result.p)[kS4] +
                       model_->PosteriorFor(8, result.p)[kS4];
  // The bound ">= 2" is only *just* feasible here (2 is also the maximum
  // the published buckets allow), so Slater's condition fails and the
  // inequality multiplier diverges; finite iterations approach the bound
  // from below. Accept a loose tolerance.
  EXPECT_GE(total, 2.0 - 1e-3);
}

TEST_F(IndividualModelTest, RejectsUnknownPseudonym) {
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.terms = {{99, kS1}};
  stmt.probability = 1.0;
  kb.Add(stmt);
  EXPECT_EQ(model_->AddKnowledge(kb).code(), StatusCode::kInvalidArgument);
}

TEST_F(IndividualModelTest, RejectsDatasetModeConditional) {
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::MakeConditional({0}, {0}, kS2, 0.3));
  EXPECT_EQ(model_->AddKnowledge(kb).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pme::core
