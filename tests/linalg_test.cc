// Tests for src/linalg: CSR sparse matrices, dense matrices, Cholesky,
// rank / row-space utilities.

#include <gtest/gtest.h>

#include "common/prng.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace pme::linalg {
namespace {

TEST(SparseMatrixTest, FromTripletsSumsDuplicatesAndDropsZeros) {
  auto m = SparseMatrix::FromTriplets(
                2, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 2, 0.0}, {1, 0, -1.0}})
               .ValueOrDie();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 2u);  // (0,1)=5 and (1,0)=-1; the zero was dropped
  EXPECT_DOUBLE_EQ(m.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
}

TEST(SparseMatrixTest, OutOfBoundsTripletRejected) {
  auto r = SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  std::vector<std::vector<double>> dense = {
      {1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}, {4.0, 5.0, 6.0}, {0.0, 0.0, 0.0}};
  SparseMatrix m = SparseMatrix::FromDense(dense);
  std::vector<double> x = {1.0, -1.0, 2.0};
  std::vector<double> y;
  m.Multiply(x, y);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(SparseMatrixTest, TransposeMultiplyMatchesDense) {
  std::vector<std::vector<double>> dense = {{1.0, 2.0}, {3.0, 4.0},
                                            {5.0, 6.0}};
  SparseMatrix m = SparseMatrix::FromDense(dense);
  std::vector<double> x = {1.0, 0.5, -1.0};
  std::vector<double> y;
  m.TransposeMultiply(x, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 1.5 - 5.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 + 2.0 - 6.0);
}

TEST(SparseMatrixTest, TransposeMultiplyAccumulate) {
  SparseMatrix m = SparseMatrix::FromDense({{1.0, 2.0}});
  std::vector<double> y = {10.0, 10.0};
  m.TransposeMultiplyAccumulate(2.0, {3.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 16.0);
  EXPECT_DOUBLE_EQ(y[1], 22.0);
}

TEST(SparseMatrixTest, RandomizedAgreementWithDense) {
  Prng prng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t rows = 1 + prng.NextBounded(12);
    const size_t cols = 1 + prng.NextBounded(12);
    std::vector<std::vector<double>> dense(rows,
                                           std::vector<double>(cols, 0.0));
    for (auto& row : dense) {
      for (auto& v : row) {
        if (prng.NextDouble() < 0.4) v = prng.NextDouble(-2.0, 2.0);
      }
    }
    SparseMatrix m = SparseMatrix::FromDense(dense);
    std::vector<double> x(cols);
    for (auto& v : x) v = prng.NextDouble(-1.0, 1.0);
    std::vector<double> y;
    m.Multiply(x, y);
    for (size_t r = 0; r < rows; ++r) {
      double expect = 0.0;
      for (size_t c = 0; c < cols; ++c) expect += dense[r][c] * x[c];
      EXPECT_NEAR(y[r], expect, 1e-12);
    }
  }
}

TEST(SparseMatrixTest, SubmatrixSelectsAndReorders) {
  SparseMatrix m = SparseMatrix::FromDense(
      {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}});
  auto sub = m.Submatrix({2, 0}, {1, 2}).ValueOrDie();
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_DOUBLE_EQ(sub.At(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(sub.At(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(sub.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.At(1, 1), 3.0);
}

TEST(SparseMatrixBuilderTest, BuildsRowsIncrementally) {
  SparseMatrixBuilder builder(4);
  builder.BeginRow();
  ASSERT_TRUE(builder.Add(0, 1.0).ok());
  ASSERT_TRUE(builder.Add(3, 2.0).ok());
  ASSERT_TRUE(builder.AddRow({1, 2}, {5.0, 6.0}).ok());
  auto m = builder.Build().ValueOrDie();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 5.0);
}

TEST(SparseMatrixBuilderTest, AddBeforeBeginRowFails) {
  SparseMatrixBuilder builder(2);
  EXPECT_EQ(builder.Add(0, 1.0).code(), StatusCode::kFailedPrecondition);
}

TEST(SparseMatrixBuilderTest, ColumnOutOfRangeFails) {
  SparseMatrixBuilder builder(2);
  builder.BeginRow();
  EXPECT_EQ(builder.Add(2, 1.0).code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- DenseMatrix

TEST(DenseMatrixTest, MultiplyAndTranspose) {
  DenseMatrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 2) = 2;
  m.At(1, 1) = 3;
  auto y = m.Multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  DenseMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 2.0);
}

TEST(DenseMatrixTest, RankOfIdentityAndSingular) {
  DenseMatrix id(3, 3);
  for (size_t i = 0; i < 3; ++i) id.At(i, i) = 1.0;
  EXPECT_EQ(id.Rank(), 3u);

  DenseMatrix sing(3, 3);
  // Row 2 = row 0 + row 1.
  sing.At(0, 0) = 1;
  sing.At(0, 1) = 2;
  sing.At(1, 1) = 1;
  sing.At(1, 2) = 1;
  sing.At(2, 0) = 1;
  sing.At(2, 1) = 3;
  sing.At(2, 2) = 1;
  EXPECT_EQ(sing.Rank(), 2u);
}

TEST(DenseMatrixTest, RowSpaceContains) {
  DenseMatrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 1;
  m.At(1, 1) = 1;
  m.At(1, 2) = 1;
  EXPECT_TRUE(m.RowSpaceContains({1.0, 2.0, 1.0}));   // row0 + row1
  EXPECT_TRUE(m.RowSpaceContains({1.0, 0.0, -1.0}));  // row0 - row1
  EXPECT_FALSE(m.RowSpaceContains({1.0, 0.0, 0.0}));
}

TEST(DenseMatrixTest, AppendRowGrows) {
  DenseMatrix m(0, 0);
  m.AppendRow({1.0, 2.0});
  m.AppendRow({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0].
  DenseMatrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  auto x = CholeskySolve(a, {2.0, 1.0}).ValueOrDie();
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(1, 1) = -1;
  auto r = CholeskySolve(a, {1.0, 1.0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
}

TEST(CholeskyTest, JitterRescuesSemidefinite) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 1;  // rank 1
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}).ok());
  EXPECT_TRUE(CholeskySolve(a, {1.0, 1.0}, 1e-8).ok());
}

TEST(CholeskyTest, RandomizedResidualSmall) {
  Prng prng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 2 + prng.NextBounded(8);
    // A = B Bᵀ + I is SPD.
    DenseMatrix b(n, n), a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b.At(i, j) = prng.NextDouble(-1, 1);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double acc = i == j ? 1.0 : 0.0;
        for (size_t k = 0; k < n; ++k) acc += b.At(i, k) * b.At(j, k);
        a.At(i, j) = acc;
      }
    }
    std::vector<double> rhs(n);
    for (auto& v : rhs) v = prng.NextDouble(-1, 1);
    auto x = CholeskySolve(a, rhs).ValueOrDie();
    auto ax = a.Multiply(x);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-9);
  }
}

}  // namespace
}  // namespace pme::linalg
