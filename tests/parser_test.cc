// Tests for the knowledge-statement parser (the text front door for the
// paper's "any linear knowledge" language).

#include <gtest/gtest.h>

#include "knowledge/parser.h"
#include "tests/test_util.h"

namespace pme::knowledge {
namespace {

using pme::testing::kQ3;
using pme::testing::kS1;
using pme::testing::kS2;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : dataset_(pme::testing::MakeFigure1Dataset()) {
    context_.dataset = &dataset_;
  }
  data::Dataset dataset_;
  ParserContext context_;
};

TEST_F(ParserTest, PaperBreastCancerStatement) {
  auto parsed =
      ParseStatement("P(breast-cancer | gender=male) = 0", context_)
          .ValueOrDie();
  ASSERT_TRUE(parsed.conditional.has_value());
  const auto& stmt = *parsed.conditional;
  EXPECT_FALSE(stmt.abstract_qi.has_value());
  ASSERT_EQ(stmt.attrs.size(), 1u);
  EXPECT_EQ(dataset_.schema().attribute(stmt.attrs[0]).name, "gender");
  EXPECT_EQ(stmt.sa_codes, std::vector<uint32_t>{kS1});
  EXPECT_EQ(stmt.rel, Relation::kEq);
  EXPECT_DOUBLE_EQ(stmt.probability, 0.0);
}

TEST_F(ParserTest, MultiAttributeCondition) {
  auto parsed =
      ParseStatement("P(flu | gender=male, degree=college) = 0.5", context_)
          .ValueOrDie();
  ASSERT_TRUE(parsed.conditional.has_value());
  EXPECT_EQ(parsed.conditional->attrs.size(), 2u);
  EXPECT_EQ(parsed.conditional->values.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.conditional->probability, 0.5);
}

TEST_F(ParserTest, AbstractFormNeedsNoDataset) {
  auto parsed = ParseStatement("P(s1 or s2 | q3) = 0").ValueOrDie();
  ASSERT_TRUE(parsed.conditional.has_value());
  EXPECT_EQ(parsed.conditional->abstract_qi.value(), kQ3);
  EXPECT_EQ(parsed.conditional->sa_codes,
            (std::vector<uint32_t>{kS1, kS2}));
}

TEST_F(ParserTest, InequalityRelations) {
  auto le = ParseStatement("P(s1 | q1) <= 0.35").ValueOrDie();
  EXPECT_EQ(le.conditional->rel, Relation::kLe);
  EXPECT_DOUBLE_EQ(le.conditional->probability, 0.35);
  auto ge = ParseStatement("P(s1 | q1) >= 0.25").ValueOrDie();
  EXPECT_EQ(ge.conditional->rel, Relation::kGe);
}

TEST_F(ParserTest, NamedSaSetWithOr) {
  auto parsed =
      ParseStatement("P(flu or pneumonia | gender=male) = 0.6", context_)
          .ValueOrDie();
  EXPECT_EQ(parsed.conditional->sa_codes.size(), 2u);
}

TEST_F(ParserTest, PersonStatement) {
  auto parsed =
      ParseStatement("P(breast-cancer | person i1) = 0.2", context_)
          .ValueOrDie();
  ASSERT_TRUE(parsed.individual.has_value());
  EXPECT_EQ(parsed.individual->kind, IndividualKind::kPersonSaSet);
  ASSERT_EQ(parsed.individual->terms.size(), 1u);
  EXPECT_EQ(parsed.individual->terms[0].first, 0u);  // i1 -> 0
  EXPECT_EQ(parsed.individual->terms[0].second, kS1);
  EXPECT_DOUBLE_EQ(parsed.individual->probability, 0.2);
}

TEST_F(ParserTest, PersonEitherOr) {
  auto parsed =
      ParseStatement("P(breast-cancer or hiv | person i1) = 1", context_)
          .ValueOrDie();
  ASSERT_TRUE(parsed.individual.has_value());
  EXPECT_EQ(parsed.individual->terms.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.individual->probability, 1.0);
}

TEST_F(ParserTest, GroupCountStatement) {
  auto parsed =
      ParseStatement("count(i1:hiv, i4:hiv, i9:hiv) = 2", context_)
          .ValueOrDie();
  ASSERT_TRUE(parsed.individual.has_value());
  EXPECT_EQ(parsed.individual->kind, IndividualKind::kGroupCount);
  EXPECT_EQ(parsed.individual->terms.size(), 3u);
  EXPECT_EQ(parsed.individual->terms[1].first, 3u);  // i4 -> 3
  EXPECT_DOUBLE_EQ(parsed.individual->probability, 2.0);
}

TEST_F(ParserTest, GroupCountWithInequality) {
  auto parsed = ParseStatement("count(i1:s4, i4:s4) >= 1").ValueOrDie();
  EXPECT_EQ(parsed.individual->rel, Relation::kGe);
}

TEST_F(ParserTest, RejectsBadInput) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("hello world").ok());
  EXPECT_FALSE(ParseStatement("P(s1 | q1)").ok());             // no relation
  EXPECT_FALSE(ParseStatement("P(s1 | q1) = 1.5").ok());       // p > 1
  EXPECT_FALSE(ParseStatement("P(s1 | q1) = -0.5").ok());      // p < 0
  EXPECT_FALSE(ParseStatement("P(s1 | q0) = 0.5").ok());       // index < 1
  EXPECT_FALSE(ParseStatement("P(s1 | q1) = 0.5 extra").ok()); // trailing
  EXPECT_FALSE(ParseStatement("count(i1:s1) = 2").ok());       // count > n
  EXPECT_FALSE(ParseStatement("P(s1 | q1) == 0.5").ok());
}

TEST_F(ParserTest, NamedValuesNeedDataset) {
  EXPECT_FALSE(ParseStatement("P(flu | q1) = 0.5").ok());
  EXPECT_FALSE(ParseStatement("P(s1 | gender=male) = 0.5").ok());
}

TEST_F(ParserTest, RejectsUnknownNames) {
  EXPECT_FALSE(ParseStatement("P(noSuchDisease | q1) = 0.5", context_).ok());
  EXPECT_FALSE(
      ParseStatement("P(flu | nosuchattr=male) = 0.5", context_).ok());
  EXPECT_FALSE(
      ParseStatement("P(flu | gender=purple) = 0.5", context_).ok());
  // Conditioning on the sensitive attribute itself is not a QI condition.
  EXPECT_FALSE(
      ParseStatement("P(flu | disease=hiv) = 0.5", context_).ok());
}

TEST_F(ParserTest, ParseKnowledgeDocument) {
  const char* text = R"(
    # The adversary's assumed knowledge
    P(breast-cancer | gender=male) = 0     # common medical knowledge
    P(flu | gender=male) = 0.3

    P(s1 or s2 | q3) = 0
    count(i1:hiv, i4:hiv, i9:hiv) = 2
  )";
  KnowledgeBase kb;
  ASSERT_TRUE(ParseKnowledge(text, context_, &kb).ok());
  EXPECT_EQ(kb.conditionals().size(), 3u);
  EXPECT_EQ(kb.individuals().size(), 1u);
}

TEST_F(ParserTest, ParseKnowledgeReportsLineNumbers) {
  KnowledgeBase kb;
  auto status = ParseKnowledge("P(s1 | q1) = 0.5\nbroken line\n", {}, &kb);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST_F(ParserTest, WhitespaceInsensitive) {
  auto a = ParseStatement("P(s1|q1)=0.5").ValueOrDie();
  auto b = ParseStatement("  P( s1 | q1 )  =  0.5  ").ValueOrDie();
  EXPECT_EQ(a.conditional->probability, b.conditional->probability);
  EXPECT_EQ(a.conditional->abstract_qi, b.conditional->abstract_qi);
}

}  // namespace
}  // namespace pme::knowledge
