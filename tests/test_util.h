// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Shared fixtures: the paper's running example (Figure 1) and small
// helpers used across test files.

#ifndef PME_TESTS_TEST_UTIL_H_
#define PME_TESTS_TEST_UTIL_H_

#include <vector>

#include "anonymize/bucketized_table.h"
#include "data/dataset.h"

namespace pme::testing {

// Abstract instance ids for Figure 1(c). QI instances:
//   q1 = {male, college}, q2 = {female, college}, q3 = {male, high school},
//   q4 = {female, junior}, q5 = {female, graduate}, q6 = {male, graduate}.
// SA instances:
//   s1 = Breast Cancer, s2 = Flu, s3 = Pneumonia, s4 = HIV, s5 = Lung Cancer.
inline constexpr uint32_t kQ1 = 0, kQ2 = 1, kQ3 = 2, kQ4 = 3, kQ5 = 4,
                          kQ6 = 5;
inline constexpr uint32_t kS1 = 0, kS2 = 1, kS3 = 2, kS4 = 3, kS5 = 4;

/// The bucketized data set D' of Figure 1(c), with the original bindings
/// of Figure 1(a) as ground truth:
///   Bucket 1: Allen (q1,s2), Brian (q1,s3), Cathy (q2,s1), David (q3,s2)
///   Bucket 2: Ethan (q1,s4), Frank (q3,s3), Grace (q4,s1)
///   Bucket 3: Helen (q2,s4), Iris (q5,s5), James (q6,s2)
inline anonymize::BucketizedTable MakeFigure1Table() {
  std::vector<anonymize::AbstractRecord> records = {
      {kQ1, kS2, 0}, {kQ1, kS3, 0}, {kQ2, kS1, 0}, {kQ3, kS2, 0},
      {kQ1, kS4, 1}, {kQ3, kS3, 1}, {kQ4, kS1, 1},
      {kQ2, kS4, 2}, {kQ5, kS5, 2}, {kQ6, kS2, 2},
  };
  auto result = anonymize::BucketizedTable::Create(std::move(records));
  return std::move(result).value();
}

/// The concrete Figure 1(a) dataset (Gender, Degree -> Disease), with the
/// same bucketization. Useful for dataset-mode knowledge tests (e.g. the
/// paper's P(Flu | male) = 0.3 example).
inline data::Dataset MakeFigure1Dataset() {
  data::Schema schema;
  schema.AddAttribute("gender", data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("degree", data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("disease", data::AttributeRole::kSensitive);
  data::Dataset d(std::move(schema));
  auto add = [&d](const char* g, const char* deg, const char* dis) {
    (void)d.AppendRecordValues({g, deg, dis});
  };
  // Intern order fixes codes: ensure SA codes match kS1..kS5 by interning
  // diseases in the s1..s5 order via a first pass on dictionary.
  auto& sa_dict = d.mutable_schema().attribute(2).dictionary;
  sa_dict.Intern("breast-cancer");  // s1
  sa_dict.Intern("flu");            // s2
  sa_dict.Intern("pneumonia");      // s3
  sa_dict.Intern("hiv");            // s4
  sa_dict.Intern("lung-cancer");    // s5
  add("male", "college", "flu");            // Allen      b1
  add("male", "college", "pneumonia");      // Brian      b1
  add("female", "college", "breast-cancer");  // Cathy    b1
  add("male", "high-school", "flu");        // David      b1
  add("male", "college", "hiv");            // Ethan      b2
  add("male", "high-school", "pneumonia");  // Frank      b2
  add("female", "junior", "breast-cancer");  // Grace     b2
  add("female", "college", "hiv");          // Helen      b3
  add("female", "graduate", "lung-cancer");  // Iris      b3
  add("male", "graduate", "flu");           // James      b3
  return d;
}

/// Bucket assignment matching MakeFigure1Table for MakeFigure1Dataset.
inline std::vector<uint32_t> Figure1Partition() {
  return {0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
}

}  // namespace pme::testing

#endif  // PME_TESTS_TEST_UTIL_H_
