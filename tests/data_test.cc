// Tests for src/data: dictionaries, schema, dataset, tuple encoding,
// CSV I/O, empirical statistics, and the synthetic Adult-like generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "data/adult_synth.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/stats.h"

namespace pme::data {
namespace {

TEST(AttributeDictionaryTest, InternAssignsDenseCodes) {
  AttributeDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.ValueOf(1), "b");
  EXPECT_EQ(dict.Lookup("b").ValueOrDie(), 1u);
  EXPECT_EQ(dict.Lookup("zzz").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RolesAndLookups) {
  Schema schema;
  schema.AddAttribute("age", AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("name", AttributeRole::kIdentifier);
  schema.AddAttribute("disease", AttributeRole::kSensitive);
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.IndexOf("disease").ValueOrDie(), 2u);
  EXPECT_FALSE(schema.IndexOf("nope").ok());
  EXPECT_EQ(schema.QiIndices(), std::vector<size_t>{0});
  EXPECT_EQ(schema.SoleSensitiveIndex().ValueOrDie(), 2u);
}

TEST(SchemaTest, SoleSensitiveRequiresExactlyOne) {
  Schema none;
  none.AddAttribute("x", AttributeRole::kQuasiIdentifier);
  EXPECT_EQ(none.SoleSensitiveIndex().status().code(),
            StatusCode::kFailedPrecondition);
  Schema two;
  two.AddAttribute("a", AttributeRole::kSensitive);
  two.AddAttribute("b", AttributeRole::kSensitive);
  EXPECT_FALSE(two.SoleSensitiveIndex().ok());
}

TEST(DatasetTest, AppendAndAccess) {
  Schema schema;
  schema.AddAttribute("g", AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("d", AttributeRole::kSensitive);
  Dataset d(std::move(schema));
  ASSERT_TRUE(d.AppendRecordValues({"m", "flu"}).ok());
  ASSERT_TRUE(d.AppendRecordValues({"f", "hiv"}).ok());
  ASSERT_TRUE(d.AppendRecordValues({"m", "hiv"}).ok());
  EXPECT_EQ(d.num_records(), 3u);
  EXPECT_EQ(d.ValueAt(0, 1), "flu");
  EXPECT_EQ(d.At(2, 0), d.At(0, 0));  // both "m"
  EXPECT_NE(d.At(1, 0), d.At(0, 0));
}

TEST(DatasetTest, ArityMismatchRejected) {
  Schema schema;
  schema.AddAttribute("g", AttributeRole::kQuasiIdentifier);
  Dataset d(std::move(schema));
  EXPECT_EQ(d.AppendRecordValues({"a", "b"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(d.AppendRecord({5}).code(), StatusCode::kInvalidArgument);
}

TEST(TupleEncoderTest, EncodesDistinctTuples) {
  Schema schema;
  schema.AddAttribute("a", AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("b", AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("s", AttributeRole::kSensitive);
  Dataset d(std::move(schema));
  ASSERT_TRUE(d.AppendRecordValues({"x", "1", "s"}).ok());
  ASSERT_TRUE(d.AppendRecordValues({"x", "2", "s"}).ok());
  ASSERT_TRUE(d.AppendRecordValues({"x", "1", "t"}).ok());

  TupleEncoder enc(d.schema().QiIndices());
  EXPECT_EQ(enc.Encode(d, 0), 0u);
  EXPECT_EQ(enc.Encode(d, 1), 1u);
  EXPECT_EQ(enc.Encode(d, 2), 0u);  // same QI tuple as record 0
  EXPECT_EQ(enc.size(), 2u);
  EXPECT_EQ(enc.Find(enc.Decode(1)).ValueOrDie(), 1u);
  EXPECT_FALSE(enc.Find({9, 9}).ok());
  EXPECT_EQ(enc.ToString(d, 0), "a=x,b=1");
}

// --------------------------------------------------------------- CSV I/O

TEST(CsvTest, ReadStringWithHeaderAndRoles) {
  CsvReadOptions options;
  options.sensitive_attributes = {"disease"};
  options.identifier_attributes = {"name"};
  auto d = ReadCsvString(
               "name,gender,disease\n"
               "alice, female ,flu\n"
               "bob,male,hiv\n",
               options)
               .ValueOrDie();
  EXPECT_EQ(d.num_records(), 2u);
  EXPECT_EQ(d.schema().num_attributes(), 2u);  // name dropped
  EXPECT_EQ(d.schema().attribute(0).name, "gender");
  EXPECT_EQ(d.schema().attribute(1).role, AttributeRole::kSensitive);
  EXPECT_EQ(d.ValueAt(0, 0), "female");  // trimmed
}

TEST(CsvTest, FieldCountMismatchIsError) {
  auto r = ReadCsvString("a,b\n1,2\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  auto d = ReadCsvString("a,b\n1,2\n\n3,4\n").ValueOrDie();
  EXPECT_EQ(d.num_records(), 2u);
}

TEST(CsvTest, WriteReadRoundTrip) {
  CsvReadOptions options;
  options.sensitive_attributes = {"s"};
  auto d = ReadCsvString("q,s\nx,flu\ny,hiv\nx,hiv\n", options).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/pme_csv_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  auto d2 = ReadCsv(path, options).ValueOrDie();
  ASSERT_EQ(d2.num_records(), d.num_records());
  for (size_t r = 0; r < d.num_records(); ++r) {
    EXPECT_EQ(d2.ValueAt(r, 0), d.ValueAt(r, 0));
    EXPECT_EQ(d2.ValueAt(r, 1), d.ValueAt(r, 1));
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- Stats

Dataset TinyDataset() {
  Schema schema;
  schema.AddAttribute("g", AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("e", AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("d", AttributeRole::kSensitive);
  Dataset d(std::move(schema));
  // 4 male/college: 3 flu, 1 hiv. 2 female/college: 2 hiv.
  (void)d.AppendRecordValues({"m", "c", "flu"});
  (void)d.AppendRecordValues({"m", "c", "flu"});
  (void)d.AppendRecordValues({"m", "c", "flu"});
  (void)d.AppendRecordValues({"m", "c", "hiv"});
  (void)d.AppendRecordValues({"f", "c", "hiv"});
  (void)d.AppendRecordValues({"f", "c", "hiv"});
  return d;
}

TEST(StatsTest, CountsAndProbabilities) {
  Dataset d = TinyDataset();
  DatasetStats stats(&d);
  const uint32_t m = d.schema().attribute(0).dictionary.Lookup("m").ValueOrDie();
  const uint32_t flu =
      d.schema().attribute(2).dictionary.Lookup("flu").ValueOrDie();
  EXPECT_EQ(stats.CountMatching({0}, {m}), 4u);
  EXPECT_DOUBLE_EQ(stats.Probability({0}, {m}), 4.0 / 6.0);
  EXPECT_EQ(stats.CountMatchingWithSa({0}, {m}, 2, flu), 3u);
  EXPECT_DOUBLE_EQ(stats.JointProbability({0}, {m}, 2, flu), 0.5);
  EXPECT_DOUBLE_EQ(stats.Conditional({0}, {m}, 2, flu).ValueOrDie(), 0.75);
}

TEST(StatsTest, ConditionalOnZeroSupportFails) {
  Dataset d = TinyDataset();
  DatasetStats stats(&d);
  // No record has g == "zzz" (code never interned; use an impossible pair:
  // condition on both attributes with mismatched codes).
  const uint32_t f = d.schema().attribute(0).dictionary.Lookup("f").ValueOrDie();
  const uint32_t c = d.schema().attribute(1).dictionary.Lookup("c").ValueOrDie();
  // female/college exists; use marginal over empty via multi-attr trick:
  // make support zero by conditioning on (f, c) AND g == m simultaneously
  // is impossible with distinct attrs; instead check a valid call first.
  EXPECT_TRUE(stats.Conditional({0, 1}, {f, c}, 2, 0).ok());
}

TEST(StatsTest, MarginalSumsToOne) {
  Dataset d = TinyDataset();
  DatasetStats stats(&d);
  auto marginal = stats.Marginal(2);
  double sum = 0.0;
  for (double p : marginal) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(StatsTest, ConditionalDistributionNormalized) {
  Dataset d = TinyDataset();
  DatasetStats stats(&d);
  const uint32_t m = d.schema().attribute(0).dictionary.Lookup("m").ValueOrDie();
  auto dist = stats.ConditionalDistribution({0}, {m}, 2).ValueOrDie();
  double sum = 0.0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(dist[0], 0.75, 1e-12);  // flu interned first
}

// ------------------------------------------------------------ AdultSynth

TEST(AdultSynthTest, ShapeMatchesPaper) {
  AdultSynthOptions options;
  options.num_records = 500;
  auto d = GenerateAdultLike(options).ValueOrDie();
  EXPECT_EQ(d.num_records(), 500u);
  EXPECT_EQ(d.schema().num_attributes(), 9u);
  EXPECT_EQ(d.schema().QiIndices().size(), 8u);  // paper: 8 QI attributes
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  EXPECT_EQ(d.schema().attribute(sa).name, "education");
  EXPECT_EQ(d.schema().attribute(sa).dictionary.size(), 16u);  // 16 values
}

TEST(AdultSynthTest, DeterministicForSeed) {
  AdultSynthOptions options;
  options.num_records = 200;
  options.seed = 99;
  auto a = GenerateAdultLike(options).ValueOrDie();
  auto b = GenerateAdultLike(options).ValueOrDie();
  for (size_t r = 0; r < a.num_records(); ++r) {
    EXPECT_EQ(a.Record(r), b.Record(r));
  }
  options.seed = 100;
  auto c = GenerateAdultLike(options).ValueOrDie();
  size_t same = 0;
  for (size_t r = 0; r < a.num_records(); ++r) same += a.Record(r) == c.Record(r);
  EXPECT_LT(same, a.num_records() / 2);
}

TEST(AdultSynthTest, AttributesCorrelateWithSa) {
  // The latent-class construction must induce real QI<->SA dependence,
  // otherwise mined rules would carry no information. Check that the
  // conditional P(SA | occupation=o) differs meaningfully from the SA
  // marginal for at least one occupation value.
  AdultSynthOptions options;
  options.num_records = 6000;
  auto d = GenerateAdultLike(options).ValueOrDie();
  DatasetStats stats(&d);
  const size_t occ = d.schema().IndexOf("occupation").ValueOrDie();
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  auto sa_marginal = stats.Marginal(sa);
  double max_l1 = 0.0;
  for (uint32_t o = 0; o < d.schema().attribute(occ).dictionary.size(); ++o) {
    auto cond = stats.ConditionalDistribution({occ}, {o}, sa);
    if (!cond.ok()) continue;
    double l1 = 0.0;
    for (size_t s = 0; s < sa_marginal.size(); ++s) {
      l1 += std::fabs(cond.value()[s] - sa_marginal[s]);
    }
    max_l1 = std::max(max_l1, l1);
  }
  EXPECT_GT(max_l1, 0.2) << "generator produced near-independent QI/SA";
}

TEST(AdultSynthTest, RejectsBadOptions) {
  AdultSynthOptions options;
  options.num_records = 0;
  EXPECT_FALSE(GenerateAdultLike(options).ok());
  options.num_records = 10;
  options.noise = 1.5;
  EXPECT_FALSE(GenerateAdultLike(options).ok());
  options.noise = 0.1;
  options.num_classes = 0;
  EXPECT_FALSE(GenerateAdultLike(options).ok());
}

TEST(AdultSynthTest, AllValuesHaveSupportAtScale) {
  AdultSynthOptions options;
  options.num_records = 14210;  // paper scale
  auto d = GenerateAdultLike(options).ValueOrDie();
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  std::set<uint32_t> seen;
  for (size_t r = 0; r < d.num_records(); ++r) seen.insert(d.At(r, sa));
  EXPECT_EQ(seen.size(), 16u) << "every education level should occur";
}

}  // namespace
}  // namespace pme::data
