// Tests for src/constraints: term indexing (Zero-invariants), the QI-/SA-
// invariant equations with the paper's hand-computed values, assignments,
// the background-knowledge compiler (Section 4.1's worked example), and
// the constraint system / irrelevant-bucket analysis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "anonymize/bucketized_table.h"
#include "constraints/assignment.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "tests/test_util.h"

namespace pme::constraints {
namespace {

using pme::testing::kQ1;
using pme::testing::kQ2;
using pme::testing::kQ3;
using pme::testing::kQ4;
using pme::testing::kQ5;
using pme::testing::kQ6;
using pme::testing::kS1;
using pme::testing::kS2;
using pme::testing::kS3;
using pme::testing::kS4;
using pme::testing::kS5;

// ------------------------------------------------------------ TermIndex

TEST(TermIndexTest, MaterializesOnlyInBucketTerms) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  // Each Figure 1(c) bucket has 3 distinct QIs and 3 distinct SAs.
  EXPECT_EQ(index.num_variables(), 27u);
  EXPECT_EQ(index.num_buckets(), 3u);
  auto [b0_first, b0_last] = index.BucketRange(0);
  EXPECT_EQ(b0_last - b0_first, 9u);
}

TEST(TermIndexTest, ZeroInvariantsAreStructural) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  // Paper: q1 not in bucket 3, s1 not in bucket 3.
  EXPECT_TRUE(index.IsZeroInvariant(kQ1, kS2, 2));
  EXPECT_TRUE(index.IsZeroInvariant(kQ2, kS1, 2));
  EXPECT_FALSE(index.IsZeroInvariant(kQ1, kS2, 0));
  EXPECT_EQ(index.VariableId(kQ1, kS2, 2).status().code(),
            StatusCode::kNotFound);
}

TEST(TermIndexTest, RoundTripVariableIds) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  for (uint32_t var = 0; var < index.num_variables(); ++var) {
    const Term& term = index.TermOf(var);
    EXPECT_EQ(index.VariableId(term.qi, term.sa, term.bucket).ValueOrDie(),
              var);
  }
}

TEST(TermIndexTest, TermNamesUsePaperNotation) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  const uint32_t var = index.VariableId(kQ1, kS2, 0).ValueOrDie();
  EXPECT_EQ(index.TermName(var, t), "P(q1,s2,b1)");
}

// ----------------------------------------------------------- Invariants

TEST(InvariantsTest, CountsPerBucket) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto invariants = GenerateInvariants(t, index);
  // g + h = 6 per bucket, 3 buckets.
  EXPECT_EQ(invariants.size(), 18u);
  InvariantOptions concise;
  concise.drop_redundant_row = true;
  EXPECT_EQ(GenerateInvariants(t, index, concise).size(), 15u);
}

TEST(InvariantsTest, PaperQiInvariantExample) {
  // Paper Eq. (4) example: P(q1,s1,1)+P(q1,s2,1)+P(q1,s3,1) = P(q1,1) = 2/10.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto invariants = GenerateInvariants(t, index);
  bool found = false;
  for (const auto& c : invariants) {
    if (c.source != ConstraintSource::kQiInvariant) continue;
    if (c.label != "QI q1 in b1") continue;
    found = true;
    EXPECT_DOUBLE_EQ(c.rhs, 0.2);
    ASSERT_EQ(c.vars.size(), 3u);
    std::vector<uint32_t> expected = {
        index.VariableId(kQ1, kS1, 0).ValueOrDie(),
        index.VariableId(kQ1, kS2, 0).ValueOrDie(),
        index.VariableId(kQ1, kS3, 0).ValueOrDie()};
    EXPECT_EQ(c.vars, expected);
  }
  EXPECT_TRUE(found);
}

TEST(InvariantsTest, PaperSaInvariantExample) {
  // Paper Eq. (5) example: P(q1,s4,2)+P(q3,s4,2)+P(q4,s4,2) = P(s4,2) = 1/10.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto invariants = GenerateInvariants(t, index);
  bool found = false;
  for (const auto& c : invariants) {
    if (c.source != ConstraintSource::kSaInvariant) continue;
    if (c.label != "SA s4 in b2") continue;
    found = true;
    EXPECT_DOUBLE_EQ(c.rhs, 0.1);
    std::vector<uint32_t> sorted_vars = c.vars;
    std::sort(sorted_vars.begin(), sorted_vars.end());
    std::vector<uint32_t> expected = {
        index.VariableId(kQ1, kS4, 1).ValueOrDie(),
        index.VariableId(kQ3, kS4, 1).ValueOrDie(),
        index.VariableId(kQ4, kS4, 1).ValueOrDie()};
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorted_vars, expected);
  }
  EXPECT_TRUE(found);
}

TEST(InvariantsTest, SoundnessUnderGroundTruth) {
  // Theorem 1: the ground-truth assignment satisfies every invariant.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto invariants = GenerateInvariants(t, index);
  auto p = Assignment::FromRecords(t).TermProbabilities(index);
  EXPECT_LT(MaxInvariantViolation(invariants, p), 1e-12);
}

TEST(InvariantsTest, SoundnessUnderManyRandomAssignments) {
  // Theorem 1, property form: invariants hold under *every* assignment.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto invariants = GenerateInvariants(t, index);
  Prng prng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = Assignment::Random(t, prng).TermProbabilities(index);
    EXPECT_LT(MaxInvariantViolation(invariants, p), 1e-12);
  }
}

TEST(InvariantsTest, ConcisenessRankIsGPlusHMinus1) {
  // Theorem 3: per bucket, rank of the invariant matrix is g + h - 1.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  for (uint32_t b = 0; b < t.num_buckets(); ++b) {
    const size_t g = index.BucketQiList(b).size();
    const size_t h = index.BucketSaList(b).size();
    EXPECT_EQ(BucketInvariantRank(t, index, b), g + h - 1) << "bucket " << b;
  }
}

TEST(InvariantsTest, CompletenessForInvariantExpressions) {
  // Theorem 2 ("if" direction): linear combinations of base invariants
  // are invariants and lie in the row space.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  Prng prng(7);
  for (int trial = 0; trial < 50; ++trial) {
    for (uint32_t b = 0; b < t.num_buckets(); ++b) {
      auto m = BucketInvariantMatrix(t, index, b);
      // Random combination of the bucket's invariant rows.
      std::vector<double> combo(m.cols(), 0.0);
      for (size_t r = 0; r < m.rows(); ++r) {
        const double w = prng.NextDouble(-2.0, 2.0);
        for (size_t c = 0; c < m.cols(); ++c) combo[c] += w * m.At(r, c);
      }
      EXPECT_TRUE(InRowSpaceOfInvariants(t, index, b, combo));
    }
  }
}

TEST(InvariantsTest, CompletenessRejectsNonInvariants) {
  // Theorem 2 ("only if" direction): a single probability term is NOT an
  // invariant (the paper's example: P(q1,s1,1) varies across assignments)
  // and must not lie in the row space.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  const auto [first, last] = index.BucketRange(0);
  for (uint32_t var = first; var < last; ++var) {
    std::vector<double> e(last - first, 0.0);
    e[var - first] = 1.0;
    EXPECT_FALSE(InRowSpaceOfInvariants(t, index, 0, e))
        << index.TermName(var, t);
  }
}

TEST(InvariantsTest, NonInvariantValueVariesAcrossAssignments) {
  // Direct check of the Definition 5.4 example: P(q1,s1,1) takes different
  // values under different assignments.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  const uint32_t var = index.VariableId(kQ1, kS1, 0).ValueOrDie();
  Prng prng(3);
  double lo = 1e9, hi = -1e9;
  for (int trial = 0; trial < 100; ++trial) {
    auto p = Assignment::Random(t, prng).TermProbabilities(index);
    lo = std::min(lo, p[var]);
    hi = std::max(hi, p[var]);
  }
  EXPECT_LT(lo, hi);  // not constant => not an invariant
}

// ----------------------------------------------------------- Assignment

TEST(AssignmentTest, ProbabilitiesSumToOne) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  Prng prng(5);
  for (int trial = 0; trial < 20; ++trial) {
    auto p = Assignment::Random(t, prng).TermProbabilities(index);
    double sum = 0.0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(AssignmentTest, SwapSaChangesOnlyThatBucket) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto a = Assignment::FromRecords(t);
  auto before = a.TermProbabilities(index);
  a.SwapSa(0, 0, 2);  // swap Allen's and Cathy's diseases
  auto after = a.TermProbabilities(index);
  const auto [b1_first, b1_last] = index.BucketRange(0);
  bool changed_inside = false;
  for (uint32_t v = 0; v < index.num_variables(); ++v) {
    if (v >= b1_first && v < b1_last) {
      changed_inside |= std::fabs(before[v] - after[v]) > 1e-12;
    } else {
      EXPECT_NEAR(before[v], after[v], 1e-15);
    }
  }
  EXPECT_TRUE(changed_inside);
}

// ---------------------------------------------------------- BK compiler

TEST(BkCompilerTest, PaperFluMaleExample) {
  // Section 4.1: P(Flu | male) = 0.3 compiles to a constraint with RHS
  // 0.3 * P(male) = 0.18 whose materialized terms are P(q1,s2,b1),
  // P(q3,s2,b1) and P(q6,s2,b3). (The paper also writes the term
  // P({male,college}, Flu, 3); that term is a Zero-invariant — q1 does
  // not occur in bucket 3 — so dropping it leaves an equivalent
  // constraint.)
  auto dataset = pme::testing::MakeFigure1Dataset();
  auto bz = anonymize::BucketizeDataset(dataset,
                                        pme::testing::Figure1Partition())
                .ValueOrDie();
  auto index = TermIndex::Build(bz.table);

  const size_t gender = dataset.schema().IndexOf("gender").ValueOrDie();
  const uint32_t male =
      dataset.schema().attribute(gender).dictionary.Lookup("male").ValueOrDie();

  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::MakeConditional({gender}, {male}, kS2, 0.3));

  auto compiled =
      CompileKnowledge(kb, bz.table, index, &bz.qi_encoder).ValueOrDie();
  ASSERT_EQ(compiled.constraints.size(), 1u);
  const auto& c = compiled.constraints[0];
  EXPECT_NEAR(c.rhs, 0.18, 1e-12);
  std::vector<uint32_t> sorted_vars = c.vars;
  std::sort(sorted_vars.begin(), sorted_vars.end());
  std::vector<uint32_t> expected = {index.VariableId(kQ1, kS2, 0).ValueOrDie(),
                                    index.VariableId(kQ3, kS2, 0).ValueOrDie(),
                                    index.VariableId(kQ6, kS2, 2).ValueOrDie()};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted_vars, expected);
  EXPECT_EQ(c.source, ConstraintSource::kBackground);
}

TEST(BkCompilerTest, MatchQiInstancesForMale) {
  auto dataset = pme::testing::MakeFigure1Dataset();
  auto bz = anonymize::BucketizeDataset(dataset,
                                        pme::testing::Figure1Partition())
                .ValueOrDie();
  const size_t gender = dataset.schema().IndexOf("gender").ValueOrDie();
  const uint32_t male =
      dataset.schema().attribute(gender).dictionary.Lookup("male").ValueOrDie();
  knowledge::ConditionalStatement stmt;
  stmt.attrs = {gender};
  stmt.values = {male};
  auto matches = MatchQiInstances(stmt, bz.qi_encoder).ValueOrDie();
  std::sort(matches.begin(), matches.end());
  EXPECT_EQ(matches, (std::vector<uint32_t>{kQ1, kQ3, kQ6}));
}

TEST(BkCompilerTest, AbstractSection55Example) {
  // Section 5.5: P(s3 | q3) = 0.5 with P(q3) = 2/10 gives
  // P(q3,s3,1) + P(q3,s3,2) = 0.1.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.5));
  auto compiled = CompileKnowledge(kb, t, index).ValueOrDie();
  ASSERT_EQ(compiled.constraints.size(), 1u);
  const auto& c = compiled.constraints[0];
  EXPECT_NEAR(c.rhs, 0.1, 1e-12);
  std::vector<uint32_t> sorted_vars = c.vars;
  std::sort(sorted_vars.begin(), sorted_vars.end());
  std::vector<uint32_t> expected = {index.VariableId(kQ3, kS3, 0).ValueOrDie(),
                                    index.VariableId(kQ3, kS3, 1).ValueOrDie()};
  EXPECT_EQ(sorted_vars, expected);
}

TEST(BkCompilerTest, SaSetStatement) {
  // Section 3.1: P(s1 or s2 | q3) = 0 — an S-set statement with zero RHS.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS1, kS2}, 0.0));
  auto compiled = CompileKnowledge(kb, t, index).ValueOrDie();
  ASSERT_EQ(compiled.constraints.size(), 1u);
  EXPECT_DOUBLE_EQ(compiled.constraints[0].rhs, 0.0);
  // q3 occurs in buckets 1 and 2; s1 in both, s2 only in bucket 1.
  EXPECT_EQ(compiled.constraints[0].vars.size(), 3u);
}

TEST(BkCompilerTest, InfeasibleStatementDetected) {
  // s5 never shares a bucket with q1 — asserting P(s5 | q1) > 0
  // contradicts the published table.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ1, {kS5}, 0.5));
  auto result = CompileKnowledge(kb, t, index);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(BkCompilerTest, ZeroOverImpossibleIsVacuouslySatisfied) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ1, {kS5}, 0.0));
  auto compiled = CompileKnowledge(kb, t, index).ValueOrDie();
  EXPECT_TRUE(compiled.constraints.empty());
}

TEST(BkCompilerTest, InequalityStatementsKeepRelation) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.6,
                                        knowledge::Relation::kLe));
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.4,
                                        knowledge::Relation::kGe));
  auto compiled = CompileKnowledge(kb, t, index).ValueOrDie();
  ASSERT_EQ(compiled.constraints.size(), 2u);
  EXPECT_EQ(compiled.constraints[0].rel, Relation::kLe);
  EXPECT_EQ(compiled.constraints[1].rel, Relation::kGe);
}

TEST(BkCompilerTest, DatasetModeWithoutEncoderFails) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::MakeConditional({0}, {0}, kS2, 0.3));
  EXPECT_FALSE(CompileKnowledge(kb, t, index).ok());
}

TEST(BkCompilerTest, RejectsOutOfRangeProbability) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 1.5));
  EXPECT_FALSE(CompileKnowledge(kb, t, index).ok());
}

// -------------------------------------------------------------- System

TEST(ConstraintSystemTest, MatricesSplitByRelation) {
  ConstraintSystem system(4);
  LinearConstraint eq;
  eq.vars = {0, 1};
  eq.coefs = {1.0, 1.0};
  eq.rhs = 0.5;
  system.Add(eq);
  LinearConstraint le;
  le.vars = {2};
  le.coefs = {1.0};
  le.rel = Relation::kLe;
  le.rhs = 0.3;
  system.Add(le);
  LinearConstraint ge;
  ge.vars = {3};
  ge.coefs = {1.0};
  ge.rel = Relation::kGe;
  ge.rhs = 0.1;
  system.Add(ge);

  auto m = system.ToMatrices().ValueOrDie();
  EXPECT_EQ(m.eq.rows(), 1u);
  EXPECT_EQ(m.ineq.rows(), 2u);
  // kGe was negated into kLe form.
  EXPECT_DOUBLE_EQ(m.ineq.At(1, 3), -1.0);
  EXPECT_DOUBLE_EQ(m.ineq_rhs[1], -0.1);
}

TEST(ConstraintSystemTest, ViolationMeasures) {
  ConstraintSystem system(2);
  LinearConstraint c;
  c.vars = {0, 1};
  c.coefs = {1.0, 1.0};
  c.rhs = 1.0;
  system.Add(c);
  EXPECT_NEAR(system.MaxViolation({0.5, 0.5}), 0.0, 1e-15);
  EXPECT_NEAR(system.MaxViolation({0.5, 0.2}), 0.3, 1e-12);
}

TEST(ConstraintSystemTest, IrrelevantBucketAnalysis) {
  // Section 5.5 / Definition 5.6: with P(s3 | q3) knowledge, buckets 1
  // and 2 are relevant (q3 lives there), bucket 3 is irrelevant.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(GenerateInvariants(t, index));
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.5));
  auto compiled = CompileKnowledge(kb, t, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));

  auto relevant = system.RelevantBuckets(index);
  ASSERT_EQ(relevant.size(), 3u);
  EXPECT_TRUE(relevant[0]);
  EXPECT_TRUE(relevant[1]);
  EXPECT_FALSE(relevant[2]);
  EXPECT_EQ(system.CountBySource(ConstraintSource::kBackground), 1u);
  EXPECT_EQ(system.CountBySource(ConstraintSource::kQiInvariant), 9u);
}

TEST(ConstraintSystemTest, NoKnowledgeMeansAllIrrelevant) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(GenerateInvariants(t, index));
  auto relevant = system.RelevantBuckets(index);
  for (bool r : relevant) EXPECT_FALSE(r);
}

}  // namespace
}  // namespace pme::constraints
