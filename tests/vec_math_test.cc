// Property tests for the vectorized kernel layer: AVX2 and scalar paths
// must agree to <= 1e-12 relative error on randomized inputs including
// the ±708 clamp boundaries, and the math_util wrappers built on the
// kernels must handle the degenerate inputs (empty, all -inf, denormals).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/math_util.h"
#include "common/prng.h"
#include "common/vec_math.h"

namespace pme {
namespace {

using kernels::ConstSpan;
using kernels::SimdMode;
using kernels::Span;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Restores the dispatch mode on scope exit so one test cannot leak a
/// forced-scalar mode into the rest of the suite.
class SimdModeRestorer {
 public:
  SimdModeRestorer() : saved_(kernels::GetSimdMode()) {}
  ~SimdModeRestorer() { kernels::SetSimdMode(saved_); }

 private:
  SimdMode saved_;
};

/// 1e5 random exponents spanning the interesting ranges: the bulk around
/// typical dual exponents, wide tails, exact and near clamp boundaries.
std::vector<double> RandomExponents(uint64_t seed) {
  Prng prng(seed);
  std::vector<double> xs;
  xs.reserve(100000 + 64);
  for (int i = 0; i < 40000; ++i) xs.push_back(prng.NextDouble(-40.0, 10.0));
  for (int i = 0; i < 30000; ++i) xs.push_back(prng.NextDouble(-760.0, 760.0));
  for (int i = 0; i < 30000; ++i) xs.push_back(prng.NextDouble(-1.0, 1.0));
  const double boundaries[] = {708.0,  -708.0, 707.9999999999, -707.9999999999,
                               708.01, -708.01, 750.0,  -750.0,
                               0.0,    1.0,     -1.0,   1e-300};
  for (double b : boundaries) {
    // The kernels see x - 1; place the boundary on the *clamped* value.
    xs.push_back(b + 1.0);
  }
  return xs;
}

double RelErr(double a, double b) {
  const double denom = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / denom;
}

TEST(VecMathTest, DispatchModesAreSwitchable) {
  SimdModeRestorer restore;
  kernels::SetSimdMode(SimdMode::kOff);
  EXPECT_STREQ(kernels::ActiveIsa(), "scalar");
  EXPECT_FALSE(kernels::SimdActive());
  kernels::SetSimdMode(SimdMode::kAuto);
  if (kernels::Avx512Supported()) {
    EXPECT_STREQ(kernels::ActiveIsa(), "avx512");
    EXPECT_TRUE(kernels::SimdActive());
  } else if (kernels::Avx2Supported()) {
    EXPECT_STREQ(kernels::ActiveIsa(), "avx2+fma");
    EXPECT_TRUE(kernels::SimdActive());
  } else {
    EXPECT_STREQ(kernels::ActiveIsa(), "scalar");
  }
  EXPECT_STREQ(kernels::SimdModeName(), kernels::ActiveIsa());
}

TEST(VecMathTest, ForcedModesFallBackGracefully) {
  // Forcing a tier the host lacks must degrade down the ladder, never
  // crash or dispatch an illegal instruction. On hosts that do have the
  // tier, the force is honored exactly.
  SimdModeRestorer restore;
  kernels::SetSimdMode(SimdMode::kAvx512);
  if (kernels::Avx512Supported()) {
    EXPECT_STREQ(kernels::SimdModeName(), "avx512");
  } else if (kernels::Avx2Supported()) {
    EXPECT_STREQ(kernels::SimdModeName(), "avx2+fma");
  } else {
    EXPECT_STREQ(kernels::SimdModeName(), "scalar");
  }
  kernels::SetSimdMode(SimdMode::kAvx2);
  if (kernels::Avx2Supported()) {
    EXPECT_STREQ(kernels::SimdModeName(), "avx2+fma");
  } else {
    EXPECT_STREQ(kernels::SimdModeName(), "scalar");
  }
  // Whatever mode is forced, the kernels must keep producing correct
  // results (fallback included).
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0};
  std::vector<double> y(x.size());
  kernels::Ln(ConstSpan(x), Span(y));
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(RelErr(y[i], std::log(x[i])), 1e-14) << i;
  }
}

TEST(VecMathTest, ExpKernelsMatchLibmWithin1e12) {
  // Both dispatch paths vs a plain SafeExp reference — this bounds the
  // AVX2 polynomial's error against libm directly.
  SimdModeRestorer restore;
  const std::vector<double> xs = RandomExponents(101);
  std::vector<double> reference(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) reference[i] = SafeExp(xs[i] - 1.0);

  for (SimdMode mode : {SimdMode::kOff, SimdMode::kAuto}) {
    kernels::SetSimdMode(mode);
    std::vector<double> y(xs.size());
    kernels::ExpM1Shifted(ConstSpan(xs), Span(y));
    double worst = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      worst = std::max(worst, RelErr(y[i], reference[i]));
    }
    EXPECT_LE(worst, 1e-12) << "mode=" << kernels::ActiveIsa();
  }
}

TEST(VecMathTest, SimdAndScalarExpPathsAgreeWithin1e12) {
  SimdModeRestorer restore;
  const std::vector<double> xs = RandomExponents(202);
  std::vector<double> scalar(xs.size()), simd(xs.size());
  kernels::SetSimdMode(SimdMode::kOff);
  kernels::ExpM1Shifted(ConstSpan(xs), Span(scalar));
  kernels::SetSimdMode(SimdMode::kAuto);
  kernels::ExpM1Shifted(ConstSpan(xs), Span(simd));
  double worst = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    worst = std::max(worst, RelErr(simd[i], scalar[i]));
  }
  EXPECT_LE(worst, 1e-12);
}

TEST(VecMathTest, FusedExpSumMatchesSeparatePasses) {
  SimdModeRestorer restore;
  // Bounded exponents so the sum itself stays well away from overflow.
  Prng prng(7);
  std::vector<double> xs(4099);
  for (auto& v : xs) v = prng.NextDouble(-30.0, 5.0);

  for (SimdMode mode : {SimdMode::kOff, SimdMode::kAuto}) {
    kernels::SetSimdMode(mode);
    std::vector<double> stored(xs.size());
    kernels::ExpM1Shifted(ConstSpan(xs), Span(stored));
    std::vector<double> inplace = xs;
    const double sum = kernels::ExpM1SumInPlace(Span(inplace));
    double expected_sum = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(inplace[i], stored[i]) << "mode=" << kernels::ActiveIsa();
      expected_sum += stored[i];
    }
    EXPECT_LE(RelErr(sum, expected_sum), 1e-12)
        << "mode=" << kernels::ActiveIsa();
  }
}

TEST(VecMathTest, SumExpShiftedAgreesAcrossPaths) {
  SimdModeRestorer restore;
  Prng prng(17);
  std::vector<double> xs(2053);
  for (auto& v : xs) v = prng.NextDouble(-700.0, 700.0);
  const double shift = kernels::MaxVal(ConstSpan(xs));
  kernels::SetSimdMode(SimdMode::kOff);
  const double scalar = kernels::SumExpShifted(ConstSpan(xs), shift);
  kernels::SetSimdMode(SimdMode::kAuto);
  const double simd = kernels::SumExpShifted(ConstSpan(xs), shift);
  EXPECT_LE(RelErr(simd, scalar), 1e-12);
}

TEST(VecMathTest, BlasKernelsAgreeAcrossPaths) {
  SimdModeRestorer restore;
  Prng prng(23);
  // Sizes straddling every unroll boundary (0..9, 4k+tail, 8k+tail).
  for (size_t n : {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 31, 100, 1037}) {
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = prng.NextDouble(-10.0, 10.0);
    for (auto& v : b) v = prng.NextDouble(-10.0, 10.0);

    kernels::SetSimdMode(SimdMode::kOff);
    const double dot_s = kernels::Dot(a, b);
    const double two_s = kernels::TwoNorm(a);
    const double inf_s = kernels::InfNorm(a);
    const double max_s = kernels::MaxVal(a);
    std::vector<double> axpy_s = b;
    kernels::Axpy(0.37, a, axpy_s);
    std::vector<double> sadd_s(n);
    kernels::ScaledAdd(a, -1.7, b, sadd_s);
    std::vector<double> scale_s = a;
    kernels::Scale(scale_s, 3.25);

    kernels::SetSimdMode(SimdMode::kAuto);
    EXPECT_LE(RelErr(kernels::Dot(a, b), dot_s), 1e-12) << n;
    EXPECT_LE(RelErr(kernels::TwoNorm(a), two_s), 1e-12) << n;
    EXPECT_EQ(kernels::InfNorm(a), inf_s) << n;
    EXPECT_EQ(kernels::MaxVal(a), max_s) << n;
    std::vector<double> axpy_v = b;
    kernels::Axpy(0.37, a, axpy_v);
    std::vector<double> sadd_v(n);
    kernels::ScaledAdd(a, -1.7, b, sadd_v);
    std::vector<double> scale_v = a;
    kernels::Scale(scale_v, 3.25);
    for (size_t i = 0; i < n; ++i) {
      // Elementwise FMA ops round once where scalar rounds twice; under
      // cancellation the relative gap grows, but stays far below 1e-12.
      EXPECT_LE(RelErr(axpy_v[i], axpy_s[i]), 1e-12) << n << ":" << i;
      EXPECT_LE(RelErr(sadd_v[i], sadd_s[i]), 1e-12) << n << ":" << i;
      EXPECT_EQ(scale_v[i], scale_s[i]) << n << ":" << i;
    }
  }
}

// ---------------------------------------------- ln / xlogx / KL kernels

/// All four dispatch requests; unsupported tiers fall back down the
/// ladder inside SetSimdMode, so each entry is always safe to force.
const SimdMode kAllModes[] = {SimdMode::kOff, SimdMode::kAvx2,
                              SimdMode::kAvx512, SimdMode::kAuto};

/// 1e5 positive inputs spanning the log-interesting ranges plus every
/// special the kernel blends explicitly: zero, subnormals, the smallest
/// normal, 1 +/- 1 ulp, the sqrt(1/2) mantissa split, and infinity.
std::vector<double> RandomLnInputs(uint64_t seed) {
  Prng prng(seed);
  std::vector<double> xs;
  xs.reserve(100000 + 32);
  for (int i = 0; i < 40000; ++i) {
    xs.push_back(std::exp(prng.NextDouble(-40.0, 10.0)));
  }
  for (int i = 0; i < 30000; ++i) {
    xs.push_back(std::exp(prng.NextDouble(-700.0, 700.0)));
  }
  for (int i = 0; i < 30000; ++i) xs.push_back(prng.NextDouble(0.0, 2.0));
  const double one_up = std::nextafter(1.0, 2.0);
  const double one_down = std::nextafter(1.0, 0.0);
  const double specials[] = {0.0,
                             5e-324,
                             1e-310,
                             2.2250738585072014e-308,  // smallest normal
                             std::nextafter(2.2250738585072014e-308, 0.0),
                             one_up,
                             one_down,
                             1.0,
                             0.70710678118654752440,  // sqrt(1/2) split
                             std::nextafter(0.70710678118654752440, 0.0),
                             std::nextafter(0.70710678118654752440, 1.0),
                             kInf,
                             1e308,
                             4.9406564584124654e-316};
  for (double s : specials) xs.push_back(s);
  return xs;
}

TEST(VecMathTest, LnMatchesLibmWithin1e12AllModes) {
  SimdModeRestorer restore;
  const std::vector<double> xs = RandomLnInputs(401);
  std::vector<double> reference(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) reference[i] = std::log(xs[i]);

  for (SimdMode mode : kAllModes) {
    kernels::SetSimdMode(mode);
    std::vector<double> y(xs.size());
    kernels::Ln(ConstSpan(xs), Span(y));
    double worst = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      if (!std::isfinite(reference[i])) {
        // 0 -> -inf and inf -> inf must match bit-for-bit in every mode.
        EXPECT_EQ(y[i], reference[i])
            << "x=" << xs[i] << " mode=" << kernels::ActiveIsa();
        continue;
      }
      worst = std::max(worst, RelErr(y[i], reference[i]));
    }
    EXPECT_LE(worst, 1e-12) << "mode=" << kernels::ActiveIsa();
  }
}

TEST(VecMathTest, LnSpecialValuesAllModes) {
  SimdModeRestorer restore;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (SimdMode mode : kAllModes) {
    kernels::SetSimdMode(mode);
    std::vector<double> x = {0.0, -1.0, kInf, nan, -kInf, 1.0, 5e-324};
    std::vector<double> y(x.size());
    kernels::Ln(ConstSpan(x), Span(y));
    EXPECT_EQ(y[0], -kInf) << kernels::ActiveIsa();
    EXPECT_TRUE(std::isnan(y[1])) << kernels::ActiveIsa();
    EXPECT_EQ(y[2], kInf) << kernels::ActiveIsa();
    EXPECT_TRUE(std::isnan(y[3])) << kernels::ActiveIsa();
    EXPECT_TRUE(std::isnan(y[4])) << kernels::ActiveIsa();
    EXPECT_EQ(y[5], 0.0) << kernels::ActiveIsa();
    EXPECT_LE(RelErr(y[6], std::log(5e-324)), 1e-12) << kernels::ActiveIsa();
  }
}

TEST(VecMathTest, LnInPlaceAliasingIsAllowed) {
  SimdModeRestorer restore;
  Prng prng(47);
  for (SimdMode mode : kAllModes) {
    kernels::SetSimdMode(mode);
    std::vector<double> x(1037);
    for (auto& v : x) v = std::exp(prng.NextDouble(-20.0, 20.0));
    std::vector<double> separate(x.size());
    kernels::Ln(ConstSpan(x), Span(separate));
    std::vector<double> inplace = x;
    kernels::Ln(ConstSpan(inplace), Span(inplace));
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(inplace[i], separate[i]) << kernels::ActiveIsa() << ":" << i;
    }
  }
}

TEST(VecMathTest, NegXLogXSumMatchesScalarWithin1e12) {
  SimdModeRestorer restore;
  Prng prng(53);
  std::vector<double> xs;
  xs.reserve(100000 + 8);
  for (int i = 0; i < 100000; ++i) xs.push_back(prng.NextDouble(0.0, 1.0));
  // Specials: exact zeros, denormals, one, values > 1 (negative terms).
  for (double s : {0.0, 5e-324, 1e-310, 1.0, std::nextafter(1.0, 0.0),
                   std::nextafter(1.0, 2.0), 1.5, -0.25}) {
    xs.push_back(s);
  }
  // Branch-free libm reference.
  double reference = 0.0;
  for (double x : xs) reference -= x > 0.0 ? x * std::log(x) : 0.0;

  for (SimdMode mode : kAllModes) {
    kernels::SetSimdMode(mode);
    EXPECT_LE(RelErr(kernels::NegXLogXSum(ConstSpan(xs)), reference), 1e-12)
        << "mode=" << kernels::ActiveIsa();
  }
}

TEST(VecMathTest, KlDivergenceMatchesScalarWithin1e12) {
  SimdModeRestorer restore;
  Prng prng(59);
  const double q_floor = 1e-12;
  std::vector<double> p, q;
  for (int i = 0; i < 100000; ++i) {
    p.push_back(prng.NextDouble(0.0, 1.0));
    q.push_back(prng.NextDouble(0.0, 1.0));
  }
  // p == 0 terms contribute nothing; q below the floor is clamped.
  p.push_back(0.0);      q.push_back(0.5);
  p.push_back(0.25);     q.push_back(0.0);
  p.push_back(0.25);     q.push_back(5e-324);
  p.push_back(5e-324);   q.push_back(0.5);
  p.push_back(-0.1);     q.push_back(0.5);
  double reference = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double qf = std::max(q[i], q_floor);
    reference += p[i] > 0.0 ? p[i] * std::log(p[i] / qf) : 0.0;
  }

  for (SimdMode mode : kAllModes) {
    kernels::SetSimdMode(mode);
    EXPECT_LE(RelErr(kernels::KlDivergence(ConstSpan(p), ConstSpan(q),
                                           q_floor),
                     reference),
              1e-12)
        << "mode=" << kernels::ActiveIsa();
  }
}

TEST(VecMathTest, MaskedTailSweepsAllResidues) {
  // Every n mod 8 residue (and the mod-4 residues inside them) exercises
  // the masked-tail path of the 8-wide tier and the scalar remainder of
  // the 4-wide tier; all modes must agree with the scalar table.
  SimdModeRestorer restore;
  Prng prng(61);
  for (size_t n = 0; n <= 24; ++n) {
    std::vector<double> x(n), p(n), q(n);
    for (auto& v : x) v = std::exp(prng.NextDouble(-10.0, 10.0));
    for (auto& v : p) v = prng.NextDouble(0.0, 1.0);
    for (auto& v : q) v = prng.NextDouble(0.0, 1.0);

    kernels::SetSimdMode(SimdMode::kOff);
    std::vector<double> ln_s(n);
    kernels::Ln(ConstSpan(x), Span(ln_s));
    const double nxlx_s = kernels::NegXLogXSum(ConstSpan(p));
    const double kl_s = kernels::KlDivergence(ConstSpan(p), ConstSpan(q),
                                              1e-12);

    for (SimdMode mode : {SimdMode::kAvx2, SimdMode::kAvx512,
                          SimdMode::kAuto}) {
      kernels::SetSimdMode(mode);
      std::vector<double> ln_v(n);
      kernels::Ln(ConstSpan(x), Span(ln_v));
      for (size_t i = 0; i < n; ++i) {
        EXPECT_LE(RelErr(ln_v[i], ln_s[i]), 1e-12)
            << kernels::ActiveIsa() << " n=" << n << " i=" << i;
      }
      EXPECT_LE(RelErr(kernels::NegXLogXSum(ConstSpan(p)), nxlx_s), 1e-12)
          << kernels::ActiveIsa() << " n=" << n;
      EXPECT_LE(RelErr(kernels::KlDivergence(ConstSpan(p), ConstSpan(q),
                                             1e-12),
                       kl_s),
                1e-12)
          << kernels::ActiveIsa() << " n=" << n;
    }
  }
}

// ------------------------------------------------- math_util edge cases

TEST(VecMathTest, LogSumExpEdgeCases) {
  EXPECT_EQ(LogSumExp({}), -kInf);
  EXPECT_EQ(LogSumExp({-kInf, -kInf, -kInf}), -kInf);
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  // A -inf entry among finite ones contributes (essentially) nothing.
  EXPECT_NEAR(LogSumExp({0.0, -kInf, 0.0}), std::log(2.0), 1e-12);
  // Denormal inputs: max is denormal, shifts are ~0, result is ln(n).
  const double denorm = 5e-324;
  EXPECT_NEAR(LogSumExp({denorm, denorm, denorm, denorm}), std::log(4.0),
              1e-12);
  // Large values must not overflow through the max-shift.
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

TEST(VecMathTest, EntropyEdgeCases) {
  EXPECT_EQ(Entropy({}), 0.0);
  EXPECT_EQ(Entropy({0.0, 0.0}), 0.0);        // 0 ln 0 = 0
  EXPECT_EQ(Entropy({1.0}), 0.0);             // point mass
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  // Denormals: x ln x underflows smoothly to ~0, never NaN.
  const double denorm = 5e-324;
  const double h = Entropy({denorm, 1.0 - denorm});
  EXPECT_TRUE(std::isfinite(h));
  EXPECT_GE(h, 0.0);
  // Negative entries follow the <= 0 convention (contribute zero).
  EXPECT_EQ(Entropy({-0.5, 1.0}), 0.0);
}

TEST(VecMathTest, LogSumExpParityAcrossPaths) {
  SimdModeRestorer restore;
  Prng prng(31);
  std::vector<double> xs(997);
  for (auto& v : xs) v = prng.NextDouble(-600.0, 600.0);
  kernels::SetSimdMode(SimdMode::kOff);
  const double scalar = LogSumExp(xs);
  kernels::SetSimdMode(SimdMode::kAuto);
  const double simd = LogSumExp(xs);
  EXPECT_LE(RelErr(simd, scalar), 1e-12);
}

}  // namespace
}  // namespace pme
