// Tests for src/knowledge: association-rule mining (verified against a
// brute-force recount), Top-(K+, K−) selection, and knowledge statements.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/adult_synth.h"
#include "data/stats.h"
#include "knowledge/knowledge_base.h"
#include "knowledge/miner.h"
#include "tests/test_util.h"

namespace pme::knowledge {
namespace {

data::Dataset MedicalDataset() { return pme::testing::MakeFigure1Dataset(); }

TEST(MinerTest, BreastCancerNegativeRuleIsMined) {
  // The paper's canonical example: "it is rare for male to have breast
  // cancer" — in Figure 1(a) no male has it, so the negative rule
  // male => NOT breast-cancer must surface with confidence 1.
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 2;
  options.max_attrs = 1;
  auto rules = MineAssociationRules(d, options).ValueOrDie();

  const size_t gender = d.schema().IndexOf("gender").ValueOrDie();
  const uint32_t male =
      d.schema().attribute(0).dictionary.Lookup("male").ValueOrDie();
  const uint32_t bc =
      d.schema().attribute(2).dictionary.Lookup("breast-cancer").ValueOrDie();

  bool found = false;
  for (const auto& r : rules) {
    if (!r.positive && r.attrs == std::vector<size_t>{gender} &&
        r.values == std::vector<uint32_t>{male} && r.sa_code == bc) {
      found = true;
      EXPECT_DOUBLE_EQ(r.confidence, 1.0);
      EXPECT_DOUBLE_EQ(r.conditional, 0.0);
      EXPECT_DOUBLE_EQ(r.support, 0.6);  // all 6 males support Qv ∧ ¬S
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, PositiveRuleConfidenceMatchesStats) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 1;
  options.max_attrs = 1;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  data::DatasetStats stats(&d);
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  for (const auto& r : rules) {
    const double expected =
        stats.Conditional(r.attrs, r.values, sa, r.sa_code).ValueOrDie();
    EXPECT_NEAR(r.conditional, expected, 1e-12) << r.ToString(d);
    if (r.positive) {
      EXPECT_NEAR(r.confidence, expected, 1e-12);
    } else {
      EXPECT_NEAR(r.confidence, 1.0 - expected, 1e-12);
    }
  }
}

TEST(MinerTest, SupportThresholdPrunes) {
  auto d = MedicalDataset();
  MinerOptions loose, tight;
  loose.min_support_records = 1;
  tight.min_support_records = 3;
  auto many = MineAssociationRules(d, loose).ValueOrDie();
  auto few = MineAssociationRules(d, tight).ValueOrDie();
  EXPECT_GT(many.size(), few.size());
  for (const auto& r : few) {
    EXPECT_GE(r.support * static_cast<double>(d.num_records()), 3.0 - 1e-9);
  }
}

TEST(MinerTest, AttributeRangeRespected) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 1;
  options.min_attrs = 2;
  options.max_attrs = 2;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  EXPECT_FALSE(rules.empty());
  for (const auto& r : rules) EXPECT_EQ(r.NumQiAttributes(), 2u);
}

TEST(MinerTest, BruteForceCountAgreement) {
  // Cross-check the miner's grouping against DatasetStats (independent
  // scan-based counting) on a synthetic dataset.
  data::AdultSynthOptions synth;
  synth.num_records = 400;
  auto d = data::GenerateAdultLike(synth).ValueOrDie();
  MinerOptions options;
  options.min_support_records = 5;
  options.max_attrs = 2;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  ASSERT_FALSE(rules.empty());
  data::DatasetStats stats(&d);
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  size_t checked = 0;
  for (const auto& r : rules) {
    if (checked >= 200) break;  // bounded runtime
    ++checked;
    const size_t qv = stats.CountMatching(r.attrs, r.values);
    const size_t qs = stats.CountMatchingWithSa(r.attrs, r.values, sa,
                                                r.sa_code);
    const double n = static_cast<double>(d.num_records());
    EXPECT_NEAR(r.conditional, static_cast<double>(qs) / qv, 1e-12);
    if (r.positive) {
      EXPECT_NEAR(r.support, qs / n, 1e-12);
    } else {
      EXPECT_NEAR(r.support, (qv - qs) / n, 1e-12);
    }
  }
}

TEST(MinerTest, SortedByConfidenceWithinPolarity) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 1;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  double last_pos = 2.0, last_neg = 2.0;
  bool seen_negative = false;
  for (const auto& r : rules) {
    if (r.positive) {
      EXPECT_FALSE(seen_negative) << "positive rules must come first";
      EXPECT_LE(r.confidence, last_pos + 1e-12);
      last_pos = r.confidence;
    } else {
      seen_negative = true;
      EXPECT_LE(r.confidence, last_neg + 1e-12);
      last_neg = r.confidence;
    }
  }
}

TEST(MinerTest, RejectsBadOptions) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_attrs = 0;
  EXPECT_FALSE(MineAssociationRules(d, options).ok());
  options.min_attrs = 3;
  options.max_attrs = 2;
  EXPECT_FALSE(MineAssociationRules(d, options).ok());
}

TEST(TopKTest, SelectsStrongestOfEachPolarity) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 1;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  auto top = TopK(rules, 3, 2);
  size_t pos = 0, neg = 0;
  for (const auto& r : top) (r.positive ? pos : neg) += 1;
  EXPECT_EQ(pos, 3u);
  EXPECT_EQ(neg, 2u);
  // The kept positive rules must dominate all discarded positive rules.
  double kept_min = 2.0;
  for (const auto& r : top) {
    if (r.positive) kept_min = std::min(kept_min, r.confidence);
  }
  size_t seen = 0;
  for (const auto& r : rules) {
    if (r.positive && ++seen > 3) EXPECT_LE(r.confidence, kept_min + 1e-12);
  }
}

TEST(TopKTest, KLargerThanAvailableKeepsAll) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 3;
  options.max_attrs = 1;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  auto top = TopK(rules, 100000, 100000);
  EXPECT_EQ(top.size(), rules.size());
}

TEST(FilterByNumAttributesTest, Filters) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 1;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  auto t1 = FilterByNumAttributes(rules, 1);
  auto t2 = FilterByNumAttributes(rules, 2);
  EXPECT_EQ(t1.size() + t2.size(), rules.size());
  for (const auto& r : t1) EXPECT_EQ(r.NumQiAttributes(), 1u);
}

TEST(KnowledgeBaseTest, AddRulesProducesEqualityStatements) {
  auto d = MedicalDataset();
  MinerOptions options;
  options.min_support_records = 3;
  auto rules = MineAssociationRules(d, options).ValueOrDie();
  auto top = TopK(rules, 2, 2);
  EXPECT_GE(top.size(), 3u);  // >= 1 positive and 2 negative exist
  KnowledgeBase kb;
  kb.AddRules(top);
  EXPECT_EQ(kb.conditionals().size(), top.size());
  EXPECT_TRUE(kb.individuals().empty());
  for (const auto& s : kb.conditionals()) {
    EXPECT_EQ(s.rel, Relation::kEq);
    EXPECT_FALSE(s.abstract_qi.has_value());
    EXPECT_EQ(s.sa_codes.size(), 1u);
  }
}

TEST(KnowledgeBaseTest, BuildersAndSize) {
  KnowledgeBase kb;
  kb.Add(MakeConditional({0}, {1}, 2, 0.3));
  kb.Add(AbstractConditional(3, {0, 1}, 0.0));
  IndividualStatement ind;
  ind.terms = {{0, 1}};
  ind.probability = 0.5;
  kb.Add(ind);
  EXPECT_EQ(kb.size(), 3u);
  EXPECT_EQ(kb.conditionals()[1].abstract_qi.value(), 3u);
  EXPECT_EQ(kb.conditionals()[1].sa_codes.size(), 2u);
  EXPECT_FALSE(kb.empty());
}

TEST(RuleRankTest, DeterministicTotalOrder) {
  AssociationRule a, b;
  a.confidence = b.confidence = 0.5;
  a.support = 0.2;
  b.support = 0.1;
  EXPECT_TRUE(RuleRankBefore(a, b));
  EXPECT_FALSE(RuleRankBefore(b, a));
  b.support = 0.2;
  a.attrs = {0};
  b.attrs = {0, 1};
  EXPECT_TRUE(RuleRankBefore(a, b));  // fewer attributes first
}

TEST(RuleTest, ToStringIsReadable) {
  auto d = MedicalDataset();
  AssociationRule r;
  r.attrs = {0};
  r.values = {0};  // male (first interned)
  r.sa_code = 0;   // breast-cancer
  r.positive = false;
  r.confidence = 1.0;
  const std::string s = r.ToString(d);
  EXPECT_NE(s.find("gender=male"), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
  EXPECT_NE(s.find("breast-cancer"), std::string::npos);
}

}  // namespace
}  // namespace pme::knowledge
