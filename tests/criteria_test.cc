// Tests for the classical privacy criteria (core/criteria) and the
// randomized-response substrate (anonymize/randomization).

#include <gtest/gtest.h>

#include <cmath>

#include "anonymize/randomization.h"
#include "core/criteria.h"
#include "data/adult_synth.h"
#include "data/stats.h"
#include "tests/test_util.h"

namespace pme::core {
namespace {

TEST(CriteriaTest, GlobalSaDistribution) {
  auto t = pme::testing::MakeFigure1Table();
  auto dist = GlobalSaDistribution(t);
  // Figure 1: s1 x2, s2 x3, s3 x2, s4 x2, s5 x1 over 10 records.
  EXPECT_NEAR(dist[0], 0.2, 1e-12);
  EXPECT_NEAR(dist[1], 0.3, 1e-12);
  EXPECT_NEAR(dist[4], 0.1, 1e-12);
}

TEST(CriteriaTest, TClosenessHandComputed) {
  auto t = pme::testing::MakeFigure1Table();
  auto report = MeasureTCloseness(t);
  // Bucket 2 ({s1,s3,s4}): TV to global {.2,.3,.2,.2,.1} =
  // 0.5*(|1/3-.2|+|0-.3|+|1/3-.2|+|1/3-.2|+|0-.1|) = 0.4.
  EXPECT_NEAR(report.max_distance, 0.4, 1e-9);
  EXPECT_TRUE(SatisfiesTCloseness(t, 0.41));
  EXPECT_FALSE(SatisfiesTCloseness(t, 0.39));
}

TEST(CriteriaTest, TClosenessZeroForSingleBucket) {
  // A one-bucket table is trivially 0-close: its distribution IS global.
  std::vector<anonymize::AbstractRecord> records = {
      {0, 0, 0}, {1, 1, 0}, {2, 2, 0}};
  auto t = anonymize::BucketizedTable::Create(records).ValueOrDie();
  EXPECT_NEAR(MeasureTCloseness(t).max_distance, 0.0, 1e-12);
}

TEST(CriteriaTest, RecursiveDiversity) {
  auto t = pme::testing::MakeFigure1Table();
  // Bucket 1 counts sorted: {2,1,1}; ell=2: c_min = 2/(1+1) = 1.
  // Buckets 2,3: {1,1,1}; c_min = 1/(1+1) = 0.5.
  auto report = MeasureRecursiveDiversity(t, 2);
  EXPECT_TRUE(report.feasible);
  EXPECT_NEAR(report.min_c, 1.0, 1e-12);
  EXPECT_EQ(report.worst_bucket, 0u);
  EXPECT_TRUE(SatisfiesRecursiveDiversity(t, 1.01, 2));
  EXPECT_FALSE(SatisfiesRecursiveDiversity(t, 0.99, 2));
}

TEST(CriteriaTest, RecursiveDiversityInfeasibleWhenTooFewValues) {
  auto t = pme::testing::MakeFigure1Table();
  auto report = MeasureRecursiveDiversity(t, 4);  // buckets have 3 distinct
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(SatisfiesRecursiveDiversity(t, 100.0, 4));
}

}  // namespace
}  // namespace pme::core

namespace pme::anonymize {
namespace {

TEST(RandomizationTest, RetentionOneIsIdentity) {
  auto d = pme::testing::MakeFigure1Dataset();
  RandomizedResponseOptions options;
  options.retention = 1.0;
  auto release = RandomizeResponse(d, options).ValueOrDie();
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  for (size_t r = 0; r < d.num_records(); ++r) {
    EXPECT_EQ(release.dataset.At(r, sa), d.At(r, sa));
  }
}

TEST(RandomizationTest, QiColumnsUntouched) {
  auto d = pme::testing::MakeFigure1Dataset();
  auto release = RandomizeResponse(d).ValueOrDie();
  for (size_t r = 0; r < d.num_records(); ++r) {
    EXPECT_EQ(release.dataset.At(r, 0), d.At(r, 0));
    EXPECT_EQ(release.dataset.At(r, 1), d.At(r, 1));
  }
}

TEST(RandomizationTest, ReconstructionRecoversMarginalAtScale) {
  data::AdultSynthOptions synth;
  synth.num_records = 20000;
  auto d = data::GenerateAdultLike(synth).ValueOrDie();
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  data::DatasetStats stats(&d);
  const auto truth = stats.Marginal(sa);

  RandomizedResponseOptions options;
  options.retention = 0.6;
  auto release = RandomizeResponse(d, options).ValueOrDie();
  auto reconstructed = ReconstructSaDistribution(release).ValueOrDie();
  ASSERT_EQ(reconstructed.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(reconstructed[i], truth[i], 0.02) << "value " << i;
  }
  // The *observed* marginal is flattened toward uniform, i.e. further
  // from the truth than the reconstruction.
  data::DatasetStats obs_stats(&release.dataset);
  const auto observed = obs_stats.Marginal(sa);
  double err_obs = 0.0, err_rec = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    err_obs += std::fabs(observed[i] - truth[i]);
    err_rec += std::fabs(reconstructed[i] - truth[i]);
  }
  EXPECT_LT(err_rec, err_obs);
}

TEST(RandomizationTest, RecordPosteriorProperties) {
  auto d = pme::testing::MakeFigure1Dataset();
  RandomizedResponseOptions options;
  options.retention = 0.7;
  auto release = RandomizeResponse(d, options).ValueOrDie();
  std::vector<double> prior(release.domain, 1.0 / release.domain);
  auto posterior = RecordPosterior(release, 2, prior).ValueOrDie();
  double sum = 0.0;
  for (double p : posterior) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Observing value 2 makes value 2 the most likely truth.
  for (uint32_t t = 0; t < release.domain; ++t) {
    if (t != 2) EXPECT_GT(posterior[2], posterior[t]);
  }
  // With retention 0.7 and uniform prior over 5 values:
  // P(true=obs|obs) = (0.7 + 0.06) / (0.7 + 5*0.06) = 0.76.
  EXPECT_NEAR(posterior[2], 0.76, 1e-9);
}

TEST(RandomizationTest, LowerRetentionMeansMorePrivacy) {
  auto d = pme::testing::MakeFigure1Dataset();
  std::vector<double> prior(5, 0.2);
  RandomizedResponseOptions strong, weak;
  strong.retention = 0.3;
  weak.retention = 0.9;
  auto strong_release = RandomizeResponse(d, strong).ValueOrDie();
  auto weak_release = RandomizeResponse(d, weak).ValueOrDie();
  const double p_strong =
      RecordPosterior(strong_release, 0, prior).ValueOrDie()[0];
  const double p_weak =
      RecordPosterior(weak_release, 0, prior).ValueOrDie()[0];
  EXPECT_LT(p_strong, p_weak);
}

TEST(RandomizationTest, RejectsBadOptions) {
  auto d = pme::testing::MakeFigure1Dataset();
  RandomizedResponseOptions options;
  options.retention = 0.0;
  EXPECT_FALSE(RandomizeResponse(d, options).ok());
  options.retention = 1.5;
  EXPECT_FALSE(RandomizeResponse(d, options).ok());
}

TEST(RandomizationTest, DeterministicForSeed) {
  auto d = pme::testing::MakeFigure1Dataset();
  auto a = RandomizeResponse(d).ValueOrDie();
  auto b = RandomizeResponse(d).ValueOrDie();
  const size_t sa = d.schema().SoleSensitiveIndex().ValueOrDie();
  for (size_t r = 0; r < d.num_records(); ++r) {
    EXPECT_EQ(a.dataset.At(r, sa), b.dataset.At(r, sa));
  }
}

}  // namespace
}  // namespace pme::anonymize
