// End-to-end integration tests: the full pipeline of the paper's
// evaluation (synthetic Adult-like data -> 5-diversity bucketization ->
// rule mining -> Privacy-MaxEnt) at reduced scale, checking the headline
// behaviours the figures rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "anonymize/diversity.h"
#include "bench/bench_common.h"
#include "common/vec_math.h"
#include "core/experiment.h"
#include "knowledge/miner.h"

namespace pme::core {
namespace {

PipelineOptions SmallPipeline() {
  PipelineOptions options;
  options.data.num_records = 600;
  options.data.seed = 424242;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;
  options.miner.max_attrs = 2;
  return options;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new ExperimentPipeline(
        BuildPipeline(SmallPipeline()).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static ExperimentPipeline* pipeline_;
};

ExperimentPipeline* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, BucketizationIsDiverse) {
  const auto& table = pipeline_->bucketization.table;
  EXPECT_EQ(table.num_records(), 600u);
  EXPECT_EQ(table.num_buckets(), 120u);
  const uint32_t exempt = anonymize::MostFrequentSa(table);
  EXPECT_TRUE(anonymize::SatisfiesDistinctDiversity(table, 4, exempt));
}

TEST_F(PipelineTest, MinerFindsBothPolarities) {
  size_t pos = 0, neg = 0;
  for (const auto& r : pipeline_->rules) (r.positive ? pos : neg) += 1;
  EXPECT_GT(pos, 10u);
  EXPECT_GT(neg, 10u);
}

TEST_F(PipelineTest, NoKnowledgeBaseline) {
  auto analysis = AnalyzeWithRules(*pipeline_, {}).ValueOrDie();
  EXPECT_TRUE(analysis.solver.converged);
  EXPECT_EQ(analysis.num_background_constraints, 0u);
  EXPECT_EQ(analysis.decomposition.relevant_buckets, 0u);
  EXPECT_GT(analysis.estimation_accuracy, 0.0);
  EXPECT_LT(analysis.solver.max_violation, 1e-7);
}

TEST_F(PipelineTest, KnowledgeMonotonicallyErodesPrivacy) {
  // The Figure-5 claim at small scale: estimation accuracy (weighted KL
  // to the truth) decreases as Top-(K+, K-) knowledge grows.
  const auto& rules = pipeline_->rules;
  std::vector<double> accuracy;
  for (size_t k : {0, 20, 100, 400}) {
    auto top = knowledge::TopK(rules, k / 2, k / 2);
    auto analysis = AnalyzeWithRules(*pipeline_, top).ValueOrDie();
    EXPECT_LT(analysis.solver.max_violation, 1e-5) << "K=" << k;
    accuracy.push_back(analysis.estimation_accuracy);
  }
  // Step-to-step the conditional-space KL may wobble slightly (the
  // I-projection guarantee is on the joint), so allow small slack, but
  // the overall trend must be a clear drop.
  for (size_t i = 1; i < accuracy.size(); ++i) {
    EXPECT_LE(accuracy[i], accuracy[i - 1] + 0.02) << "step " << i;
  }
  EXPECT_LT(accuracy.back(), accuracy.front() * 0.8);
}

TEST_F(PipelineTest, MixedKnowledgeBeatsSinglePolarity) {
  // Figure 5's second claim: at equal K, the (K+, K-) mix erodes privacy
  // at least as much as negative-only rules of the same budget.
  const auto& rules = pipeline_->rules;
  const size_t k = 200;
  auto mixed = AnalyzeWithRules(*pipeline_,
                                knowledge::TopK(rules, k / 2, k / 2))
                   .ValueOrDie();
  auto neg_only =
      AnalyzeWithRules(*pipeline_, knowledge::TopK(rules, 0, k)).ValueOrDie();
  // Negative-only rules carry much redundancy (most say "q rarely has s");
  // the mix should recover the truth at least as well.
  EXPECT_LE(mixed.estimation_accuracy,
            neg_only.estimation_accuracy + 0.05);
}

TEST_F(PipelineTest, DecompositionSpeedsUpSparselyTouchedKnowledge) {
  const auto& rules = pipeline_->rules;
  auto top = knowledge::TopK(rules, 3, 3);
  auto analysis = AnalyzeWithRules(*pipeline_, top).ValueOrDie();
  // Six statements touch far fewer buckets than exist.
  EXPECT_LT(analysis.decomposition.relevant_buckets,
            pipeline_->bucketization.table.num_buckets());
}

TEST_F(PipelineTest, FullPipelineDeterminism) {
  auto a = BuildPipeline(SmallPipeline()).ValueOrDie();
  auto top = knowledge::TopK(a.rules, 10, 10);
  auto r1 = AnalyzeWithRules(a, top).ValueOrDie();
  auto r2 = AnalyzeWithRules(a, top).ValueOrDie();
  EXPECT_DOUBLE_EQ(r1.estimation_accuracy, r2.estimation_accuracy);
}

TEST_F(PipelineTest, SimdOffAndAutoAgreeEndToEnd) {
  // `--simd=off` must reproduce the vectorized pipeline: both solves
  // converge, and their posteriors agree to solver-tolerance order
  // (each run stops at ‖∇D‖∞ ≤ 1e-8, so the two optima can differ by
  // that much — kernel rounding itself is far below it).
  const auto saved = kernels::GetSimdMode();
  auto top = knowledge::TopK(pipeline_->rules, 20, 20);
  kernels::SetSimdMode(kernels::SimdMode::kOff);
  auto off = AnalyzeWithRules(*pipeline_, top).ValueOrDie();
  kernels::SetSimdMode(kernels::SimdMode::kAuto);
  auto vec = AnalyzeWithRules(*pipeline_, top).ValueOrDie();
  kernels::SetSimdMode(saved);

  EXPECT_TRUE(off.solver.converged);
  EXPECT_TRUE(vec.solver.converged);
  ASSERT_EQ(off.solver.p.size(), vec.solver.p.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < off.solver.p.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(off.solver.p[i] - vec.solver.p[i]));
  }
  EXPECT_LE(max_diff, 1e-6);
  EXPECT_NEAR(off.estimation_accuracy, vec.estimation_accuracy, 1e-6);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/pme_csv_writer_test.csv";
  {
    bench::CsvWriter writer(path, {"k", "accuracy"});
    ASSERT_TRUE(writer.ok());
    writer.Row({10, 0.5});
    writer.Row({20, 0.25});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,accuracy");
  std::getline(in, line);
  EXPECT_EQ(line, "10,0.5");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EmptyPathDisablesOutput) {
  bench::CsvWriter writer("", {"a"});
  EXPECT_TRUE(writer.ok());
  writer.Row({1.0});  // must not crash
}

}  // namespace
}  // namespace pme::core
