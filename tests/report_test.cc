// Tests for the privacy report renderer (core/report).

#include <gtest/gtest.h>

#include "core/report.h"
#include "knowledge/knowledge_base.h"
#include "tests/test_util.h"

namespace pme::core {
namespace {

using pme::testing::kQ2;
using pme::testing::kS1;

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : table_(pme::testing::MakeFigure1Table()) {}
  anonymize::BucketizedTable table_;
};

TEST_F(ReportTest, ContainsAllSections) {
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(table_, empty).ValueOrDie();
  const std::string report = RenderPrivacyReport(table_, analysis);
  for (const char* section :
       {"[published table]", "[assumed adversary knowledge — the bound]",
        "[maxent solve]", "[privacy under this bound]",
        "[highest-risk individuals]"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
  EXPECT_NE(report.find("records:            10"), std::string::npos);
  EXPECT_NE(report.find("buckets:            3"), std::string::npos);
}

TEST_F(ReportTest, KnowledgeCensusCanBeSuppressed) {
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(table_, empty).ValueOrDie();
  ReportOptions options;
  options.include_knowledge_census = false;
  const std::string report = RenderPrivacyReport(table_, analysis, options);
  EXPECT_EQ(report.find("[assumed adversary knowledge"), std::string::npos);
}

TEST_F(ReportTest, CertainDisclosureIsFlagged) {
  // Breast-cancer knowledge makes q4 -> s1 certain; the report must list
  // it first and count one near-certain link for q4 (plus any others).
  knowledge::KnowledgeBase kb;
  for (uint32_t male_q : {pme::testing::kQ1, pme::testing::kQ3,
                          pme::testing::kQ6}) {
    kb.Add(knowledge::AbstractConditional(male_q, {kS1}, 0.0));
  }
  auto analysis = Analyze(table_, kb).ValueOrDie();
  ReportOptions options;
  options.top_risks = 3;
  const std::string report = RenderPrivacyReport(table_, analysis, options);
  EXPECT_NE(report.find("1. q4 -> s1  (posterior 1.0000)"),
            std::string::npos)
      << report;
  EXPECT_EQ(report.find("4. "), std::string::npos) << "top_risks respected";
}

TEST_F(ReportTest, TopRisksRespectsTableSize) {
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(table_, empty).ValueOrDie();
  ReportOptions options;
  options.top_risks = 100;  // more than 6 QI instances
  const std::string report = RenderPrivacyReport(table_, analysis, options);
  EXPECT_NE(report.find("6. "), std::string::npos);
  EXPECT_EQ(report.find("7. "), std::string::npos);
}

TEST_F(ReportTest, PosteriorCsvShape) {
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(table_, empty).ValueOrDie();
  const std::string csv = PosteriorToCsv(table_, analysis);
  // Header + 6 QI * 5 SA rows.
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + 6u * 5u);
  EXPECT_EQ(csv.rfind("qi,sa,posterior\n", 0), 0u);
  EXPECT_NE(csv.find("q1,s2,"), std::string::npos);
}

}  // namespace
}  // namespace pme::core
