// Tests for src/maxent: the dual function (against finite differences),
// presolve, every solver on analytically solvable problems, the
// consistency theorem (Theorem 5), solver agreement, decomposition
// (Section 5.5), and the inequality extension.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/prng.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "maxent/closed_form.h"
#include "maxent/decomposed.h"
#include "maxent/dual.h"
#include "maxent/problem.h"
#include "maxent/solver.h"
#include "tests/test_util.h"

namespace pme::maxent {
namespace {

using constraints::ConstraintSystem;
using constraints::LinearConstraint;
using constraints::TermIndex;
using knowledge::Relation;
using pme::testing::kQ1;
using pme::testing::kQ2;
using pme::testing::kQ3;
using pme::testing::kS1;
using pme::testing::kS2;
using pme::testing::kS3;

LinearConstraint Eq(std::vector<uint32_t> vars, double rhs) {
  LinearConstraint c;
  c.vars = std::move(vars);
  c.coefs.assign(c.vars.size(), 1.0);
  c.rhs = rhs;
  return c;
}

MaxEntProblem SimplexProblem(size_t n) {
  ConstraintSystem system(n);
  std::vector<uint32_t> all(n);
  for (uint32_t i = 0; i < n; ++i) all[i] = i;
  system.Add(Eq(all, 1.0));
  return BuildProblem(system).ValueOrDie();
}

// ------------------------------------------------------------------ Dual

TEST(DualFunctionTest, GradientMatchesFiniteDifferences) {
  Prng prng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t rows = 2 + prng.NextBounded(4);
    const size_t cols = 3 + prng.NextBounded(6);
    std::vector<std::vector<double>> dense(rows,
                                           std::vector<double>(cols, 0.0));
    for (auto& row : dense) {
      for (auto& v : row) {
        if (prng.NextDouble() < 0.6) v = prng.NextDouble(0.0, 1.5);
      }
    }
    auto a = linalg::SparseMatrix::FromDense(dense);
    std::vector<double> b(rows);
    for (auto& v : b) v = prng.NextDouble(0.05, 0.5);
    DualFunction dual(&a, b);

    std::vector<double> lambda(rows);
    for (auto& v : lambda) v = prng.NextDouble(-1.0, 1.0);
    std::vector<double> grad;
    dual.Evaluate(lambda, &grad, nullptr);

    const double eps = 1e-6;
    for (size_t j = 0; j < rows; ++j) {
      auto plus = lambda, minus = lambda;
      plus[j] += eps;
      minus[j] -= eps;
      const double fd = (dual.Evaluate(plus, nullptr, nullptr) -
                         dual.Evaluate(minus, nullptr, nullptr)) /
                        (2 * eps);
      EXPECT_NEAR(grad[j], fd, 1e-5);
    }
  }
}

TEST(DualFunctionTest, EvaluateIntoMatchesEvaluate) {
  Prng prng(7);
  auto a = linalg::SparseMatrix::FromDense(
      {{1.0, 0.0, 2.0, 0.5}, {0.0, 1.0, 1.0, 0.0}, {0.3, 0.0, 0.0, 1.0}});
  std::vector<double> b = {0.4, 0.3, 0.3};
  DualFunction dual(&a, b);
  DualWorkspace ws;
  std::vector<double> grad_fused, grad, p;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> lambda(3);
    for (auto& v : lambda) v = prng.NextDouble(-1.0, 1.0);
    const double fused = dual.EvaluateInto(lambda, &grad_fused, &ws);
    const double legacy = dual.Evaluate(lambda, &grad, &p);
    EXPECT_DOUBLE_EQ(fused, legacy);
    ASSERT_EQ(ws.p.size(), p.size());
    for (size_t i = 0; i < p.size(); ++i) EXPECT_DOUBLE_EQ(ws.p[i], p[i]);
    for (size_t j = 0; j < grad.size(); ++j) {
      EXPECT_DOUBLE_EQ(grad_fused[j], grad[j]);
    }
  }
}

TEST(DualFunctionTest, EvaluateIntoNeverResizesAfterWarmup) {
  // The allocation-free contract of the solver hot path: after the first
  // call the workspace and gradient buffers are final — every subsequent
  // evaluation (e.g. line-search probes) reuses them in place.
  Prng prng(13);
  auto a = linalg::SparseMatrix::FromDense(
      {{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}});
  std::vector<double> b = {0.5, 0.5};
  DualFunction dual(&a, b);
  DualWorkspace ws;
  std::vector<double> grad;
  std::vector<double> lambda = {0.1, -0.2};
  dual.EvaluateInto(lambda, &grad, &ws);
  const double* p_data = ws.p.data();
  const double* grad_data = grad.data();
  const size_t p_cap = ws.p.capacity();
  const size_t grad_cap = grad.capacity();
  for (int trial = 0; trial < 100; ++trial) {
    for (auto& v : lambda) v = prng.NextDouble(-2.0, 2.0);
    dual.EvaluateInto(lambda, &grad, &ws);
    ASSERT_EQ(ws.p.data(), p_data);
    ASSERT_EQ(grad.data(), grad_data);
    ASSERT_EQ(ws.p.capacity(), p_cap);
    ASSERT_EQ(grad.capacity(), grad_cap);
  }
}

TEST(DualFunctionTest, PrimalIsExpOfDualCombination) {
  auto a = linalg::SparseMatrix::FromDense({{1.0, 1.0}});
  std::vector<double> b = {1.0};
  DualFunction dual(&a, b);
  auto p = dual.Primal({2.0});
  EXPECT_NEAR(p[0], std::exp(1.0), 1e-12);
  EXPECT_NEAR(p[1], std::exp(1.0), 1e-12);
}

// -------------------------------------------------------------- Presolve

TEST(PresolveTest, ZeroForcingEliminatesVariables) {
  ConstraintSystem system(3);
  system.Add(Eq({0, 1}, 0.0));  // forces p0 = p1 = 0
  system.Add(Eq({0, 1, 2}, 0.4));
  auto problem = BuildProblem(system).ValueOrDie();
  auto pre = Presolve(problem).ValueOrDie();
  EXPECT_EQ(pre.num_fixed, 3u);  // cascade pins p2 = 0.4 too
  EXPECT_EQ(pre.reduced.num_vars, 0u);
  auto full = pre.Restore({});
  EXPECT_DOUBLE_EQ(full[0], 0.0);
  EXPECT_DOUBLE_EQ(full[1], 0.0);
  EXPECT_DOUBLE_EQ(full[2], 0.4);
}

TEST(PresolveTest, SingletonSubstitution) {
  ConstraintSystem system(3);
  system.Add(Eq({0}, 0.3));
  system.Add(Eq({0, 1, 2}, 1.0));
  auto problem = BuildProblem(system).ValueOrDie();
  auto pre = Presolve(problem).ValueOrDie();
  EXPECT_EQ(pre.num_fixed, 1u);
  EXPECT_EQ(pre.reduced.num_vars, 2u);
  ASSERT_EQ(pre.reduced.eq_rhs.size(), 1u);
  EXPECT_NEAR(pre.reduced.eq_rhs[0], 0.7, 1e-12);  // 1.0 - 0.3
}

TEST(PresolveTest, DetectsInfeasibleConstant) {
  ConstraintSystem system(2);
  system.Add(Eq({0, 1}, 0.0));  // all zero
  system.Add(Eq({0, 1}, 0.5));  // contradiction
  auto problem = BuildProblem(system).ValueOrDie();
  auto pre = Presolve(problem);
  ASSERT_FALSE(pre.ok());
  EXPECT_EQ(pre.status().code(), StatusCode::kInfeasible);
}

TEST(PresolveTest, DetectsNegativePin) {
  ConstraintSystem system(1);
  system.Add(Eq({0}, -0.5));
  auto problem = BuildProblem(system).ValueOrDie();
  EXPECT_EQ(Presolve(problem).status().code(), StatusCode::kInfeasible);
}

TEST(PresolveTest, InequalityZeroBoundForces) {
  ConstraintSystem system(2);
  LinearConstraint le;
  le.vars = {0};
  le.coefs = {1.0};
  le.rel = Relation::kLe;
  le.rhs = 0.0;  // p0 <= 0 with p0 >= 0 pins p0 = 0
  system.Add(le);
  system.Add(Eq({0, 1}, 0.5));
  auto problem = BuildProblem(system).ValueOrDie();
  auto pre = Presolve(problem).ValueOrDie();
  EXPECT_EQ(pre.num_fixed, 2u);
  auto full = pre.Restore({});
  EXPECT_DOUBLE_EQ(full[1], 0.5);
}

// --------------------------------------------------- Analytic solutions

TEST(SolverTest, UniformOnSimplex) {
  // max H s.t. Σ p = 1 -> uniform; entropy = ln n.
  for (size_t n : {2, 5, 16}) {
    auto result = Solve(SimplexProblem(n)).ValueOrDie();
    EXPECT_TRUE(result.converged);
    for (double v : result.p) EXPECT_NEAR(v, 1.0 / n, 1e-7);
    EXPECT_NEAR(result.entropy, std::log(double(n)), 1e-6);
    EXPECT_LT(result.max_violation, 1e-8);
  }
}

TEST(SolverTest, TwoBlockMarginals) {
  // Variables arranged 2x2 with row sums {0.6, 0.4} and col sums
  // {0.7, 0.3}: maxent -> product distribution.
  ConstraintSystem system(4);
  system.Add(Eq({0, 1}, 0.6));
  system.Add(Eq({2, 3}, 0.4));
  system.Add(Eq({0, 2}, 0.7));
  system.Add(Eq({1, 3}, 0.3));
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_NEAR(result.p[0], 0.42, 1e-7);
  EXPECT_NEAR(result.p[1], 0.18, 1e-7);
  EXPECT_NEAR(result.p[2], 0.28, 1e-7);
  EXPECT_NEAR(result.p[3], 0.12, 1e-7);
}

TEST(SolverTest, InequalityBindsWhenActive) {
  // max H s.t. p0 + p1 = 1, p0 <= 0.2  -> p = (0.2, 0.8).
  ConstraintSystem system(2);
  system.Add(Eq({0, 1}, 1.0));
  LinearConstraint le;
  le.vars = {0};
  le.coefs = {1.0};
  le.rel = Relation::kLe;
  le.rhs = 0.2;
  system.Add(le);
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_NEAR(result.p[0], 0.2, 1e-6);
  EXPECT_NEAR(result.p[1], 0.8, 1e-6);
}

TEST(SolverTest, InequalitySlackWhenInactive) {
  // p0 <= 0.9 does not bind: solution stays uniform.
  ConstraintSystem system(2);
  system.Add(Eq({0, 1}, 1.0));
  LinearConstraint le;
  le.vars = {0};
  le.coefs = {1.0};
  le.rel = Relation::kLe;
  le.rhs = 0.9;
  system.Add(le);
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_NEAR(result.p[0], 0.5, 1e-6);
  EXPECT_NEAR(result.p[1], 0.5, 1e-6);
}

TEST(SolverTest, GreaterEqualBindsFromBelow) {
  // p0 >= 0.8 forces mass onto p0.
  ConstraintSystem system(2);
  system.Add(Eq({0, 1}, 1.0));
  LinearConstraint ge;
  ge.vars = {0};
  ge.coefs = {1.0};
  ge.rel = Relation::kGe;
  ge.rhs = 0.8;
  system.Add(ge);
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_NEAR(result.p[0], 0.8, 1e-6);
  EXPECT_NEAR(result.p[1], 0.2, 1e-6);
}

TEST(SolverTest, VagueKnowledgeBand) {
  // Section 4.5: 0.3-eps <= P <= 0.3+eps around an unconstrained optimum
  // of 0.5 clamps to the upper edge 0.35.
  ConstraintSystem system(2);
  system.Add(Eq({0, 1}, 1.0));
  LinearConstraint le;
  le.vars = {0};
  le.coefs = {1.0};
  le.rel = Relation::kLe;
  le.rhs = 0.35;
  system.Add(le);
  LinearConstraint ge;
  ge.vars = {0};
  ge.coefs = {1.0};
  ge.rel = Relation::kGe;
  ge.rhs = 0.25;
  system.Add(ge);
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_NEAR(result.p[0], 0.35, 1e-6);
}

// -------------------------------------------------- All-solver agreement

class AllSolversTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(AllSolversTest, UniformOnSimplex) {
  auto result = Solve(SimplexProblem(6), GetParam()).ValueOrDie();
  for (double v : result.p) EXPECT_NEAR(v, 1.0 / 6, 1e-6);
}

TEST_P(AllSolversTest, Figure1WithKnowledgeAgreesWithLbfgs) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.5));
  auto compiled =
      constraints::CompileKnowledge(kb, t, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));
  auto problem = BuildProblem(system).ValueOrDie();

  SolverOptions options;
  options.max_iterations = 5000;
  auto reference = Solve(problem, SolverKind::kLbfgs, options).ValueOrDie();
  auto result = Solve(problem, GetParam(), options).ValueOrDie();
  EXPECT_LT(result.max_violation, 1e-6);
  for (size_t i = 0; i < reference.p.size(); ++i) {
    EXPECT_NEAR(result.p[i], reference.p[i], Tolerance::kCrossSolver)
        << "var " << i << " solver " << SolverKindToString(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, AllSolversTest,
    ::testing::Values(SolverKind::kLbfgs, SolverKind::kGis, SolverKind::kIis,
                      SolverKind::kSteepest, SolverKind::kNewton),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return SolverKindToString(info.param);
    });

// ------------------------------------------------- Consistency (Thm. 5)

TEST(ConsistencyTest, NoKnowledgeMatchesClosedForm) {
  // Theorem 5: with no background knowledge the MaxEnt solution equals
  // P(q,b)·P(s,b)/P(b) — the uniform-portion rule of the prior work.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  auto closed = ClosedFormNoKnowledge(t, index);
  for (size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(result.p[i], closed[i], 1e-7) << index.TermName(i, t);
  }
}

TEST(ConsistencyTest, ClosedFormSatisfiesAllInvariants) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto closed = ClosedFormNoKnowledge(t, index);
  auto invariants = constraints::GenerateInvariants(t, index);
  EXPECT_LT(constraints::MaxInvariantViolation(invariants, closed), 1e-12);
}

TEST(ConsistencyTest, ClosedFormMatchesPortionRule) {
  // Eq. (9): P(S | Q, b) = (# of S in b) / N_b.
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto closed = ClosedFormNoKnowledge(t, index);
  // P(s2 | q1, b1) = 2/4; joint = P(q1,b1) * 1/2 = 0.2 * 0.5 = 0.1.
  const uint32_t var = index.VariableId(kQ1, kS2, 0).ValueOrDie();
  EXPECT_NEAR(closed[var], 0.1, 1e-12);
  // P(s1 | q1, b1) = 1/4; joint = 0.2 * 0.25 = 0.05.
  const uint32_t var2 = index.VariableId(kQ1, kS1, 0).ValueOrDie();
  EXPECT_NEAR(closed[var2], 0.05, 1e-12);
}

// ------------------------------------------ Section 3.1 forced deduction

TEST(DeductionTest, PaperSection31Example) {
  // "if adversaries know that P(s1|q2) = 0 and P(s1 or s2|q3) = 0, we
  // immediately know that in the first bucket q3 can only be mapped to
  // s3, q2 can only be mapped to s2, and one of the q1 maps to s1 and the
  // other maps to s2."
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ2, {kS1}, 0.0));
  kb.Add(knowledge::AbstractConditional(kQ3, {kS1, kS2}, 0.0));
  auto compiled = constraints::CompileKnowledge(kb, t, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  const auto& p = result.p;

  auto at = [&](uint32_t q, uint32_t s, uint32_t b) {
    return p[index.VariableId(q, s, b).ValueOrDie()];
  };
  // q3 -> s3 with its entire bucket-1 mass (0.1).
  EXPECT_NEAR(at(kQ3, kS3, 0), 0.1, 1e-7);
  EXPECT_NEAR(at(kQ3, kS1, 0), 0.0, 1e-9);
  EXPECT_NEAR(at(kQ3, kS2, 0), 0.0, 1e-9);
  // q2 -> s2 (s3 is exhausted by q3).
  EXPECT_NEAR(at(kQ2, kS2, 0), 0.1, 1e-7);
  EXPECT_NEAR(at(kQ2, kS1, 0), 0.0, 1e-9);
  EXPECT_NEAR(at(kQ2, kS3, 0), 0.0, 1e-7);
  // The two q1 occurrences split between s1 (all of it) and s2.
  EXPECT_NEAR(at(kQ1, kS1, 0), 0.1, 1e-7);
  EXPECT_NEAR(at(kQ1, kS2, 0), 0.1, 1e-7);
  EXPECT_NEAR(at(kQ1, kS3, 0), 0.0, 1e-7);
}

// --------------------------------------------------------- Decomposition

TEST(DecomposedTest, MatchesFullSolve) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.5));
  auto compiled = constraints::CompileKnowledge(kb, t, index).ValueOrDie();
  system.AddAll(std::move(compiled.constraints));

  auto problem = BuildProblem(system).ValueOrDie();
  auto full = Solve(problem).ValueOrDie();
  auto decomposed = SolveDecomposed(t, index, system).ValueOrDie();
  for (size_t i = 0; i < full.p.size(); ++i) {
    EXPECT_NEAR(decomposed.p[i], full.p[i], 1e-6) << index.TermName(i, t);
  }
  EXPECT_LT(decomposed.max_violation, 1e-7);

  auto stats = AnalyzeDecomposition(index, system);
  EXPECT_EQ(stats.relevant_buckets, 2u);
  EXPECT_EQ(stats.irrelevant_buckets, 1u);
  EXPECT_EQ(stats.relevant_variables, 18u);
}

TEST(DecomposedTest, NoKnowledgeIsPureClosedForm) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  auto result = SolveDecomposed(t, index, system).ValueOrDie();
  EXPECT_EQ(result.iterations, 0u);  // nothing iterative to solve
  auto closed = ClosedFormNoKnowledge(t, index);
  for (size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(result.p[i], closed[i], 1e-12);
  }
}

// -------------------------------------------------- Solver edge cases

TEST(SolverTest, GisRejectsNegativeCoefficients) {
  ConstraintSystem system(2);
  LinearConstraint c;
  c.vars = {0, 1};
  c.coefs = {1.0, -1.0};
  c.rhs = 0.1;
  system.Add(c);
  system.Add(Eq({0, 1}, 1.0));
  auto problem = BuildProblem(system).ValueOrDie();
  auto r = Solve(problem, SolverKind::kGis);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolverTest, NewtonRefusesHugeDuals) {
  SolverOptions options;
  options.newton_max_dim = 0;
  auto r = Solve(SimplexProblem(3), SolverKind::kNewton, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverTest, EmptyProblemIsTriviallySolved) {
  ConstraintSystem system(0);
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.p.empty());
}

TEST(SolverTest, ReportsIterationsAndTime) {
  auto result = Solve(SimplexProblem(8)).ValueOrDie();
  EXPECT_GT(result.iterations, 0u);
  EXPECT_GE(result.seconds, 0.0);
  EXPECT_EQ(result.kind, SolverKind::kLbfgs);
}

TEST(SolverTest, PresolveOffStillSolvesSmoothProblems) {
  SolverOptions options;
  options.presolve = false;
  auto result = Solve(SimplexProblem(4), SolverKind::kLbfgs, options)
                    .ValueOrDie();
  for (double v : result.p) EXPECT_NEAR(v, 0.25, 1e-7);
  EXPECT_EQ(result.presolve_fixed, 0u);
}

TEST(SolverTest, RandomFeasibleSystemsConverge) {
  // Random marginal-style systems built from a random ground truth are
  // always feasible; LBFGS must drive the violation below tolerance.
  Prng prng(99);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t rows = 3, cols = 4;
    // Ground-truth joint over a rows x cols grid.
    std::vector<double> joint(rows * cols);
    double total = 0.0;
    for (auto& v : joint) {
      v = prng.NextDouble(0.01, 1.0);
      total += v;
    }
    for (auto& v : joint) v /= total;
    ConstraintSystem system(rows * cols);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<uint32_t> vars;
      double rhs = 0.0;
      for (size_t c = 0; c < cols; ++c) {
        vars.push_back(static_cast<uint32_t>(r * cols + c));
        rhs += joint[r * cols + c];
      }
      system.Add(Eq(vars, rhs));
    }
    for (size_t c = 0; c < cols; ++c) {
      std::vector<uint32_t> vars;
      double rhs = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        vars.push_back(static_cast<uint32_t>(r * cols + c));
        rhs += joint[r * cols + c];
      }
      system.Add(Eq(vars, rhs));
    }
    auto problem = BuildProblem(system).ValueOrDie();
    auto result = Solve(problem).ValueOrDie();
    EXPECT_LT(result.max_violation, 1e-7);
    // MaxEnt with marginal constraints = independent product.
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        double row_sum = 0.0, col_sum = 0.0;
        for (size_t cc = 0; cc < cols; ++cc) row_sum += joint[r * cols + cc];
        for (size_t rr = 0; rr < rows; ++rr) col_sum += joint[rr * cols + c];
        EXPECT_NEAR(result.p[r * cols + c], row_sum * col_sum, 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace pme::maxent
