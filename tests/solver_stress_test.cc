// Stress and property suites for the MaxEnt solver stack: presolve
// equivalence, KKT verification for inequality-constrained optima,
// duplicate/redundant-row robustness, and cross-solver agreement across
// problem scales.

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "common/prng.h"
#include "constraints/system.h"
#include "maxent/problem.h"
#include "maxent/solver.h"

namespace pme::maxent {
namespace {

using constraints::ConstraintSystem;
using constraints::LinearConstraint;
using knowledge::Relation;

LinearConstraint Row(std::vector<uint32_t> vars, std::vector<double> coefs,
                     Relation rel, double rhs) {
  LinearConstraint c;
  c.vars = std::move(vars);
  c.coefs = std::move(coefs);
  c.rel = rel;
  c.rhs = rhs;
  return c;
}

LinearConstraint Eq(std::vector<uint32_t> vars, double rhs) {
  std::vector<double> coefs(vars.size(), 1.0);
  return Row(std::move(vars), std::move(coefs), Relation::kEq, rhs);
}

/// A random feasible marginal system over an r x c grid with ground truth.
struct GridProblem {
  MaxEntProblem problem;
  std::vector<double> truth;
};

GridProblem MakeGrid(size_t rows, size_t cols, Prng& prng) {
  GridProblem g;
  g.truth.resize(rows * cols);
  double total = 0.0;
  for (auto& v : g.truth) {
    v = prng.NextDouble(0.01, 1.0);
    total += v;
  }
  for (auto& v : g.truth) v /= total;
  ConstraintSystem system(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<uint32_t> vars;
    double rhs = 0.0;
    for (size_t c = 0; c < cols; ++c) {
      vars.push_back(static_cast<uint32_t>(r * cols + c));
      rhs += g.truth[r * cols + c];
    }
    system.Add(Eq(vars, rhs));
  }
  for (size_t c = 0; c < cols; ++c) {
    std::vector<uint32_t> vars;
    double rhs = 0.0;
    for (size_t r = 0; r < rows; ++r) {
      vars.push_back(static_cast<uint32_t>(r * cols + c));
      rhs += g.truth[r * cols + c];
    }
    system.Add(Eq(vars, rhs));
  }
  g.problem = BuildProblem(system).ValueOrDie();
  return g;
}

TEST(SolverStressTest, PresolveOnOffAgree) {
  Prng prng(31);
  for (int trial = 0; trial < 10; ++trial) {
    auto grid = MakeGrid(4, 5, prng);
    SolverOptions with, without;
    with.presolve = true;
    without.presolve = false;
    auto a = Solve(grid.problem, SolverKind::kLbfgs, with).ValueOrDie();
    auto b = Solve(grid.problem, SolverKind::kLbfgs, without).ValueOrDie();
    for (size_t i = 0; i < a.p.size(); ++i) {
      EXPECT_NEAR(a.p[i], b.p[i], 1e-6);
    }
  }
}

TEST(SolverStressTest, DuplicateRowsAreHarmless) {
  // Redundant constraints make the dual rank-deficient; the optimum must
  // be unchanged (entropy is strictly concave in p).
  Prng prng(32);
  auto grid = MakeGrid(3, 4, prng);
  auto baseline = Solve(grid.problem).ValueOrDie();

  ConstraintSystem doubled(grid.problem.num_vars);
  // Reconstruct the same constraints twice.
  for (int round = 0; round < 2; ++round) {
    const auto& m = grid.problem.eq;
    for (size_t r = 0; r < m.rows(); ++r) {
      LinearConstraint c;
      for (size_t k = m.row_offsets()[r]; k < m.row_offsets()[r + 1]; ++k) {
        c.vars.push_back(m.col_indices()[k]);
        c.coefs.push_back(m.values()[k]);
      }
      c.rhs = grid.problem.eq_rhs[r];
      doubled.Add(std::move(c));
    }
  }
  auto doubled_problem = BuildProblem(doubled).ValueOrDie();
  auto result = Solve(doubled_problem).ValueOrDie();
  for (size_t i = 0; i < baseline.p.size(); ++i) {
    EXPECT_NEAR(result.p[i], baseline.p[i], 1e-6);
  }
}

TEST(SolverStressTest, InequalityKktConditions) {
  // For   max H  s.t.  sum p = 1,  p0 + p1 <= cap:
  // either the cap is slack and the solution is uniform, or it binds and
  // p0 = p1 = cap/2 with the rest uniform on the remaining mass.
  for (double cap : {0.05, 0.2, 0.5, 0.9}) {
    ConstraintSystem system(5);
    system.Add(Eq({0, 1, 2, 3, 4}, 1.0));
    system.Add(Row({0, 1}, {1.0, 1.0}, Relation::kLe, cap));
    auto problem = BuildProblem(system).ValueOrDie();
    auto result = Solve(problem).ValueOrDie();
    const double unconstrained_pair = 2.0 / 5.0;
    if (cap >= unconstrained_pair) {
      for (double v : result.p) EXPECT_NEAR(v, 0.2, 1e-6) << "cap " << cap;
    } else {
      EXPECT_NEAR(result.p[0], cap / 2, 1e-6);
      EXPECT_NEAR(result.p[1], cap / 2, 1e-6);
      for (int i = 2; i < 5; ++i) {
        EXPECT_NEAR(result.p[i], (1.0 - cap) / 3, 1e-6) << "cap " << cap;
      }
    }
  }
}

TEST(SolverStressTest, MixedEqualityInequalityWithZeroForcing) {
  // Zero-forced variables + active inequality + free block, all at once.
  ConstraintSystem system(6);
  system.Add(Eq({0, 1}, 0.0));                             // p0 = p1 = 0
  system.Add(Eq({0, 1, 2, 3, 4, 5}, 1.0));                 // total mass
  system.Add(Row({2}, {1.0}, Relation::kLe, 0.1));         // cap p2
  system.Add(Row({3}, {1.0}, Relation::kGe, 0.4));         // floor p3
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_NEAR(result.p[0], 0.0, 1e-9);
  EXPECT_NEAR(result.p[1], 0.0, 1e-9);
  EXPECT_NEAR(result.p[2], 0.1, 1e-5);
  EXPECT_NEAR(result.p[3], 0.4, 1e-5);
  EXPECT_NEAR(result.p[4], 0.25, 1e-5);
  EXPECT_NEAR(result.p[5], 0.25, 1e-5);
}

class GridScaleTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GridScaleTest, AllScalesReachProductForm) {
  const auto [rows, cols, seed] = GetParam();
  Prng prng(static_cast<uint64_t>(seed));
  auto grid = MakeGrid(rows, cols, prng);
  auto result = Solve(grid.problem).ValueOrDie();
  EXPECT_TRUE(result.converged);
  // MaxEnt subject to both marginals is the product of the marginals.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double row_sum = 0.0, col_sum = 0.0;
      for (int cc = 0; cc < cols; ++cc) row_sum += grid.truth[r * cols + cc];
      for (int rr = 0; rr < rows; ++rr) col_sum += grid.truth[rr * cols + c];
      EXPECT_NEAR(result.p[r * cols + c], row_sum * col_sum, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, GridScaleTest,
    ::testing::Values(std::make_tuple(2, 2, 1), std::make_tuple(5, 3, 2),
                      std::make_tuple(10, 10, 3), std::make_tuple(1, 8, 4),
                      std::make_tuple(20, 5, 5), std::make_tuple(30, 30, 6)));

class CrossSolverScaleTest
    : public ::testing::TestWithParam<std::tuple<SolverKind, int>> {};

TEST_P(CrossSolverScaleTest, MatchesProductForm) {
  const auto [kind, size] = GetParam();
  Prng prng(static_cast<uint64_t>(size) * 17);
  auto grid = MakeGrid(size, size + 1, prng);
  SolverOptions options;
  options.max_iterations = 50000;
  auto result = Solve(grid.problem, kind, options).ValueOrDie();
  for (int r = 0; r < size; ++r) {
    for (int c = 0; c < size + 1; ++c) {
      double row_sum = 0.0, col_sum = 0.0;
      for (int cc = 0; cc < size + 1; ++cc) {
        row_sum += grid.truth[r * (size + 1) + cc];
      }
      for (int rr = 0; rr < size; ++rr) {
        col_sum += grid.truth[rr * (size + 1) + c];
      }
      EXPECT_NEAR(result.p[r * (size + 1) + c], row_sum * col_sum, 1e-4)
          << SolverKindToString(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SolversAndSizes, CrossSolverScaleTest,
    ::testing::Combine(::testing::Values(SolverKind::kLbfgs, SolverKind::kGis,
                                         SolverKind::kIis,
                                         SolverKind::kNewton),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<SolverKind, int>>& info) {
      return std::string(SolverKindToString(std::get<0>(info.param))) +
             "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(SolverStressTest, TinyRhsValuesStayStable) {
  // RHS magnitudes like 1/14210 (paper scale) must not break conditioning.
  ConstraintSystem system(4);
  const double tiny = 1.0 / 14210.0;
  system.Add(Eq({0, 1}, tiny));
  system.Add(Eq({2, 3}, tiny * 3));
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.p[0], tiny / 2, 5e-9);
  EXPECT_NEAR(result.p[2], tiny * 1.5, 5e-9);
}

TEST(SolverStressTest, ManyBlocksScaleLinearly) {
  // 500 independent 2x2 blocks: 2,000 variables, 2,000 constraints. The
  // solve must converge; this guards against accidental O(n^2) behavior
  // in assembly or the solver loop.
  const size_t blocks = 500;
  ConstraintSystem system(blocks * 4);
  for (size_t b = 0; b < blocks; ++b) {
    const uint32_t base = static_cast<uint32_t>(b * 4);
    const double mass = 1.0 / blocks;
    system.Add(Eq({base, base + 1}, mass * 0.6));
    system.Add(Eq({base + 2, base + 3}, mass * 0.4));
    system.Add(Eq({base, base + 2}, mass * 0.5));
    system.Add(Eq({base + 1, base + 3}, mass * 0.5));
  }
  auto problem = BuildProblem(system).ValueOrDie();
  auto result = Solve(problem).ValueOrDie();
  EXPECT_LT(result.max_violation, 1e-7);
}

}  // namespace
}  // namespace pme::maxent
