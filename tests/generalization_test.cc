// Tests for the generalization substrate (anonymize/generalization):
// hierarchies, k-anonymity search, and the bridge to Privacy-MaxEnt —
// the paper's first future-work direction.

#include <gtest/gtest.h>

#include "anonymize/generalization.h"
#include "core/privacy_maxent.h"
#include "data/adult_synth.h"
#include "tests/test_util.h"

namespace pme::anonymize {
namespace {

TEST(ValueHierarchyTest, FlatHasIdentityAndSuppression) {
  auto h = ValueHierarchy::Flat(4);
  EXPECT_EQ(h.num_levels(), 2u);
  EXPECT_EQ(h.NumGroups(0), 4u);
  EXPECT_EQ(h.NumGroups(1), 1u);
  for (uint32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(h.GroupOf(0, v), v);
    EXPECT_EQ(h.GroupOf(1, v), 0u);
  }
  EXPECT_EQ(h.LabelOf(1, 0), "*");
}

TEST(ValueHierarchyTest, IntermediateLevelsValidated) {
  // 4 values -> 2 groups -> *.
  auto h = ValueHierarchy::Create(4, {{0, 0, 1, 1}}, {{"low", "high"}})
               .ValueOrDie();
  EXPECT_EQ(h.num_levels(), 3u);
  EXPECT_EQ(h.NumGroups(1), 2u);
  EXPECT_EQ(h.GroupOf(1, 0), 0u);
  EXPECT_EQ(h.GroupOf(1, 3), 1u);
  EXPECT_EQ(h.LabelOf(1, 1), "high");

  // Wrong arity.
  EXPECT_FALSE(ValueHierarchy::Create(4, {{0, 0, 1}}, {{"a", "b"}}).ok());
  // Labels don't match groups.
  EXPECT_FALSE(ValueHierarchy::Create(4, {{0, 0, 1, 1}}, {{"only"}}).ok());
}

TEST(ValueHierarchyTest, NonCoarseningRejected) {
  // Level 1 merges {0,1}; level 2 must not split them apart again.
  auto r = ValueHierarchy::Create(
      4, {{0, 0, 1, 1}, {0, 1, 1, 1}},
      {{"a", "b"}, {"x", "y"}});
  EXPECT_FALSE(r.ok());
}

TEST(GeneralizerTest, SearchReachesKAnonymity) {
  data::AdultSynthOptions options;
  options.num_records = 800;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  auto generalizer = Generalizer::CreateFlat(&dataset).ValueOrDie();

  for (size_t k : {2, 5, 20}) {
    auto levels = generalizer.SearchKAnonymous(k).ValueOrDie();
    EXPECT_GE(generalizer.MinClassSize(levels), k)
        << "k=" << k << " levels=" << levels.ToString();
  }
}

TEST(GeneralizerTest, RawDataUsuallyViolatesKAnonymity) {
  data::AdultSynthOptions options;
  options.num_records = 800;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  auto generalizer = Generalizer::CreateFlat(&dataset).ValueOrDie();
  GeneralizationLevels raw;
  raw.level.assign(8, 0);
  // 8 QI attributes over 800 records: essentially all tuples unique.
  EXPECT_LT(generalizer.MinClassSize(raw), 2u);
}

TEST(GeneralizerTest, KLargerThanNFails) {
  auto dataset = pme::testing::MakeFigure1Dataset();
  auto generalizer = Generalizer::CreateFlat(&dataset).ValueOrDie();
  EXPECT_FALSE(generalizer.SearchKAnonymous(11).ok());
  EXPECT_FALSE(generalizer.SearchKAnonymous(0).ok());
}

TEST(GeneralizerTest, FullSuppressionIsOneClass) {
  auto dataset = pme::testing::MakeFigure1Dataset();
  auto generalizer = Generalizer::CreateFlat(&dataset).ValueOrDie();
  GeneralizationLevels top;
  top.level.assign(generalizer.qi_attrs().size(), 1);  // Flat: level 1 = '*'
  auto classes = generalizer.Classes(top);
  for (uint32_t c : classes) EXPECT_EQ(c, 0u);
  EXPECT_EQ(generalizer.MinClassSize(top), dataset.num_records());
}

TEST(GeneralizerTest, BridgeToMaxEntAnalysis) {
  // Future-work bridge: generalize to k-anonymity, view the equivalence
  // classes as buckets, and run the standard Privacy-MaxEnt analysis.
  data::AdultSynthOptions options;
  options.num_records = 600;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  auto generalizer = Generalizer::CreateFlat(&dataset).ValueOrDie();
  auto levels = generalizer.SearchKAnonymous(5).ValueOrDie();
  auto bz = generalizer.ToBucketizedTable(levels).ValueOrDie();

  EXPECT_EQ(bz.table.num_records(), 600u);
  EXPECT_GE(bz.table.num_buckets(), 1u);
  for (uint32_t b = 0; b < bz.table.num_buckets(); ++b) {
    EXPECT_GE(bz.table.BucketQis(b).size(), 5u) << "k-anonymity class size";
  }

  knowledge::KnowledgeBase empty;
  auto analysis = core::Analyze(bz.table, empty).ValueOrDie();
  EXPECT_LT(analysis.solver.max_violation, 1e-7);
  EXPECT_GT(analysis.estimation_accuracy, 0.0);
}

TEST(GeneralizerTest, CoarserLevelsNeverDecreaseClassSize) {
  data::AdultSynthOptions options;
  options.num_records = 400;
  auto dataset = data::GenerateAdultLike(options).ValueOrDie();
  auto generalizer = Generalizer::CreateFlat(&dataset).ValueOrDie();
  GeneralizationLevels fine, coarse;
  fine.level.assign(8, 0);
  coarse.level.assign(8, 0);
  coarse.level[0] = 1;
  coarse.level[3] = 1;
  EXPECT_LE(generalizer.MinClassSize(fine),
            generalizer.MinClassSize(coarse));
}

}  // namespace
}  // namespace pme::anonymize
