// Tests for the fault-tolerant solve pipeline: the failpoint registry,
// deadlines and cancellation tokens, the per-component fallback chain of
// SolveDecomposed, thread-pool exception containment, and the
// malformed-input corpus for the CSV and knowledge parsers.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "constraints/bk_compiler.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "core/privacy_maxent.h"
#include "data/csv.h"
#include "knowledge/knowledge_base.h"
#include "knowledge/parser.h"
#include "maxent/decomposed.h"
#include "maxent/problem.h"
#include "maxent/solver.h"
#include "tests/test_util.h"

#ifndef PME_TEST_CORPUS_DIR
#define PME_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace pme {
namespace {

using anonymize::BucketizedTable;
using constraints::ConstraintSystem;
using constraints::TermIndex;
using pme::testing::kQ4;
using pme::testing::kQ5;
using pme::testing::kS1;
using pme::testing::kS5;

/// Deactivates every failpoint when a test exits, configured or not.
struct ScopedFailpoints {
  explicit ScopedFailpoints(std::string_view spec = "") {
    EXPECT_TRUE(failpoint::Configure(spec).ok()) << spec;
  }
  ~ScopedFailpoints() { failpoint::Reset(); }
};

ConstraintSystem InvariantSystem(const BucketizedTable& t,
                                 const TermIndex& index) {
  ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(t, index));
  return system;
}

void AddConditional(const BucketizedTable& t, const TermIndex& index,
                    ConstraintSystem* system, uint32_t q, uint32_t s,
                    double value) {
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(q, {s}, value));
  auto compiled = constraints::CompileKnowledge(kb, t, index).ValueOrDie();
  system->AddAll(std::move(compiled.constraints));
}

/// Figure 1 with two independent coupled components (bucket 1 via q4,
/// bucket 2 via q5) and bucket 0 on the closed form.
maxent::MaxEntProblem TwoComponentProblem(const BucketizedTable& t,
                                          const TermIndex& index,
                                          ConstraintSystem* system) {
  AddConditional(t, index, system, kQ4, kS1, 0.9);
  AddConditional(t, index, system, kQ5, kS5, 0.8);
  return maxent::BuildProblem(*system).ValueOrDie();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string CorpusPath(const std::string& name) {
  return std::string(PME_TEST_CORPUS_DIR) + "/" + name;
}

// ------------------------------------------------------------ failpoints

TEST(FailpointTest, ExactTriggerFiresOnlyOnTheNthHit) {
  ScopedFailpoints fp("site@2");
  EXPECT_FALSE(failpoint::Hit("site"));
  EXPECT_TRUE(failpoint::Hit("site"));
  EXPECT_FALSE(failpoint::Hit("site"));
  EXPECT_EQ(failpoint::HitCount("site"), 3u);
  EXPECT_EQ(failpoint::HitCount("other"), 0u);
}

TEST(FailpointTest, AlwaysAndOnwardTriggers) {
  ScopedFailpoints fp("every,tail@2+");
  EXPECT_TRUE(failpoint::Hit("every"));
  EXPECT_TRUE(failpoint::Hit("every"));
  EXPECT_FALSE(failpoint::Hit("tail"));
  EXPECT_TRUE(failpoint::Hit("tail"));
  EXPECT_TRUE(failpoint::Hit("tail"));
}

TEST(FailpointTest, UnconfiguredSitesAreInert) {
  ScopedFailpoints fp("armed@1");
  EXPECT_FALSE(failpoint::Hit("somewhere_else"));
  EXPECT_TRUE(failpoint::Hit("armed"));
}

TEST(FailpointTest, MalformedSpecIsRejectedAndKeepsThePrevious) {
  ScopedFailpoints fp("keep@1");
  EXPECT_FALSE(failpoint::Configure("bad@x").ok());
  EXPECT_FALSE(failpoint::Configure("bad@0").ok());
  EXPECT_NE(failpoint::ActiveSpec().find("keep"), std::string::npos);
  EXPECT_TRUE(failpoint::Hit("keep"));
}

TEST(FailpointTest, ResetDeactivatesEverything) {
  ASSERT_TRUE(failpoint::Configure("x").ok());
  EXPECT_TRUE(failpoint::Hit("x"));
  failpoint::Reset();
  EXPECT_FALSE(failpoint::Hit("x"));
  EXPECT_TRUE(failpoint::ActiveSpec().empty());
}

// ------------------------------------------------- deadline + cancellation

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
}

TEST(DeadlineTest, ZeroOrNegativeBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterSeconds(0.0).Expired());
  EXPECT_TRUE(Deadline::AfterSeconds(-3.0).Expired());
  EXPECT_EQ(Deadline::AfterSeconds(0.0).RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, EarlierPrefersTheFiniteAndSoonerDeadline) {
  const Deadline far = Deadline::AfterSeconds(1e6);
  const Deadline near = Deadline::AfterSeconds(0.0);
  EXPECT_TRUE(Deadline::Earlier(far, near).Expired());
  EXPECT_TRUE(Deadline::Earlier(near, far).Expired());
  EXPECT_FALSE(Deadline::Earlier(Deadline::Infinite(), far).is_infinite());
  EXPECT_TRUE(
      Deadline::Earlier(Deadline::Infinite(), Deadline::Infinite())
          .is_infinite());
}

TEST(DeadlineTest, SkipFailpointExpiresFiniteDeadlinesOnly) {
  ScopedFailpoints fp("deadline_skip");
  EXPECT_TRUE(Deadline::AfterSeconds(1e6).Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(CancellationTest, SourceCancelsEveryToken) {
  CancellationSource source;
  const CancellationToken a = source.token();
  const CancellationToken b = source.token();
  EXPECT_FALSE(a.cancelled());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_FALSE(CancellationToken().cancelled());
}

TEST(CancellationTest, CheckInterruptReportsCancelBeforeDeadline) {
  CancellationSource source;
  source.Cancel();
  EXPECT_EQ(CheckInterrupt(Deadline::AfterSeconds(0.0), source.token()),
            StatusCode::kCancelled);
  EXPECT_EQ(CheckInterrupt(Deadline::AfterSeconds(0.0), CancellationToken()),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CheckInterrupt(Deadline::Infinite(), CancellationToken()),
            StatusCode::kOk);
}

// ----------------------------------------------- solver interrupt semantics

TEST(SolverInterruptTest, ExpiredDeadlineReturnsBestSoFarNotAnError) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = TwoComponentProblem(t, index, &system);

  maxent::SolverOptions options;
  options.deadline = Deadline::AfterSeconds(0.0);
  auto result = maxent::Solve(problem, maxent::SolverKind::kLbfgs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().termination, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(result.value().converged);
  ASSERT_EQ(result.value().p.size(), problem.num_vars);
  for (double v : result.value().p) EXPECT_TRUE(std::isfinite(v));
}

TEST(SolverInterruptTest, CancelledTokenStopsEverySolverKind) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = maxent::BuildProblem(system).ValueOrDie();

  CancellationSource source;
  source.Cancel();
  maxent::SolverOptions options;
  options.cancel = source.token();
  for (auto kind :
       {maxent::SolverKind::kLbfgs, maxent::SolverKind::kGis,
        maxent::SolverKind::kIis, maxent::SolverKind::kSteepest,
        maxent::SolverKind::kNewton, maxent::SolverKind::kProjected}) {
    auto result = maxent::Solve(problem, kind, options);
    ASSERT_TRUE(result.ok()) << maxent::SolverKindToString(kind);
    EXPECT_EQ(result.value().termination, StatusCode::kCancelled)
        << maxent::SolverKindToString(kind);
  }
}

TEST(SolverInterruptTest, WarmStartResumesAtTheSolution) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = TwoComponentProblem(t, index, &system);

  auto cold = maxent::Solve(problem).ValueOrDie();
  ASSERT_TRUE(cold.converged);
  ASSERT_FALSE(cold.dual_lambda.empty());

  maxent::SolverOptions options;
  options.warm_start = &cold.dual_lambda;
  auto warm = maxent::Solve(problem, maxent::SolverKind::kLbfgs, options)
                  .ValueOrDie();
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2u);
  EXPECT_LE(warm.iterations, cold.iterations);
}

// ------------------------------------------------------------- fallback

TEST(FallbackTest, NanGradientFailpointDegradesToProjectedRestart) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = TwoComponentProblem(t, index, &system);
  auto clean = maxent::Solve(problem).ValueOrDie();

  ScopedFailpoints fp("lbfgs_nan@1");
  size_t attempts = 0;
  auto result = maxent::SolveWithFallback(
      problem, maxent::SolverKind::kLbfgs, maxent::SolverOptions{}, &attempts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded);
  EXPECT_GE(attempts, 2u);
  EXPECT_EQ(result.value().kind, maxent::SolverKind::kProjected);
  ASSERT_EQ(result.value().p.size(), clean.p.size());
  for (size_t i = 0; i < clean.p.size(); ++i) {
    EXPECT_NEAR(result.value().p[i], clean.p[i], 1e-5) << i;
  }
}

TEST(FallbackTest, SpuriousNonConvergenceFailpointTriggersTheLadder) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = TwoComponentProblem(t, index, &system);

  ScopedFailpoints fp("lbfgs_spurious@1");
  size_t attempts = 0;
  auto result = maxent::SolveWithFallback(
      problem, maxent::SolverKind::kLbfgs, maxent::SolverOptions{}, &attempts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded);
  EXPECT_GE(attempts, 2u);
  EXPECT_LT(result.value().max_violation, 1e-6);
}

TEST(FallbackTest, AcceptableFirstRungIsNotDegraded) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = TwoComponentProblem(t, index, &system);

  size_t attempts = 0;
  auto result = maxent::SolveWithFallback(
      problem, maxent::SolverKind::kLbfgs, maxent::SolverOptions{}, &attempts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().degraded);
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(result.value().kind, maxent::SolverKind::kLbfgs);
}

// ------------------------------------------------------ decomposed solve

TEST(DecomposedRobustnessTest, FaultIsolationKeepsUntouchedComponentsExact) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);

  auto clean = maxent::SolveDecomposed(t, index, system).ValueOrDie();
  ASSERT_EQ(clean.components_solved, 2u);

  // Poison block 0 (bucket 1, q4) with a NaN gradient and spend block 1's
  // (bucket 2, q5) whole deadline budget before it starts. Serial solve
  // keeps the hit order — and therefore the targeting — deterministic.
  ScopedFailpoints fp("lbfgs_nan@1,block_deadline@2");
  maxent::SolverOptions options;
  options.threads = 1;
  auto faulted = maxent::SolveDecomposed(t, index, system,
                                         maxent::SolverKind::kLbfgs, options);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  const auto& result = faulted.value();

  EXPECT_EQ(result.termination, StatusCode::kOk);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.components_solved, 0u);
  EXPECT_EQ(result.components_degraded, 2u);
  EXPECT_EQ(result.components_failed, 0u);
  ASSERT_EQ(result.component_outcomes.size(), 2u);

  // Block 0 recovered on the projected-restart rung.
  EXPECT_TRUE(result.component_outcomes[0].degraded);
  EXPECT_FALSE(result.component_outcomes[0].used_prior);
  EXPECT_EQ(result.component_outcomes[0].solver,
            maxent::SolverKind::kProjected);
  // Block 1 never got to iterate: it kept the closed-form prior.
  EXPECT_TRUE(result.component_outcomes[1].used_prior);
  EXPECT_EQ(result.component_outcomes[1].status,
            StatusCode::kDeadlineExceeded);

  // The untouched closed-form bucket (bucket 0) is bit-identical to the
  // clean run.
  const auto [b0_first, b0_last] = index.BucketRange(0);
  for (uint32_t v = b0_first; v < b0_last; ++v) {
    EXPECT_NEAR(result.p[v], clean.p[v], 1e-10) << "var " << v;
  }
  // The recovered block agrees with the clean solve to solver tolerance.
  const auto [b1_first, b1_last] = index.BucketRange(1);
  for (uint32_t v = b1_first; v < b1_last; ++v) {
    EXPECT_NEAR(result.p[v], clean.p[v], 1e-5) << "var " << v;
  }
  for (double v : result.p) EXPECT_TRUE(std::isfinite(v));
}

TEST(DecomposedRobustnessTest, ThrowingBlockTaskDegradesOnlyItsComponent) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);
  auto clean = maxent::SolveDecomposed(t, index, system).ValueOrDie();

  ScopedFailpoints fp("pool_task_throw@1");
  maxent::SolverOptions options;
  options.threads = 1;
  auto result = maxent::SolveDecomposed(t, index, system,
                                        maxent::SolverKind::kLbfgs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().termination, StatusCode::kOk);
  EXPECT_TRUE(result.value().degraded);
  EXPECT_EQ(result.value().components_failed, 1u);
  EXPECT_EQ(result.value().components_solved, 1u);
  ASSERT_EQ(result.value().component_outcomes.size(), 2u);
  EXPECT_TRUE(result.value().component_outcomes[0].used_prior);
  EXPECT_EQ(result.value().component_outcomes[0].status,
            StatusCode::kInternal);
  // The surviving block still matches the clean run.
  const auto [b2_first, b2_last] = index.BucketRange(2);
  for (uint32_t v = b2_first; v < b2_last; ++v) {
    EXPECT_NEAR(result.value().p[v], clean.p[v], 1e-6) << "var " << v;
  }
}

TEST(DecomposedRobustnessTest, FallbackOffRestoresFailFastPropagation) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);
  AddConditional(t, index, &system, kQ5, kS5, 0.8);

  ScopedFailpoints fp("pool_task_throw@1");
  maxent::SolverOptions options;
  options.threads = 1;
  options.fallback = false;
  auto result = maxent::SolveDecomposed(t, index, system,
                                        maxent::SolverKind::kLbfgs, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("pool_task_throw"),
            std::string::npos);
}

TEST(DecomposedRobustnessTest, CancelledRunReturnsPartialAnswerMarked) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);

  CancellationSource source;
  source.Cancel();
  maxent::SolverOptions options;
  options.cancel = source.token();
  auto result = maxent::SolveDecomposed(t, index, system,
                                        maxent::SolverKind::kLbfgs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().termination, StatusCode::kCancelled);
  EXPECT_TRUE(result.value().degraded);
  for (double v : result.value().p) EXPECT_TRUE(std::isfinite(v));
}

// ------------------------------------------------- thread pool containment

TEST(ThreadPoolRobustnessTest, TaskExceptionSurfacesAsStatusFromWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&] { ++ran; });
  pool.Submit([&] { throw std::runtime_error("task boom"); });
  pool.Submit([&] { ++ran; });
  const Status status = pool.Wait();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("task boom"), std::string::npos);
  EXPECT_EQ(ran.load(), 2);
  // The error was consumed: the pool is reusable with a clean slate.
  pool.Submit([&] { ++ran; });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolRobustnessTest, ParallelForAttemptsEveryIndexDespiteThrow) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::atomic<bool>> ran(8);
    for (auto& r : ran) r = false;
    const Status status =
        ThreadPool::ParallelFor(threads, ran.size(), [&](size_t i) {
          if (i == 2) throw std::runtime_error("index boom");
          ran[i] = true;
        });
    EXPECT_FALSE(status.ok()) << threads;
    EXPECT_EQ(status.code(), StatusCode::kInternal) << threads;
    for (size_t i = 0; i < ran.size(); ++i) {
      if (i == 2) continue;
      EXPECT_TRUE(ran[i].load()) << "threads " << threads << " index " << i;
    }
  }
}

// --------------------------------------------------- PR2 ride-along tests

TEST(StallGuardTest, PlateauExitsLongBeforeTheIterationBudget) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  auto problem = TwoComponentProblem(t, index, &system);

  // ftol = 1.0 makes every accepted step count as stalled, so the guard
  // alone bounds the iteration count far below the 20000 budget.
  maxent::SolverOptions options;
  options.ftol = 1.0;
  options.max_stall_iterations = 1;
  options.tolerance = 1e-14;  // unreachable: only the guard can stop it

  auto steepest =
      maxent::Solve(problem, maxent::SolverKind::kSteepest, options)
          .ValueOrDie();
  EXPECT_LE(steepest.iterations, 10u);
  EXPECT_GE(steepest.iterations, 1u);

  auto lbfgs = maxent::Solve(problem, maxent::SolverKind::kLbfgs, options)
                   .ValueOrDie();
  EXPECT_LE(lbfgs.iterations, 10u);
  EXPECT_GE(lbfgs.iterations, 1u);
}

TEST(MonolithicFallbackTest, FractionRoutesBetweenWholeAndBlockSolves) {
  auto t = pme::testing::MakeFigure1Table();
  auto index = TermIndex::Build(t);
  auto system = InvariantSystem(t, index);
  AddConditional(t, index, &system, kQ4, kS1, 0.9);

  maxent::SolverOptions whole, blocks;
  whole.monolithic_fallback_fraction = 0.0;   // any coupled block routes
  blocks.monolithic_fallback_fraction = 2.0;  // never route
  auto mono = maxent::SolveDecomposed(t, index, system,
                                      maxent::SolverKind::kLbfgs, whole)
                  .ValueOrDie();
  auto block = maxent::SolveDecomposed(t, index, system,
                                       maxent::SolverKind::kLbfgs, blocks)
                   .ValueOrDie();
  EXPECT_TRUE(mono.used_monolithic_fallback);
  EXPECT_FALSE(block.used_monolithic_fallback);
  EXPECT_TRUE(block.component_outcomes.size() >= 1u);
  ASSERT_EQ(mono.p.size(), block.p.size());
  for (size_t i = 0; i < mono.p.size(); ++i) {
    EXPECT_NEAR(mono.p[i], block.p[i], 1e-6) << i;
  }
}

// --------------------------------------------------- malformed-input corpus

TEST(CsvCorpusTest, BadFieldCountReportsLineAndByteOffset) {
  data::CsvReadOptions options;
  options.sensitive_attributes = {"disease"};
  auto result = data::ReadCsv(CorpusPath("bad_field_count.csv"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("byte offset 39"),
            std::string::npos)
      << result.status().message();
}

TEST(CsvCorpusTest, EmptyFileIsACleanError) {
  data::CsvReadOptions options;
  options.sensitive_attributes = {"disease"};
  auto result = data::ReadCsv(CorpusPath("empty.csv"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvCorpusTest, RaggedTailReportsTheOffendingLine) {
  data::CsvReadOptions options;
  options.sensitive_attributes = {"disease"};
  auto result = data::ReadCsv(CorpusPath("ragged_tail.csv"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("byte offset 68"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("expected 3 fields, got 5"),
            std::string::npos)
      << result.status().message();
}

TEST(KnowledgeCorpusTest, EveryMalformedFileFailsCleanlyWithALocation) {
  const char* files[] = {"bad_relation.bk", "prob_out_of_range.bk",
                         "trailing.bk", "unknown_head.bk",
                         "unterminated.bk"};
  for (const char* name : files) {
    knowledge::KnowledgeBase kb;
    knowledge::ParserContext context;
    const Status status =
        knowledge::ParseKnowledge(ReadFileOrDie(CorpusPath(name)), context,
                                  &kb);
    ASSERT_FALSE(status.ok()) << name;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << name;
    EXPECT_NE(status.message().find("line "), std::string::npos)
        << name << ": " << status.message();
    EXPECT_NE(status.message().find("byte offset "), std::string::npos)
        << name << ": " << status.message();
  }
}

TEST(KnowledgeCorpusTest, OutOfRangeProbabilityPointsAtTheSecondLine) {
  knowledge::KnowledgeBase kb;
  knowledge::ParserContext context;
  const Status status = knowledge::ParseKnowledge(
      ReadFileOrDie(CorpusPath("prob_out_of_range.bk")), context, &kb);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2 (byte offset 17)"),
            std::string::npos)
      << status.message();
}

// ------------------------------------------------------------- end to end

TEST(EndToEndRobustnessTest, AnalysisNeverCrashesUnderTheFailpointMatrix) {
  // CI runs this binary under a PME_FAILPOINTS matrix. Earlier tests have
  // already consumed the lazy env read, so re-arm the spec explicitly;
  // without the env variable this is a clean-run smoke test.
  const char* env = std::getenv("PME_FAILPOINTS");
  ScopedFailpoints fp(env == nullptr ? "" : env);

  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ4, {kS1}, 0.9));
  kb.Add(knowledge::AbstractConditional(kQ5, {kS5}, 0.8));
  core::AnalysisOptions options;
  options.solver_options.threads = 1;
  options.solver_options.deadline = Deadline::AfterSeconds(30.0);

  auto analysis = core::Analyze(t, kb, options);
  if (!analysis.ok()) {
    // A hard failure must still be a clean Status, never a crash.
    EXPECT_FALSE(analysis.status().message().empty());
    return;
  }
  const auto& posterior = analysis.value().posterior;
  for (uint32_t q = 0; q < posterior.num_qi(); ++q) {
    for (uint32_t s = 0; s < posterior.num_sa(); ++s) {
      EXPECT_TRUE(std::isfinite(posterior.Conditional(q, s)));
    }
  }
  for (double v : analysis.value().solver.p) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace pme
