// Tests for src/common: Status/Result, PRNG, math utilities, string
// utilities, the flag parser, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/flags.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/prng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pme {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "infeasible");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotConverged),
               "not_converged");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "numerical_error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalve(int x, int* out) {
  PME_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalve(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalve(7, &out).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------ Prng

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = prng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(PrngTest, NextBoundedCoversRangeWithoutBias) {
  Prng prng(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[prng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(PrngTest, GaussianMomentsAreSane) {
  Prng prng(11);
  double sum = 0.0, sq = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double g = prng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.02);
}

TEST(PrngTest, CategoricalRespectsWeights) {
  Prng prng(13);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[prng.NextCategorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(kDraws), 0.6, 0.01);
}

TEST(PrngTest, ShufflePreservesMultiset) {
  Prng prng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  prng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------- MathUtil

TEST(MathUtilTest, SafeExpClampsExtremes) {
  EXPECT_TRUE(std::isfinite(SafeExp(1e6)));
  EXPECT_GT(SafeExp(1e6), 1e300);
  EXPECT_GE(SafeExp(-1e6), 0.0);
  EXPECT_NEAR(SafeExp(1.0), std::exp(1.0), 1e-12);
}

TEST(MathUtilTest, XLogXConvention) {
  EXPECT_EQ(XLogX(0.0), 0.0);
  EXPECT_EQ(XLogX(-1.0), 0.0);
  EXPECT_NEAR(XLogX(1.0), 0.0, 1e-15);
  EXPECT_NEAR(XLogX(0.5), 0.5 * std::log(0.5), 1e-15);
}

TEST(MathUtilTest, EntropyUniformIsLogN) {
  std::vector<double> p(8, 1.0 / 8);
  EXPECT_NEAR(Entropy(p), std::log(8.0), 1e-12);
}

TEST(MathUtilTest, EntropyOfPointMassIsZero) {
  EXPECT_NEAR(Entropy({1.0, 0.0, 0.0}), 0.0, 1e-15);
}

TEST(MathUtilTest, KlDivergenceProperties) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.9, 0.1};
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-15);
  // Zero p-entries contribute nothing even against zero q.
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.0, 1.0}), 0.0, 1e-15);
  // Zero q against positive p is floored, not infinite.
  EXPECT_TRUE(std::isfinite(KlDivergence({1.0, 0.0}, {0.0, 1.0})));
}

TEST(MathUtilTest, LogSumExpStability) {
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({-1000.0, -1000.0}), -1000.0 + std::log(2.0), 1e-9);
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
}

TEST(MathUtilTest, VectorOps) {
  std::vector<double> a = {3.0, -4.0};
  EXPECT_NEAR(TwoNorm(a), 5.0, 1e-15);
  EXPECT_NEAR(InfNorm(a), 4.0, 1e-15);
  std::vector<double> b = {1.0, 2.0};
  EXPECT_NEAR(Dot(a, b), -5.0, 1e-15);
  Axpy(2.0, b, a);  // a = {5, 0}
  EXPECT_NEAR(a[0], 5.0, 1e-15);
  EXPECT_NEAR(a[1], 0.0, 1e-15);
}

TEST(MathUtilTest, NormalizeInPlace) {
  std::vector<double> v = {1.0, 3.0};
  EXPECT_TRUE(NormalizeInPlace(v));
  EXPECT_NEAR(v[0], 0.25, 1e-15);
  EXPECT_NEAR(v[1], 0.75, 1e-15);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_FALSE(NormalizeInPlace(zeros));
}

TEST(MathUtilTest, BinomialCoefficient) {
  EXPECT_EQ(BinomialCoefficient(8, 0), 1.0);
  EXPECT_EQ(BinomialCoefficient(8, 8), 1.0);
  EXPECT_EQ(BinomialCoefficient(8, 3), 56.0);
  EXPECT_EQ(BinomialCoefficient(8, 9), 0.0);
  EXPECT_EQ(BinomialCoefficient(5, -1), 0.0);
}

// ----------------------------------------------------------- StringUtil

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, ParseIntStrict) {
  long long v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4x", &v));
  EXPECT_FALSE(ParseInt("", &v));
}

TEST(StringUtilTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 123456.789, 1e-17, 0.0}) {
    double back = 0;
    ASSERT_TRUE(ParseDouble(FormatDouble(v), &back));
    EXPECT_EQ(back, v);
  }
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",   "--k=5",      "--name=fig5",
                        "--full", "positional", "--rate=0.5"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 0), 5);
  EXPECT_EQ(flags.GetString("name", ""), "fig5");
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 0.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, DefaultsApply) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {1, 3, 8}) {
    const size_t n = 257;
    std::vector<int> hits(n, 0);
    ThreadPool::ParallelFor(threads, n, [&hits](size_t i) { hits[i]++; });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSerialPathPreservesOrder) {
  std::vector<size_t> order;
  ThreadPool::ParallelFor(1, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(5), 5u);
}

TEST(FlagsTest, NonNumericFallsBackToDefault) {
  const char* argv[] = {"prog", "--k=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 3), 3);
}

// ---------------------------------------------------------------- Hash128

// Golden digests. The solution cache persists nothing today, but its keys
// must stay stable across compilers, platforms and refactors — a silent
// change to the mixer would turn every warm cache cold (or worse, alias
// distinct components). If one of these fails, the hash changed: bump the
// domain tags ("pme.row.v1" etc.) rather than silently re-keying.
TEST(Hash128Test, GoldenEmpty) {
  Hasher128 h;
  EXPECT_EQ(h.Finish().ToHex(), "af2a59084670eb50f5abfd97d5672c76");
}

TEST(Hash128Test, GoldenWordSequence) {
  Hasher128 h;
  h.Update(uint64_t{1});
  h.Update(uint64_t{2});
  h.Update(uint64_t{3});
  EXPECT_EQ(h.Finish().ToHex(), "09889f405272defb2be801244d84834c");
}

TEST(Hash128Test, GoldenString) {
  Hasher128 h;
  h.Update(std::string_view("privacy-maxent"));
  EXPECT_EQ(h.Finish().ToHex(), "5c112397829cf42b84f0c39e2ea7d72a");
}

TEST(Hash128Test, GoldenDoubles) {
  Hasher128 h;
  h.Update(0.25);
  h.Update(-3.5);
  EXPECT_EQ(h.Finish().ToHex(), "6a04a80432c4ab7a68bfb7ffab20bdb9");
}

TEST(Hash128Test, NegativeZeroCanonicalized) {
  Hasher128 a, b;
  a.Update(-0.0);
  b.Update(0.0);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(Hash128Test, OrderAndBoundariesMatter) {
  Hasher128 ab_c, a_bc;
  ab_c.Update(std::string_view("ab"));
  ab_c.Update(std::string_view("c"));
  a_bc.Update(std::string_view("a"));
  a_bc.Update(std::string_view("bc"));
  // Length prefixing keeps concatenation ambiguity out of the digest.
  EXPECT_NE(ab_c.Finish(), a_bc.Finish());

  Hasher128 fwd, rev;
  fwd.Update(uint64_t{7});
  fwd.Update(uint64_t{9});
  rev.Update(uint64_t{9});
  rev.Update(uint64_t{7});
  EXPECT_NE(fwd.Finish(), rev.Finish());
}

TEST(Hash128Test, SingleBitSensitivity) {
  Hasher128 a, b;
  a.Update(uint64_t{0});
  b.Update(uint64_t{1});
  const Hash128 ha = a.Finish(), hb = b.Finish();
  EXPECT_NE(ha, hb);
  // Both words must react — the warm index keys on the full digest but
  // shards on hi and the std-hasher uses lo.
  EXPECT_NE(ha.hi, hb.hi);
  EXPECT_NE(ha.lo, hb.lo);
}

TEST(Hash128Test, ComparisonAndHexFormat) {
  const Hash128 small{1, 2};
  const Hash128 big{2, 1};
  EXPECT_TRUE(small < big);
  EXPECT_FALSE(big < small);
  EXPECT_EQ(small.ToHex().size(), 32u);
  EXPECT_EQ(Hash128{}.ToHex(), std::string(32, '0'));
}

// ---------------------------------------------------------------- arena

TEST(ArenaTest, AllocationsAreSixteenByteAligned) {
  ArenaScope scope;
  for (size_t bytes : {1, 7, 8, 15, 16, 17, 100, 4096}) {
    void* p = internal::ScratchAllocate(bytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u) << bytes;
    internal::ScratchDeallocate(p);
  }
}

TEST(ArenaTest, ScopeResetReusesMemory) {
  // After a scope rewinds, the next scope's first allocation lands on the
  // same bump address — the steady state with zero heap traffic.
  Arena& arena = Arena::ThreadLocal();
  void* first = nullptr;
  {
    ArenaScope scope;
    first = internal::ScratchAllocate(512);
    ASSERT_NE(first, nullptr);
    EXPECT_GE(arena.BytesInUse(), 512u);
  }
  EXPECT_EQ(arena.BytesInUse(), 0u);
  {
    ArenaScope scope;
    void* again = internal::ScratchAllocate(512);
    EXPECT_EQ(again, first);
  }
}

TEST(ArenaTest, NestedScopesRewindOnlyTheirOwnAllocations) {
  Arena& arena = Arena::ThreadLocal();
  ArenaScope outer;
  internal::ScratchAllocate(256);
  const size_t outer_use = arena.BytesInUse();
  {
    ArenaScope inner;
    internal::ScratchAllocate(1024);
    EXPECT_GT(arena.BytesInUse(), outer_use);
  }
  EXPECT_EQ(arena.BytesInUse(), outer_use);
}

TEST(ArenaTest, ExhaustionGrowsNewChunks) {
  // Requests past the first chunk's capacity append doubled chunks; the
  // allocations keep succeeding and the reservation census grows.
  Arena arena;
  const size_t big = Arena::kMinChunkBytes;  // > capacity after the first
  void* a = arena.Allocate(big, 16);
  void* b = arena.Allocate(big, 16);
  void* c = arena.Allocate(4 * big, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_GE(arena.ReservedBytes(), 6 * big);
  // The blocks must not overlap.
  auto as_int = [](void* p) { return reinterpret_cast<uintptr_t>(p); };
  EXPECT_TRUE(as_int(a) + big <= as_int(b) || as_int(b) + big <= as_int(a));
  EXPECT_TRUE(as_int(b) + big <= as_int(c) || as_int(c) + 4 * big <= as_int(b));
}

TEST(ArenaTest, ScratchVectorDrawsFromArenaOnlyInScope) {
  Arena& arena = Arena::ThreadLocal();
  const ArenaStats before = arena.stats();
  {
    ScratchVector<double> v(1000, 1.0);  // in scope below? no — heap
    EXPECT_EQ(arena.stats().arena_allocs, before.arena_allocs);
  }
  {
    ArenaScope scope;
    ScratchVector<double> v(1000, 1.0);
    EXPECT_EQ(arena.stats().arena_allocs, before.arena_allocs + 1);
    EXPECT_GE(arena.stats().arena_bytes, before.arena_bytes + 8000);
  }
}

TEST(ArenaTest, KillSwitchRoutesScopedAllocationsToHeap) {
  Arena& arena = Arena::ThreadLocal();
  ASSERT_TRUE(Arena::Enabled());
  Arena::SetEnabled(false);
  const ArenaStats before = arena.stats();
  {
    ArenaScope scope;
    ScratchVector<double> v(100, 2.0);
    EXPECT_EQ(arena.stats().arena_allocs, before.arena_allocs);
    EXPECT_EQ(arena.stats().heap_fallback_allocs,
              before.heap_fallback_allocs + 1);
    EXPECT_EQ(arena.BytesInUse(), 0u);
  }
  Arena::SetEnabled(true);
}

TEST(ArenaTest, HeapBlocksOutliveTheScopeTheyMoveThrough) {
  // A container allocated outside any scope keeps valid heap memory even
  // when it is destroyed inside one (and vice versa): the per-block tag,
  // not ambient state, decides how deallocate behaves.
  ScratchVector<double> outside(257, 3.5);
  {
    ArenaScope scope;
    ScratchVector<double> moved = std::move(outside);
    EXPECT_EQ(moved.size(), 257u);
    EXPECT_EQ(moved[256], 3.5);
  }  // heap-tagged block freed here, inside the scope — must not leak/crash
  ScratchVector<double> reused;
  {
    ArenaScope scope;
    // Heap-tagged because the kill switch is irrelevant here: allocation
    // happens inside the scope, so this block is arena-tagged and must
    // NOT escape. Allocate the escaping copy outside instead.
    ScratchVector<double> scratch(64, 7.0);
    reused.assign(scratch.begin(), scratch.end());  // heap copy escapes
  }
  EXPECT_EQ(reused.size(), 64u);
  EXPECT_EQ(reused[63], 7.0);
}

TEST(ArenaTest, ArenasAreThreadLocal) {
  Arena& mine = Arena::ThreadLocal();
  Arena* theirs = nullptr;
  void* their_block = nullptr;
  std::thread t([&] {
    theirs = &Arena::ThreadLocal();
    ArenaScope scope;
    their_block = internal::ScratchAllocate(64);
  });
  t.join();
  EXPECT_NE(theirs, nullptr);
  EXPECT_NE(theirs, &mine);
  EXPECT_NE(their_block, nullptr);
  // This thread's scope depth and census are untouched by the other
  // thread's activity.
  EXPECT_FALSE(mine.InScope());
}

}  // namespace
}  // namespace pme
