// Tests for src/core: the posterior table, the estimation-accuracy
// measure (Section 7.1), privacy metrics, and the Analyze facade on the
// paper's worked examples.

#include <gtest/gtest.h>

#include <cmath>

#include "core/posterior.h"
#include "core/privacy_maxent.h"
#include "knowledge/knowledge_base.h"
#include "tests/test_util.h"

namespace pme::core {
namespace {

using pme::testing::kQ1;
using pme::testing::kQ2;
using pme::testing::kQ3;
using pme::testing::kQ4;
using pme::testing::kQ5;
using pme::testing::kQ6;
using pme::testing::kS1;
using pme::testing::kS2;
using pme::testing::kS3;
using pme::testing::kS4;
using pme::testing::kS5;

// -------------------------------------------------------- PosteriorTable

TEST(PosteriorTest, RowsAreDistributions) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(t, empty).ValueOrDie();
  for (uint32_t q = 0; q < analysis.posterior.num_qi(); ++q) {
    double sum = 0.0;
    for (uint32_t s = 0; s < analysis.posterior.num_sa(); ++s) {
      const double v = analysis.posterior.Conditional(q, s);
      EXPECT_GE(v, -1e-9);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << "q" << q + 1;
  }
}

TEST(PosteriorTest, NoKnowledgeMatchesPortionRule) {
  // With no knowledge, P*(s | q) must equal the bucket-portion rule.
  // q6 occurs only in bucket 3 whose SAs are {s2, s4, s5}: 1/3 each.
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(t, empty).ValueOrDie();
  EXPECT_NEAR(analysis.posterior.Conditional(kQ6, kS2), 1.0 / 3, 1e-6);
  EXPECT_NEAR(analysis.posterior.Conditional(kQ6, kS4), 1.0 / 3, 1e-6);
  EXPECT_NEAR(analysis.posterior.Conditional(kQ6, kS5), 1.0 / 3, 1e-6);
  EXPECT_NEAR(analysis.posterior.Conditional(kQ6, kS1), 0.0, 1e-9);
  // q1 spans buckets 1 (2 occurrences, SA portions s1:1/4 s2:2/4 s3:1/4)
  // and 2 (1 occurrence, portions s1:1/3 s3:1/3 s4:1/3):
  // P*(s1|q1) = (2/3)(1/4) + (1/3)(1/3) = 1/6 + 1/9 = 5/18.
  EXPECT_NEAR(analysis.posterior.Conditional(kQ1, kS1), 5.0 / 18, 1e-6);
}

TEST(PosteriorTest, GroundTruthMatchesTable) {
  auto t = pme::testing::MakeFigure1Table();
  auto truth = PosteriorTable::GroundTruth(t);
  for (uint32_t q = 0; q < t.num_qi_values(); ++q) {
    for (uint32_t s = 0; s < t.num_sa_values(); ++s) {
      EXPECT_NEAR(truth.Conditional(q, s), t.TrueConditional(q, s), 1e-12);
    }
  }
}

// --------------------------------------------------- EstimationAccuracy

TEST(EstimationAccuracyTest, ZeroForPerfectEstimate) {
  auto t = pme::testing::MakeFigure1Table();
  auto truth = PosteriorTable::GroundTruth(t);
  EXPECT_NEAR(EstimationAccuracy(truth, truth), 0.0, 1e-12);
}

TEST(EstimationAccuracyTest, PositiveForImperfectEstimate) {
  auto t = pme::testing::MakeFigure1Table();
  auto truth = PosteriorTable::GroundTruth(t);
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(t, empty).ValueOrDie();
  EXPECT_GT(EstimationAccuracy(truth, analysis.posterior), 0.0);
  EXPECT_NEAR(analysis.estimation_accuracy,
              EstimationAccuracy(truth, analysis.posterior), 1e-12);
}

TEST(EstimationAccuracyTest, KnowledgeImprovesAdversaryEstimate) {
  // Core claim of Figure 5: more (correct) knowledge drives the KL
  // distance down — privacy gets worse.
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase empty;
  auto base = Analyze(t, empty).ValueOrDie();

  knowledge::KnowledgeBase kb;
  // Knowledge derived from the original data: P(s1 | q2) = 1/2 is wrong —
  // use the true conditionals. Cathy/Helen (q2): s1 1/2, s4 1/2.
  kb.Add(knowledge::AbstractConditional(kQ2, {kS1}, 0.5));
  kb.Add(knowledge::AbstractConditional(kQ3, {kS2}, 0.5));
  auto informed = Analyze(t, kb).ValueOrDie();
  EXPECT_LT(informed.estimation_accuracy, base.estimation_accuracy);
}

// ---------------------------------------------------------- Facade shape

TEST(AnalyzeTest, ConstraintCensus) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.5));
  auto analysis = Analyze(t, kb).ValueOrDie();
  EXPECT_EQ(analysis.num_invariant_constraints, 18u);
  EXPECT_EQ(analysis.num_background_constraints, 1u);
  EXPECT_EQ(analysis.num_vacuous_statements, 0u);
  // q3 lives in buckets 1 and 2 -> both relevant, bucket 3 irrelevant.
  EXPECT_EQ(analysis.decomposition.relevant_buckets, 2u);
  EXPECT_EQ(analysis.decomposition.irrelevant_buckets, 1u);
}

TEST(AnalyzeTest, DecompositionMatchesMonolithicSolve) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ3, {kS3}, 0.5));
  AnalysisOptions with, without;
  with.use_decomposition = true;
  without.use_decomposition = false;
  auto a = Analyze(t, kb, with).ValueOrDie();
  auto b = Analyze(t, kb, without).ValueOrDie();
  for (uint32_t q = 0; q < t.num_qi_values(); ++q) {
    for (uint32_t s = 0; s < t.num_sa_values(); ++s) {
      EXPECT_NEAR(a.posterior.Conditional(q, s),
                  b.posterior.Conditional(q, s), 1e-6);
    }
  }
  EXPECT_NEAR(a.estimation_accuracy, b.estimation_accuracy, 1e-6);
}

TEST(AnalyzeTest, BreastCancerDeductionFromIntroduction) {
  // Introduction example: "we immediately know that both females in
  // Bucket 1 and Bucket 2 have Breast Cancer, because they are the only
  // females in their respective buckets" — given the knowledge that
  // males rarely (here: never) have breast cancer.
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  // P(s1 | male-q) = 0 for every male QI instance q1, q3, q6.
  kb.Add(knowledge::AbstractConditional(kQ1, {kS1}, 0.0));
  kb.Add(knowledge::AbstractConditional(kQ3, {kS1}, 0.0));
  kb.Add(knowledge::AbstractConditional(kQ6, {kS1}, 0.0));
  auto analysis = Analyze(t, kb).ValueOrDie();
  // Cathy (q2, the only female in bucket 1) must have s1 in bucket 1's
  // share; Grace (q4, only female in bucket 2) must have s1 certainly.
  EXPECT_NEAR(analysis.posterior.Conditional(kQ4, kS1), 1.0, 1e-6);
  // q2 appears in buckets 1 and 3; in bucket 1 her record must carry s1,
  // so P*(s1 | q2) = (share of q2 in bucket 1) = 1/2.
  EXPECT_NEAR(analysis.posterior.Conditional(kQ2, kS1), 0.5, 1e-6);
  // Privacy metric reflects the certain disclosure.
  EXPECT_NEAR(analysis.metrics.max_disclosure, 1.0, 1e-6);
}

TEST(AnalyzeTest, RejectsIndividualKnowledge) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  knowledge::IndividualStatement stmt;
  stmt.terms = {{0, kS4}};
  stmt.probability = 1.0;
  kb.Add(stmt);
  EXPECT_EQ(Analyze(t, kb).status().code(), StatusCode::kInvalidArgument);
}

TEST(AnalyzeTest, SolverKindIsRespected) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase empty;
  AnalysisOptions options;
  options.solver = maxent::SolverKind::kNewton;
  auto analysis = Analyze(t, empty, options).ValueOrDie();
  EXPECT_EQ(analysis.solver.kind, maxent::SolverKind::kNewton);
  EXPECT_LT(analysis.solver.max_violation, 1e-7);
}

// -------------------------------------------------------- PrivacyMetrics

TEST(MetricsTest, UniformPosteriorBounds) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase empty;
  auto analysis = Analyze(t, empty).ValueOrDie();
  const auto& m = analysis.metrics;
  EXPECT_GT(m.max_disclosure, 0.0);
  EXPECT_LE(m.max_disclosure, 1.0 + 1e-9);
  EXPECT_GT(m.min_effective_candidates, 1.0);
  EXPECT_LE(m.expected_best_guess, m.max_disclosure + 1e-12);
}

TEST(MetricsTest, KnowledgeReducesEffectiveCandidates) {
  auto t = pme::testing::MakeFigure1Table();
  knowledge::KnowledgeBase empty;
  auto base = Analyze(t, empty).ValueOrDie();
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(kQ2, {kS1}, 0.5));
  kb.Add(knowledge::AbstractConditional(kQ3, {kS2}, 0.5));
  auto informed = Analyze(t, kb).ValueOrDie();
  EXPECT_LE(informed.metrics.min_effective_candidates,
            base.metrics.min_effective_candidates + 1e-9);
  EXPECT_GE(informed.metrics.expected_best_guess,
            base.metrics.expected_best_guess - 1e-9);
}

}  // namespace
}  // namespace pme::core
