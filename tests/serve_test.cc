// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// End-to-end tests of the `pme serve` layer: an in-process
// AnalysisServer on an ephemeral port, exercised over real sockets with
// the newline-delimited JSON protocol — round trips, malformed lines,
// already-expired deadlines, 32-way concurrency with a clean shutdown,
// and the serve_accept_fail failpoint.
//
// The failpoint cases live in their own suite (ServeFailpointTest) so
// the CI failpoint matrix — which runs every other suite under each
// PME_FAILPOINTS spec — can filter them out: they Configure() the
// process-global registry themselves.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/experiment.h"
#include "core/table_artifact.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pme::serve {
namespace {

core::PipelineOptions SmallPipeline() {
  core::PipelineOptions options;
  options.data.num_records = 400;
  options.data.seed = 20080612;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;
  options.miner.max_attrs = 2;
  return options;
}

/// One server per suite: pipeline, artifact, and an AnalysisServer bound
/// to an ephemeral port.
class ServeEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new core::ExperimentPipeline(
        core::BuildPipeline(SmallPipeline()).ValueOrDie());
    dataset_ = std::shared_ptr<const data::Dataset>(
        std::shared_ptr<const data::Dataset>(), &pipeline_->dataset);
    artifact_ = new std::shared_ptr<const core::TableArtifact>(
        core::TableArtifact::BuildBorrowed(
            pipeline_->bucketization.table,
            &pipeline_->bucketization.qi_encoder)
            .ValueOrDie());
    ServeOptions options;
    options.port = 0;  // ephemeral
    options.solver_threads = 2;
    options.max_connections = 64;
    server_ = new AnalysisServer(*artifact_, dataset_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Shutdown();
    delete server_;
    server_ = nullptr;
    delete artifact_;
    artifact_ = nullptr;
    dataset_.reset();
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static ServeClient Connect() {
    return ServeClient::Connect("127.0.0.1", server_->port()).ValueOrDie();
  }

  /// A knowledge statement guaranteed consistent with the table: a mined
  /// rule's own conditional. `which` varies the rule.
  static std::string Statement(size_t which) {
    const auto& rules = pipeline_->rules;
    return rules[which % rules.size()].ToStatement(pipeline_->dataset);
  }

  static JsonValue Parse(const std::string& line) {
    return ParseJson(line).ValueOrDie();
  }

  static core::ExperimentPipeline* pipeline_;
  static std::shared_ptr<const data::Dataset> dataset_;
  static std::shared_ptr<const core::TableArtifact>* artifact_;
  static AnalysisServer* server_;
};

core::ExperimentPipeline* ServeEndToEndTest::pipeline_ = nullptr;
std::shared_ptr<const data::Dataset> ServeEndToEndTest::dataset_;
std::shared_ptr<const core::TableArtifact>* ServeEndToEndTest::artifact_ =
    nullptr;
AnalysisServer* ServeEndToEndTest::server_ = nullptr;

TEST_F(ServeEndToEndTest, RoundTripAnalyzeRequest) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"r1","knowledge":[")" +
                                 Statement(0) + R"("]})");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const JsonValue json = Parse(reply.value());
  EXPECT_EQ(json.Find("id")->string_value, "r1");
  EXPECT_TRUE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("termination")->string_value, "ok");
  EXPECT_TRUE(json.Find("converged")->bool_value);
  EXPECT_FALSE(json.Find("degraded")->bool_value);
  EXPECT_GT(json.Find("max_disclosure")->number_value, 0.0);
  EXPECT_EQ(json.Find("num_background_constraints")->number_value, 1.0);
}

TEST_F(ServeEndToEndTest, KnowledgeFreeRequestUsesClosedForm) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":7})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_EQ(json.Find("id")->string_value, "7");
  EXPECT_TRUE(json.Find("ok")->bool_value);
  // No knowledge: every component keeps the Theorem-5 closed form and
  // the iterative solver never runs.
  EXPECT_EQ(json.Find("iterations")->number_value, 0.0);
  EXPECT_TRUE(json.Find("converged")->bool_value);
}

TEST_F(ServeEndToEndTest, MalformedLineKeepsConnectionServing) {
  auto client = Connect();
  const auto bad = client.Call("{not json");
  ASSERT_TRUE(bad.ok());
  const JsonValue bad_json = Parse(bad.value());
  EXPECT_FALSE(bad_json.Find("ok")->bool_value);
  EXPECT_FALSE(bad_json.Find("error")->string_value.empty());

  // The same connection must keep serving.
  const auto good = client.Call(R"({"id":"after","knowledge":[")" +
                                Statement(1) + R"("]})");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(Parse(good.value()).Find("ok")->bool_value);
}

TEST_F(ServeEndToEndTest, UnknownSolverNameIsAnError) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"s","solver":"simplex"})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_FALSE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("id")->string_value, "s");
}

TEST_F(ServeEndToEndTest, ExpiredDeadlineDegradesToPrior) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"d","deadline_ms":0,"knowledge":[")" +
                                 Statement(2) + R"("]})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  // The never-empty-handed contract: still ok:true, with the budget
  // exhaustion reported through termination/degraded.
  EXPECT_TRUE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("termination")->string_value, "deadline_exceeded");
  EXPECT_TRUE(json.Find("degraded")->bool_value);
  EXPECT_FALSE(json.Find("converged")->bool_value);
}

TEST_F(ServeEndToEndTest, ThirtyTwoConcurrentRequestsAndCleanShutdown) {
  constexpr size_t kClients = 32;
  const ServeStats before = server_->stats();
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = Connect();
      std::string request;
      if (i == 3) {
        request = "][ definitely not json";  // malformed
      } else if (i == 11) {
        request = R"({"id":"expired","deadline_ms":0,"knowledge":[")" +
                  Statement(i) + R"("]})";  // already past its deadline
      } else {
        request = R"({"id":)" + std::to_string(i) + R"(,"knowledge":[")" +
                  Statement(i) + R"("]})";
      }
      auto reply = client.Call(request);
      ASSERT_TRUE(reply.ok()) << "client " << i << ": "
                              << reply.status().ToString();
      replies[i] = std::move(reply).value();
    });
  }
  for (auto& t : threads) t.join();

  size_t ok = 0, errors = 0, expired = 0;
  for (size_t i = 0; i < kClients; ++i) {
    const JsonValue json = Parse(replies[i]);
    if (!json.Find("ok")->bool_value) {
      ++errors;
    } else if (json.Find("termination")->string_value ==
               "deadline_exceeded") {
      ++expired;
    } else {
      ++ok;
      EXPECT_TRUE(json.Find("converged")->bool_value) << "client " << i;
    }
  }
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(ok, kClients - 2);

  const ServeStats after = server_->stats();
  EXPECT_EQ(after.connections_accepted - before.connections_accepted,
            kClients);
  EXPECT_GE(after.requests_ok - before.requests_ok, kClients - 2);
  EXPECT_GE(after.requests_error - before.requests_error, 1u);
  EXPECT_GE(after.requests_deadline_exceeded -
                before.requests_deadline_exceeded,
            1u);
  // Clean shutdown with all 32 connections drained is asserted by
  // TearDownTestSuite (Shutdown joins every handler thread).
}

/// Failpoint suite: configures the process-global registry, so it must
/// not run concurrently with (or inherit specs from) the matrix jobs.
class ServeFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(ServeFailpointTest, AcceptFailpointDropsOneConnectionAndServerSurvives) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";

  auto pipeline = core::BuildPipeline(SmallPipeline()).ValueOrDie();
  auto artifact = core::TableArtifact::BuildBorrowed(
                      pipeline.bucketization.table,
                      &pipeline.bucketization.qi_encoder)
                      .ValueOrDie();
  ServeOptions options;
  options.port = 0;
  options.solver_threads = 1;
  AnalysisServer server(
      artifact,
      std::shared_ptr<const data::Dataset>(
          std::shared_ptr<const data::Dataset>(), &pipeline.dataset),
      options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(failpoint::Configure("serve_accept_fail@1").ok());

  // The first accepted connection is dropped before a handler spawns;
  // the client sees a closed socket at connect or first I/O. Retry until
  // a connection survives — the server must keep accepting.
  Result<std::string> reply = Status::IoError("never connected");
  for (int attempt = 0; attempt < 5 && !reply.ok(); ++attempt) {
    auto connected = ServeClient::Connect("127.0.0.1", server.port());
    if (!connected.ok()) continue;
    ServeClient client = std::move(connected).value();
    reply = client.Call(R"({"id":"fp"})");
  }
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(ParseJson(reply.value()).ValueOrDie().Find("ok")->bool_value);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.accept_failures, 1u);
  EXPECT_GE(stats.requests_ok, 1u);
  server.Shutdown();
}

}  // namespace
}  // namespace pme::serve
