// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// End-to-end tests of the `pme serve` layer: an in-process
// AnalysisServer on an ephemeral port, exercised over real sockets with
// the newline-delimited JSON protocol — round trips, malformed lines,
// already-expired deadlines, 32-way concurrency with a clean shutdown,
// and the serve_accept_fail failpoint.
//
// The failpoint cases live in their own suite (ServeFailpointTest) so
// the CI failpoint matrix — which runs every other suite under each
// PME_FAILPOINTS spec — can filter them out: they Configure() the
// process-global registry themselves.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/experiment.h"
#include "core/table_artifact.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pme::serve {
namespace {

core::PipelineOptions SmallPipeline() {
  core::PipelineOptions options;
  options.data.num_records = 400;
  options.data.seed = 20080612;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;
  options.miner.max_attrs = 2;
  return options;
}

/// One server per suite: pipeline, artifact, and an AnalysisServer bound
/// to an ephemeral port.
class ServeEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new core::ExperimentPipeline(
        core::BuildPipeline(SmallPipeline()).ValueOrDie());
    dataset_ = std::shared_ptr<const data::Dataset>(
        std::shared_ptr<const data::Dataset>(), &pipeline_->dataset);
    artifact_ = new std::shared_ptr<const core::TableArtifact>(
        core::TableArtifact::BuildBorrowed(
            pipeline_->bucketization.table,
            &pipeline_->bucketization.qi_encoder)
            .ValueOrDie());
    ServeOptions options;
    options.port = 0;  // ephemeral
    options.solver_threads = 2;
    options.max_connections = 64;
    server_ = new AnalysisServer(*artifact_, dataset_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Shutdown();
    delete server_;
    server_ = nullptr;
    delete artifact_;
    artifact_ = nullptr;
    dataset_.reset();
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static ServeClient Connect() {
    return ServeClient::Connect("127.0.0.1", server_->port()).ValueOrDie();
  }

  /// A knowledge statement guaranteed consistent with the table: a mined
  /// rule's own conditional. `which` varies the rule.
  static std::string Statement(size_t which) {
    const auto& rules = pipeline_->rules;
    return rules[which % rules.size()].ToStatement(pipeline_->dataset);
  }

  static JsonValue Parse(const std::string& line) {
    return ParseJson(line).ValueOrDie();
  }

  static core::ExperimentPipeline* pipeline_;
  static std::shared_ptr<const data::Dataset> dataset_;
  static std::shared_ptr<const core::TableArtifact>* artifact_;
  static AnalysisServer* server_;
};

core::ExperimentPipeline* ServeEndToEndTest::pipeline_ = nullptr;
std::shared_ptr<const data::Dataset> ServeEndToEndTest::dataset_;
std::shared_ptr<const core::TableArtifact>* ServeEndToEndTest::artifact_ =
    nullptr;
AnalysisServer* ServeEndToEndTest::server_ = nullptr;

TEST_F(ServeEndToEndTest, RoundTripAnalyzeRequest) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"r1","knowledge":[")" +
                                 Statement(0) + R"("]})");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const JsonValue json = Parse(reply.value());
  EXPECT_EQ(json.Find("id")->string_value, "r1");
  EXPECT_TRUE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("termination")->string_value, "ok");
  EXPECT_TRUE(json.Find("converged")->bool_value);
  EXPECT_FALSE(json.Find("degraded")->bool_value);
  EXPECT_GT(json.Find("max_disclosure")->number_value, 0.0);
  EXPECT_EQ(json.Find("num_background_constraints")->number_value, 1.0);
}

TEST_F(ServeEndToEndTest, KnowledgeFreeRequestUsesClosedForm) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":7})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_EQ(json.Find("id")->string_value, "7");
  EXPECT_TRUE(json.Find("ok")->bool_value);
  // No knowledge: every component keeps the Theorem-5 closed form and
  // the iterative solver never runs.
  EXPECT_EQ(json.Find("iterations")->number_value, 0.0);
  EXPECT_TRUE(json.Find("converged")->bool_value);
}

TEST_F(ServeEndToEndTest, MalformedLineKeepsConnectionServing) {
  auto client = Connect();
  const auto bad = client.Call("{not json");
  ASSERT_TRUE(bad.ok());
  const JsonValue bad_json = Parse(bad.value());
  EXPECT_FALSE(bad_json.Find("ok")->bool_value);
  EXPECT_FALSE(bad_json.Find("error")->string_value.empty());

  // The same connection must keep serving.
  const auto good = client.Call(R"({"id":"after","knowledge":[")" +
                                Statement(1) + R"("]})");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(Parse(good.value()).Find("ok")->bool_value);
}

TEST_F(ServeEndToEndTest, UnknownSolverNameIsAnError) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"s","solver":"simplex"})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_FALSE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("id")->string_value, "s");
}

TEST_F(ServeEndToEndTest, ExpiredDeadlineDegradesToPrior) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"d","deadline_ms":0,"knowledge":[")" +
                                 Statement(2) + R"("]})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  // The never-empty-handed contract: still ok:true, with the budget
  // exhaustion reported through termination/degraded.
  EXPECT_TRUE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("termination")->string_value, "deadline_exceeded");
  EXPECT_TRUE(json.Find("degraded")->bool_value);
  EXPECT_FALSE(json.Find("converged")->bool_value);
}

TEST_F(ServeEndToEndTest, ThirtyTwoConcurrentRequestsAndCleanShutdown) {
  constexpr size_t kClients = 32;
  const ServeStats before = server_->stats();
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = Connect();
      std::string request;
      if (i == 3) {
        request = "][ definitely not json";  // malformed
      } else if (i == 11) {
        request = R"({"id":"expired","deadline_ms":0,"knowledge":[")" +
                  Statement(i) + R"("]})";  // already past its deadline
      } else {
        request = R"({"id":)" + std::to_string(i) + R"(,"knowledge":[")" +
                  Statement(i) + R"("]})";
      }
      auto reply = client.Call(request);
      ASSERT_TRUE(reply.ok()) << "client " << i << ": "
                              << reply.status().ToString();
      replies[i] = std::move(reply).value();
    });
  }
  for (auto& t : threads) t.join();

  size_t ok = 0, errors = 0, expired = 0;
  for (size_t i = 0; i < kClients; ++i) {
    const JsonValue json = Parse(replies[i]);
    if (!json.Find("ok")->bool_value) {
      ++errors;
    } else if (json.Find("termination")->string_value ==
               "deadline_exceeded") {
      ++expired;
    } else {
      ++ok;
      EXPECT_TRUE(json.Find("converged")->bool_value) << "client " << i;
    }
  }
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(ok, kClients - 2);

  const ServeStats after = server_->stats();
  EXPECT_EQ(after.connections_accepted - before.connections_accepted,
            kClients);
  EXPECT_GE(after.requests_ok - before.requests_ok, kClients - 2);
  EXPECT_GE(after.requests_error - before.requests_error, 1u);
  EXPECT_GE(after.requests_deadline_exceeded -
                before.requests_deadline_exceeded,
            1u);
  // Clean shutdown with all 32 connections drained is asserted by
  // TearDownTestSuite (Shutdown joins every handler thread).
}

TEST_F(ServeEndToEndTest, StatsVerbReflectsAJustServedRequest) {
  auto client = Connect();
  // Serve one analyze request first, so the registry census provably
  // includes it by the time the stats verb reads the counters.
  const auto served = client.Call(R"({"id":"warm","knowledge":[")" +
                                  Statement(3) + R"("]})");
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(Parse(served.value()).Find("ok")->bool_value);

  const auto reply = client.Call(R"({"id":"st","verb":"stats"})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_EQ(json.Find("id")->string_value, "st");
  EXPECT_TRUE(json.Find("ok")->bool_value);

  const JsonValue* stats = json.Find("stats");
  ASSERT_NE(stats, nullptr);
  const JsonValue* counters = stats->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* requests_ok = counters->Find("serve.requests_ok");
  ASSERT_NE(requests_ok, nullptr);
  EXPECT_GE(requests_ok->number_value, 1.0);
  const JsonValue* solve_runs = counters->Find("solve.runs");
  ASSERT_NE(solve_runs, nullptr);
  EXPECT_GE(solve_runs->number_value, 1.0);
  // The solve above consulted the solution cache one way or another.
  double cache_lookups = 0.0;
  for (const char* name :
       {"cache.exact_hits", "cache.warm_hits", "cache.misses"}) {
    if (const JsonValue* c = counters->Find(name)) {
      cache_lookups += c->number_value;
    }
  }
  EXPECT_GE(cache_lookups, 1.0);

  const JsonValue* histograms = stats->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* request_seconds =
      histograms->Find("serve.request_seconds");
  ASSERT_NE(request_seconds, nullptr);
  EXPECT_GE(request_seconds->Find("count")->number_value, 1.0);
  // The solver pool's queue-wait census exists once block solves ran.
  EXPECT_NE(histograms->Find("pool.queue_wait_seconds"), nullptr);
}

TEST_F(ServeEndToEndTest, TraceFlagAttachesSpanBreakdown) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"tr","trace":true,"knowledge":[")" +
                                 Statement(4) + R"("]})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_TRUE(json.Find("ok")->bool_value);

  const JsonValue* spans = json.Find("trace");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  std::vector<std::string> names;
  for (const JsonValue& span : spans->array) {
    const JsonValue* name = span.Find("name");
    ASSERT_NE(name, nullptr);
    names.push_back(name->string_value);
    EXPECT_GE(span.Find("dur_us")->number_value, 0.0);
    EXPECT_GT(span.Find("tid")->number_value, 0.0);
  }
  const auto has = [&names](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  // The full request lifecycle: framing parse, the session wrapper, and
  // its compile/solve/evaluate stages.
  EXPECT_TRUE(has("parse")) << reply.value();
  EXPECT_TRUE(has("session_run")) << reply.value();
  EXPECT_TRUE(has("compile")) << reply.value();
  EXPECT_TRUE(has("solve")) << reply.value();
  EXPECT_TRUE(has("evaluate")) << reply.value();

  // Without the flag the response carries no trace key.
  const auto plain = client.Call(R"({"id":"nt","knowledge":[")" +
                                 Statement(4) + R"("]})");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Parse(plain.value()).Find("trace"), nullptr);
}

TEST_F(ServeEndToEndTest, UnknownVerbIsAnError) {
  auto client = Connect();
  const auto reply = client.Call(R"({"id":"v","verb":"shutdown"})");
  ASSERT_TRUE(reply.ok());
  const JsonValue json = Parse(reply.value());
  EXPECT_FALSE(json.Find("ok")->bool_value);
  EXPECT_EQ(json.Find("id")->string_value, "v");
}

// ------------------------------------------------------- JSON unicode

TEST(JsonUnicodeTest, BasicMultilingualPlaneEscapesDecodeToUtf8) {
  // \u escapes for A (1-byte), é (2-byte), € (3-byte UTF-8).
  const JsonValue v = ParseJson(R"("\u0041\u00e9\u20ac")").ValueOrDie();
  EXPECT_EQ(v.string_value, "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonUnicodeTest, SurrogatePairDecodesToOneAstralCodePoint) {
  // U+1F600 as 😀 -> one 4-byte UTF-8 sequence, not CESU-8.
  const JsonValue v = ParseJson(R"("\ud83d\ude00")").ValueOrDie();
  EXPECT_EQ(v.string_value, "\xF0\x9F\x98\x80");
}

TEST(JsonUnicodeTest, MalformedUnicodeEscapesAreErrors) {
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());         // unpaired high
  EXPECT_FALSE(ParseJson(R"("\ud83dxy")").ok());       // high, no escape
  EXPECT_FALSE(ParseJson(R"("\ud83d\u0041")").ok());   // invalid low half
  EXPECT_FALSE(ParseJson(R"("\ude00")").ok());         // unpaired low
  EXPECT_FALSE(ParseJson(R"("\u12g4")").ok());         // bad hex digit
  EXPECT_FALSE(ParseJson(R"("\u123)").ok());           // truncated
}

TEST(JsonUnicodeTest, EscapeJsonRoundTripsControlCharacters) {
  EXPECT_EQ(EscapeJson(std::string("\x01\x1f\n", 3)), "\\u0001\\u001f\\n");
  EXPECT_EQ(EscapeJson("plain"), "plain");
  const std::string original("a\x02"
                             "b\tc");
  const JsonValue v =
      ParseJson("\"" + EscapeJson(original) + "\"").ValueOrDie();
  EXPECT_EQ(v.string_value, original);
}

/// Failpoint suite: configures the process-global registry, so it must
/// not run concurrently with (or inherit specs from) the matrix jobs.
class ServeFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(ServeFailpointTest, AcceptFailpointDropsOneConnectionAndServerSurvives) {
  if (!failpoint::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";

  auto pipeline = core::BuildPipeline(SmallPipeline()).ValueOrDie();
  auto artifact = core::TableArtifact::BuildBorrowed(
                      pipeline.bucketization.table,
                      &pipeline.bucketization.qi_encoder)
                      .ValueOrDie();
  ServeOptions options;
  options.port = 0;
  options.solver_threads = 1;
  AnalysisServer server(
      artifact,
      std::shared_ptr<const data::Dataset>(
          std::shared_ptr<const data::Dataset>(), &pipeline.dataset),
      options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(failpoint::Configure("serve_accept_fail@1").ok());

  // The first accepted connection is dropped before a handler spawns;
  // the client sees a closed socket at connect or first I/O. Retry until
  // a connection survives — the server must keep accepting.
  Result<std::string> reply = Status::IoError("never connected");
  for (int attempt = 0; attempt < 5 && !reply.ok(); ++attempt) {
    auto connected = ServeClient::Connect("127.0.0.1", server.port());
    if (!connected.ok()) continue;
    ServeClient client = std::move(connected).value();
    reply = client.Call(R"({"id":"fp"})");
  }
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(ParseJson(reply.value()).ValueOrDie().Find("ok")->bool_value);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.accept_failures, 1u);
  EXPECT_GE(stats.requests_ok, 1u);
  server.Shutdown();
}

}  // namespace
}  // namespace pme::serve
