// Incremental re-analysis: the component solution cache (exact-hit reuse
// and warm-started re-solves), its LRU/budget mechanics, and the parity
// contract — a cached or warm-started analysis must return the same
// posterior as a cold solve, for every solver kind and thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/failpoint.h"
#include "constraints/invariants.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "core/experiment.h"
#include "knowledge/knowledge_base.h"
#include "knowledge/miner.h"
#include "maxent/problem.h"
#include "maxent/solution_cache.h"
#include "maxent/solver.h"
#include "test_util.h"

namespace pme {
namespace {

using core::AnalysisOptions;
using core::AnalyzeWithRules;
using core::ExperimentPipeline;
using maxent::CachedComponentSolution;
using maxent::CacheMode;
using maxent::SolutionCache;
using maxent::SolverKind;

// ------------------------------------------------------ SolutionCache unit

CachedComponentSolution MakeSolution(size_t n, double fill) {
  CachedComponentSolution s;
  s.p.assign(n, fill);
  s.dual_value = fill;
  s.iterations = n;
  return s;
}

// Keys with hi ≡ 0 (mod 16) all land in shard 0, so one shard's LRU and
// budget can be exercised deterministically.
Hash128 Shard0Key(uint64_t id) { return Hash128{id * 16, id}; }

TEST(SolutionCacheTest, ExactRoundTrip) {
  SolutionCache cache;
  const Hash128 key{1, 2}, vars{3, 4};
  EXPECT_EQ(cache.FindExact(key), nullptr);
  cache.Insert(key, vars, MakeSolution(5, 0.5));
  auto hit = cache.FindExact(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->p.size(), 5u);
  EXPECT_DOUBLE_EQ(hit->p[0], 0.5);

  const auto stats = cache.Stats();
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_doubles, 5u);
}

TEST(SolutionCacheTest, WarmLookupFindsLatestWithSameStructure) {
  SolutionCache cache;
  const Hash128 vars{9, 9};
  cache.Insert(Hash128{1, 1}, vars, MakeSolution(3, 0.1));
  cache.Insert(Hash128{2, 2}, vars, MakeSolution(3, 0.2));
  auto warm = cache.FindWarm(vars);
  ASSERT_NE(warm, nullptr);
  // The warm index points at the most recent insert for that structure.
  EXPECT_DOUBLE_EQ(warm->p[0], 0.2);
  EXPECT_EQ(cache.Stats().warm_hits, 1u);
  EXPECT_EQ(cache.FindWarm(Hash128{8, 8}), nullptr);
}

TEST(SolutionCacheTest, LruEvictionHonorsBudget) {
  // 100 doubles per shard: two 60-double entries cannot coexist.
  SolutionCache cache(16 * 100 * sizeof(double));
  cache.Insert(Shard0Key(1), Hash128{0, 101}, MakeSolution(60, 1.0));
  cache.Insert(Shard0Key(2), Hash128{0, 102}, MakeSolution(60, 2.0));
  EXPECT_EQ(cache.FindExact(Shard0Key(1)), nullptr);  // LRU, evicted
  EXPECT_NE(cache.FindExact(Shard0Key(2)), nullptr);
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_LE(stats.resident_doubles, 100u);
}

TEST(SolutionCacheTest, ExactHitRefreshesLruPosition) {
  SolutionCache cache(16 * 100 * sizeof(double));
  cache.Insert(Shard0Key(1), Hash128{0, 101}, MakeSolution(40, 1.0));
  cache.Insert(Shard0Key(2), Hash128{0, 102}, MakeSolution(40, 2.0));
  // Touch entry 1 so entry 2 becomes least recently used...
  EXPECT_NE(cache.FindExact(Shard0Key(1)), nullptr);
  // ...then overflow the shard: entry 2 must go, entry 1 must stay.
  cache.Insert(Shard0Key(3), Hash128{0, 103}, MakeSolution(40, 3.0));
  EXPECT_NE(cache.FindExact(Shard0Key(1)), nullptr);
  EXPECT_EQ(cache.FindExact(Shard0Key(2)), nullptr);
  EXPECT_NE(cache.FindExact(Shard0Key(3)), nullptr);
}

TEST(SolutionCacheTest, WarmIndexDropsDanglingPointerAfterEviction) {
  SolutionCache cache(16 * 100 * sizeof(double));
  const Hash128 vars{0, 7};
  cache.Insert(Shard0Key(1), vars, MakeSolution(60, 1.0));
  cache.Insert(Shard0Key(2), Hash128{0, 8}, MakeSolution(60, 2.0));
  // Entry 1 was evicted; its warm pointer must resolve to null (and be
  // dropped) rather than to freed memory.
  EXPECT_EQ(cache.FindWarm(vars), nullptr);
  EXPECT_EQ(cache.Stats().warm_hits, 0u);
}

TEST(SolutionCacheTest, ReplacingAnEntryUpdatesResidency) {
  SolutionCache cache;
  const Hash128 key{5, 5}, vars{6, 6};
  cache.Insert(key, vars, MakeSolution(50, 1.0));
  cache.Insert(key, vars, MakeSolution(10, 2.0));
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_doubles, 10u);
  EXPECT_DOUBLE_EQ(cache.FindExact(key)->p[0], 2.0);
}

TEST(SolutionCacheTest, ClearDropsEntriesKeepsCensus) {
  SolutionCache cache;
  cache.Insert(Hash128{1, 1}, Hash128{2, 2}, MakeSolution(4, 1.0));
  EXPECT_NE(cache.FindExact(Hash128{1, 1}), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().resident_doubles, 0u);
  EXPECT_EQ(cache.FindExact(Hash128{1, 1}), nullptr);
  EXPECT_EQ(cache.Stats().insertions, 1u);  // census survives Clear
}

// --------------------------------------------------- pipeline-level parity

core::PipelineOptions SmallPipeline() {
  core::PipelineOptions options;
  options.data.num_records = 600;
  options.data.seed = 424242;
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;
  options.miner.max_attrs = 2;
  return options;
}

class IncrementalPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new ExperimentPipeline(
        core::BuildPipeline(SmallPipeline()).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static std::vector<knowledge::AssociationRule> Rules() {
    return knowledge::TopK(pipeline_->rules, 10, 10);
  }
  /// A smaller knowledge set for the all-solver-kinds parity sweep: the
  /// first-order kinds (steepest, projected BB) converge linearly, so the
  /// coupled blocks must stay small for their cold baselines to reach the
  /// 1e-11 dual tolerance at all. Three coupled components; the toggle
  /// below touches exactly one of them.
  static std::vector<knowledge::AssociationRule> ParityRules() {
    return knowledge::TopK(pipeline_->rules, 2, 2);
  }
  /// The single-statement edit: one rule's asserted conditional moves by
  /// a point. Same support, same component structure, different rows.
  static std::vector<knowledge::AssociationRule> Toggle(
      std::vector<knowledge::AssociationRule> rules) {
    rules[0].conditional = rules[0].conditional <= 0.5
                               ? rules[0].conditional + 0.01
                               : rules[0].conditional - 0.01;
    return rules;
  }
  static std::vector<knowledge::AssociationRule> ToggledRules() {
    return Toggle(Rules());
  }
  static AnalysisOptions CacheOptions(SolutionCache* cache, size_t threads) {
    AnalysisOptions options;
    options.solver_options.threads = threads;
    // The parity bound is on the *posterior conditionals*, which divide
    // the joint by P(q) and so amplify joint-space residuals by ~1/P(q).
    // The dual residual tolerance must sit well below the 1e-8 parity
    // bound for the amplified difference to stay under it, and the
    // iteration budget must let the slow first-order kinds get there.
    options.solver_options.tolerance = 1e-11;
    options.solver_options.max_iterations = 100000;
    options.solver_options.solution_cache = cache;
    options.solver_options.cache_mode = CacheMode::kWarm;
    return options;
  }
  static double MaxAbsDiff(const std::vector<double>& a,
                           const std::vector<double>& b) {
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      worst = std::max(worst, std::fabs(a[i] - b[i]));
    }
    return worst;
  }

  static ExperimentPipeline* pipeline_;
};

ExperimentPipeline* IncrementalPipelineTest::pipeline_ = nullptr;

TEST_F(IncrementalPipelineTest, ExactRerunSkipsEverySolve) {
  SolutionCache cache;
  const auto options = CacheOptions(&cache, 1);
  auto cold = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();
  auto rerun = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();

  ASSERT_GT(cold.decomposition.num_coupled_components, 0u);
  EXPECT_EQ(cold.solver.cache_exact_hits, 0u);
  EXPECT_EQ(cold.solver.cache_misses,
            cold.decomposition.num_coupled_components);
  // Every block answered from the cache: zero solver iterations, and the
  // posterior is bit-identical (scattered, not re-solved).
  EXPECT_EQ(rerun.solver.cache_exact_hits,
            cold.decomposition.num_coupled_components);
  EXPECT_EQ(rerun.solver.cache_misses, 0u);
  EXPECT_EQ(rerun.solver.iterations, 0u);
  EXPECT_EQ(MaxAbsDiff(cold.solver.p, rerun.solver.p), 0.0);
  EXPECT_TRUE(rerun.solver.cache_enabled);
  for (const auto& outcome : rerun.solver.component_outcomes) {
    EXPECT_EQ(outcome.cache, maxent::CacheOutcome::kExactHit);
    EXPECT_EQ(outcome.iterations, 0u);
  }
}

TEST_F(IncrementalPipelineTest, WarmEqualsColdForEveryKindAndThreadCount) {
  // The parity contract: a warm-started re-solve of an edited knowledge
  // set returns the cold posterior to 1e-8, for every solver kind (kinds
  // whose preconditions reject real knowledge rows — GIS/IIS need
  // nonnegative coefficients — go through the fallback ladder) and for
  // serial and parallel block scheduling alike.
  //
  // Steepest descent is the one rung that cannot certify the 1e-8 bound:
  // it exits through the stall counter (its line search stops making
  // progress around a 1e-10 joint-space residual on these multipliers),
  // and the 1/P(q) amplification puts its warm-vs-cold reproducibility
  // floor near 3e-8 — measured identically with a 2,000,000-iteration
  // budget, so the floor is the method's, not the budget's, and it is the
  // same with the cache off (cold-vs-cold differs by the same amount).
  // It gets a 1e-7 bound; every other kind certifies 1e-8.
  for (const SolverKind kind :
       {SolverKind::kLbfgs, SolverKind::kGis, SolverKind::kIis,
        SolverKind::kSteepest, SolverKind::kNewton, SolverKind::kProjected}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SolutionCache cache;
      auto options = CacheOptions(&cache, threads);
      options.solver = kind;
      // Populate the cache with the original knowledge...
      auto seeded =
          AnalyzeWithRules(*pipeline_, ParityRules(), options).ValueOrDie();
      // ...then re-analyze the edited set warm, and cold on a fresh cache.
      auto warm = AnalyzeWithRules(*pipeline_, Toggle(ParityRules()), options)
                      .ValueOrDie();
      SolutionCache fresh;
      auto cold_options = CacheOptions(&fresh, threads);
      cold_options.solver = kind;
      auto cold =
          AnalyzeWithRules(*pipeline_, Toggle(ParityRules()), cold_options)
              .ValueOrDie();

      const char* label = maxent::SolverKindToString(kind);
      const double posterior_bound =
          kind == SolverKind::kSteepest ? 1e-7 : 1e-8;
      EXPECT_GE(warm.solver.cache_exact_hits +
                    warm.solver.cache_warm_hits, 1u)
          << label << " threads=" << threads;
      EXPECT_LE(MaxAbsDiff(warm.solver.p, cold.solver.p), 1e-8)
          << label << " threads=" << threads;
      double worst_posterior = 0.0;
      for (uint32_t q = 0; q < warm.posterior.num_qi(); ++q) {
        for (uint32_t s = 0; s < warm.posterior.num_sa(); ++s) {
          worst_posterior = std::max(
              worst_posterior, std::fabs(warm.posterior.Conditional(q, s) -
                                         cold.posterior.Conditional(q, s)));
        }
      }
      EXPECT_LE(worst_posterior, posterior_bound)
          << label << " threads=" << threads;
      // The warm start must not cost iterations: the edited component
      // restarts near its optimum, every untouched component exact-hits.
      EXPECT_LE(warm.solver.iterations, cold.solver.iterations)
          << label << " threads=" << threads;
      (void)seeded;
    }
  }
}

TEST_F(IncrementalPipelineTest, KnowledgeToggleSequenceStaysConsistent) {
  // The interactive session the cache is for: toggle a statement off,
  // then back on, re-analyzing after each step against one persistent
  // cache. Every step must match its cold equivalent, and restoring the
  // original knowledge must be answered entirely from the cache.
  auto with_last_dropped = Rules();
  with_last_dropped.pop_back();

  SolutionCache cache;
  const auto options = CacheOptions(&cache, 1);
  auto first = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();
  auto dropped =
      AnalyzeWithRules(*pipeline_, with_last_dropped, options).ValueOrDie();
  auto restored = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();

  SolutionCache fresh;
  auto dropped_cold = AnalyzeWithRules(*pipeline_, with_last_dropped,
                                       CacheOptions(&fresh, 1))
                          .ValueOrDie();
  EXPECT_LE(MaxAbsDiff(dropped.solver.p, dropped_cold.solver.p), 1e-8);
  // Toggling back restores the original component keys: all exact hits,
  // and the first round's posterior, exactly.
  EXPECT_EQ(restored.solver.cache_exact_hits,
            first.decomposition.num_coupled_components);
  EXPECT_EQ(restored.solver.iterations, 0u);
  EXPECT_EQ(MaxAbsDiff(restored.solver.p, first.solver.p), 0.0);
}

TEST_F(IncrementalPipelineTest, CacheCensusIsDeterministicAcrossThreads) {
  // Lookups and insertions run serially in block-id order by design, so
  // the censuses of a cold run and a toggled re-run must be identical
  // whether blocks are solved on one thread or four.
  std::vector<std::vector<size_t>> censuses;
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SolutionCache cache;
    const auto options = CacheOptions(&cache, threads);
    auto cold = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();
    auto warm =
        AnalyzeWithRules(*pipeline_, ToggledRules(), options).ValueOrDie();
    censuses.push_back({cold.solver.cache_exact_hits,
                        cold.solver.cache_warm_hits,
                        cold.solver.cache_misses, cold.solver.cache_entries,
                        warm.solver.cache_exact_hits,
                        warm.solver.cache_warm_hits,
                        warm.solver.cache_misses, warm.solver.cache_entries,
                        warm.solver.cache_evictions});
  }
  EXPECT_EQ(censuses[0], censuses[1]);
}

TEST_F(IncrementalPipelineTest, ExactModeNeverWarmStarts) {
  // ParityRules: three coupled components of which the toggle edits one,
  // so exact mode still answers the untouched two from the cache.
  SolutionCache cache;
  auto options = CacheOptions(&cache, 1);
  options.solver_options.cache_mode = CacheMode::kExact;
  auto cold =
      AnalyzeWithRules(*pipeline_, ParityRules(), options).ValueOrDie();
  auto toggled =
      AnalyzeWithRules(*pipeline_, Toggle(ParityRules()), options)
          .ValueOrDie();
  EXPECT_EQ(toggled.solver.cache_warm_hits, 0u);
  // The untouched components still exact-hit.
  EXPECT_GE(toggled.solver.cache_exact_hits, 1u);
  (void)cold;
}

TEST_F(IncrementalPipelineTest, OffModeTouchesNothing) {
  SolutionCache cache;
  auto options = CacheOptions(&cache, 1);
  options.solver_options.cache_mode = CacheMode::kOff;
  auto a = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();
  auto b = AnalyzeWithRules(*pipeline_, Rules(), options).ValueOrDie();
  EXPECT_FALSE(a.solver.cache_enabled);
  EXPECT_EQ(b.solver.cache_exact_hits, 0u);
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_GT(b.solver.iterations, 0u);  // really solved again
}

// ------------------------------------------------ dual multiplier payload

TEST(DualLambdaTest, PopulatedForEverySolverKind) {
  // The cache's warm payload depends on every solver reporting its dual:
  // dual_lambda in the reduced row space, dual_lambda_full scattered back
  // onto the original rows.
  const auto table = testing::MakeFigure1Table();
  const auto index = constraints::TermIndex::Build(table);
  constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(table, index));
  const auto problem = maxent::BuildProblem(system).ValueOrDie();

  for (const SolverKind kind :
       {SolverKind::kLbfgs, SolverKind::kGis, SolverKind::kIis,
        SolverKind::kSteepest, SolverKind::kNewton, SolverKind::kProjected}) {
    auto result = maxent::Solve(problem, kind).ValueOrDie();
    const char* label = maxent::SolverKindToString(kind);
    EXPECT_FALSE(result.dual_lambda.empty()) << label;
    EXPECT_EQ(result.dual_lambda_full.size(),
              problem.eq.rows() + problem.ineq.rows())
        << label;
    for (double v : result.dual_lambda_full) {
      EXPECT_TRUE(std::isfinite(v)) << label;
    }
  }
}

// ------------------------------------------------------ failpoint matrix

struct ScopedFailpoints {
  explicit ScopedFailpoints(std::string_view spec = "") {
    EXPECT_TRUE(failpoint::Configure(spec).ok()) << spec;
  }
  ~ScopedFailpoints() { failpoint::Reset(); }
};

// CI's failpoint matrix runs this suite under arbitrary injected faults
// (including cache_evict_race). Assertions are therefore limited to the
// never-crash contract: clean statuses and finite posteriors — a fault
// may legitimately degrade components and change the answer.
TEST(IncrementalRobustnessTest, CachedReanalysisSurvivesTheFailpointMatrix) {
  const char* env = std::getenv("PME_FAILPOINTS");
  ScopedFailpoints fp(env == nullptr ? "" : env);

  const auto table = testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(testing::kQ4, {testing::kS1}, 0.9));
  kb.Add(knowledge::AbstractConditional(testing::kQ5, {testing::kS5}, 0.8));

  SolutionCache cache(1 << 16);  // tiny budget: eviction paths run too
  core::AnalysisOptions options;
  options.solver_options.threads = 1;
  options.solver_options.deadline = Deadline::AfterSeconds(30.0);
  options.solver_options.solution_cache = &cache;
  options.solver_options.cache_mode = CacheMode::kWarm;

  for (int round = 0; round < 3; ++round) {
    auto analysis = core::Analyze(table, kb, options);
    if (!analysis.ok()) {
      EXPECT_FALSE(analysis.status().message().empty());
      continue;
    }
    for (double v : analysis.value().solver.p) {
      EXPECT_TRUE(std::isfinite(v)) << "round " << round;
    }
  }
  const auto stats = cache.Stats();
  EXPECT_GE(stats.insertions + stats.misses + stats.exact_hits, 1u);
}

TEST(IncrementalRobustnessTest, EvictRaceFailpointForcesFullEviction) {
  // With cache_evict_race firing on every insert, each insertion is
  // immediately flushed: re-runs never hit, yet stay correct and the
  // census stays coherent.
  ScopedFailpoints fp("cache_evict_race");

  const auto table = testing::MakeFigure1Table();
  knowledge::KnowledgeBase kb;
  kb.Add(knowledge::AbstractConditional(testing::kQ4, {testing::kS1}, 0.9));

  SolutionCache cache;
  core::AnalysisOptions options;
  options.solver_options.threads = 1;
  options.solver_options.solution_cache = &cache;
  options.solver_options.cache_mode = CacheMode::kWarm;

  auto first = core::Analyze(table, kb, options).ValueOrDie();
  auto second = core::Analyze(table, kb, options).ValueOrDie();
  EXPECT_EQ(second.solver.cache_exact_hits, 0u);
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.evictions, stats.insertions);
  // Both runs solved cold and deterministically: identical posteriors.
  ASSERT_EQ(first.solver.p.size(), second.solver.p.size());
  for (size_t i = 0; i < first.solver.p.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.solver.p[i], second.solver.p[i]);
  }
}

}  // namespace
}  // namespace pme
