// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Unit tests for the observability layer: the process-wide metrics
// registry (counter exactness under contention, histogram bucket
// boundaries, snapshots under concurrent load, JSON exposition) and the
// trace subsystem (span recording, per-request capture across threads,
// ring snapshot ordering, Chrome trace-event export).
//
// Both registries are process-global, so every test uses metric names
// (and trace categories) unique to this binary — the assertions are
// delta- or filter-based where another test could have touched the same
// state.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "serve/json.h"

namespace pme {
namespace {

using metrics::Histogram;
using metrics::HistogramOptions;
using metrics::Registry;

// ---------------------------------------------------------------------------
// Counters

TEST(MetricsCounterTest, ConcurrentIncrementsAreExact) {
  metrics::Counter& counter =
      Registry::Global().GetCounter("test.concurrent_exact");
  const uint64_t before = counter.Value();

  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();

  // The sharded fast path must not lose a single increment.
  EXPECT_EQ(counter.Value() - before, kThreads * kPerThread);
}

TEST(MetricsCounterTest, AddWithDeltaAndStableIdentity) {
  metrics::Counter& counter = Registry::Global().GetCounter("test.delta");
  const uint64_t before = counter.Value();
  counter.Add(5);
  counter.Add();  // default delta 1
  EXPECT_EQ(counter.Value() - before, 6u);
  // Same name -> same instance (call sites cache the pointer).
  EXPECT_EQ(&counter, &Registry::Global().GetCounter("test.delta"));
}

TEST(MetricsCounterTest, CounterValueByName) {
  EXPECT_EQ(Registry::Global().CounterValue("test.never_registered"), 0u);
  metrics::Counter& counter = Registry::Global().GetCounter("test.by_name");
  counter.Add(3);
  EXPECT_EQ(Registry::Global().CounterValue("test.by_name"),
            counter.Value());
}

TEST(MetricsCounterTest, KillSwitchMakesAddANoOp) {
  metrics::Counter& counter =
      Registry::Global().GetCounter("test.kill_switch");
  const uint64_t before = counter.Value();
  metrics::SetEnabled(false);
  counter.Add(100);
  metrics::SetEnabled(true);
  EXPECT_EQ(counter.Value(), before);
  counter.Add(1);
  EXPECT_EQ(counter.Value(), before + 1);
}

// ---------------------------------------------------------------------------
// Gauges

TEST(MetricsGaugeTest, SetAndSignedAdd) {
  metrics::Gauge& gauge = Registry::Global().GetGauge("test.gauge");
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.Value(), -15);
  gauge.Add(15);
  EXPECT_EQ(gauge.Value(), 0);
}

// ---------------------------------------------------------------------------
// Histograms

/// lowest=1, growth=2, 4 finite buckets -> bounds {1,2,4,8} and layout
///   bucket 0: [0,1)  bucket 1: [1,2)  bucket 2: [2,4)  bucket 3: [4,8)
///   bucket 4: [8,inf)  (overflow)
HistogramOptions SmallOptions() {
  HistogramOptions options;
  options.lowest = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;
  return options;
}

TEST(MetricsHistogramTest, BucketBoundaries) {
  Histogram& hist =
      Registry::Global().GetHistogram("test.boundaries", SmallOptions());
  // Exactly-on-boundary values go to the *next* bucket (half-open
  // [lo, hi) intervals).
  hist.Observe(0.0);    // bucket 0
  hist.Observe(0.999);  // bucket 0
  hist.Observe(1.0);    // bucket 1 (== first bound)
  hist.Observe(1.5);    // bucket 1
  hist.Observe(2.0);    // bucket 2
  hist.Observe(3.999);  // bucket 2
  hist.Observe(4.0);    // bucket 3
  hist.Observe(8.0);    // overflow (== last bound)
  hist.Observe(1e9);    // overflow

  const Histogram::Snapshot snap = hist.TakeSnapshot();
  ASSERT_EQ(snap.bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(snap.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(snap.bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(snap.bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(snap.bounds[3], 8.0);
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.counts[4], 2u);
  EXPECT_EQ(snap.count, 9u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(MetricsHistogramTest, NegativeClampsAndNonFiniteSkipped) {
  Histogram& hist =
      Registry::Global().GetHistogram("test.clamp", SmallOptions());
  hist.Observe(-5.0);  // clamped to 0 -> bucket 0
  hist.Observe(std::numeric_limits<double>::quiet_NaN());   // dropped
  hist.Observe(std::numeric_limits<double>::infinity());    // dropped
  const Histogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

TEST(MetricsHistogramTest, QuantileInterpolatesInsideBucket) {
  Histogram& hist =
      Registry::Global().GetHistogram("test.quantile", SmallOptions());
  // 100 observations, all in bucket 1 ([1,2)): every quantile estimate
  // must interpolate within that bucket's bounds.
  for (int i = 0; i < 100; ++i) hist.Observe(1.5);
  const Histogram::Snapshot snap = hist.TakeSnapshot();
  const double p50 = snap.Quantile(0.5);
  const double p99 = snap.Quantile(0.99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 2.0);
  // Empty histogram: quantile of nothing is 0.
  Histogram& empty =
      Registry::Global().GetHistogram("test.quantile_empty", SmallOptions());
  EXPECT_DOUBLE_EQ(empty.TakeSnapshot().Quantile(0.5), 0.0);
}

TEST(MetricsHistogramTest, SnapshotUnderConcurrentLoad) {
  Histogram& hist =
      Registry::Global().GetHistogram("test.under_load", SmallOptions());
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>((i + t) % 10));
      }
    });
  }
  // Reader: snapshots must stay self-consistent while writers hammer the
  // histogram — count never decreases, never exceeds the final total.
  std::thread reader([&hist, &done] {
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const Histogram::Snapshot snap = hist.TakeSnapshot();
      EXPECT_GE(snap.count, last_count);
      EXPECT_LE(snap.count, kThreads * kPerThread);
      last_count = snap.count;
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const Histogram::Snapshot final_snap = hist.TakeSnapshot();
  EXPECT_EQ(final_snap.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (const uint64_t c : final_snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  // Each thread's values are a permutation of 0..9 repeated, so the sum
  // is exact despite CAS-racing doubles (all values are small integers).
  double expected_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<double>((i + t) % 10);
    }
  }
  EXPECT_DOUBLE_EQ(final_snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(final_snap.min, 0.0);
  EXPECT_DOUBLE_EQ(final_snap.max, 9.0);
}

// ---------------------------------------------------------------------------
// Registry exposition

TEST(MetricsRegistryTest, RenderJsonIsValidAndCarriesValues) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.render_counter").Add(7);
  registry.GetGauge("test.render_gauge").Set(-3);
  Histogram& hist =
      registry.GetHistogram("test.render_hist", SmallOptions());
  hist.Observe(1.5);
  hist.Observe(100.0);

  const std::string json = registry.RenderJson();
  // Single line, by contract (rides in the newline-delimited protocol).
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const auto parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::JsonValue& doc = parsed.value();

  const serve::JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  const serve::JsonValue* counter = counters->Find("test.render_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_GE(counter->number_value, 7.0);

  const serve::JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  const serve::JsonValue* gauge = gauges->Find("test.render_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->number_value, -3.0);

  const serve::JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const serve::JsonValue* h = histograms->Find("test.render_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->Find("count")->number_value, 2.0);
  EXPECT_DOUBLE_EQ(h->Find("min")->number_value, 1.5);
  EXPECT_DOUBLE_EQ(h->Find("max")->number_value, 100.0);
  // Only populated buckets are emitted: [1,2) and the overflow bucket.
  const serve::JsonValue* buckets = h->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->array.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->array[0].Find("le")->number_value, 2.0);
  EXPECT_EQ(buckets->array[1].Find("le")->string_value, "inf");
}

TEST(MetricsRegistryTest, RenderTextListsMetrics) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.text_counter").Add(2);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("test.text_counter "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans, capture, ring

TEST(TraceTest, SpanRecordsToRingWithArgs) {
  trace::ClearRing();
  {
    trace::TraceSpan span("test_span_ring", "test");
    span.AddArg("alpha", 1.5);
    span.AddArg("beta", 2.0);
    span.AddArg("gamma", 3.0);  // third arg: dropped
  }
  const std::vector<trace::TraceEvent> events = trace::SnapshotRing();
  const trace::TraceEvent* found = nullptr;
  for (const auto& e : events) {
    if (e.name != nullptr && std::string(e.name) == "test_span_ring") {
      found = &e;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_STREQ(found->category, "test");
  EXPECT_GT(found->tid, 0u);
  EXPECT_STREQ(found->arg_names[0], "alpha");
  EXPECT_DOUBLE_EQ(found->arg_values[0], 1.5);
  EXPECT_STREQ(found->arg_names[1], "beta");
  EXPECT_DOUBLE_EQ(found->arg_values[1], 2.0);
}

TEST(TraceTest, TraceIdScopeInstallsAndRestores) {
  EXPECT_EQ(trace::CurrentTraceId(), 0u);
  const uint64_t outer = trace::NewTraceId();
  const uint64_t inner = trace::NewTraceId();
  EXPECT_NE(outer, inner);
  {
    trace::TraceIdScope outer_scope(outer);
    EXPECT_EQ(trace::CurrentTraceId(), outer);
    {
      trace::TraceIdScope inner_scope(inner);
      EXPECT_EQ(trace::CurrentTraceId(), inner);
    }
    EXPECT_EQ(trace::CurrentTraceId(), outer);
  }
  EXPECT_EQ(trace::CurrentTraceId(), 0u);
}

TEST(TraceTest, RequestCaptureCollectsAcrossThreads) {
  const uint64_t id = trace::NewTraceId();
  trace::RequestCapture capture(id);
  {
    trace::TraceIdScope scope(id);
    trace::TraceSpan span("test_capture_main", "test");
  }
  // A worker doing request work re-installs the requester's id — its
  // spans land in the same capture.
  std::thread worker([id] {
    trace::TraceIdScope scope(id);
    trace::TraceSpan span("test_capture_worker", "test");
  });
  worker.join();
  // A span under a *different* id must not leak into this capture.
  {
    trace::TraceIdScope scope(trace::NewTraceId());
    trace::TraceSpan span("test_capture_other", "test");
  }

  const std::vector<trace::TraceEvent> events = capture.TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test_capture_main");
  EXPECT_STREQ(events[1].name, "test_capture_worker");
  for (const auto& e : events) EXPECT_EQ(e.trace_id, id);
  // TakeEvents moves the events out; a second call finds none.
  EXPECT_TRUE(capture.TakeEvents().empty());
}

TEST(TraceTest, RingSnapshotPreservesPublicationOrder) {
  trace::ClearRing();
  for (int i = 0; i < 5; ++i) {
    trace::TraceEvent event;
    event.name = "test_ring_order";
    event.category = "test";
    event.arg_names[0] = "i";
    event.arg_values[0] = static_cast<double>(i);
    trace::RecordEvent(event);
  }
  const std::vector<trace::TraceEvent> events = trace::SnapshotRing();
  std::vector<double> order;
  for (const auto& e : events) {
    if (e.name != nullptr && std::string(e.name) == "test_ring_order") {
      order.push_back(e.arg_values[0]);
    }
  }
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(order[i], i);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  trace::ClearRing();
  trace::SetEnabled(false);
  {
    trace::TraceSpan span("test_disabled", "test");
    span.AddArg("x", 1.0);  // must not crash on an unarmed span
  }
  trace::TraceEvent event;
  event.name = "test_disabled_direct";
  trace::RecordEvent(event);
  trace::SetEnabled(true);
  EXPECT_TRUE(trace::SnapshotRing().empty());
}

TEST(TraceTest, RenderChromeTraceIsValidJson) {
  std::vector<trace::TraceEvent> events;
  trace::TraceEvent event;
  event.name = "test_chrome";
  event.category = "test";
  event.trace_id = 42;
  event.start_ns = 1500;   // 1.5 us
  event.dur_ns = 2000000;  // 2 ms
  event.tid = 3;
  event.arg_names[0] = "blocks";
  event.arg_values[0] = 7.0;
  events.push_back(event);
  trace::TraceEvent unnamed;  // name == nullptr: skipped by the renderer
  events.push_back(unnamed);

  const std::string json = trace::RenderChromeTrace(events);
  const auto parsed = serve::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const serve::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Find("displayTimeUnit")->string_value, "ms");
  const serve::JsonValue* trace_events = doc.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->array.size(), 1u);  // unnamed event skipped
  const serve::JsonValue& e = trace_events->array[0];
  EXPECT_EQ(e.Find("ph")->string_value, "X");
  EXPECT_EQ(e.Find("name")->string_value, "test_chrome");
  EXPECT_EQ(e.Find("cat")->string_value, "test");
  EXPECT_DOUBLE_EQ(e.Find("ts")->number_value, 1.5);       // microseconds
  EXPECT_DOUBLE_EQ(e.Find("dur")->number_value, 2000.0);   // microseconds
  EXPECT_DOUBLE_EQ(e.Find("tid")->number_value, 3.0);
  const serve::JsonValue* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("trace_id")->number_value, 42.0);
  EXPECT_DOUBLE_EQ(args->Find("blocks")->number_value, 7.0);
}

TEST(TraceTest, ThreadIdsAreDenseAndStable) {
  const uint32_t main_id = trace::CurrentThreadId();
  EXPECT_EQ(trace::CurrentThreadId(), main_id);  // stable per thread
  uint32_t other_id = 0;
  std::thread t([&other_id] { other_id = trace::CurrentThreadId(); });
  t.join();
  EXPECT_NE(other_id, 0u);
  EXPECT_NE(other_id, main_id);
}

}  // namespace
}  // namespace pme
