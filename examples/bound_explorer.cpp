// Bound explorer: "what should I assume the adversary knows?"
//
// Section 4.3 of the paper argues the outcome of privacy quantification
// should be a *tuple* (assumed knowledge bound, privacy score), letting
// the data owner pick the assumption they believe. This tool sweeps the
// Top-(K+, K-) bound on the Adult-like benchmark dataset and prints the
// whole frontier, including the T-restricted variants of Figure 6.
//
// Run:  ./build/examples/bound_explorer [--records=N] [--kmax=K] [--t=T]

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/experiment.h"
#include "knowledge/miner.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  pme::core::PipelineOptions options;
  options.data.num_records =
      static_cast<size_t>(flags.GetInt("records", 1500));
  options.anatomy.ell = 5;
  options.miner.min_support_records = 3;
  options.miner.max_attrs = static_cast<size_t>(flags.GetInt("maxattrs", 3));
  const size_t kmax = static_cast<size_t>(flags.GetInt("kmax", 600));

  std::printf("building pipeline (%zu records, mining up to %zu-attribute "
              "rules)...\n",
              options.data.num_records, options.miner.max_attrs);
  auto pipeline = pme::core::BuildPipeline(options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  auto rules = pipeline.value().rules;
  if (flags.Has("t")) {
    const size_t t = static_cast<size_t>(flags.GetInt("t", 1));
    rules = pme::knowledge::FilterByNumAttributes(rules, t);
    std::printf("restricted to rules with exactly %zu QI attributes: %zu "
                "remain\n",
                t, rules.size());
  }

  std::printf("\nknowledge-bound frontier (privacy at each assumption):\n");
  std::printf("%10s %12s %14s %14s %16s\n", "bound K", "est.accuracy",
              "max.disclosure", "entropy", "relevant.buckets");
  std::vector<size_t> ks = {0, 1, 2, 4, 8};
  for (size_t k = 16; k <= kmax; k *= 2) ks.push_back(k);
  for (size_t k : ks) {
    auto top = pme::knowledge::TopK(rules, k / 2, k - k / 2);
    auto analysis = pme::core::AnalyzeWithRules(pipeline.value(), top);
    if (!analysis.ok()) {
      std::fprintf(stderr, "K=%zu failed: %s\n", k,
                   analysis.status().ToString().c_str());
      return 1;
    }
    std::printf("%10zu %12.4f %14.4f %14.2f %11zu/%zu\n", k,
                analysis.value().estimation_accuracy,
                analysis.value().metrics.max_disclosure,
                analysis.value().solver.entropy,
                analysis.value().decomposition.relevant_buckets,
                pipeline.value().bucketization.table.num_buckets());
  }
  std::printf(
      "\nEach row is one (bound, privacy score) tuple. Publish only if the\n"
      "score at the bound you believe realistic is still acceptable.\n");
  return 0;
}
