// Quickstart: the paper's running example (Figure 1) end to end.
//
// Builds the bucketized table of Figure 1(c), quantifies the adversary's
// posterior P*(SA | QI) with no background knowledge, then adds the
// paper's canonical knowledge ("males do not get breast cancer") and
// shows how the posterior — and with it, privacy — changes.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "anonymize/bucketized_table.h"
#include "core/privacy_maxent.h"
#include "knowledge/knowledge_base.h"

namespace {

using pme::anonymize::AbstractRecord;
using pme::anonymize::BucketizedTable;

// q1={male,college} q2={female,college} q3={male,high-school}
// q4={female,junior} q5={female,graduate} q6={male,graduate}
// s1=breast-cancer s2=flu s3=pneumonia s4=hiv s5=lung-cancer
constexpr uint32_t kQ1 = 0, kQ2 = 1, kQ3 = 2, kQ4 = 3, kQ5 = 4, kQ6 = 5;
constexpr uint32_t kS1 = 0, kS4 = 3;

BucketizedTable MakeFigure1() {
  std::vector<AbstractRecord> records = {
      {kQ1, 1, 0}, {kQ1, 2, 0}, {kQ2, kS1, 0}, {kQ3, 1, 0},
      {kQ1, kS4, 1}, {kQ3, 2, 1}, {kQ4, kS1, 1},
      {kQ2, kS4, 2}, {kQ5, 4, 2}, {kQ6, 1, 2},
  };
  std::vector<std::string> qi_names = {
      "male/college", "female/college", "male/high-school",
      "female/junior", "female/graduate", "male/graduate"};
  std::vector<std::string> sa_names = {"breast-cancer", "flu", "pneumonia",
                                       "hiv", "lung-cancer"};
  return BucketizedTable::Create(records, qi_names, sa_names).ValueOrDie();
}

void PrintPosterior(const char* title, const BucketizedTable& table,
                    const pme::core::Analysis& analysis) {
  std::printf("\n%s\n", title);
  std::printf("  %-18s", "P*(disease | QI)");
  for (uint32_t s = 0; s < table.num_sa_values(); ++s) {
    std::printf(" %13s", table.SaName(s).c_str());
  }
  std::printf("\n");
  for (uint32_t q = 0; q < table.num_qi_values(); ++q) {
    std::printf("  %-18s", table.QiName(q).c_str());
    for (uint32_t s = 0; s < table.num_sa_values(); ++s) {
      std::printf(" %13.4f", analysis.posterior.Conditional(q, s));
    }
    std::printf("\n");
  }
  std::printf("  estimation accuracy (weighted KL to truth): %.4f\n",
              analysis.estimation_accuracy);
  std::printf("  max disclosure: %.4f   min effective candidates: %.2f\n",
              analysis.metrics.max_disclosure,
              analysis.metrics.min_effective_candidates);
}

}  // namespace

int main() {
  const BucketizedTable table = MakeFigure1();
  std::printf("Privacy-MaxEnt quickstart — SIGMOD'08 Figure 1 example\n");
  std::printf("%zu records, %zu buckets, %u QI instances, %u diseases\n",
              table.num_records(), table.num_buckets(),
              table.num_qi_values(), table.num_sa_values());

  // 1. No background knowledge: the classical uniform-portion posterior.
  pme::knowledge::KnowledgeBase no_knowledge;
  auto baseline = pme::core::Analyze(table, no_knowledge).ValueOrDie();
  PrintPosterior("=== No background knowledge ===", table, baseline);

  // 2. The paper's introduction example: common medical knowledge says
  //    males do not get breast cancer. Express it as P(s1 | male-q) = 0
  //    for each male QI instance.
  pme::knowledge::KnowledgeBase kb;
  for (uint32_t male_q : {kQ1, kQ3, kQ6}) {
    kb.Add(pme::knowledge::AbstractConditional(male_q, {kS1}, 0.0));
  }
  auto informed = pme::core::Analyze(table, kb).ValueOrDie();
  PrintPosterior(
      "=== Knowledge: P(breast-cancer | male) = 0 ===", table, informed);

  std::printf(
      "\nAs the paper observes: both females (female/college in bucket 1,\n"
      "female/junior in bucket 2) are now known to have breast cancer —\n"
      "P*(breast-cancer | female/junior) = %.2f.\n",
      informed.posterior.Conditional(kQ4, kS1));
  std::printf(
      "Privacy dropped: estimation accuracy %.4f -> %.4f (smaller = the\n"
      "adversary's estimate is closer to the original data).\n",
      baseline.estimation_accuracy, informed.estimation_accuracy);
  return 0;
}
