// Knowledge about individuals (Section 6 of the paper).
//
// Reproduces the three worked examples on the Figure 4 pseudonym table:
//   (1) "The probability that Alice has breast cancer is 0.2"
//   (2) "Alice has either breast cancer or HIV"
//   (3) "Two people among Alice, Bob and Charlie have HIV"
// and shows the per-person posteriors the extended MaxEnt model derives.
//
// Run:  ./build/examples/adversary_individual

#include <cstdio>

#include "anonymize/bucketized_table.h"
#include "anonymize/pseudonym.h"
#include "core/individual_model.h"
#include "knowledge/knowledge_base.h"

namespace {

using pme::anonymize::AbstractRecord;
using pme::anonymize::BucketizedTable;

constexpr uint32_t kQ1 = 0, kQ2 = 1, kQ5 = 4;
constexpr uint32_t kS1 = 0, kS4 = 3;

BucketizedTable MakeFigure1() {
  std::vector<AbstractRecord> records = {
      {0, 1, 0}, {0, 2, 0}, {1, 0, 0}, {2, 1, 0},
      {0, 3, 1}, {2, 2, 1}, {3, 0, 1},
      {1, 3, 2}, {4, 4, 2}, {5, 1, 2},
  };
  std::vector<std::string> sa_names = {"breast-cancer", "flu", "pneumonia",
                                       "hiv", "lung-cancer"};
  return BucketizedTable::Create(records, {}, sa_names).ValueOrDie();
}

void PrintPerson(const pme::core::IndividualModel& model,
                 const BucketizedTable& table, const char* name,
                 uint32_t pseudonym, const std::vector<double>& p) {
  std::printf("  %-8s", name);
  auto posterior = model.PosteriorFor(pseudonym, p);
  for (uint32_t s = 0; s < table.num_sa_values(); ++s) {
    std::printf(" %13.4f", posterior[s]);
  }
  std::printf("\n");
}

void PrintHeader(const BucketizedTable& table) {
  std::printf("  %-8s", "person");
  for (uint32_t s = 0; s < table.num_sa_values(); ++s) {
    std::printf(" %13s", table.SaName(s).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const BucketizedTable table = MakeFigure1();
  auto pseudonyms =
      pme::anonymize::PseudonymTable::Create(&table).ValueOrDie();
  std::printf(
      "Section 6: pseudonym expansion of Figure 1(c) (Figure 4)\n"
      "%zu pseudonyms; Alice ~ i1 (QI q1), Bob ~ i4 (q2), Charlie ~ i9 "
      "(q5)\n\n",
      pseudonyms.num_pseudonyms());

  // The linking-attack setup: the adversary knows Alice, Bob and Charlie
  // are in the data and resolves them to pseudonyms of their QI values.
  const uint32_t alice = pseudonyms.ClaimPseudonym(kQ1).ValueOrDie();
  const uint32_t bob = pseudonyms.ClaimPseudonym(kQ2).ValueOrDie();
  const uint32_t charlie = pseudonyms.ClaimPseudonym(kQ5).ValueOrDie();

  // --- Baseline: no individual knowledge.
  {
    auto model = pme::core::IndividualModel::Build(&pseudonyms).ValueOrDie();
    auto result = model.Solve().ValueOrDie();
    std::printf("=== No individual knowledge ===\n");
    PrintHeader(table);
    PrintPerson(model, table, "Alice", alice, result.p);
    PrintPerson(model, table, "Bob", bob, result.p);
    PrintPerson(model, table, "Charlie", charlie, result.p);
  }

  // --- Example (1): P(breast cancer | Alice) = 0.2.
  {
    auto model = pme::core::IndividualModel::Build(&pseudonyms).ValueOrDie();
    pme::knowledge::KnowledgeBase kb;
    pme::knowledge::IndividualStatement stmt;
    stmt.kind = pme::knowledge::IndividualKind::kPersonSaSet;
    stmt.terms = {{alice, kS1}};
    stmt.probability = 0.2;
    stmt.label = "P(breast-cancer | Alice) = 0.2";
    kb.Add(stmt);
    if (auto s = model.AddKnowledge(kb); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto result = model.Solve().ValueOrDie();
    std::printf("\n=== (1) P(breast-cancer | Alice) = 0.2 ===\n");
    PrintHeader(table);
    PrintPerson(model, table, "Alice", alice, result.p);
  }

  // --- Example (2): Alice has either breast cancer or HIV.
  {
    auto model = pme::core::IndividualModel::Build(&pseudonyms).ValueOrDie();
    pme::knowledge::KnowledgeBase kb;
    pme::knowledge::IndividualStatement stmt;
    stmt.terms = {{alice, kS1}, {alice, kS4}};
    stmt.probability = 1.0;
    stmt.label = "Alice has s1 or s4";
    kb.Add(stmt);
    (void)model.AddKnowledge(kb);
    auto result = model.Solve().ValueOrDie();
    std::printf("\n=== (2) Alice has breast-cancer or HIV ===\n");
    PrintHeader(table);
    PrintPerson(model, table, "Alice", alice, result.p);
  }

  // --- Example (3): two of {Alice, Bob, Charlie} have HIV.
  {
    auto model = pme::core::IndividualModel::Build(&pseudonyms).ValueOrDie();
    pme::knowledge::KnowledgeBase kb;
    pme::knowledge::IndividualStatement stmt;
    stmt.kind = pme::knowledge::IndividualKind::kGroupCount;
    stmt.terms = {{alice, kS4}, {bob, kS4}, {charlie, kS4}};
    stmt.probability = 2.0;
    stmt.label = "two of {Alice,Bob,Charlie} have HIV";
    kb.Add(stmt);
    (void)model.AddKnowledge(kb);
    auto result = model.Solve().ValueOrDie();
    std::printf("\n=== (3) Two of {Alice, Bob, Charlie} have HIV ===\n");
    PrintHeader(table);
    PrintPerson(model, table, "Alice", alice, result.p);
    PrintPerson(model, table, "Bob", bob, result.p);
    PrintPerson(model, table, "Charlie", charlie, result.p);
    std::printf(
        "\nThe HIV columns sum to 2.0 across the three people: the joint\n"
        "count constraint is honoured while entropy spreads the residual\n"
        "uncertainty as evenly as the published buckets allow.\n");
  }
  return 0;
}
