// Medical data publishing: the full PPDP workflow the paper's
// introduction motivates.
//
// A hospital wants to publish patient microdata (demographics + diagnosis).
// The pipeline: (1) generate the cohort, (2) bucketize to ℓ-diversity with
// Anatomy, (3) mine the strongest associations an adversary could know,
// (4) quantify privacy under increasing knowledge bounds, producing the
// (bound, privacy score) tuples the paper argues data owners should see
// before releasing anything.
//
// Run:  ./build/examples/medical_publishing [--records=N] [--ell=L]

#include <cstdio>

#include "anonymize/anatomy.h"
#include "anonymize/bucketized_table.h"
#include "anonymize/diversity.h"
#include "common/flags.h"
#include "common/prng.h"
#include "core/privacy_maxent.h"
#include "data/dataset.h"
#include "knowledge/miner.h"

namespace {

/// A synthetic patient cohort: age group, sex, smoker status and an
/// occupation class as quasi-identifiers; diagnosis as the sensitive
/// attribute. Diagnoses correlate with the QI attributes (smokers get
/// lung disease more often, males never get breast cancer, ...) so the
/// mined knowledge is medically plausible.
pme::data::Dataset GenerateCohort(size_t n, uint64_t seed) {
  pme::data::Schema schema;
  schema.AddAttribute("age", pme::data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("sex", pme::data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("smoker", pme::data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("job", pme::data::AttributeRole::kQuasiIdentifier);
  schema.AddAttribute("diagnosis", pme::data::AttributeRole::kSensitive);
  pme::data::Dataset d(std::move(schema));

  const char* ages[] = {"18-35", "36-55", "56-75"};
  const char* sexes[] = {"male", "female"};
  const char* smoker[] = {"yes", "no"};
  const char* jobs[] = {"office", "manual", "healthcare", "retired"};
  const char* dx[] = {"flu",           "hypertension", "lung-cancer",
                      "breast-cancer", "diabetes",     "asthma"};

  pme::Prng prng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int age = static_cast<int>(prng.NextBounded(3));
    const int sex = static_cast<int>(prng.NextBounded(2));
    const int smk = static_cast<int>(prng.NextBounded(2));
    const int job = age == 2 && prng.NextDouble() < 0.5
                        ? 3
                        : static_cast<int>(prng.NextBounded(3));
    // Diagnosis weights shaped by the demographics.
    std::vector<double> w = {1.0, 0.4, 0.1, 0.1, 0.4, 0.5};
    if (smk == 0) w[2] += 1.6;                 // smokers: lung cancer
    if (sex == 1) w[3] += 0.9; else w[3] = 0;  // breast cancer: females only
    if (age == 2) { w[1] += 1.2; w[4] += 0.8; }  // older: chronic illness
    if (age == 0) { w[0] += 1.0; w[5] += 0.6; }  // younger: flu/asthma
    const int diag = static_cast<int>(prng.NextCategorical(w));
    (void)d.AppendRecordValues(
        {ages[age], sexes[sex], smoker[smk], jobs[job], dx[diag]});
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  const size_t records = static_cast<size_t>(flags.GetInt("records", 2000));
  const size_t ell = static_cast<size_t>(flags.GetInt("ell", 4));

  std::printf("== Hospital publishing workflow (Privacy-MaxEnt) ==\n");
  auto cohort = GenerateCohort(records, 7);
  std::printf("cohort: %zu patients, 4 QI attributes, 6 diagnoses\n",
              cohort.num_records());

  // Bucketize to ℓ-diversity with the Anatomy partitioner.
  pme::anonymize::AnatomyOptions anatomy;
  anatomy.ell = ell;
  auto partition = pme::anonymize::AnatomyPartition(cohort, anatomy);
  if (!partition.ok()) {
    std::fprintf(stderr, "bucketization failed: %s\n",
                 partition.status().ToString().c_str());
    return 1;
  }
  auto bz = pme::anonymize::BucketizeDataset(cohort, partition.value())
                .ValueOrDie();
  const auto exempt = pme::anonymize::MostFrequentSa(bz.table);
  auto diversity = pme::anonymize::MeasureDiversity(bz.table, exempt, ell);
  std::printf("published: %zu buckets of %zu; min distinct diversity %zu\n",
              bz.table.num_buckets(), ell, diversity.min_distinct);

  // Mine the associations an adversary could plausibly know.
  pme::knowledge::MinerOptions miner;
  miner.min_support_records = 3;
  miner.max_attrs = 3;
  auto rules =
      pme::knowledge::MineAssociationRules(cohort, miner).ValueOrDie();
  std::printf("mined %zu candidate association rules; strongest five:\n",
              rules.size());
  for (size_t i = 0; i < rules.size() && i < 5; ++i) {
    std::printf("  %s\n", rules[i].ToString(cohort).c_str());
  }

  // Quantify privacy under increasing Top-(K+, K-) bounds: the outcome
  // the paper recommends — a (bound, privacy score) table.
  std::printf("\n%8s %8s %12s %14s %12s\n", "K+", "K-", "est.accuracy",
              "max.disclosure", "best.guess");
  for (size_t k : {0, 5, 20, 80, 320}) {
    auto top = pme::knowledge::TopK(rules, k, k);
    pme::knowledge::KnowledgeBase kb;
    kb.AddRules(top);
    auto analysis =
        pme::core::Analyze(bz.table, kb, {}, &bz.qi_encoder).ValueOrDie();
    std::printf("%8zu %8zu %12.4f %14.4f %12.4f\n", k, k,
                analysis.estimation_accuracy,
                analysis.metrics.max_disclosure,
                analysis.metrics.expected_best_guess);
  }
  std::printf(
      "\nReading: estimation accuracy is the weighted KL distance between\n"
      "the adversary's MaxEnt posterior and the original data — smaller\n"
      "means less privacy. The data owner picks the bound they consider\n"
      "realistic and judges the residual risk at that row.\n");
  return 0;
}
