#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pme {

double SafeExp(double x) {
  if (x > 708.0) x = 708.0;
  if (x < -708.0) x = -708.0;
  return std::exp(x);
}

double XLogX(double x) {
  if (x <= 0.0) return 0.0;
  return x * std::log(x);
}

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double v : p) h -= XLogX(v);
  return h;
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double q_floor) {
  assert(p.size() == q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    const double qi = std::max(q[i], q_floor);
    kl += p[i] * std::log(p[i] / qi);
  }
  return kl;
}

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double v : x) sum += std::exp(v - m);
  return m + std::log(sum);
}

double InfNorm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double TwoNorm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  assert(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

bool NormalizeInPlace(std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum <= 0.0) return false;
  for (double& x : v) x /= sum;
  return true;
}

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double c = 1.0;
  for (int i = 1; i <= k; ++i) {
    c = c * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return c;
}

}  // namespace pme
