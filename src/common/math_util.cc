#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/vec_math.h"

namespace pme {

double SafeExp(double x) {
  if (x > 708.0) x = 708.0;
  if (x < -708.0) x = -708.0;
  return std::exp(x);
}

double XLogX(double x) {
  if (x <= 0.0) return 0.0;
  return x * std::log(x);
}

double Entropy(const std::vector<double>& p) {
  return kernels::NegXLogXSum(p);
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double q_floor) {
  assert(p.size() == q.size());
  return KlDivergence(p.data(), q.data(), p.size(), q_floor);
}

double KlDivergence(const double* p, const double* q, size_t n,
                    double q_floor) {
  // Fused vector pass: p/max(q, floor), batched ln, masked accumulate —
  // one sweep instead of n scalar std::log calls.
  return kernels::KlDivergence(kernels::ConstSpan(p, n),
                               kernels::ConstSpan(q, n), q_floor);
}

double LogSumExp(const std::vector<double>& x) {
  // Vectorized max pass, then a fused exp + horizontal-accumulate pass —
  // the same kernels the dual objective runs on.
  const double m = kernels::MaxVal(x);
  if (!std::isfinite(m)) return m;  // empty or all -inf -> -inf; +inf -> +inf
  return m + std::log(kernels::SumExpShifted(x, m));
}

double InfNorm(const std::vector<double>& v) { return kernels::InfNorm(v); }

double TwoNorm(const std::vector<double>& v) { return kernels::TwoNorm(v); }

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  return kernels::Dot(a, b);
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  assert(x.size() == y.size());
  kernels::Axpy(alpha, x, y);
}

bool NormalizeInPlace(std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum <= 0.0) return false;
  const double inv = 1.0 / sum;
  if (std::isfinite(inv)) {
    kernels::Scale(v, inv);
  } else {
    // A denormal sum overflows the reciprocal; divide element-wise.
    for (double& x : v) x /= sum;
  }
  return true;
}

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double c = 1.0;
  for (int i = 1; i <= k; ++i) {
    c = c * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return c;
}

}  // namespace pme
