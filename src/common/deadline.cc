#include "common/deadline.h"

#include <limits>

#include "common/failpoint.h"

namespace pme {

Deadline Deadline::AfterSeconds(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  return At(Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds)));
}

Deadline Deadline::At(Clock::time_point when) {
  Deadline d;
  d.infinite_ = false;
  d.when_ = when;
  return d;
}

Deadline Deadline::Earlier(const Deadline& a, const Deadline& b) {
  if (a.infinite_) return b;
  if (b.infinite_) return a;
  return a.when_ <= b.when_ ? a : b;
}

bool Deadline::Expired() const {
  if (infinite_) return false;
  if (PME_FAILPOINT("deadline_skip")) return true;
  return Clock::now() >= when_;
}

double Deadline::RemainingSeconds() const {
  if (infinite_) return std::numeric_limits<double>::infinity();
  if (PME_FAILPOINT("deadline_skip")) return 0.0;
  const double remaining =
      std::chrono::duration<double>(when_ - Clock::now()).count();
  return remaining > 0.0 ? remaining : 0.0;
}

StatusCode CheckInterrupt(const Deadline& deadline,
                          const CancellationToken& cancel) {
  if (cancel.cancelled()) return StatusCode::kCancelled;
  if (deadline.Expired()) return StatusCode::kDeadlineExceeded;
  return StatusCode::kOk;
}

}  // namespace pme
