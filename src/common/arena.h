// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Thread-local bump arena for the per-block scratch of the decomposed
// solve. Each pool worker owns one Arena; a block task opens an
// ArenaScope, every ScratchVector grown inside the scope bump-allocates
// from the worker's arena, and scope exit rewinds the arena to its entry
// marker in O(1) — the chunks stay resident, so a warm serve path reaches
// a steady state with zero heap traffic per block.
//
// The allocator is scope-keyed rather than instance-keyed (idiom borrowed
// from ion/base's Allocatable framework, where allocation context is
// ambient rather than threaded through every constructor): a
// ScratchVector constructed outside any scope is an ordinary heap vector,
// so the same container types serve both the monolithic solve (no scope)
// and the block solve (scoped) without a viral allocator parameter.
//
// Correctness rule: memory bump-allocated inside a scope dies with the
// scope. Containers that escape a block task (SolverResult payloads, the
// solution-cache entries) must be plain std::vector copies. Every
// allocation carries a 16-byte tag header so deallocate() is correct for
// any mix: arena blocks are a no-op (reclaimed by the scope rewind), heap
// blocks free normally — even when a container outlives the scope it was
// *constructed* in but only allocated on the heap.

#ifndef PME_COMMON_ARENA_H_
#define PME_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace pme {

/// Census of the arena layer, exported through the metrics registry as
/// arena.* counters and read back directly by benches/tests.
struct ArenaStats {
  uint64_t arena_allocs = 0;      ///< bump allocations served from a scope
  uint64_t arena_bytes = 0;       ///< payload bytes served from a scope
  uint64_t heap_fallback_allocs = 0;  ///< in-scope allocs that hit the heap
                                      ///< (arena disabled — the A/B control)
  uint64_t heap_fallback_bytes = 0;
  uint64_t chunk_allocs = 0;      ///< backing chunks grabbed from the heap
  uint64_t reserved_bytes = 0;    ///< bytes resident in this thread's chunks
};

/// One thread's bump region. Use Arena::ThreadLocal(); direct construction
/// is for tests.
class Arena {
 public:
  /// Backing chunks start at 256 KiB and double per growth, so a handful
  /// of chunk mallocs amortize thousands of block solves.
  static constexpr size_t kMinChunkBytes = 256 * 1024;

  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// The calling thread's arena (created on first use, freed at thread
  /// exit).
  static Arena& ThreadLocal();

  /// Process-wide kill switch (--arena=off / PME_ARENA=off): scopes still
  /// open and the census still counts, but every allocation goes to the
  /// heap — the A/B control for the allocation benchmarks.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  /// Bump-allocates `bytes` aligned to `align` (power of two <= 64).
  void* Allocate(size_t bytes, size_t align);

  /// True while at least one ArenaScope is open on this thread's arena.
  bool InScope() const { return depth_ > 0; }

  /// Position marker for scope rewind.
  struct Marker {
    size_t chunk = 0;
    size_t offset = 0;
  };
  Marker Mark() const { return {current_, offset_}; }
  void Rewind(const Marker& m);

  /// Bytes currently resident in backing chunks (capacity, not usage).
  size_t ReservedBytes() const { return reserved_bytes_; }
  /// Bytes bump-allocated past the given marker right now.
  size_t BytesInUse() const;

  /// This thread's cumulative census. The process-wide census lives in
  /// the metrics registry (arena.* counters).
  const ArenaStats& stats() const { return stats_; }

  /// Records one ScratchVector allocation in the thread census (called by
  /// the allocator entry points).
  void CountScratch(size_t bytes, bool from_arena) {
    if (from_arena) {
      ++stats_.arena_allocs;
      stats_.arena_bytes += bytes;
    } else {
      ++stats_.heap_fallback_allocs;
      stats_.heap_fallback_bytes += bytes;
    }
  }

 private:
  friend class ArenaScope;

  struct Chunk {
    char* data = nullptr;
    size_t size = 0;
  };

  void Grow(size_t min_bytes);

  std::vector<Chunk> chunks_;
  size_t current_ = 0;   // index of the chunk being bumped
  size_t offset_ = 0;    // bump offset inside chunks_[current_]
  size_t reserved_bytes_ = 0;
  int depth_ = 0;        // open ArenaScope count
  ArenaStats stats_;
};

/// RAII scope: while alive, ScratchVector allocations on this thread draw
/// from the thread's arena; destruction rewinds the arena to the entry
/// marker. Scopes nest (the fallback ladder re-solves inside a block
/// scope); each rewinds only its own allocations.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Marker marker_;
};

namespace internal {
/// Tagged allocation entry points (definitions in arena.cc): the returned
/// payload is preceded by a 16-byte header recording whether it came from
/// the arena (deallocate is a no-op) or the heap (deallocate frees).
void* ScratchAllocate(size_t bytes);
void ScratchDeallocate(void* p) noexcept;
}  // namespace internal

/// Scope-keyed allocator: inside an ArenaScope (and with the arena
/// enabled) allocations bump the thread-local arena; otherwise they are
/// ordinary heap allocations. Always-equal, so containers swap and move
/// freely across scopes — the per-allocation tag keeps deallocation
/// correct regardless of where the container ends up.
template <typename T>
class ArenaAllocator {
 public:
  static_assert(alignof(T) <= 16, "arena payloads are 16-byte aligned");
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(size_t n) {
    return static_cast<T*>(internal::ScratchAllocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) noexcept { internal::ScratchDeallocate(p); }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
  friend bool operator!=(const ArenaAllocator&, const ArenaAllocator&) {
    return false;
  }
};

/// The scratch container of the solve path: a std::vector that
/// bump-allocates while an ArenaScope is open and heap-allocates
/// otherwise.
template <typename T>
using ScratchVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace pme

#endif  // PME_COMMON_ARENA_H_
