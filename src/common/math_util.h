// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_MATH_UTIL_H_
#define PME_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace pme {

/// Numeric tolerances used across the library. Centralized so tests,
/// solvers and validators agree on what "equal" means.
struct Tolerance {
  /// Probabilities within this of each other are considered identical.
  static constexpr double kProb = 1e-9;
  /// Default convergence tolerance for iterative solvers (infinity norm
  /// of the dual gradient == worst constraint violation).
  static constexpr double kSolver = 1e-8;
  /// Looser tolerance used when comparing two solver outputs to each other.
  static constexpr double kCrossSolver = 1e-5;
};

/// exp(x) clamped so the result is finite (no overflow to inf).
/// Exponents are clamped to [-708, 708]; exp(708) ~ 3e307.
double SafeExp(double x);

/// x * log(x) with the continuity convention 0*log(0) = 0.
/// Natural logarithm.
double XLogX(double x);

/// Shannon entropy (nats) of an unnormalized non-negative vector, computed
/// as -sum p_i ln p_i. Entries <= 0 contribute zero.
double Entropy(const std::vector<double>& p);

/// Kullback–Leibler divergence  sum_i p_i ln(p_i / q_i)  in nats.
/// Terms with p_i == 0 contribute zero. Terms with p_i > 0 and q_i <= 0
/// are smoothed: q_i is floored at `q_floor` (default 1e-12) so the
/// divergence stays finite, matching the paper's practical evaluation.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double q_floor = 1e-12);

/// Span form of KlDivergence for callers iterating rows of a packed
/// matrix — identical arithmetic, no per-row copies.
double KlDivergence(const double* p, const double* q, size_t n,
                    double q_floor = 1e-12);

/// log(sum_i exp(x_i)) computed stably (max-shift).
/// Returns -inf for an empty input.
double LogSumExp(const std::vector<double>& x);

/// True iff |a - b| <= tol (absolute comparison).
inline bool NearlyEqual(double a, double b, double tol = Tolerance::kProb) {
  return std::fabs(a - b) <= tol;
}

/// Infinity norm of a vector (0 for empty input).
double InfNorm(const std::vector<double>& v);

/// Euclidean norm of a vector.
double TwoNorm(const std::vector<double>& v);

/// Dot product; vectors must have equal length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x (axpy); vectors must have equal length.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Normalizes a non-negative vector to sum to one in place.
/// Returns false (leaving v untouched) if the sum is not strictly positive.
bool NormalizeInPlace(std::vector<double>& v);

/// Binomial coefficient C(n, k) as double (exact for the small n used in
/// attribute-subset enumeration).
double BinomialCoefficient(int n, int k);

}  // namespace pme

#endif  // PME_COMMON_MATH_UTIL_H_
