// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_VEC_MATH_H_
#define PME_COMMON_VEC_MATH_H_

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

namespace pme::kernels {

/// Non-owning view of a mutable double buffer. The kernel layer works on
/// raw (pointer, size) pairs so the hot loops — CSR products, the fused
/// exp-sum of the dual evaluation, line-search probes — perform no
/// per-call bounds logic or container indirection.
struct Span {
  double* data = nullptr;
  size_t size = 0;

  Span() = default;
  Span(double* d, size_t n) : data(d), size(n) {}
  /// Implicit from any contiguous double container (std::vector,
  /// ScratchVector) so call sites stay terse across allocator types.
  template <typename C,
            typename = std::enable_if_t<std::is_same_v<
                decltype(std::declval<C&>().data()), double*>>>
  Span(C& v) : data(v.data()), size(v.size()) {}  // NOLINT

  double& operator[](size_t i) const { return data[i]; }
  double* begin() const { return data; }
  double* end() const { return data + size; }
};

/// Non-owning read-only view; implicitly constructible from Span and any
/// contiguous double container so call sites stay terse.
struct ConstSpan {
  const double* data = nullptr;
  size_t size = 0;

  ConstSpan() = default;
  ConstSpan(const double* d, size_t n) : data(d), size(n) {}
  template <typename C,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<const C&>().data()), const double*>>>
  ConstSpan(const C& v)  // NOLINT
      : data(v.data()), size(v.size()) {}
  ConstSpan(Span s) : data(s.data), size(s.size) {}  // NOLINT

  double operator[](size_t i) const { return data[i]; }
  const double* begin() const { return data; }
  const double* end() const { return data + size; }
};

/// SIMD dispatch policy. `kAuto` selects the fastest table the CPU (and
/// OS, via XCR0) supports; the explicit tiers pin a table for A/B benching
/// and parity testing, falling back to the next-best supported table when
/// the pinned one cannot run here.
enum class SimdMode {
  kAuto = 0,    ///< fastest supported: AVX-512 > AVX2+FMA > scalar
  kOff = 1,     ///< portable scalar kernels only
  kAvx2 = 2,    ///< AVX2+FMA table (scalar when unsupported)
  kAvx512 = 3,  ///< AVX-512 table (AVX2 or scalar when unsupported)
};

/// Re-runs kernel dispatch under the given policy. Not thread-safe
/// against concurrent kernel calls: set the mode at startup (flag
/// parsing), before any solver runs.
void SetSimdMode(SimdMode mode);

/// The currently requested policy.
SimdMode GetSimdMode();

/// Parses a `--simd` flag value: off|avx2|avx512|auto (unknown values warn
/// and select kAuto).
SimdMode ParseSimdMode(const std::string& value);

/// Name of the instruction set behind the active dispatch table:
/// "avx512", "avx2+fma" or "scalar". This reflects what actually runs —
/// a pinned-but-unsupported mode reports the table it fell back to.
const char* SimdModeName();

/// Legacy alias for SimdModeName().
const char* ActiveIsa();

/// True when a vectorized (non-scalar) dispatch table is active.
bool SimdActive();

/// True when this binary and CPU can run the AVX2+FMA kernels at all,
/// regardless of the current mode (used by parity tests to decide whether
/// the two paths genuinely differ).
bool Avx2Supported();

/// True when the CPU supports AVX-512F+DQ *and* the OS has enabled the
/// ZMM/opmask state (CPUID + XCR0 check — a hypervisor or kernel that
/// masks XSAVE state must not let us fault on the first vzmm load).
bool Avx512Supported();

// ---------------------------------------------------------------------------
// Kernels. All follow SafeExp clamping semantics where exponentials are
// involved: exponents are clamped to [-708, 708] so results stay finite
// and normal. Sizes are asserted, never checked at runtime in release.
// ---------------------------------------------------------------------------

/// y_i = exp(x_i - 1), the batched primal map p(λ) = exp(Aᵀλ − 1).
void ExpM1Shifted(ConstSpan x, Span y);

/// Fused exp + horizontal accumulate: x_i <- exp(x_i - 1) in place and
/// the sum Σ_i exp(x_i - 1) is returned. This is the dual objective's
/// single pass over the primal buffer.
double ExpM1SumInPlace(Span x);

/// Σ_i exp(x_i - shift) without storing the terms (LogSumExp's second
/// pass; `shift` is the max element).
double SumExpShifted(ConstSpan x, double shift);

/// y_i = ln(x_i), the batched natural log behind Entropy/KlDivergence and
/// the GIS multiplier update. IEEE special cases match libm: ln(0) = -inf,
/// ln(x<0) = NaN, ln(inf) = inf, NaN propagates; denormals are
/// renormalized, not flushed. In-place use (x.data == y.data) is allowed.
void Ln(ConstSpan x, Span y);

/// -Σ_i v_i ln v_i with the 0·ln 0 = 0 convention (entropy accumulation).
/// Entries <= 0 contribute zero via the same branch-free select the
/// vector path uses, so all tables agree to <= 1e-12 even on subnormals.
double NegXLogXSum(ConstSpan v);

/// Σ_i p_i ln(p_i / max(q_i, q_floor)) with p_i <= 0 contributing zero —
/// the fused KL pass of the per-q posterior evaluation.
double KlDivergence(ConstSpan p, ConstSpan q, double q_floor);

/// Dot product aᵀb.
double Dot(ConstSpan a, ConstSpan b);

/// y += alpha * x.
void Axpy(double alpha, ConstSpan x, Span y);

/// out_i = a_i + s * d_i — the line-search probe update λ + t·direction,
/// writing a separate trial buffer.
void ScaledAdd(ConstSpan a, double s, ConstSpan d, Span out);

/// v *= s.
void Scale(Span v, double s);

/// Euclidean norm.
double TwoNorm(ConstSpan v);

/// max_i |v_i| (0 for empty input).
double InfNorm(ConstSpan v);

/// max_i v_i (-inf for empty input).
double MaxVal(ConstSpan v);

}  // namespace pme::kernels

#endif  // PME_COMMON_VEC_MATH_H_
