// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_VEC_MATH_H_
#define PME_COMMON_VEC_MATH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pme::kernels {

/// Non-owning view of a mutable double buffer. The kernel layer works on
/// raw (pointer, size) pairs so the hot loops — CSR products, the fused
/// exp-sum of the dual evaluation, line-search probes — perform no
/// per-call bounds logic or container indirection.
struct Span {
  double* data = nullptr;
  size_t size = 0;

  Span() = default;
  Span(double* d, size_t n) : data(d), size(n) {}
  Span(std::vector<double>& v) : data(v.data()), size(v.size()) {}  // NOLINT
};

/// Non-owning read-only view; implicitly constructible from Span and
/// std::vector<double> so call sites stay terse.
struct ConstSpan {
  const double* data = nullptr;
  size_t size = 0;

  ConstSpan() = default;
  ConstSpan(const double* d, size_t n) : data(d), size(n) {}
  ConstSpan(const std::vector<double>& v)  // NOLINT
      : data(v.data()), size(v.size()) {}
  ConstSpan(Span s) : data(s.data), size(s.size) {}  // NOLINT
};

/// SIMD dispatch policy. The fastest implementation the CPU supports is
/// selected once at startup; `kOff` forces the portable scalar path (the
/// `--simd=off` A/B-benching and parity-testing mode).
enum class SimdMode {
  kAuto = 0,  ///< use AVX2+FMA when the CPU has it, scalar otherwise
  kOff = 1,   ///< portable scalar kernels only
};

/// Re-runs kernel dispatch under the given policy. Not thread-safe
/// against concurrent kernel calls: set the mode at startup (flag
/// parsing), before any solver runs.
void SetSimdMode(SimdMode mode);

/// The currently requested policy.
SimdMode GetSimdMode();

/// Parses a `--simd` flag value: "off" selects SimdMode::kOff, anything
/// else (including "auto") selects kAuto.
SimdMode ParseSimdMode(const std::string& value);

/// Name of the instruction set behind the active dispatch table:
/// "avx2+fma" or "scalar".
const char* ActiveIsa();

/// True when a vectorized (non-scalar) dispatch table is active.
bool SimdActive();

/// True when this binary and CPU can run the AVX2+FMA kernels at all,
/// regardless of the current mode (used by parity tests to decide whether
/// the two paths genuinely differ).
bool Avx2Supported();

// ---------------------------------------------------------------------------
// Kernels. All follow SafeExp clamping semantics where exponentials are
// involved: exponents are clamped to [-708, 708] so results stay finite
// and normal. Sizes are asserted, never checked at runtime in release.
// ---------------------------------------------------------------------------

/// y_i = exp(x_i - 1), the batched primal map p(λ) = exp(Aᵀλ − 1).
void ExpM1Shifted(ConstSpan x, Span y);

/// Fused exp + horizontal accumulate: x_i <- exp(x_i - 1) in place and
/// the sum Σ_i exp(x_i - 1) is returned. This is the dual objective's
/// single pass over the primal buffer.
double ExpM1SumInPlace(Span x);

/// Σ_i exp(x_i - shift) without storing the terms (LogSumExp's second
/// pass; `shift` is the max element).
double SumExpShifted(ConstSpan x, double shift);

/// Dot product aᵀb.
double Dot(ConstSpan a, ConstSpan b);

/// y += alpha * x.
void Axpy(double alpha, ConstSpan x, Span y);

/// out_i = a_i + s * d_i — the line-search probe update λ + t·direction,
/// writing a separate trial buffer.
void ScaledAdd(ConstSpan a, double s, ConstSpan d, Span out);

/// v *= s.
void Scale(Span v, double s);

/// Euclidean norm.
double TwoNorm(ConstSpan v);

/// max_i |v_i| (0 for empty input).
double InfNorm(ConstSpan v);

/// max_i v_i (-inf for empty input).
double MaxVal(ConstSpan v);

/// -Σ_i v_i ln v_i with the 0·ln 0 = 0 convention (entropy accumulation;
/// scalar on every ISA — it runs once per solve, not once per iteration).
double NegXLogXSum(ConstSpan v);

}  // namespace pme::kernels

#endif  // PME_COMMON_VEC_MATH_H_
