#include "common/flags.h"

#include <cstdlib>

#include "common/string_util.h"

namespace pme {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      values_[body] = "true";
    }
  }
  const char* full_env = std::getenv("PME_FULL");
  if (full_env != nullptr && std::string(full_env) != "0" &&
      values_.find("full") == values_.end()) {
    values_["full"] = "true";
  }
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

long long Flags::GetInt(const std::string& name,
                        long long default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  long long v = 0;
  return ParseInt(it->second, &v) ? v : default_value;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double v = 0.0;
  return ParseDouble(it->second, &v) ? v : default_value;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v.empty();
}

bool Flags::Has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

}  // namespace pme
