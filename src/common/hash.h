// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_HASH_H_
#define PME_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pme {

/// A 128-bit content digest. Used as the key of the component solution
/// cache: two coupled components with equal digests are treated as the
/// same subproblem, so the digest must be stable across runs, platforms
/// and endianness — never across releases that change the hashed content
/// layout (bump the seed constants when that layout changes).
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Hash128& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Hash128& other) const { return !(*this == other); }
  bool operator<(const Hash128& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32-hex-digit rendering (hi then lo), for logs and golden tests.
  std::string ToHex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string out(32, '0');
    uint64_t parts[2] = {hi, lo};
    for (int p = 0; p < 2; ++p) {
      for (int i = 0; i < 16; ++i) {
        out[p * 16 + i] =
            kDigits[(parts[p] >> (60 - 4 * i)) & 0xF];
      }
    }
    return out;
  }
};

/// Functor for unordered containers keyed by Hash128. The digest is
/// already uniformly mixed, so one lane is a perfectly good bucket index.
struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.lo);
  }
};

/// Streaming 128-bit mixer in the FNV/xxhash family: two 64-bit lanes
/// absorb the input one little-endian word at a time and are avalanched
/// at the end. Not cryptographic — collision resistance is the
/// birthday-bound of 128 bits against accidental collisions, which is
/// what a content-addressed cache needs.
///
/// Endianness pinning: callers never feed raw struct memory; every
/// Update overload decomposes its value into uint64 words arithmetically
/// (bytes of strings are assembled low-byte-first), so the digest is
/// identical on little- and big-endian hosts.
class Hasher128 {
 public:
  Hasher128() = default;

  /// Absorbs one 64-bit word.
  void Update(uint64_t v) { Absorb(v); }
  void Update(uint32_t v) { Absorb(v); }
  void Update(int v) { Absorb(static_cast<uint64_t>(static_cast<int64_t>(v))); }

  /// Absorbs a double by IEEE-754 bit pattern. Negative zero is
  /// canonicalized to positive zero so numerically equal inputs cannot
  /// produce distinct digests.
  void Update(double v) {
    if (v == 0.0) v = 0.0;  // -0.0 == 0.0 → canonical +0.0
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Absorb(bits);
  }

  /// Absorbs a byte string, length-prefixed (so "ab","c" != "a","bc").
  void Update(std::string_view s) {
    Absorb(static_cast<uint64_t>(s.size()));
    uint64_t word = 0;
    int n = 0;
    for (unsigned char c : s) {
      word |= static_cast<uint64_t>(c) << (8 * n);
      if (++n == 8) {
        Absorb(word);
        word = 0;
        n = 0;
      }
    }
    if (n > 0) Absorb(word);
  }

  /// Absorbs a previously computed digest (for hash-of-hashes keys).
  void Update(const Hash128& h) {
    Absorb(h.hi);
    Absorb(h.lo);
  }

  /// Finalizes the digest. The hasher may keep absorbing afterwards;
  /// Finish is a pure function of the words absorbed so far.
  Hash128 Finish() const {
    uint64_t a = h1_ ^ Fmix(words_ * kC1);
    uint64_t b = h2_ ^ Fmix(words_ * kC2);
    a += b;
    b += a;
    return {Fmix(a), Fmix(b)};
  }

 private:
  // Murmur3-style lane constants and finalizer.
  static constexpr uint64_t kC1 = 0x87c37b91114253d5ULL;
  static constexpr uint64_t kC2 = 0x4cf5ad432745937fULL;
  static constexpr uint64_t kSeed1 = 0x9e3779b97f4a7c15ULL;  // golden ratio
  static constexpr uint64_t kSeed2 = 0xc2b2ae3d27d4eb4fULL;  // xxh prime

  static uint64_t Rotl(uint64_t v, int r) {
    return (v << r) | (v >> (64 - r));
  }

  static uint64_t Fmix(uint64_t k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
  }

  void Absorb(uint64_t w) {
    h1_ = (Rotl(h1_ ^ Rotl(w * kC1, 31) * kC2, 27) + h2_) * 5 + 0x52dce729;
    h2_ = (Rotl(h2_ ^ Rotl(w * kC2, 33) * kC1, 31) + h1_) * 5 + 0x38495ab5;
    ++words_;
  }

  uint64_t h1_ = kSeed1;
  uint64_t h2_ = kSeed2;
  uint64_t words_ = 0;
};

}  // namespace pme

#endif  // PME_COMMON_HASH_H_
