// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_PRNG_H_
#define PME_COMMON_PRNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pme {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through splitmix64. All experiments in
/// this repository are reproducible bit-for-bit given the same seed; we do
/// not use `std::mt19937` because its distributions are not guaranteed to
/// produce identical streams across standard-library implementations.
class Prng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Prng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal deviate (Box–Muller, cached pair).
  double NextGaussian();

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns `weights.size() - 1` if rounding pushes past the end.
  /// Precondition: at least one strictly positive weight.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pme

#endif  // PME_COMMON_PRNG_H_
