#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace pme {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt(std::string_view s, long long* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string FormatDouble(double v) {
  // Integral values print as integers ("10", not "1e+01").
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    char ibuf[32];
    std::snprintf(ibuf, sizeof(ibuf), "%lld", static_cast<long long>(v));
    return ibuf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Try shorter representations that still round-trip.
  for (int prec = 1; prec <= 17; ++prec) {
    char trial[64];
    std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) return trial;
  }
  return buf;
}

}  // namespace pme
