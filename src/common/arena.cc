#include "common/arena.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/metrics.h"

namespace pme {
namespace {

/// Tag header preceding every ScratchVector allocation. 16 bytes keeps
/// the payload 16-byte aligned (operator new and the arena both hand out
/// 16-byte-aligned blocks).
struct alignas(16) BlockHeader {
  uint64_t magic;
  uint64_t payload_bytes;
};
static_assert(sizeof(BlockHeader) == 16, "header must preserve alignment");

constexpr uint64_t kArenaMagic = 0x41524e41504d4531ULL;  // "ARNAPME1"
constexpr uint64_t kHeapMagic = 0x48454150504d4531ULL;   // "HEAPPME1"

std::atomic<bool> g_arena_enabled{[] {
  // PME_ARENA=off|0 disables the arena at startup (the CI A/B switch);
  // the --arena CLI flag overrides at flag-parse time.
  const char* env = std::getenv("PME_ARENA");
  return !(env != nullptr &&
           (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0));
}()};

/// Process-wide arena census in the metrics registry — the bench JSON and
/// the `stats` serve verb read these.
struct ArenaMetrics {
  metrics::Counter* arena_allocs;
  metrics::Counter* arena_bytes;
  metrics::Counter* heap_fallback_allocs;
  metrics::Counter* heap_fallback_bytes;
  metrics::Counter* chunk_allocs;
  metrics::Gauge* reserved_bytes;
};

ArenaMetrics& GetArenaMetrics() {
  static ArenaMetrics m = [] {
    auto& registry = metrics::Registry::Global();
    ArenaMetrics r;
    r.arena_allocs = &registry.GetCounter("arena.allocs");
    r.arena_bytes = &registry.GetCounter("arena.bytes");
    r.heap_fallback_allocs = &registry.GetCounter("arena.heap_fallback_allocs");
    r.heap_fallback_bytes = &registry.GetCounter("arena.heap_fallback_bytes");
    r.chunk_allocs = &registry.GetCounter("arena.chunk_allocs");
    r.reserved_bytes = &registry.GetGauge("arena.reserved_bytes");
    return r;
  }();
  return m;
}

inline size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::~Arena() {
  for (Chunk& c : chunks_) ::operator delete(c.data);
}

Arena& Arena::ThreadLocal() {
  thread_local Arena arena;
  return arena;
}

void Arena::SetEnabled(bool enabled) {
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

bool Arena::Enabled() {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

void Arena::Grow(size_t min_bytes) {
  // Advance to an already-reserved later chunk when one fits (left behind
  // by a previous high-water mark before a scope rewind); otherwise
  // reserve a fresh chunk, doubling so the chunk count stays logarithmic
  // in the high-water mark.
  for (size_t k = chunks_.empty() ? 0 : current_ + 1; k < chunks_.size();
       ++k) {
    if (chunks_[k].size >= min_bytes) {
      current_ = k;
      offset_ = 0;
      return;
    }
  }
  size_t size = chunks_.empty() ? kMinChunkBytes : chunks_.back().size * 2;
  while (size < min_bytes) size *= 2;
  Chunk c;
  c.data = static_cast<char*>(::operator new(size));
  c.size = size;
  chunks_.push_back(c);
  current_ = chunks_.size() - 1;
  offset_ = 0;
  reserved_bytes_ += size;
  ++stats_.chunk_allocs;
  stats_.reserved_bytes = reserved_bytes_;
  ArenaMetrics& m = GetArenaMetrics();
  m.chunk_allocs->Add();
  m.reserved_bytes->Set(static_cast<int64_t>(reserved_bytes_));
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && align <= 64);
  if (chunks_.empty()) Grow(bytes + align);
  size_t aligned = AlignUp(offset_, align);
  if (aligned + bytes > chunks_[current_].size) {
    Grow(bytes + align);
    aligned = AlignUp(offset_, align);
  }
  void* p = chunks_[current_].data + aligned;
  offset_ = aligned + bytes;
  return p;
}

void Arena::Rewind(const Marker& m) {
  assert(m.chunk <= current_);
  current_ = m.chunk;
  offset_ = m.offset;
}

size_t Arena::BytesInUse() const {
  if (chunks_.empty()) return 0;
  size_t used = offset_;
  for (size_t k = 0; k < current_; ++k) used += chunks_[k].size;
  return used;
}

ArenaScope::ArenaScope() : arena_(&Arena::ThreadLocal()) {
  marker_ = arena_->Mark();
  ++arena_->depth_;
}

ArenaScope::~ArenaScope() {
  --arena_->depth_;
  arena_->Rewind(marker_);
}

namespace internal {

void* ScratchAllocate(size_t bytes) {
  Arena& arena = Arena::ThreadLocal();
  if (arena.InScope()) {
    ArenaMetrics& m = GetArenaMetrics();
    if (Arena::Enabled()) {
      auto* header = static_cast<BlockHeader*>(
          arena.Allocate(bytes + sizeof(BlockHeader), 16));
      header->magic = kArenaMagic;
      header->payload_bytes = bytes;
      arena.CountScratch(bytes, /*from_arena=*/true);
      m.arena_allocs->Add();
      m.arena_bytes->Add(static_cast<uint64_t>(bytes));
      return header + 1;
    }
    // Arena disabled but a scope is open: this is exactly the per-block
    // heap allocation the arena exists to remove — count it so the A/B
    // census can show the difference.
    arena.CountScratch(bytes, /*from_arena=*/false);
    m.heap_fallback_allocs->Add();
    m.heap_fallback_bytes->Add(static_cast<uint64_t>(bytes));
  }
  auto* header =
      static_cast<BlockHeader*>(::operator new(bytes + sizeof(BlockHeader)));
  header->magic = kHeapMagic;
  header->payload_bytes = bytes;
  return header + 1;
}

void ScratchDeallocate(void* p) noexcept {
  if (p == nullptr) return;
  BlockHeader* header = static_cast<BlockHeader*>(p) - 1;
  if (header->magic == kHeapMagic) {
    ::operator delete(header);
    return;
  }
  // Arena block: reclaimed wholesale by the owning scope's rewind.
  assert(header->magic == kArenaMagic);
}

}  // namespace internal
}  // namespace pme
