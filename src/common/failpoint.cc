#include "common/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/string_util.h"

namespace pme::failpoint {
namespace {

struct Trigger {
  /// 1-based hit index to fire at; 0 means "every hit".
  size_t fire_at = 0;
  /// With fire_at > 0: keep firing from that hit onward ("@N+").
  bool onward = false;
  size_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Trigger, std::less<>> triggers;
  /// True once Configure/Reset has run (explicitly or from the
  /// environment); the env var is consulted at most once per process.
  bool initialized = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Fast path: solvers call Hit() every iteration, so the "nothing
/// configured" case must not take the lock.
std::atomic<bool> g_any_active{false};

Status ParseSpec(std::string_view spec,
                 std::map<std::string, Trigger, std::less<>>* out) {
  for (const auto& raw : Split(spec, ',')) {
    const std::string_view entry = Trim(raw);
    if (entry.empty()) continue;
    Trigger trigger;
    std::string_view name = entry;
    const size_t at = entry.find('@');
    if (at != std::string_view::npos) {
      name = entry.substr(0, at);
      std::string_view count = entry.substr(at + 1);
      if (!count.empty() && count.back() == '+') {
        trigger.onward = true;
        count.remove_suffix(1);
      }
      long long n = 0;
      if (!ParseInt(count, &n) || n < 1) {
        return Status::InvalidArgument(
            "failpoint spec '" + std::string(entry) +
            "': expected name@N or name@N+ with N >= 1");
      }
      trigger.fire_at = static_cast<size_t>(n);
    }
    if (name.empty()) {
      return Status::InvalidArgument("failpoint spec has an empty name in '" +
                                     std::string(entry) + "'");
    }
    (*out)[std::string(name)] = trigger;
  }
  return Status::Ok();
}

/// Installs the PME_FAILPOINTS environment spec the first time any
/// failpoint API runs, unless Configure/Reset already ran. Caller holds
/// the registry lock.
void MaybeInitFromEnvLocked(Registry& registry) {
  if (registry.initialized) return;
  registry.initialized = true;
  const char* env = std::getenv("PME_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::map<std::string, Trigger, std::less<>> parsed;
  if (ParseSpec(env, &parsed).ok()) {
    registry.triggers = std::move(parsed);
    g_any_active.store(!registry.triggers.empty(),
                       std::memory_order_release);
  }
  // A malformed env spec is silently ignored: fault injection must never
  // be able to break a production run before it begins.
}

}  // namespace

Status Configure(std::string_view spec) {
  std::map<std::string, Trigger, std::less<>> parsed;
  PME_RETURN_IF_ERROR(ParseSpec(spec, &parsed));
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.initialized = true;
  registry.triggers = std::move(parsed);
  g_any_active.store(!registry.triggers.empty(), std::memory_order_release);
  return Status::Ok();
}

void Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.initialized = true;
  registry.triggers.clear();
  g_any_active.store(false, std::memory_order_release);
}

bool Hit(std::string_view name) {
  if (!g_any_active.load(std::memory_order_acquire)) {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    MaybeInitFromEnvLocked(registry);
    if (!g_any_active.load(std::memory_order_acquire)) return false;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.triggers.find(name);
  if (it == registry.triggers.end()) return false;
  Trigger& trigger = it->second;
  ++trigger.hits;
  if (trigger.fire_at == 0) return true;
  if (trigger.onward) return trigger.hits >= trigger.fire_at;
  return trigger.hits == trigger.fire_at;
}

size_t HitCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  MaybeInitFromEnvLocked(registry);
  auto it = registry.triggers.find(name);
  return it == registry.triggers.end() ? 0 : it->second.hits;
}

std::string ActiveSpec() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  MaybeInitFromEnvLocked(registry);
  std::string out;
  for (const auto& [name, trigger] : registry.triggers) {
    if (!out.empty()) out += ',';
    out += name;
    if (trigger.fire_at > 0) {
      out += '@';
      out += std::to_string(trigger.fire_at);
      if (trigger.onward) out += '+';
    }
  }
  return out;
}

}  // namespace pme::failpoint
