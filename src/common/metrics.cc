#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace pme::metrics {
namespace {

std::atomic<bool> g_enabled{true};

/// Small dense per-thread id for counter shard selection (stable for the
/// thread's lifetime; wraps across the shard mask, which only costs
/// contention, never correctness).
size_t ThreadShardId() {
  static std::atomic<size_t> next{0};
  thread_local const size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// CAS-accumulate for atomic doubles (C++17 lacks fetch_add(double)).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Shortest round-trippable double rendering (mirrors serve/json.cc;
/// duplicated because common must not depend on the serve layer).
std::string NumberToJson(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

template <typename MetricPtr>
typename std::vector<std::pair<std::string, MetricPtr>>::iterator FindName(
    std::vector<std::pair<std::string, MetricPtr>>& entries,
    std::string_view name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Counter::Add(uint64_t delta) {
  if (!Enabled()) return;
  cells_[ThreadShardId() & (kShards - 1)].value.fetch_add(
      delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Set(int64_t value) {
  if (!Enabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(int64_t delta) {
  if (!Enabled()) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  return value_.load(std::memory_order_relaxed);
}

Histogram::Histogram(const HistogramOptions& options) : options_(options) {
  options_.num_buckets = std::max<size_t>(options_.num_buckets, 1);
  options_.lowest = options_.lowest > 0 ? options_.lowest : 1e-6;
  options_.growth = options_.growth > 1.0 ? options_.growth : 2.0;
  bounds_.reserve(options_.num_buckets);
  double bound = options_.lowest;
  for (size_t i = 0; i < options_.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options_.growth;
  }
  buckets_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketOf(double value) const {
  // First bound strictly greater than the value; ties go to the next
  // bucket (bucket i covers [bounds[i-1], bounds[i])).
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

void Histogram::Observe(double value) {
  if (!Enabled()) return;
  if (!std::isfinite(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  const uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  if (prior == 0) {
    // First observation seeds min; racing first observers both fall
    // through to the CAS loops below, so the seed can only be tightened.
    min_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::Quantile(double q) const {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank) {
      if (i >= bounds.size()) return max;  // overflow bucket
      const double hi = bounds[i];
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      // Linear interpolation inside the bucket.
      const uint64_t in_bucket = counts[i];
      const double into =
          in_bucket == 0
              ? 1.0
              : (rank - static_cast<double>(seen - in_bucket)) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(std::max(into, 0.0), 1.0);
    }
  }
  return max;
}

Registry& Registry::Global() {
  static Registry* const registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindName(counters_, name);
  if (it == counters_.end() || it->first != name) {
    it = counters_.emplace(
        it, std::string(name),
        std::unique_ptr<Counter>(new Counter()));
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindName(gauges_, name);
  if (it == gauges_.end() || it->first != name) {
    it = gauges_.emplace(it, std::string(name),
                         std::unique_ptr<Gauge>(new Gauge()));
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindName(histograms_, name);
  if (it == histograms_.end() || it->first != name) {
    it = histograms_.emplace(
        it, std::string(name),
        std::unique_ptr<Histogram>(new Histogram(options)));
  }
  return *it->second;
}

uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& counters = const_cast<Registry*>(this)->counters_;
  const auto it = FindName(counters, name);
  if (it == counters.end() || it->first != name) return 0;
  return it->second->Value();
}

std::string Registry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name;
    out += " ";
    out += std::to_string(counter->Value());
    out += "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name;
    out += " ";
    out += std::to_string(gauge->Value());
    out += "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out += name;
    out += " count=" + std::to_string(snap.count);
    out += " sum=" + NumberToJson(snap.sum);
    out += " min=" + NumberToJson(snap.min);
    out += " max=" + NumberToJson(snap.max);
    out += " p50=" + NumberToJson(snap.Quantile(0.5));
    out += " p99=" + NumberToJson(snap.Quantile(0.99));
    out += "\n";
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out += "\"" + name + "\":{";
    out += "\"count\":" + std::to_string(snap.count);
    out += ",\"sum\":" + NumberToJson(snap.sum);
    out += ",\"min\":" + NumberToJson(snap.min);
    out += ",\"max\":" + NumberToJson(snap.max);
    out += ",\"p50\":" + NumberToJson(snap.Quantile(0.5));
    out += ",\"p90\":" + NumberToJson(snap.Quantile(0.9));
    out += ",\"p99\":" + NumberToJson(snap.Quantile(0.99));
    out += ",\"buckets\":[";
    // Only populated buckets are listed — 32 mostly-empty entries per
    // histogram would dominate the payload.
    bool first_bucket = true;
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      const double le = i < snap.bounds.size()
                            ? snap.bounds[i]
                            : std::numeric_limits<double>::infinity();
      out += "{\"le\":";
      out += std::isfinite(le) ? NumberToJson(le) : "\"inf\"";
      out += ",\"count\":" + std::to_string(snap.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace pme::metrics
