#include "common/prng.h"

#include <cassert>
#include <cmath>

namespace pme {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state, which is
  // the one fixed point of xoshiro256**.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Prng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Prng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Prng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Prng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Prng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Prng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace pme
