#include "common/status.h"

namespace pme {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kNumericalError:
      return "numerical_error";
    case StatusCode::kNotConverged:
      return "not_converged";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kNotImplemented:
      return "not_implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::ostringstream oss;
  oss << StatusCodeToString(code_) << ": " << message_;
  return oss.str();
}

}  // namespace pme
