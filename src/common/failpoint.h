// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_FAILPOINT_H_
#define PME_COMMON_FAILPOINT_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

// Deterministic fault-injection registry, so the recovery paths of the
// solve pipeline (NaN gradients, spurious non-convergence, pool task
// exceptions, clock skips) are exercisable in CI instead of waiting for
// production to find them.
//
// A failpoint is a named site in the code, written as
//
//   if (PME_FAILPOINT("lbfgs_nan")) { /* inject the fault */ }
//
// Sites are inert (one relaxed atomic load) until activated through
// `failpoint::Configure` or the `PME_FAILPOINTS` environment variable.
// The spec is a comma-separated list of triggers:
//
//   name        fire on every hit of the site
//   name@N      fire exactly on the Nth hit (1-based)
//   name@N+     fire on the Nth hit and every hit after it
//
// e.g. `PME_FAILPOINTS=lbfgs_nan@3,pool_task_throw@1`. Hit counting is a
// process-global, per-name counter; with a serial solve (threads == 1)
// the hit order — and therefore the injected fault — is deterministic.
//
// The whole registry is compile-time gated: building with
// -DPME_FAILPOINTS=OFF (CMake) defines PME_FAILPOINTS_ENABLED=0 and
// every PME_FAILPOINT expands to the constant `false`, so the branches
// fold away and release binaries carry no injection code.

#ifndef PME_FAILPOINTS_ENABLED
#define PME_FAILPOINTS_ENABLED 1
#endif

#if PME_FAILPOINTS_ENABLED
#define PME_FAILPOINT(name) (::pme::failpoint::Hit(name))
#else
#define PME_FAILPOINT(name) (false)
#endif

namespace pme::failpoint {

/// True when failpoint support was compiled into this build.
constexpr bool CompiledIn() { return PME_FAILPOINTS_ENABLED != 0; }

/// Installs the trigger spec described above, replacing any previous
/// configuration (counters restart at zero). An empty spec deactivates
/// every site. Returns kInvalidArgument on a malformed spec; the
/// previous configuration is kept in that case.
Status Configure(std::string_view spec);

/// Deactivates every failpoint and clears all hit counters. Does not
/// re-read the environment: once Reset (or Configure) has run, the
/// PME_FAILPOINTS variable is never consulted again.
void Reset();

/// Records one hit of the named site and reports whether the configured
/// trigger fires. The first call of any failpoint API lazily installs
/// the PME_FAILPOINTS environment spec, so binaries need no explicit
/// initialization. Inert (false) when nothing is configured.
bool Hit(std::string_view name);

/// Hits recorded for `name` since the last Configure/Reset. Zero for
/// sites that are not configured (untracked sites are not counted).
size_t HitCount(std::string_view name);

/// The currently installed spec, re-rendered (for logs and tests).
std::string ActiveSpec();

}  // namespace pme::failpoint

#endif  // PME_COMMON_FAILPOINT_H_
