#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace pme::trace {
namespace {

std::atomic<bool> g_enabled{true};

/// One ring slot, seqlock-guarded: seq == 2*ticket+1 while the writer is
/// inside, 2*ticket+2 once published, 0 when never written. Readers keep
/// a slot only when they see the same even nonzero seq before and after
/// the copy.
struct Slot {
  std::atomic<uint64_t> seq{0};
  TraceEvent event;
};

Slot* Ring() {
  static Slot* const ring = new Slot[kRingCapacity];  // never destroyed
  return ring;
}

std::atomic<uint64_t> g_next_ticket{0};

/// Active per-request captures. The atomic count makes the idle fast
/// path (no `"trace": true` request in flight) one relaxed load.
std::atomic<int> g_active_captures{0};
std::mutex g_capture_mutex;
std::unordered_map<uint64_t, std::vector<TraceEvent>*>& CaptureTable() {
  static auto* const table =
      new std::unordered_map<uint64_t, std::vector<TraceEvent>*>();
  return *table;
}

thread_local uint64_t t_trace_id = 0;

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

uint64_t NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t NewTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentTraceId() { return t_trace_id; }

TraceIdScope::TraceIdScope(uint64_t id) : previous_(t_trace_id) {
  t_trace_id = id;
}

TraceIdScope::~TraceIdScope() { t_trace_id = previous_; }

TraceSpan::TraceSpan(const char* name, const char* category) {
  if (!Enabled()) return;
  armed_ = true;
  event_.name = name;
  event_.category = category;
  event_.start_ns = NowNanos();
}

void TraceSpan::AddArg(const char* name, double value) {
  if (!armed_ || num_args_ >= 2) return;
  event_.arg_names[num_args_] = name;
  event_.arg_values[num_args_] = value;
  ++num_args_;
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  event_.dur_ns = NowNanos() - event_.start_ns;
  event_.tid = CurrentThreadId();
  event_.trace_id = t_trace_id;
  RecordEvent(event_);
}

void RecordEvent(const TraceEvent& event) {
  if (!Enabled()) return;
  const uint64_t ticket =
      g_next_ticket.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = Ring()[ticket % kRingCapacity];
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.event = event;
  slot.seq.store(2 * ticket + 2, std::memory_order_release);

  if (event.trace_id != 0 &&
      g_active_captures.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(g_capture_mutex);
    auto it = CaptureTable().find(event.trace_id);
    if (it != CaptureTable().end()) it->second->push_back(event);
  }
}

RequestCapture::RequestCapture(uint64_t trace_id) : trace_id_(trace_id) {
  std::lock_guard<std::mutex> lock(g_capture_mutex);
  CaptureTable()[trace_id_] = new std::vector<TraceEvent>();
  g_active_captures.fetch_add(1, std::memory_order_relaxed);
}

RequestCapture::~RequestCapture() {
  std::lock_guard<std::mutex> lock(g_capture_mutex);
  auto it = CaptureTable().find(trace_id_);
  if (it != CaptureTable().end()) {
    delete it->second;
    CaptureTable().erase(it);
    g_active_captures.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<TraceEvent> RequestCapture::TakeEvents() {
  std::lock_guard<std::mutex> lock(g_capture_mutex);
  auto it = CaptureTable().find(trace_id_);
  if (it == CaptureTable().end()) return {};
  std::vector<TraceEvent> events;
  events.swap(*it->second);
  return events;
}

std::vector<TraceEvent> SnapshotRing() {
  struct Keyed {
    uint64_t seq;
    TraceEvent event;
  };
  std::vector<Keyed> kept;
  kept.reserve(kRingCapacity);
  Slot* const ring = Ring();
  for (size_t i = 0; i < kRingCapacity; ++i) {
    const uint64_t before = ring[i].seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    const TraceEvent copy = ring[i].event;
    const uint64_t after = ring[i].seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten during the copy
    kept.push_back({before, copy});
  }
  std::sort(kept.begin(), kept.end(),
            [](const Keyed& a, const Keyed& b) { return a.seq < b.seq; });
  std::vector<TraceEvent> events;
  events.reserve(kept.size());
  for (const Keyed& k : kept) events.push_back(k.event);
  return events;
}

void ClearRing() {
  Slot* const ring = Ring();
  for (size_t i = 0; i < kRingCapacity; ++i) {
    ring[i].seq.store(0, std::memory_order_relaxed);
  }
}

std::string RenderChromeTrace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.category != nullptr ? e.category : "pme";
    // Chrome trace timestamps are microseconds.
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out += buf;
    out += ",\"args\":{";
    bool first_arg = true;
    if (e.trace_id != 0) {
      out += "\"trace_id\":" + std::to_string(e.trace_id);
      first_arg = false;
    }
    for (size_t a = 0; a < 2; ++a) {
      if (e.arg_names[a] == nullptr) continue;
      if (!first_arg) out += ",";
      first_arg = false;
      std::snprintf(buf, sizeof(buf), "%.17g", e.arg_values[a]);
      out += "\"";
      out += e.arg_names[a];
      out += "\":";
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  const std::string json = RenderChromeTrace(SnapshotRing());
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok = std::fputs(json.c_str(), out) >= 0 &&
                  std::fputs("\n", out) >= 0;
  std::fclose(out);
  return ok;
}

}  // namespace pme::trace
