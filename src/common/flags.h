// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_FLAGS_H_
#define PME_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace pme {

/// Minimal command-line flag parser used by benches and examples.
///
/// Accepts `--name=value` and bare `--name` (boolean true). Anything not
/// starting with `--` is collected as a positional
/// argument. Also honours the PME_FULL environment variable as an alias
/// for `--full` so the whole bench directory can be escalated at once.
class Flags {
 public:
  /// Parses argv. Unknown flags are kept (benches share a common set).
  Flags(int argc, char** argv);

  /// String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  /// Integer flag with default; non-numeric values fall back to default.
  long long GetInt(const std::string& name, long long default_value) const;
  /// Double flag with default.
  double GetDouble(const std::string& name, double default_value) const;
  /// Boolean flag: present without value, or "=true/1/yes".
  bool GetBool(const std::string& name, bool default_value) const;

  /// True when a flag was explicitly supplied.
  bool Has(const std::string& name) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pme

#endif  // PME_COMMON_FLAGS_H_
