// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_STRING_UTIL_H_
#define PME_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pme {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a base-10 integer; returns false on any non-numeric content.
bool ParseInt(std::string_view s, long long* out);

/// Parses a double; returns false on any non-numeric content.
bool ParseDouble(std::string_view s, double* out);

/// Renders a double with enough precision to round-trip, trimming
/// trailing zeros for readability ("0.25", "1", "0.3333333333333333").
std::string FormatDouble(double v);

}  // namespace pme

#endif  // PME_COMMON_STRING_UTIL_H_
