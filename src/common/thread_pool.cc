#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"

namespace pme {
namespace {

/// Registry handles resolved once; every pool in the process reports
/// into the same pool.* metrics (the serve path owns a single pool, and
/// ad-hoc ParallelFor pools are short-lived).
struct PoolMetrics {
  metrics::Counter* tasks;
  metrics::Gauge* queue_depth;
  metrics::Histogram* queue_wait_seconds;
  metrics::Histogram* task_seconds;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics m = [] {
    auto& registry = metrics::Registry::Global();
    PoolMetrics r;
    r.tasks = &registry.GetCounter("pool.tasks");
    r.queue_depth = &registry.GetGauge("pool.queue_depth");
    r.queue_wait_seconds = &registry.GetHistogram("pool.queue_wait_seconds");
    r.task_seconds = &registry.GetHistogram("pool.task_seconds");
    return r;
  }();
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = ResolveThreads(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(QueuedTask{std::move(task), trace::NowNanos()});
    ++in_flight_;
  }
  GetPoolMetrics().queue_depth->Add(1);
  work_available_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (!task_threw_) return Status::Ok();
  // Consume the error so the pool is clean for the next batch.
  std::string what = std::move(first_task_error_);
  first_task_error_.clear();
  task_threw_ = false;
  return Status::Internal("thread pool task threw: " + what);
}

Status ThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return Status::Ok();
  // Batch-local completion state: tasks from other callers sharing this
  // pool neither delay the return nor leak their errors into it.
  struct BatchState {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining;
    std::string first_error;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    // fn by reference is safe: the caller blocks below until every index
    // has finished.
    Submit([state, i, &fn] {
      try {
        fn(i);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->first_error.empty()) state->first_error = e.what();
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->first_error.empty()) state->first_error = "non-std::exception";
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (!state->first_error.empty()) {
    return Status::Internal("thread pool task threw: " + state->first_error);
  }
  return Status::Ok();
}

void ThreadPool::RecordTaskError(const char* what) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!task_threw_) {
    task_threw_ = true;
    first_task_error_ = what;
  }
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& pm = GetPoolMetrics();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    const uint64_t started_ns = trace::NowNanos();
    pm.queue_depth->Add(-1);
    pm.queue_wait_seconds->Observe(
        static_cast<double>(started_ns - task.enqueued_ns) * 1e-9);
    try {
      task.fn();
    } catch (const std::exception& e) {
      RecordTaskError(e.what());
    } catch (...) {
      RecordTaskError("non-std::exception");
    }
    pm.tasks->Add();
    pm.task_seconds->Observe(
        static_cast<double>(trace::NowNanos() - started_ns) * 1e-9);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

Status ThreadPool::ParallelFor(size_t num_threads, size_t n,
                               const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || n <= 1) {
    // Serial path: same containment as the pooled path — every index is
    // attempted and the first exception is reported, not rethrown.
    std::string first_error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (const std::exception& e) {
        if (first_error.empty()) first_error = e.what();
      } catch (...) {
        if (first_error.empty()) first_error = "non-std::exception";
      }
    }
    if (!first_error.empty()) {
      return Status::Internal("thread pool task threw: " + first_error);
    }
    return Status::Ok();
  }
  ThreadPool pool(std::min(num_threads, n));
  std::atomic<size_t> next{0};
  // Per-index containment: an exception from fn(i) must not abort the
  // worker's whole index chunk, so each call is guarded individually and
  // the first error is reported after the barrier.
  std::mutex error_mutex;
  std::string first_error;
  auto record = [&error_mutex, &first_error](const char* what) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error.empty()) first_error = what;
  };
  for (size_t w = 0; w < pool.size(); ++w) {
    pool.Submit([&next, n, &fn, &record] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (const std::exception& e) {
          record(e.what());
        } catch (...) {
          record("non-std::exception");
        }
      }
    });
  }
  PME_RETURN_IF_ERROR(pool.Wait());
  if (!first_error.empty()) {
    return Status::Internal("thread pool task threw: " + first_error);
  }
  return Status::Ok();
}

}  // namespace pme
