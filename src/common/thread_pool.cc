#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace pme {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = ResolveThreads(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

void ThreadPool::ParallelFor(size_t num_threads, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(num_threads, n));
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < pool.size(); ++w) {
    pool.Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace pme
