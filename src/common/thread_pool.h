// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_THREAD_POOL_H_
#define PME_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pme {

/// A fixed-size thread pool with a single shared FIFO queue — no work
/// stealing, no priorities. Built for the block-decomposed MaxEnt solve:
/// a handful of coarse, independent block solves whose results are
/// scattered into disjoint output ranges, so determinism comes from the
/// work items themselves and the pool only supplies concurrency.
///
/// Exception contract: the library's error channel is Status, so tasks
/// are not expected to throw — but an exception that does escape a task
/// is captured, not fatal. The worker keeps draining the queue and the
/// first exception's message is surfaced as a kInternal Status from the
/// next Wait()/ParallelFor(), after every task has finished. A task
/// that threw produced no result; callers treat its output slot as
/// unset (the decomposed solver degrades that component rather than
/// failing the run).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 means std::thread::hardware_concurrency
  /// (at least 1). A pool of size 1 still runs tasks on its single worker.
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. Returns
  /// OK, or — when a task let an exception escape — a kInternal Status
  /// carrying the first such exception's message. The captured error is
  /// consumed by the return: Wait stays reusable across batches and a
  /// later batch starts with a clean slate.
  Status Wait();

  /// Runs fn(0..n-1) as one batch on this pool and blocks until every
  /// index of *this* batch has finished. Unlike Wait(), concurrent
  /// batches submitted from different threads do not wait on each
  /// other's tasks — the serving path, where many requests share one
  /// fixed set of solver threads. Containment matches ParallelFor:
  /// every index is attempted and the first escaping exception comes
  /// back as a kInternal Status (batch-local; it never taints the
  /// pool-wide Wait() channel). Must not be called from a worker of
  /// this pool — the caller blocks while holding a worker slot.
  Status RunBatch(size_t n, const std::function<void(size_t)>& fn);

  /// Resolves a `--threads` style request: 0 -> hardware concurrency,
  /// otherwise the value itself (minimum 1).
  static size_t ResolveThreads(size_t requested);

  /// Runs fn(0..n-1) across `num_threads` threads and waits for all of
  /// them. With num_threads <= 1 or n <= 1 the calls run inline on the
  /// caller's thread, in index order, with no pool spun up — callers get
  /// a zero-overhead serial path for free. Both paths share the Wait()
  /// exception contract: every index is attempted, and the first
  /// escaping exception comes back as a kInternal Status.
  static Status ParallelFor(size_t num_threads, size_t n,
                            const std::function<void(size_t)>& fn);

 private:
  /// A queued task remembers when it was submitted so the worker can
  /// observe its queue wait (pool.queue_wait_seconds) on dequeue.
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueued_ns = 0;
  };

  void WorkerLoop();
  void RecordTaskError(const char* what);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::string first_task_error_;  // empty = no task has thrown
  bool task_threw_ = false;
};

}  // namespace pme

#endif  // PME_COMMON_THREAD_POOL_H_
