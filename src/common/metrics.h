// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_METRICS_H_
#define PME_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pme::metrics {

/// Process-wide kill switch. Off makes every Add/Observe a cheap no-op
/// (one relaxed atomic load), which is how the serve-throughput bench
/// A/Bs the instrumentation overhead. Registered metrics keep whatever
/// values they had; exposition still works.
void SetEnabled(bool enabled);
bool Enabled();

/// A monotonic counter with a lock-free, contention-sharded fast path:
/// each thread increments one of kShards cacheline-padded atomic cells
/// (picked by a thread-local id), and Value() sums the cells. Increments
/// are never lost — concurrent Add calls from N threads produce exactly
/// the sum of their deltas.
class Counter {
 public:
  void Add(uint64_t delta = 1);
  uint64_t Value() const;

 private:
  friend class Registry;
  Counter() = default;

  static constexpr size_t kShards = 16;  // power of two
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kShards];
};

/// A last-write-wins signed instantaneous value (queue depth, active
/// connections, resident cache bytes).
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);
  int64_t Value() const;

 private:
  friend class Registry;
  Gauge() = default;

  std::atomic<int64_t> value_{0};
};

/// Exponential bucket layout: bucket 0 covers [0, lowest), bucket i
/// covers [lowest*growth^(i-1), lowest*growth^i), plus one overflow
/// bucket for everything at or above the last bound. The defaults suit
/// wall-clock seconds from 1 µs up to ~1 hour.
struct HistogramOptions {
  double lowest = 1e-6;
  double growth = 2.0;
  size_t num_buckets = 32;  ///< finite buckets, overflow excluded
};

/// A fixed-bucket histogram with atomic per-bucket counts plus exact
/// count/sum/min/max (CAS-maintained — C++17 has no atomic double
/// fetch_add). Observe is lock-free; Snapshot is a consistent-enough
/// read for exposition (each field is individually atomic).
class Histogram {
 public:
  void Observe(double value);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    /// Finite upper bounds (ascending) and per-bucket counts; counts has
    /// one extra trailing entry — the overflow bucket.
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    /// Bucket-interpolated quantile estimate (q in [0,1]).
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;

  const HistogramOptions& options() const { return options_; }

 private:
  friend class Registry;
  explicit Histogram(const HistogramOptions& options);

  size_t BucketOf(double value) const;

  HistogramOptions options_;
  std::vector<double> bounds_;  ///< finite upper bounds, ascending
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  ///< size bounds_+1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide metric registry. Metrics are created on first use
/// (registration takes a mutex once; the returned pointer is stable for
/// the process lifetime, so call sites cache it in a function-local
/// static) and never removed. Names are dotted paths with an optional
/// unit suffix, e.g. "serve.request_seconds".
///
///   static Counter* hits = &Registry::Global().GetCounter("cache.hits");
///   hits->Add();
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// The options are applied on first creation only; a second caller
  /// with different options gets the existing histogram.
  Histogram& GetHistogram(std::string_view name,
                          const HistogramOptions& options = {});

  /// One line per metric, sorted by name — the human-readable dump.
  std::string RenderText() const;
  /// Single-line JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,p50,p90,p99,
  /// buckets:[{le,count},...]}}}. No newlines, so it can ride inside a
  /// newline-delimited protocol response verbatim.
  std::string RenderJson() const;

  /// Point-in-time value of a single counter (0 when never registered).
  /// Reading through the registry keeps "snapshot a baseline, report
  /// deltas" callers (per-server ServeStats) free of metric handles.
  uint64_t CounterValue(std::string_view name) const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  // Sorted name -> metric maps; std::vector of pairs keeps exposition
  // ordering deterministic without a std::map per lookup (lookups are
  // one-time per call site thanks to static-local caching).
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
      histograms_;
};

}  // namespace pme::metrics

#endif  // PME_COMMON_METRICS_H_
