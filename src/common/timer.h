// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_TIMER_H_
#define PME_COMMON_TIMER_H_

#include <chrono>

namespace pme {

/// Monotonic wall-clock stopwatch for the performance experiments
/// (Figures 7(a)–7(c)).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pme

#endif  // PME_COMMON_TIMER_H_
