#include "common/logging.h"

#include <cstdlib>

namespace pme {
namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetMinLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pme
