#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/trace.h"

namespace pme {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// Resolves the starting minimum level: PME_LOG_LEVEL=debug|info|warning|
/// error (case-sensitive, matching the enum spellings sans 'k') when set
/// and recognized, kInfo otherwise.
LogLevel InitialMinLevel() {
  const char* env = std::getenv("PME_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0 || std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel g_min_level = InitialMinLevel();

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetMinLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Prefix: monotonic seconds since the trace epoch, dense thread id,
  // and — inside a request — the ambient trace id, so a log line can be
  // matched to its span timeline.
  char head[64];
  std::snprintf(head, sizeof(head), "[%.6f tid=%u",
                static_cast<double>(trace::NowNanos()) * 1e-9,
                trace::CurrentThreadId());
  stream_ << head;
  if (const uint64_t trace_id = trace::CurrentTraceId(); trace_id != 0) {
    stream_ << " trace=" << trace_id;
  }
  stream_ << " " << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pme
