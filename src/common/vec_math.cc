// Vectorized kernel layer. Three dispatch tables — portable scalar,
// AVX2+FMA, and AVX-512F/DQ — are compiled into every binary; the fastest
// one the CPU *and* OS support is selected once at startup (overridable
// with `--simd=off|avx2|avx512` for A/B benching and parity testing).
//
// The vector exponential is a Cephes-style kernel: the exponent is split
// off as k = round(x·log2 e), the residual r = x − k·ln 2 (two-part ln 2
// for accuracy) is mapped through a (3,4)-degree Padé approximant in r²,
// and 2^k is reconstructed directly in the double's exponent field. Max
// observed error vs libm is ~2 ulp, far inside the 1e-12 relative bound
// the parity tests enforce. Inputs follow SafeExp clamping (±708), so
// every result is finite and normal.
//
// The vector logarithm is the matching Cephes ln kernel: frexp performed
// in the bit domain (mantissa forced into [0.5, 1), exponent extracted
// from the bias field), the √½ branch folded into a lane mask, and the
// reduced argument mapped through the degree-(5,5) rational minimax
// approximant with the two-part ln 2 recombination. Denormals are
// pre-scaled by 2^54 instead of flushed; 0 / negative / ±Inf / NaN lanes
// are blended to the IEEE results afterwards, so all three tables agree
// with libm on every special case.
//
// The AVX-512 table runs every loop 8-wide with masked loads/stores on
// the remainder, so no kernel has a scalar tail on that tier.

#include "common/vec_math.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "common/metrics.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PME_VEC_X86 1
#include <immintrin.h>
#endif

namespace pme::kernels {
namespace {

constexpr double kExpClamp = 708.0;

inline double ClampExpArg(double x) {
  if (x > kExpClamp) return kExpClamp;
  if (x < -kExpClamp) return -kExpClamp;
  return x;  // NaN falls through both comparisons, matching SafeExp
}

// ------------------------------------------------------------ scalar path

double ExpM1SumInPlaceScalar(double* x, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = std::exp(ClampExpArg(x[i] - 1.0));
    x[i] = v;
    sum += v;
  }
  return sum;
}

void ExpM1ShiftedScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::exp(ClampExpArg(x[i] - 1.0));
}

double SumExpShiftedScalar(const double* x, size_t n, double shift) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::exp(ClampExpArg(x[i] - shift));
  return sum;
}

void LnScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::log(x[i]);
}

double NegXLogXSumScalar(const double* v, size_t n) {
  // Branch-free select, mirroring the vector tables' lane mask: entries
  // <= 0 (and NaN) contribute exactly 0.0, so scalar/AVX parity holds at
  // <= 1e-12 even for subnormal inputs.
  double h = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = v[i];
    const double term = x > 0.0 ? x * std::log(x) : 0.0;
    h -= term;
  }
  return h;
}

double KlDivergenceScalar(const double* p, const double* q, size_t n,
                          double q_floor) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double qf = std::max(q[i], q_floor);
    const double term = p[i] > 0.0 ? p[i] * std::log(p[i] / qf) : 0.0;
    s += term;
  }
  return s;
}

double DotScalar(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaledAddScalar(const double* a, double s, const double* d, double* out,
                     size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + s * d[i];
}

void ScaleScalar(double* v, double s, size_t n) {
  for (size_t i = 0; i < n; ++i) v[i] *= s;
}

double TwoNormScalar(const double* v, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += v[i] * v[i];
  return std::sqrt(s);
}

double InfNormScalar(const double* v, size_t n) {
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(v[i]));
  return m;
}

double MaxValScalar(const double* v, size_t n) {
  double m = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

// --------------------------------------------- Cephes ln coefficients
// Shared by the AVX2 and AVX-512 ln kernels. P is degree 5 (highest
// first); Q is monic degree 5 with the leading 1 implicit. The two-part
// ln 2 (0.693359375 − 2.1219e-4) recombines the exponent exactly.

constexpr double kLnP0 = 1.01875663804580931796e-4;
constexpr double kLnP1 = 4.97494994976747001425e-1;
constexpr double kLnP2 = 4.70579119878881725854e0;
constexpr double kLnP3 = 1.44989225341610930846e1;
constexpr double kLnP4 = 1.79368678507819816313e1;
constexpr double kLnP5 = 7.70838733755885391666e0;
constexpr double kLnQ0 = 1.12873587189167450590e1;
constexpr double kLnQ1 = 4.52279145837532221105e1;
constexpr double kLnQ2 = 8.29875266912776603211e1;
constexpr double kLnQ3 = 7.11544750618563894466e1;
constexpr double kLnQ4 = 2.31251620126765340583e1;
constexpr double kSqrtHalf = 0.70710678118654752440;
constexpr double kLn2Hi = 0.693359375;
constexpr double kLn2Lo = -2.121944400546905827679e-4;
constexpr double kMinNormal = 2.2250738585072014e-308;
constexpr double kTwoPow54 = 1.8014398509481984e16;

// -------------------------------------------------------- AVX2+FMA path

#if PME_VEC_X86
#define PME_TARGET_AVX2 __attribute__((target("avx2,fma")))

PME_TARGET_AVX2 inline double Hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

PME_TARGET_AVX2 inline double Hmax(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

PME_TARGET_AVX2 inline __m256d ClampExpArgPd(__m256d x) {
  // Constant-first operand order: MINPD/MAXPD return the *second* operand
  // when either is NaN, so a NaN input propagates like the scalar path.
  const __m256d hi = _mm256_set1_pd(kExpClamp);
  const __m256d lo = _mm256_set1_pd(-kExpClamp);
  return _mm256_max_pd(lo, _mm256_min_pd(hi, x));
}

/// exp of four clamped exponents.
PME_TARGET_AVX2 inline __m256d ExpPd(__m256d t) {
  const __m256d log2e = _mm256_set1_pd(1.44269504088896340736);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d one = _mm256_set1_pd(1.0);

  const __m256d k = _mm256_round_pd(
      _mm256_mul_pd(t, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(k, ln2_hi, t);
  r = _mm256_fnmadd_pd(k, ln2_lo, r);
  const __m256d r2 = _mm256_mul_pd(r, r);

  // exp(r) = 1 + 2 r P(r²) / (Q(r²) − r P(r²)).
  __m256d px = _mm256_fmadd_pd(p0, r2, p1);
  px = _mm256_fmadd_pd(px, r2, p2);
  px = _mm256_mul_pd(px, r);
  __m256d qx = _mm256_fmadd_pd(q0, r2, q1);
  qx = _mm256_fmadd_pd(qx, r2, q2);
  qx = _mm256_fmadd_pd(qx, r2, q3);
  const __m256d e = _mm256_add_pd(
      one, _mm256_div_pd(_mm256_add_pd(px, px), _mm256_sub_pd(qx, px)));

  // 2^k reconstructed in the exponent field. |k| <= 1022 after the ±708
  // clamp, so the biased exponent stays inside the normal range.
  const __m256i k64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
}

/// ln of four doubles, Cephes rational kernel + IEEE special cases.
PME_TARGET_AVX2 inline __m256d LnPd(__m256d x) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());

  // Denormals: pre-scale by 2^54 and debit the exponent, preserving full
  // relative accuracy instead of flushing to zero.
  const __m256d is_denorm = _mm256_and_pd(
      _mm256_cmp_pd(x, _mm256_set1_pd(kMinNormal), _CMP_LT_OQ),
      _mm256_cmp_pd(x, zero, _CMP_GT_OQ));
  const __m256d xs = _mm256_blendv_pd(
      x, _mm256_mul_pd(x, _mm256_set1_pd(kTwoPow54)), is_denorm);
  const __m256d e_debit =
      _mm256_blendv_pd(zero, _mm256_set1_pd(54.0), is_denorm);

  // frexp in the bit domain: e from the biased exponent field, mantissa
  // forced into [0.5, 1) by overwriting the exponent with 0x3fe.
  const __m256i bits = _mm256_castpd_si256(xs);
  const __m256i exp_raw = _mm256_and_si256(_mm256_srli_epi64(bits, 52),
                                           _mm256_set1_epi64x(0x7ff));
  // Small non-negative int64 -> double via the 2^52 magic-number trick
  // (no 64-bit cvt instruction below AVX-512DQ).
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);
  __m256d e = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(exp_raw, magic)),
      _mm256_castsi256_pd(magic));
  e = _mm256_sub_pd(e, _mm256_set1_pd(1022.0));
  e = _mm256_sub_pd(e, e_debit);

  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_set1_epi64x(0x3fe0000000000000LL)));

  // √½ branch as a lane mask: m < √½ halves the exponent's step so the
  // reduced argument stays in (√½ − 1, √2 − 1].
  const __m256d lt = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrtHalf), _CMP_LT_OQ);
  e = _mm256_sub_pd(e, _mm256_and_pd(lt, one));
  m = _mm256_blendv_pd(_mm256_sub_pd(m, one),
                       _mm256_sub_pd(_mm256_add_pd(m, m), one), lt);

  const __m256d z = _mm256_mul_pd(m, m);
  __m256d px = _mm256_set1_pd(kLnP0);
  px = _mm256_fmadd_pd(px, m, _mm256_set1_pd(kLnP1));
  px = _mm256_fmadd_pd(px, m, _mm256_set1_pd(kLnP2));
  px = _mm256_fmadd_pd(px, m, _mm256_set1_pd(kLnP3));
  px = _mm256_fmadd_pd(px, m, _mm256_set1_pd(kLnP4));
  px = _mm256_fmadd_pd(px, m, _mm256_set1_pd(kLnP5));
  __m256d qx = _mm256_add_pd(m, _mm256_set1_pd(kLnQ0));
  qx = _mm256_fmadd_pd(qx, m, _mm256_set1_pd(kLnQ1));
  qx = _mm256_fmadd_pd(qx, m, _mm256_set1_pd(kLnQ2));
  qx = _mm256_fmadd_pd(qx, m, _mm256_set1_pd(kLnQ3));
  qx = _mm256_fmadd_pd(qx, m, _mm256_set1_pd(kLnQ4));

  __m256d y =
      _mm256_div_pd(_mm256_mul_pd(_mm256_mul_pd(m, z), px), qx);
  y = _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Lo), y);
  y = _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, y);
  __m256d r = _mm256_add_pd(m, y);
  r = _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2Hi), r);

  // IEEE specials, blended in precedence order: ±0 -> −Inf, x<0 -> NaN,
  // +Inf -> +Inf, NaN passes through.
  r = _mm256_blendv_pd(r, _mm256_set1_pd(
                              -std::numeric_limits<double>::infinity()),
                       _mm256_cmp_pd(x, zero, _CMP_EQ_OQ));
  r = _mm256_blendv_pd(
      r, _mm256_set1_pd(std::numeric_limits<double>::quiet_NaN()),
      _mm256_cmp_pd(x, zero, _CMP_LT_OQ));
  r = _mm256_blendv_pd(r, inf, _mm256_cmp_pd(x, inf, _CMP_EQ_OQ));
  r = _mm256_blendv_pd(r, x, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
  return r;
}

PME_TARGET_AVX2 double ExpM1SumInPlaceAvx2(double* x, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        ClampExpArgPd(_mm256_sub_pd(_mm256_loadu_pd(x + i), one));
    const __m256d e = ExpPd(t);
    _mm256_storeu_pd(x + i, e);
    acc = _mm256_add_pd(acc, e);
  }
  double sum = Hsum(acc);
  for (; i < n; ++i) {
    const double v = std::exp(ClampExpArg(x[i] - 1.0));
    x[i] = v;
    sum += v;
  }
  return sum;
}

PME_TARGET_AVX2 void ExpM1ShiftedAvx2(const double* x, double* y, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        ClampExpArgPd(_mm256_sub_pd(_mm256_loadu_pd(x + i), one));
    _mm256_storeu_pd(y + i, ExpPd(t));
  }
  for (; i < n; ++i) y[i] = std::exp(ClampExpArg(x[i] - 1.0));
}

PME_TARGET_AVX2 double SumExpShiftedAvx2(const double* x, size_t n,
                                         double shift) {
  const __m256d sh = _mm256_set1_pd(shift);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        ClampExpArgPd(_mm256_sub_pd(_mm256_loadu_pd(x + i), sh));
    acc = _mm256_add_pd(acc, ExpPd(t));
  }
  double sum = Hsum(acc);
  for (; i < n; ++i) sum += std::exp(ClampExpArg(x[i] - shift));
  return sum;
}

// Below this length the Cephes constant setup costs more than the 4-wide
// win, so the log-family AVX2 kernels hand short inputs (per-q posterior
// rows are num_sa ≈ 16 wide) straight to the scalar bodies. The AVX-512
// tier keeps its masked path: two iterations cover such rows outright.
constexpr size_t kAvx2LogKernelCutover = 32;

PME_TARGET_AVX2 void LnAvx2(const double* x, double* y, size_t n) {
  if (n < kAvx2LogKernelCutover) return LnScalar(x, y, n);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, LnPd(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] = std::log(x[i]);
}

PME_TARGET_AVX2 double NegXLogXSumAvx2(const double* v, size_t n) {
  if (n < kAvx2LogKernelCutover) return NegXLogXSumScalar(v, n);
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    // x·ln x with x <= 0 (and NaN) lanes masked to exactly 0, matching
    // the branch-free scalar select.
    const __m256d term = _mm256_and_pd(_mm256_mul_pd(x, LnPd(x)),
                                       _mm256_cmp_pd(x, zero, _CMP_GT_OQ));
    acc = _mm256_add_pd(acc, term);
  }
  double h = -Hsum(acc);
  for (; i < n; ++i) {
    const double x = v[i];
    const double term = x > 0.0 ? x * std::log(x) : 0.0;
    h -= term;
  }
  return h;
}

PME_TARGET_AVX2 double KlDivergenceAvx2(const double* p, const double* q,
                                        size_t n, double q_floor) {
  if (n < kAvx2LogKernelCutover) return KlDivergenceScalar(p, q, n, q_floor);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d floor_v = _mm256_set1_pd(q_floor);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d pv = _mm256_loadu_pd(p + i);
    // max(floor, q): MAXPD returns the second operand on NaN, matching
    // std::max(q[i], q_floor)'s NaN-q passthrough.
    const __m256d qf = _mm256_max_pd(floor_v, _mm256_loadu_pd(q + i));
    const __m256d term =
        _mm256_and_pd(_mm256_mul_pd(pv, LnPd(_mm256_div_pd(pv, qf))),
                      _mm256_cmp_pd(pv, zero, _CMP_GT_OQ));
    acc = _mm256_add_pd(acc, term);
  }
  double s = Hsum(acc);
  for (; i < n; ++i) {
    const double qf = std::max(q[i], q_floor);
    const double term = p[i] > 0.0 ? p[i] * std::log(p[i] / qf) : 0.0;
    s += term;
  }
  return s;
}

PME_TARGET_AVX2 double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double sum = Hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

PME_TARGET_AVX2 void AxpyAvx2(double alpha, const double* x, double* y,
                              size_t n) {
  const __m256d a = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(a, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

PME_TARGET_AVX2 void ScaledAddAvx2(const double* a, double s, const double* d,
                                   double* out, size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_fmadd_pd(sv, _mm256_loadu_pd(d + i),
                                 _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + s * d[i];
}

PME_TARGET_AVX2 void ScaleAvx2(double* v, double s, size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(sv, _mm256_loadu_pd(v + i)));
  }
  for (; i < n; ++i) v[i] *= s;
}

PME_TARGET_AVX2 double TwoNormAvx2(const double* v, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    acc = _mm256_fmadd_pd(x, x, acc);
  }
  double sum = Hsum(acc);
  for (; i < n; ++i) sum += v[i] * v[i];
  return std::sqrt(sum);
}

PME_TARGET_AVX2 double InfNormAvx2(const double* v, size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_and_pd(abs_mask, _mm256_loadu_pd(v + i)));
  }
  double m = Hmax(acc);
  for (; i < n; ++i) m = std::max(m, std::fabs(v[i]));
  return m;
}

PME_TARGET_AVX2 double MaxValAvx2(const double* v, size_t n) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  __m256d acc = _mm256_set1_pd(neg_inf);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + i));
  }
  double m = Hmax(acc);
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

#undef PME_TARGET_AVX2

// ------------------------------------------------------- AVX-512F/DQ path
// Same algorithms widened to 8 lanes. Every remainder is handled with an
// opmask ((1 << rem) − 1) on the loads/stores and the accumulate, so no
// kernel on this tier falls back to a scalar loop — the masked iteration
// costs the same as a full one.

#define PME_TARGET_AVX512 __attribute__((target("avx512f,avx512dq")))

PME_TARGET_AVX512 inline __m512d ClampExpArgPd512(__m512d x) {
  // Constant-first operand order, as in the AVX2 table: MIN/MAXPD return
  // the second operand on NaN, so NaN inputs propagate.
  const __m512d hi = _mm512_set1_pd(kExpClamp);
  const __m512d lo = _mm512_set1_pd(-kExpClamp);
  return _mm512_max_pd(lo, _mm512_min_pd(hi, x));
}

/// exp of eight clamped exponents.
PME_TARGET_AVX512 inline __m512d ExpPd512(__m512d t) {
  const __m512d log2e = _mm512_set1_pd(1.44269504088896340736);
  const __m512d ln2_hi = _mm512_set1_pd(6.93145751953125e-1);
  const __m512d ln2_lo = _mm512_set1_pd(1.42860682030941723212e-6);
  const __m512d p0 = _mm512_set1_pd(1.26177193074810590878e-4);
  const __m512d p1 = _mm512_set1_pd(3.02994407707441961300e-2);
  const __m512d p2 = _mm512_set1_pd(9.99999999999999999910e-1);
  const __m512d q0 = _mm512_set1_pd(3.00198505138664455042e-6);
  const __m512d q1 = _mm512_set1_pd(2.52448340349684104192e-3);
  const __m512d q2 = _mm512_set1_pd(2.27265548208155028766e-1);
  const __m512d q3 = _mm512_set1_pd(2.00000000000000000005e0);
  const __m512d one = _mm512_set1_pd(1.0);

  const __m512d k = _mm512_roundscale_pd(
      _mm512_mul_pd(t, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(k, ln2_hi, t);
  r = _mm512_fnmadd_pd(k, ln2_lo, r);
  const __m512d r2 = _mm512_mul_pd(r, r);

  __m512d px = _mm512_fmadd_pd(p0, r2, p1);
  px = _mm512_fmadd_pd(px, r2, p2);
  px = _mm512_mul_pd(px, r);
  __m512d qx = _mm512_fmadd_pd(q0, r2, q1);
  qx = _mm512_fmadd_pd(qx, r2, q2);
  qx = _mm512_fmadd_pd(qx, r2, q3);
  const __m512d e = _mm512_add_pd(
      one, _mm512_div_pd(_mm512_add_pd(px, px), _mm512_sub_pd(qx, px)));

  // 2^k via the exponent field; AVX-512DQ has the direct 64-bit convert.
  const __m512i k64 = _mm512_cvtpd_epi64(k);
  const __m512i bits =
      _mm512_slli_epi64(_mm512_add_epi64(k64, _mm512_set1_epi64(1023)), 52);
  return _mm512_mul_pd(e, _mm512_castsi512_pd(bits));
}

/// ln of eight doubles; same Cephes kernel as LnPd with opmask blends.
PME_TARGET_AVX512 inline __m512d LnPd512(__m512d x) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d inf = _mm512_set1_pd(std::numeric_limits<double>::infinity());

  const __mmask8 is_denorm =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(kMinNormal), _CMP_LT_OQ) &
      _mm512_cmp_pd_mask(x, zero, _CMP_GT_OQ);
  const __m512d xs =
      _mm512_mask_mul_pd(x, is_denorm, x, _mm512_set1_pd(kTwoPow54));
  const __m512d e_debit =
      _mm512_mask_blend_pd(is_denorm, zero, _mm512_set1_pd(54.0));

  const __m512i bits = _mm512_castpd_si512(xs);
  const __m512i exp_raw = _mm512_and_epi64(_mm512_srli_epi64(bits, 52),
                                           _mm512_set1_epi64(0x7ff));
  __m512d e = _mm512_cvtepi64_pd(exp_raw);
  e = _mm512_sub_pd(e, _mm512_set1_pd(1022.0));
  e = _mm512_sub_pd(e, e_debit);

  __m512d m = _mm512_castsi512_pd(_mm512_or_epi64(
      _mm512_and_epi64(bits, _mm512_set1_epi64(0x000fffffffffffffLL)),
      _mm512_set1_epi64(0x3fe0000000000000LL)));

  const __mmask8 lt =
      _mm512_cmp_pd_mask(m, _mm512_set1_pd(kSqrtHalf), _CMP_LT_OQ);
  e = _mm512_mask_sub_pd(e, lt, e, one);
  m = _mm512_mask_blend_pd(lt, _mm512_sub_pd(m, one),
                           _mm512_sub_pd(_mm512_add_pd(m, m), one));

  const __m512d z = _mm512_mul_pd(m, m);
  __m512d px = _mm512_set1_pd(kLnP0);
  px = _mm512_fmadd_pd(px, m, _mm512_set1_pd(kLnP1));
  px = _mm512_fmadd_pd(px, m, _mm512_set1_pd(kLnP2));
  px = _mm512_fmadd_pd(px, m, _mm512_set1_pd(kLnP3));
  px = _mm512_fmadd_pd(px, m, _mm512_set1_pd(kLnP4));
  px = _mm512_fmadd_pd(px, m, _mm512_set1_pd(kLnP5));
  __m512d qx = _mm512_add_pd(m, _mm512_set1_pd(kLnQ0));
  qx = _mm512_fmadd_pd(qx, m, _mm512_set1_pd(kLnQ1));
  qx = _mm512_fmadd_pd(qx, m, _mm512_set1_pd(kLnQ2));
  qx = _mm512_fmadd_pd(qx, m, _mm512_set1_pd(kLnQ3));
  qx = _mm512_fmadd_pd(qx, m, _mm512_set1_pd(kLnQ4));

  __m512d y = _mm512_div_pd(_mm512_mul_pd(_mm512_mul_pd(m, z), px), qx);
  y = _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Lo), y);
  y = _mm512_fnmadd_pd(_mm512_set1_pd(0.5), z, y);
  __m512d r = _mm512_add_pd(m, y);
  r = _mm512_fmadd_pd(e, _mm512_set1_pd(kLn2Hi), r);

  r = _mm512_mask_blend_pd(
      _mm512_cmp_pd_mask(x, zero, _CMP_EQ_OQ), r,
      _mm512_set1_pd(-std::numeric_limits<double>::infinity()));
  r = _mm512_mask_blend_pd(
      _mm512_cmp_pd_mask(x, zero, _CMP_LT_OQ), r,
      _mm512_set1_pd(std::numeric_limits<double>::quiet_NaN()));
  r = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(x, inf, _CMP_EQ_OQ), r, inf);
  r = _mm512_mask_blend_pd(_mm512_cmp_pd_mask(x, x, _CMP_UNORD_Q), r, x);
  return r;
}

PME_TARGET_AVX512 inline __mmask8 TailMask(size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

PME_TARGET_AVX512 double ExpM1SumInPlaceAvx512(double* x, size_t n) {
  const __m512d one = _mm512_set1_pd(1.0);
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t =
        ClampExpArgPd512(_mm512_sub_pd(_mm512_loadu_pd(x + i), one));
    const __m512d e = ExpPd512(t);
    _mm512_storeu_pd(x + i, e);
    acc = _mm512_add_pd(acc, e);
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d t = ClampExpArgPd512(
        _mm512_sub_pd(_mm512_maskz_loadu_pd(m, x + i), one));
    const __m512d e = ExpPd512(t);
    _mm512_mask_storeu_pd(x + i, m, e);
    acc = _mm512_mask_add_pd(acc, m, acc, e);
  }
  return _mm512_reduce_add_pd(acc);
}

PME_TARGET_AVX512 void ExpM1ShiftedAvx512(const double* x, double* y,
                                          size_t n) {
  const __m512d one = _mm512_set1_pd(1.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t =
        ClampExpArgPd512(_mm512_sub_pd(_mm512_loadu_pd(x + i), one));
    _mm512_storeu_pd(y + i, ExpPd512(t));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d t = ClampExpArgPd512(
        _mm512_sub_pd(_mm512_maskz_loadu_pd(m, x + i), one));
    _mm512_mask_storeu_pd(y + i, m, ExpPd512(t));
  }
}

PME_TARGET_AVX512 double SumExpShiftedAvx512(const double* x, size_t n,
                                             double shift) {
  const __m512d sh = _mm512_set1_pd(shift);
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t =
        ClampExpArgPd512(_mm512_sub_pd(_mm512_loadu_pd(x + i), sh));
    acc = _mm512_add_pd(acc, ExpPd512(t));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d t = ClampExpArgPd512(
        _mm512_sub_pd(_mm512_maskz_loadu_pd(m, x + i), sh));
    acc = _mm512_mask_add_pd(acc, m, acc, ExpPd512(t));
  }
  return _mm512_reduce_add_pd(acc);
}

PME_TARGET_AVX512 void LnAvx512(const double* x, double* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(y + i, LnPd512(_mm512_loadu_pd(x + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    // Dead lanes load as 0 and compute ln(0) = -inf; the masked store
    // discards them.
    _mm512_mask_storeu_pd(y + i, m, LnPd512(_mm512_maskz_loadu_pd(m, x + i)));
  }
}

PME_TARGET_AVX512 double NegXLogXSumAvx512(const double* v, size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(v + i);
    const __mmask8 pos = _mm512_cmp_pd_mask(x, zero, _CMP_GT_OQ);
    acc = _mm512_add_pd(acc, _mm512_maskz_mul_pd(pos, x, LnPd512(x)));
  }
  if (i < n) {
    // Dead lanes load as 0, fail the x > 0 test, and contribute exactly 0.
    const __m512d x = _mm512_maskz_loadu_pd(TailMask(n - i), v + i);
    const __mmask8 pos = _mm512_cmp_pd_mask(x, zero, _CMP_GT_OQ);
    acc = _mm512_add_pd(acc, _mm512_maskz_mul_pd(pos, x, LnPd512(x)));
  }
  return -_mm512_reduce_add_pd(acc);
}

PME_TARGET_AVX512 double KlDivergenceAvx512(const double* p, const double* q,
                                            size_t n, double q_floor) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d floor_v = _mm512_set1_pd(q_floor);
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d pv = _mm512_loadu_pd(p + i);
    const __m512d qf = _mm512_max_pd(floor_v, _mm512_loadu_pd(q + i));
    const __mmask8 pos = _mm512_cmp_pd_mask(pv, zero, _CMP_GT_OQ);
    acc = _mm512_add_pd(
        acc, _mm512_maskz_mul_pd(pos, pv, LnPd512(_mm512_div_pd(pv, qf))));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    const __m512d pv = _mm512_maskz_loadu_pd(m, p + i);
    const __m512d qf = _mm512_max_pd(floor_v, _mm512_maskz_loadu_pd(m, q + i));
    const __mmask8 pos = _mm512_cmp_pd_mask(pv, zero, _CMP_GT_OQ);
    acc = _mm512_add_pd(
        acc, _mm512_maskz_mul_pd(pos, pv, LnPd512(_mm512_div_pd(pv, qf))));
  }
  return _mm512_reduce_add_pd(acc);
}

PME_TARGET_AVX512 double DotAvx512(const double* a, const double* b,
                                   size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + 8),
                           _mm512_loadu_pd(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    // maskz loads zero the dead lanes; 0·0 contributes nothing.
    acc0 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(m, a + i),
                           _mm512_maskz_loadu_pd(m, b + i), acc0);
  }
  return _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
}

PME_TARGET_AVX512 void AxpyAvx512(double alpha, const double* x, double* y,
                                  size_t n) {
  const __m512d a = _mm512_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(y + i, _mm512_fmadd_pd(a, _mm512_loadu_pd(x + i),
                                            _mm512_loadu_pd(y + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(
        y + i, m,
        _mm512_fmadd_pd(a, _mm512_maskz_loadu_pd(m, x + i),
                        _mm512_maskz_loadu_pd(m, y + i)));
  }
}

PME_TARGET_AVX512 void ScaledAddAvx512(const double* a, double s,
                                       const double* d, double* out,
                                       size_t n) {
  const __m512d sv = _mm512_set1_pd(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, _mm512_fmadd_pd(sv, _mm512_loadu_pd(d + i),
                                              _mm512_loadu_pd(a + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(
        out + i, m,
        _mm512_fmadd_pd(sv, _mm512_maskz_loadu_pd(m, d + i),
                        _mm512_maskz_loadu_pd(m, a + i)));
  }
}

PME_TARGET_AVX512 void ScaleAvx512(double* v, double s, size_t n) {
  const __m512d sv = _mm512_set1_pd(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(v + i, _mm512_mul_pd(sv, _mm512_loadu_pd(v + i)));
  }
  if (i < n) {
    const __mmask8 m = TailMask(n - i);
    _mm512_mask_storeu_pd(
        v + i, m, _mm512_mul_pd(sv, _mm512_maskz_loadu_pd(m, v + i)));
  }
}

PME_TARGET_AVX512 double TwoNormAvx512(const double* v, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(v + i);
    acc = _mm512_fmadd_pd(x, x, acc);
  }
  if (i < n) {
    const __m512d x = _mm512_maskz_loadu_pd(TailMask(n - i), v + i);
    acc = _mm512_fmadd_pd(x, x, acc);
  }
  return std::sqrt(_mm512_reduce_add_pd(acc));
}

PME_TARGET_AVX512 double InfNormAvx512(const double* v, size_t n) {
  __m512d acc = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_pd(acc, _mm512_abs_pd(_mm512_loadu_pd(v + i)));
  }
  if (i < n) {
    // Dead lanes load as 0 — the identity for a |·| maximum.
    acc = _mm512_max_pd(
        acc, _mm512_abs_pd(_mm512_maskz_loadu_pd(TailMask(n - i), v + i)));
  }
  if (n == 0) return 0.0;
  return _mm512_reduce_max_pd(acc);
}

PME_TARGET_AVX512 double MaxValAvx512(const double* v, size_t n) {
  const __m512d neg_inf =
      _mm512_set1_pd(-std::numeric_limits<double>::infinity());
  __m512d acc = neg_inf;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_max_pd(acc, _mm512_loadu_pd(v + i));
  }
  if (i < n) {
    // Dead lanes take the -inf background so they cannot win the max.
    acc = _mm512_max_pd(
        acc, _mm512_mask_loadu_pd(neg_inf, TailMask(n - i), v + i));
  }
  return _mm512_reduce_max_pd(acc);
}

#undef PME_TARGET_AVX512
#endif  // PME_VEC_X86

// --------------------------------------------------------- dispatch table

struct KernelTable {
  double (*exp_m1_sum_inplace)(double*, size_t);
  void (*exp_m1_shifted)(const double*, double*, size_t);
  double (*sum_exp_shifted)(const double*, size_t, double);
  void (*ln)(const double*, double*, size_t);
  double (*neg_xlogx_sum)(const double*, size_t);
  double (*kl_divergence)(const double*, const double*, size_t, double);
  double (*dot)(const double*, const double*, size_t);
  void (*axpy)(double, const double*, double*, size_t);
  void (*scaled_add)(const double*, double, const double*, double*, size_t);
  void (*scale)(double*, double, size_t);
  double (*two_norm)(const double*, size_t);
  double (*inf_norm)(const double*, size_t);
  double (*max_val)(const double*, size_t);
  const char* isa;
};

constexpr KernelTable kScalarTable = {
    ExpM1SumInPlaceScalar, ExpM1ShiftedScalar, SumExpShiftedScalar,
    LnScalar,              NegXLogXSumScalar,  KlDivergenceScalar,
    DotScalar,             AxpyScalar,         ScaledAddScalar,
    ScaleScalar,           TwoNormScalar,      InfNormScalar,
    MaxValScalar,          "scalar"};

#if PME_VEC_X86
constexpr KernelTable kAvx2Table = {
    ExpM1SumInPlaceAvx2, ExpM1ShiftedAvx2, SumExpShiftedAvx2,
    LnAvx2,              NegXLogXSumAvx2,  KlDivergenceAvx2,
    DotAvx2,             AxpyAvx2,         ScaledAddAvx2,
    ScaleAvx2,           TwoNormAvx2,      InfNormAvx2,
    MaxValAvx2,          "avx2+fma"};

constexpr KernelTable kAvx512Table = {
    ExpM1SumInPlaceAvx512, ExpM1ShiftedAvx512, SumExpShiftedAvx512,
    LnAvx512,              NegXLogXSumAvx512,  KlDivergenceAvx512,
    DotAvx512,             AxpyAvx512,         ScaledAddAvx512,
    ScaleAvx512,           TwoNormAvx512,      InfNormAvx512,
    MaxValAvx512,          "avx512"};
#endif

SimdMode g_mode = SimdMode::kAuto;
const KernelTable* g_active = &kScalarTable;

bool CpuHasAvx2() {
#if PME_VEC_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if PME_VEC_X86
void Cpuid(unsigned leaf, unsigned subleaf, unsigned* eax, unsigned* ebx,
           unsigned* ecx, unsigned* edx) {
  __asm__ volatile("cpuid"
                   : "=a"(*eax), "=b"(*ebx), "=c"(*ecx), "=d"(*edx)
                   : "a"(leaf), "c"(subleaf));
}
#endif

bool CpuHasAvx512() {
#if PME_VEC_X86
  unsigned eax, ebx, ecx, edx;
  // CPUID.1:ECX — OSXSAVE (bit 27) gates XGETBV; AVX (bit 28) sanity.
  Cpuid(1, 0, &eax, &ebx, &ecx, &edx);
  if (!(ecx & (1u << 27)) || !(ecx & (1u << 28))) return false;
  // XCR0 must show the OS saving SSE|AVX|opmask|ZMM_Hi256|Hi16_ZMM state
  // (0xE6): a hypervisor that advertises AVX-512 in CPUID but does not
  // enable the ZMM state would fault on the first 512-bit load.
  unsigned xcr0_lo, xcr0_hi;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(xcr0_lo), "=d"(xcr0_hi)
                   : "c"(0));
  if ((xcr0_lo & 0xE6u) != 0xE6u) return false;
  // CPUID.7.0:EBX — AVX512F (bit 16) + AVX512DQ (bit 17, for the 64-bit
  // integer converts in ExpPd512/LnPd512).
  Cpuid(7, 0, &eax, &ebx, &ecx, &edx);
  return (ebx & (1u << 16)) && (ebx & (1u << 17));
#else
  return false;
#endif
}

void ApplyDispatch() {
  const KernelTable* table = &kScalarTable;
#if PME_VEC_X86
  const bool avx2 = CpuHasAvx2();
  const bool avx512 = CpuHasAvx512();
  switch (g_mode) {
    case SimdMode::kOff:
      break;
    case SimdMode::kAvx2:
      if (avx2) table = &kAvx2Table;
      break;
    case SimdMode::kAvx512:
    case SimdMode::kAuto:
      // Best available at or below the requested tier.
      if (avx512) {
        table = &kAvx512Table;
      } else if (avx2) {
        table = &kAvx2Table;
      }
      break;
  }
#endif
  g_active = table;
  int64_t tier = 0;
#if PME_VEC_X86
  if (g_active == &kAvx512Table) {
    tier = 2;
  } else if (g_active == &kAvx2Table) {
    tier = 1;
  }
#endif
  // Registry::Global() is a leaked function-local static, so this is safe
  // even from the pre-main dispatch below.
  metrics::Registry::Global().GetGauge("vec_math.simd_tier").Set(tier);
}

/// Selects the dispatch table before main() runs; SetSimdMode re-selects.
struct DispatchInit {
  DispatchInit() { ApplyDispatch(); }
};
const DispatchInit g_dispatch_init;

}  // namespace

void SetSimdMode(SimdMode mode) {
  g_mode = mode;
  ApplyDispatch();
}

SimdMode GetSimdMode() { return g_mode; }

SimdMode ParseSimdMode(const std::string& value) {
  std::string lower(value.size(), '\0');
  for (size_t i = 0; i < value.size(); ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(value[i])));
  }
  if (lower == "off" || lower == "scalar") return SimdMode::kOff;
  if (lower == "avx2") return SimdMode::kAvx2;
  if (lower == "avx512") return SimdMode::kAvx512;
  if (!lower.empty() && lower != "auto") {
    // The flag exists to pin a tier in A/B runs; a typo silently
    // measuring the wrong table would corrupt the comparison, so say
    // something.
    std::fprintf(stderr,
                 "warning: unknown --simd value '%s', using 'auto'\n",
                 value.c_str());
  }
  return SimdMode::kAuto;
}

const char* SimdModeName() { return g_active->isa; }

const char* ActiveIsa() { return g_active->isa; }

bool SimdActive() { return g_active != &kScalarTable; }

bool Avx2Supported() { return CpuHasAvx2(); }

bool Avx512Supported() { return CpuHasAvx512(); }

void ExpM1Shifted(ConstSpan x, Span y) {
  assert(x.size == y.size);
  g_active->exp_m1_shifted(x.data, y.data, x.size);
}

double ExpM1SumInPlace(Span x) {
  return g_active->exp_m1_sum_inplace(x.data, x.size);
}

double SumExpShifted(ConstSpan x, double shift) {
  return g_active->sum_exp_shifted(x.data, x.size, shift);
}

void Ln(ConstSpan x, Span y) {
  assert(x.size == y.size);
  g_active->ln(x.data, y.data, x.size);
}

double NegXLogXSum(ConstSpan v) {
  return g_active->neg_xlogx_sum(v.data, v.size);
}

double KlDivergence(ConstSpan p, ConstSpan q, double q_floor) {
  assert(p.size == q.size);
  return g_active->kl_divergence(p.data, q.data, p.size, q_floor);
}

double Dot(ConstSpan a, ConstSpan b) {
  assert(a.size == b.size);
  return g_active->dot(a.data, b.data, a.size);
}

void Axpy(double alpha, ConstSpan x, Span y) {
  assert(x.size == y.size);
  g_active->axpy(alpha, x.data, y.data, x.size);
}

void ScaledAdd(ConstSpan a, double s, ConstSpan d, Span out) {
  assert(a.size == d.size && a.size == out.size);
  g_active->scaled_add(a.data, s, d.data, out.data, a.size);
}

void Scale(Span v, double s) { g_active->scale(v.data, s, v.size); }

double TwoNorm(ConstSpan v) { return g_active->two_norm(v.data, v.size); }

double InfNorm(ConstSpan v) { return g_active->inf_norm(v.data, v.size); }

double MaxVal(ConstSpan v) { return g_active->max_val(v.data, v.size); }

}  // namespace pme::kernels
