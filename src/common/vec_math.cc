// Vectorized kernel layer. Two dispatch tables — portable scalar and
// AVX2+FMA — are compiled into every binary; the fastest one the CPU
// supports is selected once at startup (overridable with `--simd=off`
// for A/B benching and parity testing).
//
// The AVX2 exponential is a Cephes-style kernel: the exponent is split
// off as k = round(x·log2 e), the residual r = x − k·ln 2 (two-part ln 2
// for accuracy) is mapped through a (3,4)-degree Padé approximant in r²,
// and 2^k is reconstructed directly in the double's exponent field. Max
// observed error vs libm is ~2 ulp, far inside the 1e-12 relative bound
// the parity tests enforce. Inputs follow SafeExp clamping (±708), so
// every result is finite and normal.

#include "common/vec_math.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PME_VEC_X86 1
#include <immintrin.h>
#endif

namespace pme::kernels {
namespace {

constexpr double kExpClamp = 708.0;

inline double ClampExpArg(double x) {
  if (x > kExpClamp) return kExpClamp;
  if (x < -kExpClamp) return -kExpClamp;
  return x;  // NaN falls through both comparisons, matching SafeExp
}

// ------------------------------------------------------------ scalar path

double ExpM1SumInPlaceScalar(double* x, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double v = std::exp(ClampExpArg(x[i] - 1.0));
    x[i] = v;
    sum += v;
  }
  return sum;
}

void ExpM1ShiftedScalar(const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::exp(ClampExpArg(x[i] - 1.0));
}

double SumExpShiftedScalar(const double* x, size_t n, double shift) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::exp(ClampExpArg(x[i] - shift));
  return sum;
}

double DotScalar(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaledAddScalar(const double* a, double s, const double* d, double* out,
                     size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + s * d[i];
}

void ScaleScalar(double* v, double s, size_t n) {
  for (size_t i = 0; i < n; ++i) v[i] *= s;
}

double TwoNormScalar(const double* v, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += v[i] * v[i];
  return std::sqrt(s);
}

double InfNormScalar(const double* v, size_t n) {
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(v[i]));
  return m;
}

double MaxValScalar(const double* v, size_t n) {
  double m = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

// -------------------------------------------------------- AVX2+FMA path

#if PME_VEC_X86
#define PME_TARGET_AVX2 __attribute__((target("avx2,fma")))

PME_TARGET_AVX2 inline double Hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

PME_TARGET_AVX2 inline double Hmax(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

PME_TARGET_AVX2 inline __m256d ClampExpArgPd(__m256d x) {
  // Constant-first operand order: MINPD/MAXPD return the *second* operand
  // when either is NaN, so a NaN input propagates like the scalar path.
  const __m256d hi = _mm256_set1_pd(kExpClamp);
  const __m256d lo = _mm256_set1_pd(-kExpClamp);
  return _mm256_max_pd(lo, _mm256_min_pd(hi, x));
}

/// exp of four clamped exponents.
PME_TARGET_AVX2 inline __m256d ExpPd(__m256d t) {
  const __m256d log2e = _mm256_set1_pd(1.44269504088896340736);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d p0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d p1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d p2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d q0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d q1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d q2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d q3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d one = _mm256_set1_pd(1.0);

  const __m256d k = _mm256_round_pd(
      _mm256_mul_pd(t, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(k, ln2_hi, t);
  r = _mm256_fnmadd_pd(k, ln2_lo, r);
  const __m256d r2 = _mm256_mul_pd(r, r);

  // exp(r) = 1 + 2 r P(r²) / (Q(r²) − r P(r²)).
  __m256d px = _mm256_fmadd_pd(p0, r2, p1);
  px = _mm256_fmadd_pd(px, r2, p2);
  px = _mm256_mul_pd(px, r);
  __m256d qx = _mm256_fmadd_pd(q0, r2, q1);
  qx = _mm256_fmadd_pd(qx, r2, q2);
  qx = _mm256_fmadd_pd(qx, r2, q3);
  const __m256d e = _mm256_add_pd(
      one, _mm256_div_pd(_mm256_add_pd(px, px), _mm256_sub_pd(qx, px)));

  // 2^k reconstructed in the exponent field. |k| <= 1022 after the ±708
  // clamp, so the biased exponent stays inside the normal range.
  const __m256i k64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
}

PME_TARGET_AVX2 double ExpM1SumInPlaceAvx2(double* x, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        ClampExpArgPd(_mm256_sub_pd(_mm256_loadu_pd(x + i), one));
    const __m256d e = ExpPd(t);
    _mm256_storeu_pd(x + i, e);
    acc = _mm256_add_pd(acc, e);
  }
  double sum = Hsum(acc);
  for (; i < n; ++i) {
    const double v = std::exp(ClampExpArg(x[i] - 1.0));
    x[i] = v;
    sum += v;
  }
  return sum;
}

PME_TARGET_AVX2 void ExpM1ShiftedAvx2(const double* x, double* y, size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        ClampExpArgPd(_mm256_sub_pd(_mm256_loadu_pd(x + i), one));
    _mm256_storeu_pd(y + i, ExpPd(t));
  }
  for (; i < n; ++i) y[i] = std::exp(ClampExpArg(x[i] - 1.0));
}

PME_TARGET_AVX2 double SumExpShiftedAvx2(const double* x, size_t n,
                                         double shift) {
  const __m256d sh = _mm256_set1_pd(shift);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        ClampExpArgPd(_mm256_sub_pd(_mm256_loadu_pd(x + i), sh));
    acc = _mm256_add_pd(acc, ExpPd(t));
  }
  double sum = Hsum(acc);
  for (; i < n; ++i) sum += std::exp(ClampExpArg(x[i] - shift));
  return sum;
}

PME_TARGET_AVX2 double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double sum = Hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

PME_TARGET_AVX2 void AxpyAvx2(double alpha, const double* x, double* y,
                              size_t n) {
  const __m256d a = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(a, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

PME_TARGET_AVX2 void ScaledAddAvx2(const double* a, double s, const double* d,
                                   double* out, size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_fmadd_pd(sv, _mm256_loadu_pd(d + i),
                                 _mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + s * d[i];
}

PME_TARGET_AVX2 void ScaleAvx2(double* v, double s, size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(sv, _mm256_loadu_pd(v + i)));
  }
  for (; i < n; ++i) v[i] *= s;
}

PME_TARGET_AVX2 double TwoNormAvx2(const double* v, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    acc = _mm256_fmadd_pd(x, x, acc);
  }
  double sum = Hsum(acc);
  for (; i < n; ++i) sum += v[i] * v[i];
  return std::sqrt(sum);
}

PME_TARGET_AVX2 double InfNormAvx2(const double* v, size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_and_pd(abs_mask, _mm256_loadu_pd(v + i)));
  }
  double m = Hmax(acc);
  for (; i < n; ++i) m = std::max(m, std::fabs(v[i]));
  return m;
}

PME_TARGET_AVX2 double MaxValAvx2(const double* v, size_t n) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  __m256d acc = _mm256_set1_pd(neg_inf);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(v + i));
  }
  double m = Hmax(acc);
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

#undef PME_TARGET_AVX2
#endif  // PME_VEC_X86

// --------------------------------------------------------- dispatch table

struct KernelTable {
  double (*exp_m1_sum_inplace)(double*, size_t);
  void (*exp_m1_shifted)(const double*, double*, size_t);
  double (*sum_exp_shifted)(const double*, size_t, double);
  double (*dot)(const double*, const double*, size_t);
  void (*axpy)(double, const double*, double*, size_t);
  void (*scaled_add)(const double*, double, const double*, double*, size_t);
  void (*scale)(double*, double, size_t);
  double (*two_norm)(const double*, size_t);
  double (*inf_norm)(const double*, size_t);
  double (*max_val)(const double*, size_t);
  const char* isa;
};

constexpr KernelTable kScalarTable = {
    ExpM1SumInPlaceScalar, ExpM1ShiftedScalar, SumExpShiftedScalar,
    DotScalar,             AxpyScalar,         ScaledAddScalar,
    ScaleScalar,           TwoNormScalar,      InfNormScalar,
    MaxValScalar,          "scalar"};

#if PME_VEC_X86
constexpr KernelTable kAvx2Table = {
    ExpM1SumInPlaceAvx2, ExpM1ShiftedAvx2, SumExpShiftedAvx2,
    DotAvx2,             AxpyAvx2,         ScaledAddAvx2,
    ScaleAvx2,           TwoNormAvx2,      InfNormAvx2,
    MaxValAvx2,          "avx2+fma"};
#endif

SimdMode g_mode = SimdMode::kAuto;
const KernelTable* g_active = &kScalarTable;

bool CpuHasAvx2() {
#if PME_VEC_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

void ApplyDispatch() {
#if PME_VEC_X86
  if (g_mode == SimdMode::kAuto && CpuHasAvx2()) {
    g_active = &kAvx2Table;
    return;
  }
#endif
  g_active = &kScalarTable;
}

/// Selects the dispatch table before main() runs; SetSimdMode re-selects.
struct DispatchInit {
  DispatchInit() { ApplyDispatch(); }
};
const DispatchInit g_dispatch_init;

}  // namespace

void SetSimdMode(SimdMode mode) {
  g_mode = mode;
  ApplyDispatch();
}

SimdMode GetSimdMode() { return g_mode; }

SimdMode ParseSimdMode(const std::string& value) {
  std::string lower(value.size(), '\0');
  for (size_t i = 0; i < value.size(); ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(value[i])));
  }
  if (lower == "off" || lower == "scalar") return SimdMode::kOff;
  if (!lower.empty() && lower != "auto") {
    // The flag exists to force the scalar baseline in A/B runs; a typo
    // silently measuring the SIMD path twice would corrupt the
    // comparison, so say something.
    std::fprintf(stderr,
                 "warning: unknown --simd value '%s', using 'auto'\n",
                 value.c_str());
  }
  return SimdMode::kAuto;
}

const char* ActiveIsa() { return g_active->isa; }

bool SimdActive() { return g_active != &kScalarTable; }

bool Avx2Supported() { return CpuHasAvx2(); }

void ExpM1Shifted(ConstSpan x, Span y) {
  assert(x.size == y.size);
  g_active->exp_m1_shifted(x.data, y.data, x.size);
}

double ExpM1SumInPlace(Span x) {
  return g_active->exp_m1_sum_inplace(x.data, x.size);
}

double SumExpShifted(ConstSpan x, double shift) {
  return g_active->sum_exp_shifted(x.data, x.size, shift);
}

double Dot(ConstSpan a, ConstSpan b) {
  assert(a.size == b.size);
  return g_active->dot(a.data, b.data, a.size);
}

void Axpy(double alpha, ConstSpan x, Span y) {
  assert(x.size == y.size);
  g_active->axpy(alpha, x.data, y.data, x.size);
}

void ScaledAdd(ConstSpan a, double s, ConstSpan d, Span out) {
  assert(a.size == d.size && a.size == out.size);
  g_active->scaled_add(a.data, s, d.data, out.data, a.size);
}

void Scale(Span v, double s) { g_active->scale(v.data, s, v.size); }

double TwoNorm(ConstSpan v) { return g_active->two_norm(v.data, v.size); }

double InfNorm(ConstSpan v) { return g_active->inf_norm(v.data, v.size); }

double MaxVal(ConstSpan v) { return g_active->max_val(v.data, v.size); }

double NegXLogXSum(ConstSpan v) {
  // Entropy runs once per solve, not once per dual iteration; a branchy
  // scalar loop is fine on every ISA (vectorizing ln is not worth the
  // polynomial here).
  double h = 0.0;
  for (size_t i = 0; i < v.size; ++i) {
    const double x = v.data[i];
    if (x > 0.0) h -= x * std::log(x);
  }
  return h;
}

}  // namespace pme::kernels
