// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_DEADLINE_H_
#define PME_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace pme {

/// A monotonic-clock wall-time budget.
///
/// Deadlines are absolute points on std::chrono::steady_clock, so they
/// compose across call layers: `SolveDecomposed` derives per-component
/// deadlines from the request deadline, every solver iteration checks
/// the same absolute instant, and nothing drifts when a rung of the
/// fallback chain re-solves. The default-constructed deadline is
/// infinite (never expires) — existing call sites pay nothing.
///
/// Value type, trivially copyable; a Deadline inside SolverOptions is
/// copied per component without shared state.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline AfterSeconds(double seconds);

  /// Expires `millis` milliseconds from now (<= 0 means already expired).
  static Deadline AfterMillis(double millis) {
    return AfterSeconds(millis * 1e-3);
  }

  /// Expires at the given absolute instant.
  static Deadline At(Clock::time_point when);

  /// The earlier of two deadlines (an infinite one never wins).
  static Deadline Earlier(const Deadline& a, const Deadline& b);

  bool is_infinite() const { return infinite_; }

  /// True once the clock has reached the deadline. Infinite deadlines
  /// never expire. Carries the `deadline_skip` failpoint: when armed, a
  /// finite deadline reports expired immediately, simulating a clock
  /// skip past the budget.
  bool Expired() const;

  /// Seconds until expiry: +infinity for infinite deadlines, clamped at
  /// zero once expired.
  double RemainingSeconds() const;

 private:
  Clock::time_point when_{};
  bool infinite_ = true;
};

/// Cooperative cancellation handle, checked by solver loops alongside
/// the deadline.
///
/// A default-constructed token is inert — it can never report
/// cancellation and costs one null check. Tokens with teeth come from a
/// CancellationSource; copies share the source's flag, so a service
/// layer can hand one token to every component solve of a request and
/// stop them all with a single Cancel().
class CancellationToken {
 public:
  /// Inert token: never cancelled.
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The writable end of a cancellation: owns the flag, mints tokens.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation; every outstanding token observes it at its
  /// next check. Idempotent and thread-safe.
  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The per-iteration check used by every dual minimizer: cancellation
/// first (a cancelled request should not burn its remaining budget),
/// then the deadline. Returns kOk, kCancelled, or kDeadlineExceeded.
StatusCode CheckInterrupt(const Deadline& deadline,
                          const CancellationToken& cancel);

}  // namespace pme

#endif  // PME_COMMON_DEADLINE_H_
