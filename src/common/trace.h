// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_TRACE_H_
#define PME_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pme::trace {

/// Process-wide kill switch for span recording (same contract as
/// metrics::SetEnabled: off makes TraceSpan construction/destruction a
/// couple of relaxed loads). Default on — spans are coarse (per
/// request, per component solve), not per iteration.
void SetEnabled(bool enabled);
bool Enabled();

/// One completed span. `name`/`category`/arg names must be string
/// literals (or otherwise outlive the process) — events are stored by
/// pointer in a fixed ring, never copied.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = "pme";
  uint64_t trace_id = 0;   ///< 0 = outside any request
  uint64_t start_ns = 0;   ///< monotonic, since the process trace epoch
  uint64_t dur_ns = 0;
  uint32_t tid = 0;        ///< small dense thread id
  /// Up to two numeric args, exported under Chrome trace "args".
  const char* arg_names[2] = {nullptr, nullptr};
  double arg_values[2] = {0.0, 0.0};
};

/// Monotonic nanoseconds since the process trace epoch (first use).
uint64_t NowNanos();

/// Small dense id of the calling thread (stable per thread).
uint32_t CurrentThreadId();

/// Allocates a fresh nonzero request trace id.
uint64_t NewTraceId();

/// The ambient trace id of the calling thread (0 when none).
uint64_t CurrentTraceId();

/// RAII: installs `id` as the calling thread's ambient trace id and
/// restores the previous one on destruction. Pool tasks doing work on
/// behalf of a request capture the requester's id and open a scope
/// inside the task, so spans from worker threads stitch into the same
/// per-request timeline.
class TraceIdScope {
 public:
  explicit TraceIdScope(uint64_t id);
  ~TraceIdScope();

  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  uint64_t previous_;
};

/// RAII span: records start on construction; on destruction computes the
/// duration, stamps the ambient trace id + thread id, and publishes the
/// event to the global ring (and to any active capture of its trace id).
/// Construction when tracing is disabled is a no-op.
///
///   { TraceSpan span("solve"); span.AddArg("iterations", n); ... }
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "pme");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric arg (at most two; extras are dropped).
  void AddArg(const char* name, double value);

 private:
  TraceEvent event_;
  bool armed_ = false;
  size_t num_args_ = 0;
};

/// Records a fully-formed event directly (for callers that measure
/// timing themselves).
void RecordEvent(const TraceEvent& event);

/// Registers a capture for `trace_id`: every event finishing under that
/// id (on any thread) is appended to this collector until destruction.
/// The serve layer opens one per `"trace": true` request and ships
/// TakeEvents() in the response. Cheap when idle: span completion only
/// looks at the capture table while at least one capture is live.
class RequestCapture {
 public:
  explicit RequestCapture(uint64_t trace_id);
  ~RequestCapture();

  RequestCapture(const RequestCapture&) = delete;
  RequestCapture& operator=(const RequestCapture&) = delete;

  /// The events captured so far, oldest first (moves them out).
  std::vector<TraceEvent> TakeEvents();

 private:
  uint64_t trace_id_;
};

/// Bounded global ring (kRingCapacity events; oldest overwritten).
/// Snapshot returns surviving events in publication order. Tearing-free:
/// slots are seqlock-guarded, a slot caught mid-write is skipped.
inline constexpr size_t kRingCapacity = 1u << 15;
std::vector<TraceEvent> SnapshotRing();
void ClearRing();

/// Renders events as a Chrome trace-event JSON document (loadable in
/// chrome://tracing and Perfetto): {"displayTimeUnit":"ms",
/// "traceEvents":[{"ph":"X","ts":…,"dur":…,"tid":…,…},…]}.
std::string RenderChromeTrace(const std::vector<TraceEvent>& events);

/// Snapshot + render + write to `path`. False on I/O failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace pme::trace

#endif  // PME_COMMON_TRACE_H_
