// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_STATUS_H_
#define PME_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace pme {

/// Machine-readable category of a failure.
///
/// Mirrors the error taxonomy used by production storage engines
/// (RocksDB/Arrow): a small closed set of codes plus a free-form message.
enum class StatusCode : int {
  kOk = 0,
  /// Caller passed an argument that violates the API contract.
  kInvalidArgument = 1,
  /// A lookup (attribute, value, bucket, variable) found nothing.
  kNotFound = 2,
  /// The operation is valid in general but not in the current state.
  kFailedPrecondition = 3,
  /// An arithmetic or numerical failure (overflow, NaN, singular matrix).
  kNumericalError = 4,
  /// An iterative solver stopped before reaching its tolerance.
  kNotConverged = 5,
  /// The constraint system admits no feasible distribution.
  kInfeasible = 6,
  /// I/O failure (file missing, parse error).
  kIoError = 7,
  /// Feature is specified by the paper but not implemented in this build.
  kNotImplemented = 8,
  /// Internal invariant violated; indicates a bug in this library.
  kInternal = 9,
  /// The operation's wall-clock budget expired before it finished.
  /// Solvers report this via SolverResult::termination while still
  /// returning the best iterate reached so far.
  kDeadlineExceeded = 10,
  /// The operation was cooperatively cancelled via a CancellationToken.
  kCancelled = 11,
};

/// Returns the canonical lowercase name of a status code ("ok",
/// "invalid_argument", ...). Stable across releases; safe to log/parse.
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// `Status` is the uniform error channel of the library: any operation that
/// can fail returns `Status` (or `Result<T>`, which carries a payload).
/// Exceptions are never thrown across public API boundaries.
///
/// Usage:
/// ```
///   Status s = table.Validate();
///   if (!s.ok()) return s;  // propagate
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the (singleton-like) OK status.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The machine-readable code.
  StatusCode code() const { return code_; }
  /// The human-readable message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "code: message" for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: either holds a `T` or a non-OK `Status`.
///
/// The payload accessors assert on misuse in debug builds; production
/// callers must check `ok()` first (or use `ValueOrDie()` in tests).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result<T> must not be built from an OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; `Status::Ok()` when a value is present.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  /// Borrow the value. Precondition: `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  /// Move the value out. Precondition: `ok()`.
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  /// Test helper: returns the value or aborts with the error text.
  T ValueOrDie() && {
    if (!ok()) {
      // Intentional hard failure: used only in tests and examples.
      std::abort();
    }
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK `Status` out of the current function.
#define PME_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::pme::Status _pme_status = (expr);        \
    if (!_pme_status.ok()) return _pme_status; \
  } while (0)

/// Evaluates a `Result<T>` expression, propagating failure, else binds
/// the value into `lhs`.
#define PME_ASSIGN_OR_RETURN(lhs, expr)                \
  PME_ASSIGN_OR_RETURN_IMPL(                           \
      PME_STATUS_CONCAT(_pme_result_, __LINE__), lhs, expr)
#define PME_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
#define PME_STATUS_CONCAT(a, b) PME_STATUS_CONCAT_IMPL(a, b)
#define PME_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace pme

#endif  // PME_COMMON_STATUS_H_
