// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_COMMON_LOGGING_H_
#define PME_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace pme {

/// Severity of a log line. `kFatal` aborts the process after printing.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum severity. Lines below this level are dropped. Defaults to
/// kInfo; benches set kWarning to keep their table output clean.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal {

/// Stream-style log sink used by the PME_LOG macro; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: PME_LOG(kInfo) << "solved in " << iters << " iterations";
#define PME_LOG(severity)                                          \
  ::pme::internal::LogMessage(::pme::LogLevel::severity, __FILE__, \
                              __LINE__)

/// Checks a condition in all build types; logs and aborts on failure.
/// Reserved for internal invariants whose violation means a library bug.
#define PME_CHECK(cond)                                             \
  do {                                                              \
    if (!(cond)) {                                                  \
      PME_LOG(kFatal) << "Check failed: " #cond;                    \
    }                                                               \
  } while (0)

}  // namespace pme

#endif  // PME_COMMON_LOGGING_H_
