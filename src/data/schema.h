// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_DATA_SCHEMA_H_
#define PME_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace pme::data {

/// Role of an attribute in the PPDP model (Section 1 of the paper).
enum class AttributeRole : int {
  /// Identity information (names, SSNs); always dropped before publishing.
  kIdentifier = 0,
  /// Quasi-identifier: demographic attributes obtainable elsewhere.
  kQuasiIdentifier = 1,
  /// Sensitive attribute: the information to protect.
  kSensitive = 2,
};

/// Bidirectional mapping between the string values of one categorical
/// attribute and dense integer codes [0, cardinality).
///
/// Codes are assigned in first-seen order by `Intern`, making encodings
/// deterministic for a fixed input order.
class AttributeDictionary {
 public:
  /// Returns the code for `value`, interning it if unseen.
  uint32_t Intern(const std::string& value);

  /// Returns the code for `value` or kNotFound if never interned.
  Result<uint32_t> Lookup(const std::string& value) const;

  /// Returns the string for `code`. Precondition: code < size().
  const std::string& ValueOf(uint32_t code) const;

  /// Number of distinct values.
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> codes_;
};

/// Describes one attribute: its name, PPDP role, and value dictionary.
struct Attribute {
  std::string name;
  AttributeRole role = AttributeRole::kQuasiIdentifier;
  AttributeDictionary dictionary;
};

/// An ordered collection of attributes. The schema owns the dictionaries;
/// a Dataset stores only integer codes.
class Schema {
 public:
  /// Appends an attribute; returns its index.
  size_t AddAttribute(std::string name, AttributeRole role);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  Attribute& attribute(size_t i) { return attributes_[i]; }

  /// Index of the attribute named `name`, or kNotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Indices of all quasi-identifier attributes, in schema order.
  std::vector<size_t> QiIndices() const;

  /// Indices of all sensitive attributes, in schema order.
  std::vector<size_t> SensitiveIndices() const;

  /// The single sensitive attribute index. Errors if zero or multiple
  /// sensitive attributes are declared (the paper's model has exactly one).
  Result<size_t> SoleSensitiveIndex() const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace pme::data

#endif  // PME_DATA_SCHEMA_H_
