// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_DATA_ADULT_SYNTH_H_
#define PME_DATA_ADULT_SYNTH_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace pme::data {

/// Parameters for the synthetic Adult-like generator.
///
/// SUBSTITUTION NOTE (see DESIGN.md §2): the paper evaluates on the UCI
/// Adult dataset (14,210 usable records, 8 QI attributes, `education` as
/// the 16-value sensitive attribute). That file is not available offline,
/// so we generate a table of identical shape from a latent socio-economic
/// class model: each record first draws a hidden class, then draws every
/// attribute from a class-conditioned categorical distribution. Attributes
/// are therefore mutually correlated through the latent class, which is
/// exactly the property the experiments need — association rules between
/// QI subsets and the SA must carry real information.
struct AdultSynthOptions {
  /// Number of records to generate (paper: 14210).
  size_t num_records = 14210;
  /// PRNG seed; the same seed yields the identical dataset.
  uint64_t seed = 20080612;
  /// Number of latent socio-economic classes.
  int num_classes = 6;
  /// Probability that an attribute value is replaced by a uniform draw,
  /// decoupling it from the latent class (keeps distributions full-support).
  double noise = 0.10;
  /// Peakedness of class-conditional distributions; larger = stronger
  /// QI↔SA correlation = stronger association rules.
  double concentration = 1.0;
};

/// Generates the Adult-like dataset: 8 categorical QI attributes
/// (age, workclass, marital_status, occupation, race, sex, hours,
/// native_region) and the sensitive attribute `education` (16 values).
/// All dictionaries are fully populated (every value interned) even if a
/// small sample does not realize every code.
Result<Dataset> GenerateAdultLike(const AdultSynthOptions& options = {});

}  // namespace pme::data

#endif  // PME_DATA_ADULT_SYNTH_H_
