// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_DATA_CSV_H_
#define PME_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace pme::data {

/// Options controlling CSV ingestion.
struct CsvReadOptions {
  char delimiter = ',';
  /// When true the first line provides attribute names; otherwise
  /// attributes are named col0, col1, ...
  bool has_header = true;
  /// Names of sensitive attributes; all others become quasi-identifiers.
  std::vector<std::string> sensitive_attributes;
  /// Names of identifier attributes to drop on load.
  std::vector<std::string> identifier_attributes;
};

/// Loads a categorical CSV file into a Dataset. Every column is treated as
/// categorical (values interned verbatim after trimming).
Result<Dataset> ReadCsv(const std::string& path,
                        const CsvReadOptions& options = {});

/// Parses CSV content from a string (testing convenience).
Result<Dataset> ReadCsvString(const std::string& content,
                              const CsvReadOptions& options = {});

/// Writes a Dataset back to CSV with a header row.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter = ',');

}  // namespace pme::data

#endif  // PME_DATA_CSV_H_
