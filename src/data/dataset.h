// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_DATA_DATASET_H_
#define PME_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace pme::data {

/// The original microdata table `D` of the paper: a schema plus row-major
/// integer-coded records. All values are dictionary codes into the schema's
/// per-attribute dictionaries.
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  size_t num_records() const { return rows_.size(); }

  /// Appends a record of codes; must match the attribute count.
  Status AppendRecord(std::vector<uint32_t> codes);

  /// Appends a record of string values, interning them.
  Status AppendRecordValues(const std::vector<std::string>& values);

  /// Code of attribute `attr` in record `row`.
  uint32_t At(size_t row, size_t attr) const { return rows_[row][attr]; }

  /// Whole record (codes).
  const std::vector<uint32_t>& Record(size_t row) const { return rows_[row]; }

  /// String value of attribute `attr` in record `row`.
  const std::string& ValueAt(size_t row, size_t attr) const;

 private:
  Schema schema_;
  std::vector<std::vector<uint32_t>> rows_;
};

/// Dense encoder for tuples over a fixed subset of attributes.
///
/// The paper works with "an instance of the QI attributes" (`q` values in
/// Figure 1(c)): a whole tuple such as {male, college} gets one symbol.
/// TupleEncoder assigns each distinct observed tuple a dense id in
/// first-seen order and remembers the tuple behind each id.
class TupleEncoder {
 public:
  /// `attrs` are the dataset attribute indices that make up the tuple.
  explicit TupleEncoder(std::vector<size_t> attrs) : attrs_(std::move(attrs)) {}

  /// Encodes the tuple of record `row` in `d`, interning if unseen.
  uint32_t Encode(const Dataset& d, size_t row);

  /// Encodes an explicit code vector (must match the attr count).
  uint32_t EncodeCodes(const std::vector<uint32_t>& codes);

  /// Looks up an already-interned tuple; kNotFound if never seen.
  Result<uint32_t> Find(const std::vector<uint32_t>& codes) const;

  /// The code vector behind tuple id `id`.
  const std::vector<uint32_t>& Decode(uint32_t id) const;

  /// Pretty string "attr1=v1,attr2=v2" for diagnostics.
  std::string ToString(const Dataset& d, uint32_t id) const;

  /// The attribute indices this encoder covers.
  const std::vector<size_t>& attrs() const { return attrs_; }

  /// Number of distinct tuples seen.
  uint32_t size() const { return static_cast<uint32_t>(tuples_.size()); }

 private:
  struct VectorHash {
    size_t operator()(const std::vector<uint32_t>& v) const {
      size_t h = 1469598103934665603ULL;
      for (uint32_t x : v) {
        h ^= x;
        h *= 1099511628211ULL;
      }
      return h;
    }
  };

  std::vector<size_t> attrs_;
  std::vector<std::vector<uint32_t>> tuples_;
  std::unordered_map<std::vector<uint32_t>, uint32_t, VectorHash> ids_;
};

}  // namespace pme::data

#endif  // PME_DATA_DATASET_H_
