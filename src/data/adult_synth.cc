#include "data/adult_synth.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/prng.h"

namespace pme::data {
namespace {

struct AttrSpec {
  const char* name;
  AttributeRole role;
  std::vector<std::string> values;
};

std::vector<AttrSpec> AdultAttributes() {
  return {
      {"age",
       AttributeRole::kQuasiIdentifier,
       {"17-21", "22-25", "26-30", "31-35", "36-40", "41-45", "46-50",
        "51-60", "61-90"}},
      {"workclass",
       AttributeRole::kQuasiIdentifier,
       {"private", "self-emp", "self-emp-inc", "federal-gov", "local-gov",
        "state-gov", "without-pay", "never-worked"}},
      {"marital_status",
       AttributeRole::kQuasiIdentifier,
       {"married", "divorced", "never-married", "separated", "widowed",
        "spouse-absent", "af-spouse"}},
      {"occupation",
       AttributeRole::kQuasiIdentifier,
       {"tech-support", "craft-repair", "other-service", "sales",
        "exec-managerial", "prof-specialty", "handlers-cleaners",
        "machine-op", "adm-clerical", "farming-fishing", "transport",
        "priv-house-serv", "protective-serv", "armed-forces"}},
      {"race",
       AttributeRole::kQuasiIdentifier,
       {"white", "black", "asian-pac", "amer-indian", "other"}},
      {"sex", AttributeRole::kQuasiIdentifier, {"male", "female"}},
      {"hours",
       AttributeRole::kQuasiIdentifier,
       {"0-20", "21-35", "36-40", "41-50", "51-99"}},
      {"native_region",
       AttributeRole::kQuasiIdentifier,
       {"north-america", "south-america", "europe", "asia", "africa",
        "oceania"}},
      {"education",
       AttributeRole::kSensitive,
       {"preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th",
        "12th", "hs-grad", "some-college", "assoc-voc", "assoc-acdm",
        "bachelors", "masters", "prof-school", "doctorate"}},
  };
}

/// Class-conditional weight of value v (of `card` values) for attribute a
/// under latent class c: a wrapped Gaussian bump centred at a class- and
/// attribute-dependent position, plus a floor so all values have support.
double ClassWeight(int c, int num_classes, size_t attr, uint32_t v,
                   uint32_t card, double concentration) {
  // Spread class centres across the value range; shift by attribute index
  // so no two attributes are perfectly collinear given the class.
  const double centre =
      std::fmod((static_cast<double>(c) + 0.5) / num_classes +
                    0.17 * static_cast<double>(attr + 1),
                1.0) *
      card;
  const double sigma = std::max(1.0, card / 4.0);
  // Wrapped distance on the value circle keeps tails symmetric.
  double d = std::fabs(static_cast<double>(v) + 0.5 - centre);
  d = std::min(d, card - d);
  return std::exp(-concentration * d * d / (2.0 * sigma * sigma)) + 0.05;
}

}  // namespace

Result<Dataset> GenerateAdultLike(const AdultSynthOptions& options) {
  if (options.num_records == 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  if (options.num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (options.noise < 0.0 || options.noise > 1.0) {
    return Status::InvalidArgument("noise must lie in [0, 1]");
  }

  const auto specs = AdultAttributes();
  Schema schema;
  for (const auto& spec : specs) {
    const size_t idx = schema.AddAttribute(spec.name, spec.role);
    for (const auto& value : spec.values) {
      schema.attribute(idx).dictionary.Intern(value);
    }
  }
  Dataset dataset(std::move(schema));

  Prng prng(options.seed);

  // Uneven class prior: classes are geometric-ish in size, like real
  // socio-economic strata.
  std::vector<double> prior(options.num_classes);
  for (int c = 0; c < options.num_classes; ++c) {
    prior[c] = std::pow(0.8, c) + 0.05;
  }

  // Precompute class-conditional weights per attribute.
  // weights[c][a] is the weight vector over attribute a's values.
  std::vector<std::vector<std::vector<double>>> weights(options.num_classes);
  for (int c = 0; c < options.num_classes; ++c) {
    weights[c].resize(specs.size());
    for (size_t a = 0; a < specs.size(); ++a) {
      const uint32_t card = static_cast<uint32_t>(specs[a].values.size());
      weights[c][a].resize(card);
      for (uint32_t v = 0; v < card; ++v) {
        weights[c][a][v] = ClassWeight(c, options.num_classes, a, v, card,
                                       options.concentration);
      }
    }
  }

  std::vector<uint32_t> codes(specs.size());
  for (size_t r = 0; r < options.num_records; ++r) {
    const int c = static_cast<int>(prng.NextCategorical(prior));
    for (size_t a = 0; a < specs.size(); ++a) {
      const uint32_t card = static_cast<uint32_t>(specs[a].values.size());
      if (prng.NextDouble() < options.noise) {
        codes[a] = static_cast<uint32_t>(prng.NextBounded(card));
      } else {
        codes[a] = static_cast<uint32_t>(prng.NextCategorical(weights[c][a]));
      }
    }
    PME_RETURN_IF_ERROR(dataset.AppendRecord(codes));
  }
  return dataset;
}

}  // namespace pme::data
