#include "data/schema.h"

namespace pme::data {

uint32_t AttributeDictionary::Intern(const std::string& value) {
  auto it = codes_.find(value);
  if (it != codes_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(value);
  codes_.emplace(value, code);
  return code;
}

Result<uint32_t> AttributeDictionary::Lookup(const std::string& value) const {
  auto it = codes_.find(value);
  if (it == codes_.end()) {
    return Status::NotFound("value not in dictionary: " + value);
  }
  return it->second;
}

const std::string& AttributeDictionary::ValueOf(uint32_t code) const {
  return values_.at(code);
}

size_t Schema::AddAttribute(std::string name, AttributeRole role) {
  const size_t idx = attributes_.size();
  index_.emplace(name, idx);
  attributes_.push_back(Attribute{std::move(name), role, {}});
  return idx;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute named " + name);
  }
  return it->second;
}

std::vector<size_t> Schema::QiIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].role == AttributeRole::kQuasiIdentifier) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> Schema::SensitiveIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].role == AttributeRole::kSensitive) out.push_back(i);
  }
  return out;
}

Result<size_t> Schema::SoleSensitiveIndex() const {
  auto sens = SensitiveIndices();
  if (sens.size() != 1) {
    return Status::FailedPrecondition(
        "expected exactly one sensitive attribute, found " +
        std::to_string(sens.size()));
  }
  return sens[0];
}

}  // namespace pme::data
