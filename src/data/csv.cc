#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pme::data {
namespace {

Result<Dataset> ParseLines(std::istream& in, const CsvReadOptions& options) {
  std::string line;
  std::vector<std::string> names;
  // Byte offset of the start of the current line — reported alongside
  // the line number in every error so a malformed record in a large file
  // can be found with `dd`/`tail -c` instead of a line-counting pass.
  size_t line_start_byte = 0;
  size_t next_line_byte = 0;
  auto read_line = [&]() {
    line_start_byte = next_line_byte;
    if (!std::getline(in, line)) return false;
    next_line_byte += line.size() + 1;  // +1 for the consumed '\n'
    return true;
  };
  if (options.has_header) {
    if (!read_line()) {
      return Status::IoError("CSV input is empty (no header)");
    }
    for (auto& f : Split(line, options.delimiter)) {
      names.emplace_back(Trim(f));
    }
  }

  auto role_of = [&options](const std::string& name) {
    auto in_list = [&name](const std::vector<std::string>& list) {
      return std::find(list.begin(), list.end(), name) != list.end();
    };
    if (in_list(options.sensitive_attributes)) return AttributeRole::kSensitive;
    if (in_list(options.identifier_attributes)) {
      return AttributeRole::kIdentifier;
    }
    return AttributeRole::kQuasiIdentifier;
  };

  bool schema_built = !names.empty();
  Schema schema;
  std::vector<size_t> keep;  // source column -> kept (ID columns dropped)
  auto build_schema = [&](size_t ncols) {
    for (size_t i = 0; i < ncols; ++i) {
      std::string name = i < names.size() ? names[i] : "col" + std::to_string(i);
      AttributeRole role = role_of(name);
      if (role == AttributeRole::kIdentifier) {
        keep.push_back(SIZE_MAX);
      } else {
        keep.push_back(schema.AddAttribute(name, role));
      }
    }
  };
  if (schema_built) build_schema(names.size());

  Dataset dataset{Schema{}};
  bool dataset_init = false;
  size_t line_no = options.has_header ? 1 : 0;
  std::vector<std::vector<std::string>> pending_rows;

  auto at = [&](size_t ln) {
    return "CSV line " + std::to_string(ln) + " (byte offset " +
           std::to_string(line_start_byte) + ")";
  };
  while (read_line()) {
    ++line_no;
    if (Trim(line).empty()) continue;
    auto fields = Split(line, options.delimiter);
    if (!schema_built) {
      build_schema(fields.size());
      schema_built = true;
    }
    if (fields.size() != keep.size()) {
      return Status::IoError(at(line_no) + ": expected " +
                             std::to_string(keep.size()) + " fields, got " +
                             std::to_string(fields.size()));
    }
    if (!dataset_init) {
      dataset = Dataset(std::move(schema));
      dataset_init = true;
    }
    std::vector<std::string> values;
    values.reserve(keep.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      if (keep[i] == SIZE_MAX) continue;
      values.emplace_back(Trim(fields[i]));
    }
    if (Status s = dataset.AppendRecordValues(values); !s.ok()) {
      return Status::IoError(at(line_no) + ": " + s.message());
    }
  }
  if (!dataset_init) {
    if (!schema_built) return Status::IoError("CSV input has no data");
    dataset = Dataset(std::move(schema));
  }
  return dataset;
}

}  // namespace

Result<Dataset> ReadCsv(const std::string& path,
                        const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ParseLines(in, options);
}

Result<Dataset> ReadCsvString(const std::string& content,
                              const CsvReadOptions& options) {
  std::istringstream in(content);
  return ParseLines(in, options);
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const Schema& schema = dataset.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out << delimiter;
    out << schema.attribute(i).name;
  }
  out << "\n";
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      if (i > 0) out << delimiter;
      out << dataset.ValueAt(r, i);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace pme::data
