#include "data/dataset.h"

#include <sstream>

namespace pme::data {

Status Dataset::AppendRecord(std::vector<uint32_t> codes) {
  if (codes.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= schema_.attribute(i).dictionary.size()) {
      return Status::InvalidArgument("code out of dictionary range");
    }
  }
  rows_.push_back(std::move(codes));
  return Status::Ok();
}

Status Dataset::AppendRecordValues(const std::vector<std::string>& values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  std::vector<uint32_t> codes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    codes[i] = schema_.attribute(i).dictionary.Intern(values[i]);
  }
  rows_.push_back(std::move(codes));
  return Status::Ok();
}

const std::string& Dataset::ValueAt(size_t row, size_t attr) const {
  return schema_.attribute(attr).dictionary.ValueOf(rows_[row][attr]);
}

uint32_t TupleEncoder::Encode(const Dataset& d, size_t row) {
  std::vector<uint32_t> codes(attrs_.size());
  for (size_t i = 0; i < attrs_.size(); ++i) codes[i] = d.At(row, attrs_[i]);
  return EncodeCodes(codes);
}

uint32_t TupleEncoder::EncodeCodes(const std::vector<uint32_t>& codes) {
  auto it = ids_.find(codes);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(tuples_.size());
  tuples_.push_back(codes);
  ids_.emplace(codes, id);
  return id;
}

Result<uint32_t> TupleEncoder::Find(const std::vector<uint32_t>& codes) const {
  auto it = ids_.find(codes);
  if (it == ids_.end()) return Status::NotFound("tuple not interned");
  return it->second;
}

const std::vector<uint32_t>& TupleEncoder::Decode(uint32_t id) const {
  return tuples_.at(id);
}

std::string TupleEncoder::ToString(const Dataset& d, uint32_t id) const {
  const auto& codes = Decode(id);
  std::ostringstream oss;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) oss << ",";
    const auto& attr = d.schema().attribute(attrs_[i]);
    oss << attr.name << "=" << attr.dictionary.ValueOf(codes[i]);
  }
  return oss.str();
}

}  // namespace pme::data
