// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_DATA_STATS_H_
#define PME_DATA_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pme::data {

/// Empirical distribution queries over a Dataset.
///
/// Provides the `P(Qv)`, `P(Qv, S)` and `P(S | Qv)` quantities of Section 4
/// of the paper, where `Qv` ranges over arbitrary subsets of the QI
/// attributes. Probabilities are sample frequencies, exactly as the paper
/// approximates population probabilities by the published-sample
/// distribution (Section 4.1).
class DatasetStats {
 public:
  /// `dataset` must outlive this object.
  explicit DatasetStats(const Dataset* dataset);

  /// Number of records N.
  size_t num_records() const { return dataset_->num_records(); }

  /// Count of records whose attributes `attrs` equal `codes` elementwise.
  size_t CountMatching(const std::vector<size_t>& attrs,
                       const std::vector<uint32_t>& codes) const;

  /// Count of records matching (`attrs` == `codes`) AND (`sa_attr` ==
  /// `sa_code`).
  size_t CountMatchingWithSa(const std::vector<size_t>& attrs,
                             const std::vector<uint32_t>& codes,
                             size_t sa_attr, uint32_t sa_code) const;

  /// Sample probability P(Qv = codes).
  double Probability(const std::vector<size_t>& attrs,
                     const std::vector<uint32_t>& codes) const;

  /// Sample joint probability P(Qv = codes, SA = sa_code).
  double JointProbability(const std::vector<size_t>& attrs,
                          const std::vector<uint32_t>& codes, size_t sa_attr,
                          uint32_t sa_code) const;

  /// Sample conditional P(SA = sa_code | Qv = codes). Errors when the
  /// conditioning event has zero support.
  Result<double> Conditional(const std::vector<size_t>& attrs,
                             const std::vector<uint32_t>& codes,
                             size_t sa_attr, uint32_t sa_code) const;

  /// Marginal distribution of a single attribute, as probabilities indexed
  /// by code.
  std::vector<double> Marginal(size_t attr) const;

  /// Full conditional distribution P(SA | Qv = codes) over all SA codes.
  /// Errors when the conditioning event has zero support.
  Result<std::vector<double>> ConditionalDistribution(
      const std::vector<size_t>& attrs, const std::vector<uint32_t>& codes,
      size_t sa_attr) const;

 private:
  const Dataset* dataset_;
};

}  // namespace pme::data

#endif  // PME_DATA_STATS_H_
