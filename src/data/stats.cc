#include "data/stats.h"

#include <cassert>

namespace pme::data {
namespace {

bool Matches(const Dataset& d, size_t row, const std::vector<size_t>& attrs,
             const std::vector<uint32_t>& codes) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (d.At(row, attrs[i]) != codes[i]) return false;
  }
  return true;
}

}  // namespace

DatasetStats::DatasetStats(const Dataset* dataset) : dataset_(dataset) {
  assert(dataset != nullptr);
}

size_t DatasetStats::CountMatching(const std::vector<size_t>& attrs,
                                   const std::vector<uint32_t>& codes) const {
  assert(attrs.size() == codes.size());
  size_t count = 0;
  for (size_t r = 0; r < dataset_->num_records(); ++r) {
    if (Matches(*dataset_, r, attrs, codes)) ++count;
  }
  return count;
}

size_t DatasetStats::CountMatchingWithSa(const std::vector<size_t>& attrs,
                                         const std::vector<uint32_t>& codes,
                                         size_t sa_attr,
                                         uint32_t sa_code) const {
  size_t count = 0;
  for (size_t r = 0; r < dataset_->num_records(); ++r) {
    if (dataset_->At(r, sa_attr) == sa_code &&
        Matches(*dataset_, r, attrs, codes)) {
      ++count;
    }
  }
  return count;
}

double DatasetStats::Probability(const std::vector<size_t>& attrs,
                                 const std::vector<uint32_t>& codes) const {
  if (dataset_->num_records() == 0) return 0.0;
  return static_cast<double>(CountMatching(attrs, codes)) /
         static_cast<double>(dataset_->num_records());
}

double DatasetStats::JointProbability(const std::vector<size_t>& attrs,
                                      const std::vector<uint32_t>& codes,
                                      size_t sa_attr, uint32_t sa_code) const {
  if (dataset_->num_records() == 0) return 0.0;
  return static_cast<double>(
             CountMatchingWithSa(attrs, codes, sa_attr, sa_code)) /
         static_cast<double>(dataset_->num_records());
}

Result<double> DatasetStats::Conditional(const std::vector<size_t>& attrs,
                                         const std::vector<uint32_t>& codes,
                                         size_t sa_attr,
                                         uint32_t sa_code) const {
  const size_t denom = CountMatching(attrs, codes);
  if (denom == 0) {
    return Status::FailedPrecondition(
        "conditioning event has zero support in the data");
  }
  const size_t numer = CountMatchingWithSa(attrs, codes, sa_attr, sa_code);
  return static_cast<double>(numer) / static_cast<double>(denom);
}

std::vector<double> DatasetStats::Marginal(size_t attr) const {
  const uint32_t card = dataset_->schema().attribute(attr).dictionary.size();
  std::vector<double> probs(card, 0.0);
  for (size_t r = 0; r < dataset_->num_records(); ++r) {
    probs[dataset_->At(r, attr)] += 1.0;
  }
  const double n = static_cast<double>(dataset_->num_records());
  if (n > 0) {
    for (double& p : probs) p /= n;
  }
  return probs;
}

Result<std::vector<double>> DatasetStats::ConditionalDistribution(
    const std::vector<size_t>& attrs, const std::vector<uint32_t>& codes,
    size_t sa_attr) const {
  const uint32_t card = dataset_->schema().attribute(sa_attr).dictionary.size();
  std::vector<double> counts(card, 0.0);
  double denom = 0.0;
  for (size_t r = 0; r < dataset_->num_records(); ++r) {
    if (Matches(*dataset_, r, attrs, codes)) {
      counts[dataset_->At(r, sa_attr)] += 1.0;
      denom += 1.0;
    }
  }
  if (denom == 0.0) {
    return Status::FailedPrecondition(
        "conditioning event has zero support in the data");
  }
  for (double& c : counts) c /= denom;
  return counts;
}

}  // namespace pme::data
