#include "core/table_artifact.h"

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "constraints/system.h"
#include "maxent/closed_form.h"

namespace pme::core {
namespace {

/// Digest of everything that determines the artifact's compiled rows:
/// the abstract records (the published view plus ground-truth bindings
/// derive from exactly these), the instance-space dimensions, and the
/// invariant options. Deliberately independent of build threads, label
/// strings, and any in-memory layout.
Hash128 ComputeContentHash(const anonymize::BucketizedTable& table,
                           const TableArtifactOptions& options) {
  Hasher128 h;
  h.Update(std::string_view("pme.artifact.v1"));
  h.Update(static_cast<uint64_t>(table.num_records()));
  h.Update(static_cast<uint64_t>(table.num_buckets()));
  h.Update(static_cast<uint64_t>(table.num_qi_values()));
  h.Update(static_cast<uint64_t>(table.num_sa_values()));
  for (const auto& r : table.records()) {
    h.Update(r.qi);
    h.Update(r.sa);
    h.Update(r.bucket);
  }
  h.Update(
      static_cast<uint64_t>(options.invariant_options.drop_redundant_row));
  return h.Finish();
}

}  // namespace

Result<std::shared_ptr<const TableArtifact>> TableArtifact::Build(
    std::shared_ptr<const anonymize::BucketizedTable> table,
    std::shared_ptr<const data::TupleEncoder> qi_encoder,
    const TableArtifactOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("TableArtifact::Build: null table");
  }
  std::shared_ptr<TableArtifact> artifact(new TableArtifact());
  artifact->table_ = std::move(table);
  artifact->qi_encoder_ = std::move(qi_encoder);
  artifact->options_ = options;
  artifact->index_ =
      constraints::TermIndex::Build(*artifact->table_, options.threads);
  artifact->invariants_ = constraints::GenerateInvariants(
      *artifact->table_, artifact->index_, options.invariant_options);
  // Invariants-only partition (trivially one uncoupled component per
  // bucket — invariants never span buckets); built through the same
  // code path as a full analysis so the numbering invariants match.
  {
    constraints::ConstraintSystem system(artifact->index_.num_variables());
    system.AddAll(artifact->invariants_);
    artifact->base_components_ =
        constraints::ComponentAnalysis::Build(artifact->index_, system);
  }
  // Row-to-bucket routing (invariant rows never span buckets), so
  // sessions can gather only the knowledge-coupled slice per request.
  artifact->invariant_row_bucket_.reserve(artifact->invariants_.size());
  for (const auto& row : artifact->invariants_) {
    artifact->invariant_row_bucket_.push_back(
        row.vars.empty() ? UINT32_MAX
                         : artifact->index_.TermOf(row.vars[0]).bucket);
  }
  artifact->ground_truth_ = PosteriorTable::GroundTruth(*artifact->table_);
  artifact->closed_form_prior_ =
      maxent::ClosedFormNoKnowledge(*artifact->table_, artifact->index_);
  artifact->closed_form_prior_entropy_ = Entropy(artifact->closed_form_prior_);
  artifact->prior_posterior_ = PosteriorTable::FromSolution(
      *artifact->table_, artifact->index_, artifact->closed_form_prior_);
  artifact->prior_evaluation_ =
      EvaluatePerQ(artifact->ground_truth_, artifact->prior_posterior_);
  // Bucket-major variable ranges and the per-q CSR: the row-level
  // addressing the incremental re-evaluation needs.
  {
    const constraints::TermIndex& index = artifact->index_;
    const uint32_t num_vars = index.num_variables();
    const uint32_t num_buckets = artifact->table_->num_buckets();
    const uint32_t num_qi = artifact->table_->num_qi_values();
    std::vector<uint32_t> bucket_count(num_buckets, 0);
    std::vector<uint32_t> q_count(num_qi, 0);
    for (uint32_t var = 0; var < num_vars; ++var) {
      const auto& term = index.TermOf(var);
      ++bucket_count[term.bucket];
      ++q_count[term.qi];
    }
    artifact->bucket_var_begin_.assign(num_buckets + 1, 0);
    for (uint32_t b = 0; b < num_buckets; ++b) {
      artifact->bucket_var_begin_[b + 1] =
          artifact->bucket_var_begin_[b] + bucket_count[b];
    }
    artifact->q_var_offsets_.assign(num_qi + 1, 0);
    for (uint32_t q = 0; q < num_qi; ++q) {
      artifact->q_var_offsets_[q + 1] = artifact->q_var_offsets_[q] +
                                        q_count[q];
    }
    artifact->q_vars_.resize(num_vars);
    std::vector<uint32_t> cursor(artifact->q_var_offsets_.begin(),
                                 artifact->q_var_offsets_.end() - 1);
    for (uint32_t var = 0; var < num_vars; ++var) {
      artifact->q_vars_[cursor[index.TermOf(var).qi]++] = var;
    }
  }
  artifact->content_hash_ = ComputeContentHash(*artifact->table_, options);
  return std::shared_ptr<const TableArtifact>(std::move(artifact));
}

Result<std::shared_ptr<const TableArtifact>> TableArtifact::BuildBorrowed(
    const anonymize::BucketizedTable& table,
    const data::TupleEncoder* qi_encoder,
    const TableArtifactOptions& options) {
  // Aliasing shared_ptrs with no control block: non-owning views onto
  // caller-managed objects.
  std::shared_ptr<const anonymize::BucketizedTable> table_view(
      std::shared_ptr<const anonymize::BucketizedTable>(), &table);
  std::shared_ptr<const data::TupleEncoder> encoder_view;
  if (qi_encoder != nullptr) {
    encoder_view = std::shared_ptr<const data::TupleEncoder>(
        std::shared_ptr<const data::TupleEncoder>(), qi_encoder);
  }
  return Build(std::move(table_view), std::move(encoder_view), options);
}

}  // namespace pme::core
