#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "anonymize/diversity.h"
#include "common/string_util.h"
#include "common/vec_math.h"

namespace pme::core {
namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

std::string RenderPrivacyReport(const anonymize::BucketizedTable& table,
                                const Analysis& analysis,
                                const ReportOptions& options) {
  std::ostringstream out;
  out << "=== Privacy-MaxEnt report ===\n\n";

  out << "[published table]\n";
  out << "  records:            " << table.num_records() << "\n";
  out << "  buckets:            " << table.num_buckets() << "\n";
  out << "  QI instances:       " << table.num_qi_values() << "\n";
  out << "  SA instances:       " << table.num_sa_values() << "\n";
  const auto diversity = anonymize::MeasureDiversity(table);
  out << "  min distinct l-div: " << diversity.min_distinct << " (bucket "
      << diversity.worst_bucket + 1 << ")\n";
  out << "  min entropy l-div:  " << Fmt("%.2f", diversity.min_entropy_ell)
      << "\n\n";

  if (options.include_knowledge_census) {
    out << "[assumed adversary knowledge — the bound]\n";
    out << "  background constraints: "
        << analysis.num_background_constraints << "\n";
    out << "  vacuous statements:     " << analysis.num_vacuous_statements
        << "\n";
    out << "  relevant buckets:       "
        << analysis.decomposition.relevant_buckets << " / "
        << table.num_buckets() << "\n\n";
  }

  out << "[maxent solve]\n";
  out << "  solver:            "
      << maxent::SolverKindToString(analysis.solver.kind) << "\n";
  out << "  kernel isa:        " << kernels::SimdModeName() << "\n";
  out << "  iterations:        " << analysis.solver.iterations << "\n";
  out << "  wall time:         " << Fmt("%.3f s", analysis.solver.seconds)
      << "\n";
  out << "  converged:         "
      << (analysis.solver.converged ? "yes" : "no") << "\n";
  if (analysis.solver.termination != StatusCode::kOk) {
    out << "  termination:       "
        << StatusCodeToString(analysis.solver.termination) << "\n";
  }
  out << "  worst violation:   " << Fmt("%.2e", analysis.solver.max_violation)
      << "\n";
  out << "  entropy:           " << Fmt("%.4f nats", analysis.solver.entropy)
      << "\n";
  if (!analysis.solver.component_outcomes.empty()) {
    out << "  components:        " << analysis.solver.components_solved
        << " solved, " << analysis.solver.components_degraded << " degraded, "
        << analysis.solver.components_failed << " failed\n";
    for (const auto& c : analysis.solver.component_outcomes) {
      if (!c.degraded && !c.used_prior) continue;
      out << "    block " << c.block << " (" << c.num_variables << " vars): "
          << (c.used_prior ? "kept closed-form prior"
                           : std::string("degraded to ") +
                                 maxent::SolverKindToString(c.solver))
          << " after " << c.attempts << " attempt"
          << (c.attempts == 1 ? "" : "s") << " ("
          << StatusCodeToString(c.status) << ")\n";
    }
  } else if (analysis.solver.degraded) {
    out << "  degraded:          yes (fallback solver "
        << maxent::SolverKindToString(analysis.solver.kind) << ")\n";
  }
  if (analysis.solver.cache_enabled) {
    out << "  solution cache:    " << analysis.solver.cache_exact_hits
        << " exact, " << analysis.solver.cache_warm_hits << " warm, "
        << analysis.solver.cache_misses << " cold; "
        << analysis.solver.cache_entries << " entries resident ("
        << Fmt("%.2f MiB",
               static_cast<double>(analysis.solver.cache_resident_doubles) *
                   sizeof(double) / (1024.0 * 1024.0))
        << ", " << analysis.solver.cache_evictions << " evicted)\n";
  }
  out << "\n";

  out << "[privacy under this bound]\n";
  out << "  estimation accuracy (weighted KL, smaller = less privacy): "
      << Fmt("%.4f", analysis.estimation_accuracy) << "\n";
  out << "  max disclosure:            "
      << Fmt("%.4f", analysis.metrics.max_disclosure) << "\n";
  out << "  expected best guess:       "
      << Fmt("%.4f", analysis.metrics.expected_best_guess) << "\n";
  out << "  min effective candidates:  "
      << Fmt("%.2f", analysis.metrics.min_effective_candidates) << "\n\n";

  // Rank QI instances by their worst posterior.
  struct Risk {
    uint32_t q;
    uint32_t s;
    double posterior;
  };
  std::vector<Risk> risks;
  size_t certain_links = 0;
  for (uint32_t q = 0; q < analysis.posterior.num_qi(); ++q) {
    double best = 0.0;
    uint32_t best_s = 0;
    for (uint32_t s = 0; s < analysis.posterior.num_sa(); ++s) {
      const double p = analysis.posterior.Conditional(q, s);
      if (p >= options.disclosure_threshold) ++certain_links;
      if (p > best) {
        best = p;
        best_s = s;
      }
    }
    risks.push_back({q, best_s, best});
  }
  std::sort(risks.begin(), risks.end(),
            [](const Risk& a, const Risk& b) {
              return a.posterior > b.posterior;
            });

  out << "[highest-risk individuals]\n";
  out << "  near-certain links (posterior >= "
      << Fmt("%.2f", options.disclosure_threshold) << "): " << certain_links
      << "\n";
  const size_t n = std::min(options.top_risks, risks.size());
  for (size_t i = 0; i < n; ++i) {
    out << "  " << i + 1 << ". " << table.QiName(risks[i].q) << " -> "
        << table.SaName(risks[i].s) << "  (posterior "
        << Fmt("%.4f", risks[i].posterior) << ")\n";
  }
  return out.str();
}

std::string PosteriorToCsv(const anonymize::BucketizedTable& table,
                           const Analysis& analysis) {
  std::ostringstream out;
  out << "qi,sa,posterior\n";
  for (uint32_t q = 0; q < analysis.posterior.num_qi(); ++q) {
    for (uint32_t s = 0; s < analysis.posterior.num_sa(); ++s) {
      out << table.QiName(q) << "," << table.SaName(s) << ","
          << FormatDouble(analysis.posterior.Conditional(q, s)) << "\n";
    }
  }
  return out.str();
}

}  // namespace pme::core
