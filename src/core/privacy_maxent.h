// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_PRIVACY_MAXENT_H_
#define PME_CORE_PRIVACY_MAXENT_H_

#include <cstddef>

#include "anonymize/bucketized_table.h"
#include "common/status.h"
#include "constraints/invariants.h"
#include "core/posterior.h"
#include "data/dataset.h"
#include "knowledge/knowledge_base.h"
#include "maxent/decomposed.h"
#include "maxent/solver.h"

namespace pme::core {

/// Options for a Privacy-MaxEnt analysis.
struct AnalysisOptions {
  maxent::SolverKind solver = maxent::SolverKind::kLbfgs;
  maxent::SolverOptions solver_options;
  /// Apply the Section 5.5 bucket decomposition (closed form for
  /// knowledge-irrelevant buckets, iterative solve for the rest).
  bool use_decomposition = true;
  constraints::InvariantOptions invariant_options;
};

/// Everything a Privacy-MaxEnt run produces.
struct Analysis {
  /// The adversary's MaxEnt posterior P*(SA | QI).
  PosteriorTable posterior;
  /// Full solver diagnostics, including the joint distribution p.
  maxent::SolverResult solver;
  /// Constraint census.
  size_t num_invariant_constraints = 0;
  size_t num_background_constraints = 0;
  size_t num_vacuous_statements = 0;
  /// Section 5.5 decomposition census.
  maxent::DecompositionStats decomposition;
  /// The paper's evaluation measure against the ground truth stored in
  /// the table (weighted KL; smaller = adversary knows more).
  double estimation_accuracy = 0.0;
  /// Posterior-based privacy metrics.
  PrivacyMetrics metrics;
};

/// The Privacy-MaxEnt engine (the paper's primary contribution).
///
/// Pipeline: derive the complete invariant set from the published table
/// (Section 5), compile the background knowledge into linear ME
/// constraints (Sections 4 and 6), and compute the maximum-entropy joint
/// P(Q, S, B) subject to all of them (Section 3). The posterior
/// P*(SA | QI) then quantifies what an adversary with that knowledge can
/// infer about each individual.
///
/// `qi_encoder` is required when the knowledge base contains dataset-mode
/// statements (mined rules); pass the encoder from BucketizeDataset.
/// Abstract-mode statements (worked examples) need no encoder.
Result<Analysis> Analyze(const anonymize::BucketizedTable& table,
                         const knowledge::KnowledgeBase& kb,
                         const AnalysisOptions& options = {},
                         const data::TupleEncoder* qi_encoder = nullptr);

}  // namespace pme::core

#endif  // PME_CORE_PRIVACY_MAXENT_H_
