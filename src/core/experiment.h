// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_EXPERIMENT_H_
#define PME_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "anonymize/anatomy.h"
#include "anonymize/bucketized_table.h"
#include "common/status.h"
#include "core/privacy_maxent.h"
#include "data/adult_synth.h"
#include "knowledge/miner.h"

namespace pme::core {

/// End-to-end experiment pipeline shared by the figure benches: synthetic
/// Adult-like data → Anatomy ℓ-diversity bucketization → association-rule
/// mining. Each bench then sweeps its own parameter (K, T, #constraints,
/// #buckets) over this state.
struct ExperimentPipeline {
  data::Dataset dataset;
  anonymize::DatasetBucketization bucketization;
  std::vector<knowledge::AssociationRule> rules;
};

struct PipelineOptions {
  data::AdultSynthOptions data;
  anonymize::AnatomyOptions anatomy;
  knowledge::MinerOptions miner;
  /// Mine rules at all (true) or skip mining (false, e.g. Figure 7 runs
  /// that synthesize knowledge directly).
  bool mine_rules = true;
};

/// Builds the pipeline; every stage is deterministic given the seeds in
/// the options.
Result<ExperimentPipeline> BuildPipeline(const PipelineOptions& options);

/// Runs a Privacy-MaxEnt analysis with the given rule subset as the
/// adversary's knowledge.
Result<Analysis> AnalyzeWithRules(
    const ExperimentPipeline& pipeline,
    const std::vector<knowledge::AssociationRule>& rules,
    const AnalysisOptions& options = {});

}  // namespace pme::core

#endif  // PME_CORE_EXPERIMENT_H_
