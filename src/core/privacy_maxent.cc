#include "core/privacy_maxent.h"

#include "constraints/bk_compiler.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "maxent/problem.h"

namespace pme::core {

Result<Analysis> Analyze(const anonymize::BucketizedTable& table,
                         const knowledge::KnowledgeBase& kb,
                         const AnalysisOptions& options,
                         const data::TupleEncoder* qi_encoder) {
  if (!kb.individuals().empty()) {
    return Status::InvalidArgument(
        "knowledge about individuals requires the pseudonym-expanded "
        "IndividualModel (core/individual_model.h)");
  }

  // Index construction is itself sharded across the solver's pool so the
  // front of every analysis scales with --threads, not just the solve.
  const constraints::TermIndex index =
      constraints::TermIndex::Build(table, options.solver_options.threads);
  constraints::ConstraintSystem system(index.num_variables());
  system.AddAll(constraints::GenerateInvariants(table, index,
                                                options.invariant_options));
  const size_t num_invariants = system.size();

  PME_ASSIGN_OR_RETURN(
      auto compiled,
      constraints::CompileKnowledge(kb, table, index, qi_encoder));
  const size_t num_bk = compiled.constraints.size();
  system.AddAll(std::move(compiled.constraints));

  Analysis analysis;
  analysis.num_invariant_constraints = num_invariants;
  analysis.num_background_constraints = num_bk;
  analysis.num_vacuous_statements = compiled.num_vacuous;
  analysis.decomposition = maxent::AnalyzeDecomposition(index, system);

  if (options.use_decomposition) {
    PME_ASSIGN_OR_RETURN(
        analysis.solver,
        maxent::SolveDecomposed(table, index, system, options.solver,
                                options.solver_options));
    // Per-block solve effort, aligned with the decomposition census's
    // block numbering (component_outcomes are emitted in block-id order).
    for (const auto& outcome : analysis.solver.component_outcomes) {
      analysis.decomposition.coupled_component_iterations.push_back(
          outcome.iterations);
      analysis.decomposition.coupled_component_seconds.push_back(
          outcome.seconds);
    }
  } else {
    PME_ASSIGN_OR_RETURN(auto problem, maxent::BuildProblem(system));
    PME_ASSIGN_OR_RETURN(
        analysis.solver,
        maxent::Solve(problem, options.solver, options.solver_options));
  }

  analysis.posterior =
      PosteriorTable::FromSolution(table, index, analysis.solver.p);
  analysis.estimation_accuracy =
      EstimationAccuracy(PosteriorTable::GroundTruth(table),
                         analysis.posterior);
  analysis.metrics = ComputePrivacyMetrics(analysis.posterior);
  return analysis;
}

}  // namespace pme::core
