#include "core/privacy_maxent.h"

#include "core/analysis_session.h"
#include "core/table_artifact.h"

namespace pme::core {

Result<Analysis> Analyze(const anonymize::BucketizedTable& table,
                         const knowledge::KnowledgeBase& kb,
                         const AnalysisOptions& options,
                         const data::TupleEncoder* qi_encoder) {
  // Thin wrapper over the artifact/session split: build a throwaway
  // borrowed artifact (table-side precompilation) and run one session
  // against it. Long-lived callers — pme serve, pme analyze --repeat —
  // hold the artifact and skip this per-call rebuild.
  TableArtifactOptions artifact_options;
  artifact_options.invariant_options = options.invariant_options;
  // Index construction is sharded across the solver's pool so the front
  // of every analysis scales with --threads, not just the solve.
  artifact_options.threads = options.solver_options.threads;
  PME_ASSIGN_OR_RETURN(
      auto artifact,
      TableArtifact::BuildBorrowed(table, qi_encoder, artifact_options));
  return AnalysisSession(std::move(artifact), options).Run(kb);
}

}  // namespace pme::core
