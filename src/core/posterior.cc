#include "core/posterior.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "common/vec_math.h"

namespace pme::core {

PosteriorTable PosteriorTable::FromSolution(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index, const std::vector<double>& p) {
  PosteriorTable t;
  t.num_qi_ = table.num_qi_values();
  t.num_sa_ = table.num_sa_values();
  t.rows_.assign(static_cast<size_t>(t.num_qi_) * t.num_sa_, 0.0);
  t.prob_q_.resize(t.num_qi_);
  for (uint32_t q = 0; q < t.num_qi_; ++q) t.prob_q_[q] = table.ProbQ(q);

  // P*(q, s) = Σ_b p(q, s, b); normalize by P(q).
  for (uint32_t var = 0; var < index.num_variables(); ++var) {
    const auto& term = index.TermOf(var);
    t.rows_[term.qi * t.num_sa_ + term.sa] += p[var];
  }
  for (uint32_t q = 0; q < t.num_qi_; ++q) {
    const double pq = t.prob_q_[q];
    if (pq <= 0.0) continue;
    for (uint32_t s = 0; s < t.num_sa_; ++s) {
      t.rows_[q * t.num_sa_ + s] /= pq;
    }
  }
  return t;
}

PosteriorTable PosteriorTable::GroundTruth(
    const anonymize::BucketizedTable& table) {
  PosteriorTable t;
  t.num_qi_ = table.num_qi_values();
  t.num_sa_ = table.num_sa_values();
  t.rows_.assign(static_cast<size_t>(t.num_qi_) * t.num_sa_, 0.0);
  t.prob_q_.assign(t.num_qi_, 0.0);

  std::vector<double> q_counts(t.num_qi_, 0.0);
  for (const auto& r : table.records()) {
    t.rows_[r.qi * t.num_sa_ + r.sa] += 1.0;
    q_counts[r.qi] += 1.0;
  }
  const double n = static_cast<double>(table.num_records());
  for (uint32_t q = 0; q < t.num_qi_; ++q) {
    t.prob_q_[q] = q_counts[q] / n;
    if (q_counts[q] <= 0.0) continue;
    for (uint32_t s = 0; s < t.num_sa_; ++s) {
      t.rows_[q * t.num_sa_ + s] /= q_counts[q];
    }
  }
  return t;
}

void PosteriorTable::RecomputeRow(uint32_t q, const uint32_t* vars, size_t n,
                                  const constraints::TermIndex& index,
                                  const std::vector<double>& p) {
  double* row = rows_.data() + static_cast<size_t>(q) * num_sa_;
  std::fill(row, row + num_sa_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    row[index.TermOf(vars[i]).sa] += p[vars[i]];
  }
  const double pq = prob_q_[q];
  if (pq <= 0.0) return;
  for (uint32_t s = 0; s < num_sa_; ++s) row[s] /= pq;
}

std::vector<double> PosteriorTable::Row(uint32_t q) const {
  return std::vector<double>(rows_.begin() + q * num_sa_,
                             rows_.begin() + (q + 1) * num_sa_);
}

double EstimationAccuracy(const PosteriorTable& truth,
                          const PosteriorTable& estimate) {
  double accuracy = 0.0;
  const uint32_t num_sa = truth.num_sa();
  for (uint32_t q = 0; q < truth.num_qi(); ++q) {
    const double pq = truth.ProbQ(q);
    if (pq <= 0.0) continue;
    accuracy +=
        pq * KlDivergence(truth.RowData(q), estimate.RowData(q), num_sa);
  }
  return accuracy;
}

PrivacyMetrics ComputePrivacyMetrics(const PosteriorTable& posterior) {
  PrivacyMetrics metrics;
  metrics.min_effective_candidates = std::numeric_limits<double>::max();
  const uint32_t num_sa = posterior.num_sa();
  for (uint32_t q = 0; q < posterior.num_qi(); ++q) {
    const double* row = posterior.RowData(q);
    const double best = *std::max_element(row, row + num_sa);
    metrics.max_disclosure = std::max(metrics.max_disclosure, best);
    metrics.expected_best_guess += posterior.ProbQ(q) * best;
    metrics.min_effective_candidates =
        std::min(metrics.min_effective_candidates,
                 std::exp(kernels::NegXLogXSum({row, num_sa})));
  }
  return metrics;
}

void ReevaluateQ(const PosteriorTable& truth, const PosteriorTable& estimate,
                 uint32_t q, PerQEvaluation* eval) {
  const uint32_t num_sa = truth.num_sa();
  eval->kl[q] = truth.ProbQ(q) <= 0.0
                    ? 0.0
                    : KlDivergence(truth.RowData(q), estimate.RowData(q),
                                   num_sa);
  const double* row = estimate.RowData(q);
  eval->best_guess[q] = *std::max_element(row, row + num_sa);
  eval->effective_candidates[q] =
      std::exp(kernels::NegXLogXSum({row, num_sa}));
}

PerQEvaluation EvaluatePerQ(const PosteriorTable& truth,
                            const PosteriorTable& estimate) {
  PerQEvaluation eval;
  eval.kl.resize(truth.num_qi());
  eval.best_guess.resize(truth.num_qi());
  eval.effective_candidates.resize(truth.num_qi());
  for (uint32_t q = 0; q < truth.num_qi(); ++q) {
    ReevaluateQ(truth, estimate, q, &eval);
  }
  return eval;
}

double AccuracyFromPerQ(const PosteriorTable& truth,
                        const PerQEvaluation& eval) {
  double accuracy = 0.0;
  for (uint32_t q = 0; q < truth.num_qi(); ++q) {
    const double pq = truth.ProbQ(q);
    if (pq <= 0.0) continue;
    accuracy += pq * eval.kl[q];
  }
  return accuracy;
}

PrivacyMetrics MetricsFromPerQ(const PosteriorTable& estimate,
                               const PerQEvaluation& eval) {
  PrivacyMetrics metrics;
  metrics.min_effective_candidates = std::numeric_limits<double>::max();
  for (uint32_t q = 0; q < estimate.num_qi(); ++q) {
    const double best = eval.best_guess[q];
    metrics.max_disclosure = std::max(metrics.max_disclosure, best);
    metrics.expected_best_guess += estimate.ProbQ(q) * best;
    metrics.min_effective_candidates = std::min(
        metrics.min_effective_candidates, eval.effective_candidates[q]);
  }
  return metrics;
}

}  // namespace pme::core
