// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_INDIVIDUAL_MODEL_H_
#define PME_CORE_INDIVIDUAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "anonymize/pseudonym.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "knowledge/knowledge_base.h"
#include "maxent/solver.h"

namespace pme::core {

/// The Section-6 model: MaxEnt over the pseudonym-expanded joint
/// P(i, q, s, b), enabling knowledge about *individuals* ("Alice does not
/// have HIV", "two of {Alice, Bob, Charlie} have HIV").
///
/// Variables: one per (pseudonym i, sensitive instance s, bucket b) with
/// b a candidate bucket of i (a bucket containing i's QI instance) and
/// s ∈ SA(b). The QI instance is determined by the pseudonym, so it is
/// not a separate dimension.
///
/// Invariants (the Section-5 derivation "modified accordingly"):
///  - per pseudonym:        Σ_{b,s} P(i, q, s, b) = 1/N
///    (each person has exactly one record),
///  - per (q, b):           Σ_{i ∈ pseud(q)} Σ_s P(i, q, s, b) = P(q, b)
///    (the bucket's QI occurrence counts are published),
///  - per (s, b):           Σ_i P(i, q_i, s, b) = P(s, b)
///    (the bucket's SA multiset is published).
///
/// Knowledge statements compile to rows over the same variables:
///  - kPersonSaSet:  Σ_{s ∈ set, b} P(i, q, s, b) = prob · (1/N),
///  - kGroupCount:   Σ_{(i,s) pairs, b} P(i, q_i, s, b) = count / N,
///  - abstract ConditionalStatements aggregate over all pseudonyms of q.
class IndividualModel {
 public:
  /// Builds the variable space and the invariant constraints.
  /// `pseudonyms` (and its underlying table) must outlive the model.
  static Result<IndividualModel> Build(
      const anonymize::PseudonymTable* pseudonyms);

  /// Compiles and adds the knowledge base (individual statements and
  /// abstract-mode conditionals; dataset-mode conditionals are rejected).
  Status AddKnowledge(const knowledge::KnowledgeBase& kb);

  /// Runs the MaxEnt solve over the expanded space.
  Result<maxent::SolverResult> Solve(
      maxent::SolverKind kind = maxent::SolverKind::kLbfgs,
      const maxent::SolverOptions& options = {}) const;

  /// The posterior P*(s | i) over all SA instances for one pseudonym,
  /// derived from a solution: P*(s | i) = N · Σ_b p(i, s, b).
  std::vector<double> PosteriorFor(uint32_t pseudonym,
                                   const std::vector<double>& p) const;

  /// Variable id of P(i, q_i, s, b); kNotFound for non-materialized
  /// combinations.
  Result<uint32_t> VariableId(uint32_t pseudonym, uint32_t sa,
                              uint32_t bucket) const;

  size_t num_variables() const { return terms_.size(); }
  size_t num_constraints() const { return invariants_.size() + knowledge_.size(); }

 private:
  struct IndividualTerm {
    uint32_t pseudonym;
    uint32_t sa;
    uint32_t bucket;
  };

  IndividualModel() = default;

  const anonymize::PseudonymTable* pseudonyms_ = nullptr;
  std::vector<IndividualTerm> terms_;
  /// Per pseudonym: first variable id (terms of one pseudonym are
  /// contiguous, ordered by candidate bucket then SA rank).
  std::vector<uint32_t> pseudonym_offsets_;
  std::vector<constraints::LinearConstraint> invariants_;
  std::vector<constraints::LinearConstraint> knowledge_;
};

}  // namespace pme::core

#endif  // PME_CORE_INDIVIDUAL_MODEL_H_
