// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_POSTERIOR_H_
#define PME_CORE_POSTERIOR_H_

#include <cstdint>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "constraints/term_index.h"

namespace pme::core {

/// The adversary's posterior P*(SA | QI): the end product of
/// Privacy-MaxEnt and the input to every privacy metric (Section 3.1:
/// P(S|Q) = Σ_B P(Q,S,B) / P(Q)).
class PosteriorTable {
 public:
  /// Derives P*(s | q) from a MaxEnt joint solution `p` over `index`.
  static PosteriorTable FromSolution(const anonymize::BucketizedTable& table,
                                     const constraints::TermIndex& index,
                                     const std::vector<double>& p);

  /// The ground-truth conditional P(s | q) of the original data
  /// (evaluation only — an adversary cannot compute this).
  static PosteriorTable GroundTruth(const anonymize::BucketizedTable& table);

  uint32_t num_qi() const { return num_qi_; }
  uint32_t num_sa() const { return num_sa_; }

  /// P*(s | q).
  double Conditional(uint32_t q, uint32_t s) const {
    return rows_[q * num_sa_ + s];
  }

  /// The conditional distribution over all SA instances for one q.
  std::vector<double> Row(uint32_t q) const;

  /// Borrowed view of Row(q) (num_sa() doubles) — the hot evaluation
  /// loops (accuracy, metrics) read every row and must not allocate one
  /// copy per q.
  const double* RowData(uint32_t q) const { return rows_.data() + q * num_sa_; }

  /// The q-marginal P(q) used for weighting.
  double ProbQ(uint32_t q) const { return prob_q_[q]; }

  /// Recomputes row q in place from a full joint solution: `vars` are
  /// exactly q's variable ids in ascending order (the artifact's per-q
  /// index). Identical arithmetic to FromSolution for that row —
  /// accumulate contributions in var order, then divide by P(q) — so an
  /// incremental re-evaluation that recomputes only the knowledge-
  /// touched rows reproduces the full rebuild bit for bit.
  void RecomputeRow(uint32_t q, const uint32_t* vars, size_t n,
                    const constraints::TermIndex& index,
                    const std::vector<double>& p);

 private:
  uint32_t num_qi_ = 0;
  uint32_t num_sa_ = 0;
  std::vector<double> rows_;    // row-major num_qi x num_sa
  std::vector<double> prob_q_;  // P(q)
};

/// The paper's evaluation measure (Section 7.1): the weighted
/// Kullback–Leibler distance
///
///   EA = Σ_q P(q) Σ_s P(s|q) · ln( P(s|q) / P*(s|q) ),
///
/// between the ground-truth conditionals and the MaxEnt estimate. Smaller
/// means the adversary's estimate is closer to the truth — *less* privacy.
/// Natural log (nats); the paper's plots use an unspecified base, which
/// only scales the axis.
double EstimationAccuracy(const PosteriorTable& truth,
                          const PosteriorTable& estimate);

/// Classical posterior-based privacy metrics computed from P*(SA | QI).
struct PrivacyMetrics {
  /// max_{q,s} P*(s | q): the worst-case disclosure risk (the quantity
  /// bounded by L-diversity-style metrics).
  double max_disclosure = 0.0;
  /// Σ_q P(q) max_s P*(s | q): expected confidence of the adversary's
  /// best guess.
  double expected_best_guess = 0.0;
  /// min_q exp(H(P*(· | q))): the smallest effective number of SA
  /// candidates any individual retains (entropy ℓ-diversity of the
  /// posterior).
  double min_effective_candidates = 0.0;
};

PrivacyMetrics ComputePrivacyMetrics(const PosteriorTable& posterior);

/// Per-q slices of the two evaluations above, cached so a request that
/// perturbs only a few posterior rows (the artifact-serving path: only
/// knowledge-coupled buckets move off the prior) re-derives just those
/// entries and re-aggregates — O(touched rows + num_qi) instead of a
/// log/exp pass over every cell.
struct PerQEvaluation {
  std::vector<double> kl;  ///< KL(truth_q ‖ estimate_q); 0 where P(q)=0
  std::vector<double> best_guess;             ///< max_s P*(s | q)
  std::vector<double> effective_candidates;   ///< exp(H(P*(· | q)))
};

/// Full per-q evaluation (every row), computed with exactly the same
/// per-row arithmetic as EstimationAccuracy / ComputePrivacyMetrics.
PerQEvaluation EvaluatePerQ(const PosteriorTable& truth,
                            const PosteriorTable& estimate);

/// Re-derives one q's slice after its estimate row changed.
void ReevaluateQ(const PosteriorTable& truth, const PosteriorTable& estimate,
                 uint32_t q, PerQEvaluation* eval);

/// Aggregations over the per-q slices. Iteration order and floating-
/// point operation order match the full EstimationAccuracy /
/// ComputePrivacyMetrics loops, so (full evaluation, aggregate) and the
/// direct computation agree bit for bit.
double AccuracyFromPerQ(const PosteriorTable& truth,
                        const PerQEvaluation& eval);
PrivacyMetrics MetricsFromPerQ(const PosteriorTable& estimate,
                               const PerQEvaluation& eval);

}  // namespace pme::core

#endif  // PME_CORE_POSTERIOR_H_
