// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_POSTERIOR_H_
#define PME_CORE_POSTERIOR_H_

#include <cstdint>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "constraints/term_index.h"

namespace pme::core {

/// The adversary's posterior P*(SA | QI): the end product of
/// Privacy-MaxEnt and the input to every privacy metric (Section 3.1:
/// P(S|Q) = Σ_B P(Q,S,B) / P(Q)).
class PosteriorTable {
 public:
  /// Derives P*(s | q) from a MaxEnt joint solution `p` over `index`.
  static PosteriorTable FromSolution(const anonymize::BucketizedTable& table,
                                     const constraints::TermIndex& index,
                                     const std::vector<double>& p);

  /// The ground-truth conditional P(s | q) of the original data
  /// (evaluation only — an adversary cannot compute this).
  static PosteriorTable GroundTruth(const anonymize::BucketizedTable& table);

  uint32_t num_qi() const { return num_qi_; }
  uint32_t num_sa() const { return num_sa_; }

  /// P*(s | q).
  double Conditional(uint32_t q, uint32_t s) const {
    return rows_[q * num_sa_ + s];
  }

  /// The conditional distribution over all SA instances for one q.
  std::vector<double> Row(uint32_t q) const;

  /// The q-marginal P(q) used for weighting.
  double ProbQ(uint32_t q) const { return prob_q_[q]; }

 private:
  uint32_t num_qi_ = 0;
  uint32_t num_sa_ = 0;
  std::vector<double> rows_;    // row-major num_qi x num_sa
  std::vector<double> prob_q_;  // P(q)
};

/// The paper's evaluation measure (Section 7.1): the weighted
/// Kullback–Leibler distance
///
///   EA = Σ_q P(q) Σ_s P(s|q) · ln( P(s|q) / P*(s|q) ),
///
/// between the ground-truth conditionals and the MaxEnt estimate. Smaller
/// means the adversary's estimate is closer to the truth — *less* privacy.
/// Natural log (nats); the paper's plots use an unspecified base, which
/// only scales the axis.
double EstimationAccuracy(const PosteriorTable& truth,
                          const PosteriorTable& estimate);

/// Classical posterior-based privacy metrics computed from P*(SA | QI).
struct PrivacyMetrics {
  /// max_{q,s} P*(s | q): the worst-case disclosure risk (the quantity
  /// bounded by L-diversity-style metrics).
  double max_disclosure = 0.0;
  /// Σ_q P(q) max_s P*(s | q): expected confidence of the adversary's
  /// best guess.
  double expected_best_guess = 0.0;
  /// min_q exp(H(P*(· | q))): the smallest effective number of SA
  /// candidates any individual retains (entropy ℓ-diversity of the
  /// posterior).
  double min_effective_candidates = 0.0;
};

PrivacyMetrics ComputePrivacyMetrics(const PosteriorTable& posterior);

}  // namespace pme::core

#endif  // PME_CORE_POSTERIOR_H_
