#include "core/criteria.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pme::core {

std::vector<double> GlobalSaDistribution(
    const anonymize::BucketizedTable& table) {
  std::vector<double> dist(table.num_sa_values(), 0.0);
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    for (const auto& [s, cnt] : table.BucketSaCounts(b)) {
      dist[s] += static_cast<double>(cnt);
    }
  }
  const double n = static_cast<double>(table.num_records());
  for (double& d : dist) d /= n;
  return dist;
}

TClosenessReport MeasureTCloseness(const anonymize::BucketizedTable& table) {
  const std::vector<double> global = GlobalSaDistribution(table);
  TClosenessReport report;
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    const double size = static_cast<double>(table.BucketSas(b).size());
    // Total variation = 1/2 L1 distance.
    double tv = 0.0;
    for (uint32_t s = 0; s < table.num_sa_values(); ++s) {
      const auto& counts = table.BucketSaCounts(b);
      auto it = counts.find(s);
      const double p = it == counts.end()
                           ? 0.0
                           : static_cast<double>(it->second) / size;
      tv += std::fabs(p - global[s]);
    }
    tv *= 0.5;
    if (tv > report.max_distance) {
      report.max_distance = tv;
      report.worst_bucket = b;
    }
  }
  return report;
}

bool SatisfiesTCloseness(const anonymize::BucketizedTable& table, double t) {
  return MeasureTCloseness(table).max_distance <= t;
}

RecursiveDiversityReport MeasureRecursiveDiversity(
    const anonymize::BucketizedTable& table, size_t ell) {
  RecursiveDiversityReport report;
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    std::vector<double> counts;
    for (const auto& [s, cnt] : table.BucketSaCounts(b)) {
      counts.push_back(static_cast<double>(cnt));
    }
    std::sort(counts.rbegin(), counts.rend());
    if (counts.size() < ell) {
      report.feasible = false;
      report.worst_bucket = b;
      report.min_c = std::numeric_limits<double>::infinity();
      return report;
    }
    double tail = 0.0;
    for (size_t i = ell - 1; i < counts.size(); ++i) tail += counts[i];
    const double c = tail > 0.0 ? counts[0] / tail
                                : std::numeric_limits<double>::infinity();
    if (c > report.min_c) {
      report.min_c = c;
      report.worst_bucket = b;
    }
  }
  return report;
}

bool SatisfiesRecursiveDiversity(const anonymize::BucketizedTable& table,
                                 double c, size_t ell) {
  const auto report = MeasureRecursiveDiversity(table, ell);
  return report.feasible && report.min_c < c;
}

}  // namespace pme::core
