// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_REPORT_H_
#define PME_CORE_REPORT_H_

#include <string>

#include "anonymize/bucketized_table.h"
#include "core/privacy_maxent.h"

namespace pme::core {

/// Options for the human-readable privacy report.
struct ReportOptions {
  /// How many highest-risk QI instances to list.
  size_t top_risks = 10;
  /// Posterior probability above which a (QI, SA) link counts as a
  /// near-certain disclosure.
  double disclosure_threshold = 0.9;
  /// Include the assumed-knowledge census section.
  bool include_knowledge_census = true;
};

/// Renders the (bound, privacy score) outcome of an analysis as a text
/// report for the data owner — the artifact Section 4.3 of the paper says
/// privacy quantification should hand to users: the assumptions made
/// about the adversary, and the privacy achieved under them.
std::string RenderPrivacyReport(const anonymize::BucketizedTable& table,
                                const Analysis& analysis,
                                const ReportOptions& options = {});

/// One line per QI instance: "qi,sa,posterior" rows of the full posterior
/// table, as CSV text (machine-readable companion to the report).
std::string PosteriorToCsv(const anonymize::BucketizedTable& table,
                           const Analysis& analysis);

}  // namespace pme::core

#endif  // PME_CORE_REPORT_H_
