// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_ANALYSIS_SESSION_H_
#define PME_CORE_ANALYSIS_SESSION_H_

#include <memory>

#include "common/status.h"
#include "core/privacy_maxent.h"
#include "core/table_artifact.h"
#include "knowledge/knowledge_base.h"

namespace pme::core {

/// The per-request half of an analysis: everything that depends on the
/// adversary's knowledge. A session borrows (shares) an immutable
/// TableArtifact and, per Run, compiles only the background-knowledge
/// rows, merges them into the artifact's precompiled invariant system,
/// extends the invariants-only component partition, and solves — with
/// whatever deadline/cancellation/cache plumbing the options carry.
///
/// Sessions hold no mutable state: Run is const, and any number of
/// sessions (or concurrent Run calls on one session) may share a single
/// artifact, SolutionCache, and ThreadPool. The artifact's content hash
/// is installed as the cache namespace automatically, so one cache can
/// serve many artifacts without cross-table collisions.
///
/// Equivalent to the legacy core::Analyze — which is now a thin wrapper
/// building a throwaway artifact per call — but a long-lived caller
/// (pme serve, pme analyze --repeat) pays the table-side cost once.
class AnalysisSession {
 public:
  /// `artifact` must be non-null; `options` are fixed for the session's
  /// lifetime. The artifact's invariant options were baked in at its
  /// build — options.invariant_options is ignored here.
  AnalysisSession(std::shared_ptr<const TableArtifact> artifact,
                  AnalysisOptions options = {});

  /// Runs one analysis of `kb` against the artifact. Individuals are
  /// rejected (as in Analyze); dataset-mode statements require the
  /// artifact to have been built with a QI encoder.
  Result<Analysis> Run(const knowledge::KnowledgeBase& kb) const;

  /// Like Run, but with per-request overrides of the session options
  /// (the serving path: per-request deadline, solver, cache mode).
  Result<Analysis> Run(const knowledge::KnowledgeBase& kb,
                       const AnalysisOptions& options) const;

  const TableArtifact& artifact() const { return *artifact_; }
  const std::shared_ptr<const TableArtifact>& artifact_ptr() const {
    return artifact_;
  }
  const AnalysisOptions& options() const { return options_; }

 private:
  std::shared_ptr<const TableArtifact> artifact_;
  AnalysisOptions options_;
};

}  // namespace pme::core

#endif  // PME_CORE_ANALYSIS_SESSION_H_
