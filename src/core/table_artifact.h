// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_TABLE_ARTIFACT_H_
#define PME_CORE_TABLE_ARTIFACT_H_

#include <memory>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "common/hash.h"
#include "common/status.h"
#include "constraints/component_analysis.h"
#include "constraints/invariants.h"
#include "constraints/term_index.h"
#include "core/posterior.h"
#include "data/dataset.h"

namespace pme::core {

/// Build-time knobs of a TableArtifact. Everything here is a property of
/// the *published table*, fixed when the artifact is built; per-request
/// knobs (solver, deadline, cache mode) live in AnalysisOptions.
struct TableArtifactOptions {
  constraints::InvariantOptions invariant_options;
  /// Worker threads for the parallel TermIndex build (0 = hardware
  /// concurrency). The artifact — content hash included — is
  /// byte-identical for any value.
  size_t threads = 1;
};

/// The immutable, shareable half of an analysis: everything derivable
/// from the published table alone, built once and reused by every
/// request against that table.
///
///   - the published BucketizedTable (and its QI tuple encoder, when the
///     table came from a concrete dataset),
///   - the TermIndex materializing the variable space,
///   - the compiled invariant constraint rows (Section 5),
///   - the invariants-only ComponentAnalysis (trivially one uncoupled
///     component per bucket — invariants never couple buckets — which
///     AnalysisSession extends with each request's knowledge rows),
///   - a content hash, used as the SolutionCache namespace so one cache
///     can serve many artifacts without cross-table collisions.
///
/// Artifacts are held by shared_ptr and deeply immutable after Build:
/// any number of AnalysisSessions on any number of threads may read one
/// concurrently.
class TableArtifact {
 public:
  /// Builds an artifact that shares ownership of `table` (and
  /// `qi_encoder`, which may be null when the knowledge will be
  /// abstract-mode only).
  static Result<std::shared_ptr<const TableArtifact>> Build(
      std::shared_ptr<const anonymize::BucketizedTable> table,
      std::shared_ptr<const data::TupleEncoder> qi_encoder = nullptr,
      const TableArtifactOptions& options = {});

  /// Borrowing build for synchronous call sites (the legacy Analyze
  /// wrapper): the caller guarantees `table` and `qi_encoder` outlive
  /// the returned artifact. No copies are made.
  static Result<std::shared_ptr<const TableArtifact>> BuildBorrowed(
      const anonymize::BucketizedTable& table,
      const data::TupleEncoder* qi_encoder = nullptr,
      const TableArtifactOptions& options = {});

  const anonymize::BucketizedTable& table() const { return *table_; }
  /// Null when the artifact was built without an encoder.
  const data::TupleEncoder* qi_encoder() const { return qi_encoder_.get(); }
  const constraints::TermIndex& index() const { return index_; }
  const std::vector<constraints::LinearConstraint>& invariants() const {
    return invariants_;
  }
  /// Invariants-only partition; extend with a request's knowledge rows
  /// via constraints::ComponentAnalysis::Extend.
  const constraints::ComponentAnalysis& base_components() const {
    return base_components_;
  }
  /// Bucket of each invariant row (aligned with invariants()); invariant
  /// rows never span buckets, so a session can gather just the rows of
  /// knowledge-coupled buckets instead of copying the whole table side
  /// per request. UINT32_MAX for a (degenerate) row with no support.
  const std::vector<uint32_t>& invariant_row_bucket() const {
    return invariant_row_bucket_;
  }
  /// Precomputed per-bucket empirical conditional P(S | Q) — knowledge-
  /// independent, so requests share one copy instead of rebuilding it.
  const PosteriorTable& ground_truth() const { return ground_truth_; }
  /// Precomputed Theorem-5 closed-form joint (the no-knowledge MaxEnt
  /// solution); sessions hand it to SolveDecomposed so each request
  /// copies instead of re-deriving it.
  const std::vector<double>& closed_form_prior() const {
    return closed_form_prior_;
  }
  /// pme::Entropy of closed_form_prior(), for the solver's incremental
  /// entropy shortcut.
  double closed_form_prior_entropy() const {
    return closed_form_prior_entropy_;
  }
  /// Posterior P*(S | Q) of the closed-form prior, plus its per-q
  /// evaluation slices against ground_truth(). A request whose solve
  /// moved only the knowledge-coupled buckets off the prior re-derives
  /// just those rows (see AnalysisSession).
  const PosteriorTable& prior_posterior() const { return prior_posterior_; }
  const PerQEvaluation& prior_evaluation() const { return prior_evaluation_; }
  /// Variable-id range [bucket_var_begin()[b], bucket_var_begin()[b+1])
  /// of bucket b — TermIndex numbers variables bucket-major.
  const std::vector<uint32_t>& bucket_var_begin() const {
    return bucket_var_begin_;
  }
  /// CSR over q: ascending variable ids of QI value q are
  /// q_vars()[q_var_offsets()[q] ... q_var_offsets()[q+1]).
  const std::vector<uint32_t>& q_var_offsets() const {
    return q_var_offsets_;
  }
  const std::vector<uint32_t>& q_vars() const { return q_vars_; }
  const TableArtifactOptions& options() const { return options_; }

  /// Stable digest of the published table content plus the invariant
  /// options — everything that determines the compiled system's
  /// table-side rows. Byte-identical across runs, platforms, and thread
  /// counts; distinct tables get distinct namespaces (up to 128-bit
  /// collision).
  const Hash128& content_hash() const { return content_hash_; }

 private:
  TableArtifact() = default;

  std::shared_ptr<const anonymize::BucketizedTable> table_;
  std::shared_ptr<const data::TupleEncoder> qi_encoder_;
  constraints::TermIndex index_;
  std::vector<constraints::LinearConstraint> invariants_;
  constraints::ComponentAnalysis base_components_;
  std::vector<uint32_t> invariant_row_bucket_;
  PosteriorTable ground_truth_;
  std::vector<double> closed_form_prior_;
  double closed_form_prior_entropy_ = 0.0;
  PosteriorTable prior_posterior_;
  PerQEvaluation prior_evaluation_;
  std::vector<uint32_t> bucket_var_begin_;
  std::vector<uint32_t> q_var_offsets_;
  std::vector<uint32_t> q_vars_;
  TableArtifactOptions options_;
  Hash128 content_hash_;
};

}  // namespace pme::core

#endif  // PME_CORE_TABLE_ARTIFACT_H_
