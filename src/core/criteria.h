// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CORE_CRITERIA_H_
#define PME_CORE_CRITERIA_H_

#include <cstdint>
#include <vector>

#include "anonymize/bucketized_table.h"

namespace pme::core {

/// The classical syntactic privacy criteria the paper positions itself
/// against (Section 2): k-anonymity-era checks evaluated on the published
/// table itself, with no adversary model. Privacy-MaxEnt replaces them
/// with the posterior-based measures in posterior.h; these are provided
/// both for comparison and because real deployments report them.

/// t-closeness (Li et al., ICDE'07): the distance between each bucket's
/// SA distribution and the table-wide SA distribution must be at most t.
/// For categorical SA without a ground hierarchy the standard distance is
/// total variation (equal-ground EMD).
struct TClosenessReport {
  /// max over buckets of TV(bucket SA distribution, global distribution).
  double max_distance = 0.0;
  uint32_t worst_bucket = 0;
};

TClosenessReport MeasureTCloseness(const anonymize::BucketizedTable& table);

/// True iff every bucket is within distance `t` of the global SA
/// distribution.
bool SatisfiesTCloseness(const anonymize::BucketizedTable& table, double t);

/// Recursive (c, ℓ)-diversity (Machanavajjhala et al.): in every bucket,
/// with SA counts r_1 >= r_2 >= ... >= r_m, require
///   r_1 < c * (r_ℓ + r_{ℓ+1} + ... + r_m).
/// Returns the smallest c that satisfies the condition at the given ℓ
/// (so the table is (c', ℓ)-diverse for any c' > result).
struct RecursiveDiversityReport {
  double min_c = 0.0;
  uint32_t worst_bucket = 0;
  /// False when some bucket has fewer than ℓ distinct values (the
  /// criterion is then unsatisfiable for any c).
  bool feasible = true;
};

RecursiveDiversityReport MeasureRecursiveDiversity(
    const anonymize::BucketizedTable& table, size_t ell);

bool SatisfiesRecursiveDiversity(const anonymize::BucketizedTable& table,
                                 double c, size_t ell);

/// The global SA distribution of the table (by instance id).
std::vector<double> GlobalSaDistribution(
    const anonymize::BucketizedTable& table);

}  // namespace pme::core

#endif  // PME_CORE_CRITERIA_H_
