#include "core/experiment.h"

namespace pme::core {

Result<ExperimentPipeline> BuildPipeline(const PipelineOptions& options) {
  PME_ASSIGN_OR_RETURN(data::Dataset dataset,
                       data::GenerateAdultLike(options.data));
  PME_ASSIGN_OR_RETURN(auto partition,
                       anonymize::AnatomyPartition(dataset, options.anatomy));
  PME_ASSIGN_OR_RETURN(auto bucketization,
                       anonymize::BucketizeDataset(dataset, partition));
  std::vector<knowledge::AssociationRule> rules;
  if (options.mine_rules) {
    PME_ASSIGN_OR_RETURN(
        rules, knowledge::MineAssociationRules(dataset, options.miner));
  }
  return ExperimentPipeline{std::move(dataset), std::move(bucketization),
                            std::move(rules)};
}

Result<Analysis> AnalyzeWithRules(
    const ExperimentPipeline& pipeline,
    const std::vector<knowledge::AssociationRule>& rules,
    const AnalysisOptions& options) {
  knowledge::KnowledgeBase kb;
  kb.AddRules(rules);
  return Analyze(pipeline.bucketization.table, kb, options,
                 &pipeline.bucketization.qi_encoder);
}

}  // namespace pme::core
