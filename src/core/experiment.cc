#include "core/experiment.h"

#include <fstream>

#include "common/string_util.h"

namespace pme::core {

Result<ExperimentPipeline> BuildPipeline(const PipelineOptions& options) {
  PME_ASSIGN_OR_RETURN(data::Dataset dataset,
                       data::GenerateAdultLike(options.data));
  PME_ASSIGN_OR_RETURN(auto partition,
                       anonymize::AnatomyPartition(dataset, options.anatomy));
  PME_ASSIGN_OR_RETURN(auto bucketization,
                       anonymize::BucketizeDataset(dataset, partition));
  std::vector<knowledge::AssociationRule> rules;
  if (options.mine_rules) {
    PME_ASSIGN_OR_RETURN(
        rules, knowledge::MineAssociationRules(dataset, options.miner));
  }
  return ExperimentPipeline{std::move(dataset), std::move(bucketization),
                            std::move(rules)};
}

Result<Analysis> AnalyzeWithRules(
    const ExperimentPipeline& pipeline,
    const std::vector<knowledge::AssociationRule>& rules,
    const AnalysisOptions& options) {
  knowledge::KnowledgeBase kb;
  kb.AddRules(rules);
  return Analyze(pipeline.bucketization.table, kb, options,
                 &pipeline.bucketization.qi_encoder);
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : impl_(new Impl) {
  if (path.empty()) return;
  impl_->out.open(path);
  if (!impl_->out) {
    ok_ = false;
    return;
  }
  impl_->out << Join(header, ",") << "\n";
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::Row(const std::vector<double>& values) {
  if (!impl_->out.is_open()) return;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) impl_->out << ",";
    impl_->out << FormatDouble(values[i]);
  }
  impl_->out << "\n";
}

}  // namespace pme::core
