#include "core/individual_model.h"

#include <algorithm>
#include <map>
#include <set>

#include "constraints/system.h"
#include "maxent/problem.h"

namespace pme::core {

Result<IndividualModel> IndividualModel::Build(
    const anonymize::PseudonymTable* pseudonyms) {
  if (pseudonyms == nullptr) {
    return Status::InvalidArgument("pseudonym table must not be null");
  }
  IndividualModel model;
  model.pseudonyms_ = pseudonyms;
  const auto& table = pseudonyms->table();
  const size_t num_pseud = pseudonyms->num_pseudonyms();
  const double n = static_cast<double>(table.num_records());

  // Distinct SA list per bucket (sorted), for stable variable layout.
  std::vector<std::vector<uint32_t>> bucket_sa(table.num_buckets());
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    for (const auto& [s, cnt] : table.BucketSaCounts(b)) {
      bucket_sa[b].push_back(s);
    }
  }

  model.pseudonym_offsets_.resize(num_pseud + 1);
  for (uint32_t i = 0; i < num_pseud; ++i) {
    model.pseudonym_offsets_[i] = static_cast<uint32_t>(model.terms_.size());
    const uint32_t q = pseudonyms->QiOf(i);
    for (uint32_t b : table.BucketsWithQi(q)) {
      for (uint32_t s : bucket_sa[b]) {
        model.terms_.push_back(IndividualTerm{i, s, b});
      }
    }
  }
  model.pseudonym_offsets_[num_pseud] =
      static_cast<uint32_t>(model.terms_.size());

  // Invariant 1: each pseudonym carries exactly one record's mass.
  for (uint32_t i = 0; i < num_pseud; ++i) {
    constraints::LinearConstraint c;
    c.source = constraints::ConstraintSource::kQiInvariant;
    c.rel = constraints::Relation::kEq;
    c.rhs = 1.0 / n;
    c.label = "pseudonym " + pseudonyms->Name(i);
    for (uint32_t v = model.pseudonym_offsets_[i];
         v < model.pseudonym_offsets_[i + 1]; ++v) {
      c.vars.push_back(v);
      c.coefs.push_back(1.0);
    }
    model.invariants_.push_back(std::move(c));
  }

  // Invariants 2 and 3: per-(q, b) and per-(s, b) published counts.
  std::map<std::pair<uint32_t, uint32_t>, constraints::LinearConstraint> qb;
  std::map<std::pair<uint32_t, uint32_t>, constraints::LinearConstraint> sb;
  for (uint32_t v = 0; v < model.terms_.size(); ++v) {
    const auto& t = model.terms_[v];
    const uint32_t q = pseudonyms->QiOf(t.pseudonym);
    auto& cq = qb[{q, t.bucket}];
    cq.vars.push_back(v);
    cq.coefs.push_back(1.0);
    auto& cs = sb[{t.sa, t.bucket}];
    cs.vars.push_back(v);
    cs.coefs.push_back(1.0);
  }
  for (auto& [key, c] : qb) {
    c.source = constraints::ConstraintSource::kQiInvariant;
    c.rel = constraints::Relation::kEq;
    c.rhs = table.ProbQB(key.first, key.second);
    c.label = "QI " + table.QiName(key.first) + " in b" +
              std::to_string(key.second + 1);
    model.invariants_.push_back(std::move(c));
  }
  for (auto& [key, c] : sb) {
    c.source = constraints::ConstraintSource::kSaInvariant;
    c.rel = constraints::Relation::kEq;
    c.rhs = table.ProbSB(key.first, key.second);
    c.label = "SA " + table.SaName(key.first) + " in b" +
              std::to_string(key.second + 1);
    model.invariants_.push_back(std::move(c));
  }
  return model;
}

Result<uint32_t> IndividualModel::VariableId(uint32_t pseudonym, uint32_t sa,
                                             uint32_t bucket) const {
  if (pseudonym >= pseudonyms_->num_pseudonyms()) {
    return Status::InvalidArgument("pseudonym out of range");
  }
  for (uint32_t v = pseudonym_offsets_[pseudonym];
       v < pseudonym_offsets_[pseudonym + 1]; ++v) {
    if (terms_[v].sa == sa && terms_[v].bucket == bucket) return v;
  }
  return Status::NotFound("P(i,q,s,b) is not materialized");
}

Status IndividualModel::AddKnowledge(const knowledge::KnowledgeBase& kb) {
  const auto& table = pseudonyms_->table();
  const double n = static_cast<double>(table.num_records());

  for (const auto& stmt : kb.individuals()) {
    constraints::LinearConstraint c;
    c.source = constraints::ConstraintSource::kIndividual;
    c.rel = stmt.rel;
    c.rhs = stmt.probability / n;
    c.label = stmt.label.empty() ? "individual knowledge" : stmt.label;
    for (const auto& [pseudonym, sa] : stmt.terms) {
      if (pseudonym >= pseudonyms_->num_pseudonyms()) {
        return Status::InvalidArgument("statement references an unknown "
                                       "pseudonym");
      }
      for (uint32_t b : pseudonyms_->CandidateBuckets(pseudonym)) {
        auto var = VariableId(pseudonym, sa, b);
        if (!var.ok()) continue;  // s not in that bucket: structurally zero
        c.vars.push_back(var.value());
        c.coefs.push_back(1.0);
      }
    }
    if (c.vars.empty()) {
      if (c.rel != knowledge::Relation::kLe && c.rhs > 1e-12) {
        return Status::Infeasible(
            "individual statement '" + c.label +
            "' asserts positive probability over impossible combinations");
      }
      continue;
    }
    knowledge_.push_back(std::move(c));
  }

  // Abstract-mode distribution statements aggregate over pseudonyms:
  // Σ_i∈pseud(q) P(i, q, s, b) plays the role of P(q, s, b).
  for (const auto& stmt : kb.conditionals()) {
    if (!stmt.abstract_qi.has_value()) {
      return Status::InvalidArgument(
          "IndividualModel supports only abstract-mode conditional "
          "statements; resolve dataset-mode statements first");
    }
    const uint32_t q = *stmt.abstract_qi;
    if (q >= table.num_qi_values()) {
      return Status::InvalidArgument("abstract QI instance out of range");
    }
    std::set<uint32_t> sa_set(stmt.sa_codes.begin(), stmt.sa_codes.end());
    constraints::LinearConstraint c;
    c.source = constraints::ConstraintSource::kBackground;
    c.rel = stmt.rel;
    c.rhs = stmt.probability * table.ProbQ(q);
    c.label = stmt.label.empty() ? "bk (individual space)" : stmt.label;
    for (uint32_t i : pseudonyms_->PseudonymsOf(q)) {
      for (uint32_t b : pseudonyms_->CandidateBuckets(i)) {
        for (uint32_t s : sa_set) {
          auto var = VariableId(i, s, b);
          if (!var.ok()) continue;
          c.vars.push_back(var.value());
          c.coefs.push_back(1.0);
        }
      }
    }
    if (c.vars.empty()) {
      if (c.rel != knowledge::Relation::kLe && c.rhs > 1e-12) {
        return Status::Infeasible("statement '" + c.label +
                                  "' contradicts the published table");
      }
      continue;
    }
    knowledge_.push_back(std::move(c));
  }
  return Status::Ok();
}

Result<maxent::SolverResult> IndividualModel::Solve(
    maxent::SolverKind kind, const maxent::SolverOptions& options) const {
  constraints::ConstraintSystem system(terms_.size());
  for (const auto& c : invariants_) system.Add(c);
  for (const auto& c : knowledge_) system.Add(c);
  PME_ASSIGN_OR_RETURN(auto problem, maxent::BuildProblem(system));
  return maxent::Solve(problem, kind, options);
}

std::vector<double> IndividualModel::PosteriorFor(
    uint32_t pseudonym, const std::vector<double>& p) const {
  const auto& table = pseudonyms_->table();
  std::vector<double> posterior(table.num_sa_values(), 0.0);
  const double n = static_cast<double>(table.num_records());
  for (uint32_t v = pseudonym_offsets_[pseudonym];
       v < pseudonym_offsets_[pseudonym + 1]; ++v) {
    posterior[terms_[v].sa] += p[v] * n;
  }
  return posterior;
}

}  // namespace pme::core
