#include "core/analysis_session.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "common/trace.h"
#include "constraints/bk_compiler.h"
#include "constraints/component_analysis.h"
#include "constraints/system.h"
#include "maxent/problem.h"

namespace pme::core {

AnalysisSession::AnalysisSession(
    std::shared_ptr<const TableArtifact> artifact, AnalysisOptions options)
    : artifact_(std::move(artifact)), options_(std::move(options)) {}

Result<Analysis> AnalysisSession::Run(const knowledge::KnowledgeBase& kb) const {
  return Run(kb, options_);
}

Result<Analysis> AnalysisSession::Run(const knowledge::KnowledgeBase& kb,
                                      const AnalysisOptions& options) const {
  if (artifact_ == nullptr) {
    return Status::InvalidArgument("AnalysisSession: null artifact");
  }
  if (!kb.individuals().empty()) {
    return Status::InvalidArgument(
        "knowledge about individuals requires the pseudonym-expanded "
        "IndividualModel (core/individual_model.h)");
  }
  const TableArtifact& artifact = *artifact_;
  const constraints::TermIndex& index = artifact.index();

  trace::TraceSpan session_span("session_run", "session");

  std::optional<constraints::CompiledKnowledge> compiled_holder;
  {
    trace::TraceSpan compile_span("compile", "session");
    PME_ASSIGN_OR_RETURN(
        auto compiled_local,
        constraints::CompileKnowledge(kb, artifact.table(), index,
                                      artifact.qi_encoder()));
    compile_span.AddArg("constraints",
                        static_cast<double>(compiled_local.constraints.size()));
    compiled_holder.emplace(std::move(compiled_local));
  }
  auto& compiled = *compiled_holder;
  const size_t num_bk = compiled.constraints.size();

  // One union-find pass over the knowledge rows alone — the artifact's
  // invariants-only partition already absorbed the table side.
  const constraints::ComponentAnalysis components =
      constraints::ComponentAnalysis::Extend(artifact.base_components(),
                                             index, compiled.constraints);

  AnalysisOptions run_options = options;
  // Per-artifact cache namespace, unless the caller already chose one.
  if (run_options.solver_options.cache_namespace == Hash128{}) {
    run_options.solver_options.cache_namespace = artifact.content_hash();
  }

  Analysis analysis;
  analysis.num_invariant_constraints = artifact.invariants().size();
  analysis.num_background_constraints = num_bk;
  analysis.num_vacuous_statements = compiled.num_vacuous;

  // The decomposed solve only ever *uses* invariant rows of
  // knowledge-coupled buckets: rows of uncoupled buckets are satisfied
  // exactly by the Theorem-5 closed form and skipped during block
  // routing. So the per-request system carries just that coupled slice
  // plus the knowledge rows — O(request), not O(table) — which leaves
  // the solution identical (and the per-block cache keys identical: the
  // same rows route to the same blocks). Two cases still need the full
  // row set: the monolithic paths (use_decomposition off, or one coupled
  // component dominating past monolithic_fallback_fraction), which build
  // one problem from the *whole* system.
  size_t largest_coupled = 0;
  for (const auto& comp : components.components()) {
    if (comp.coupled) {
      largest_coupled = std::max(largest_coupled, comp.num_variables);
    }
  }
  const size_t total_vars = index.num_variables();
  const bool wants_monolithic =
      !run_options.use_decomposition ||
      (total_vars > 0 &&
       static_cast<double>(largest_coupled) >
           run_options.solver_options.monolithic_fallback_fraction *
               static_cast<double>(total_vars));

  constraints::ConstraintSystem system(index.num_variables());
  if (wants_monolithic) {
    // Full system, matching Analyze's historical row order: invariant
    // rows, then knowledge rows.
    system.AddAll(artifact.invariants());
  } else {
    const auto& invariants = artifact.invariants();
    const auto& row_bucket = artifact.invariant_row_bucket();
    for (size_t i = 0; i < invariants.size(); ++i) {
      const uint32_t bucket = row_bucket[i];
      if (bucket == UINT32_MAX ||
          components.components()[components.ComponentOf(bucket)].coupled) {
        system.Add(invariants[i]);
      }
    }
  }
  system.AddAll(std::move(compiled.constraints));

  analysis.decomposition =
      maxent::AnalyzeDecomposition(index, system, &components);

  {
    trace::TraceSpan solve_span("solve", "session");
    if (run_options.use_decomposition) {
      run_options.solver_options.closed_form_prior =
          &artifact.closed_form_prior();
      run_options.solver_options.closed_form_prior_entropy =
          artifact.closed_form_prior_entropy();
      PME_ASSIGN_OR_RETURN(
          analysis.solver,
          maxent::SolveDecomposed(artifact.table(), index, system,
                                  run_options.solver,
                                  run_options.solver_options, &components));
      // Per-block solve effort, aligned with the decomposition census's
      // block numbering (component_outcomes are emitted in block-id order).
      for (const auto& outcome : analysis.solver.component_outcomes) {
        analysis.decomposition.coupled_component_iterations.push_back(
            outcome.iterations);
        analysis.decomposition.coupled_component_seconds.push_back(
            outcome.seconds);
      }
    } else {
      PME_ASSIGN_OR_RETURN(auto problem, maxent::BuildProblem(system));
      PME_ASSIGN_OR_RETURN(
          analysis.solver,
          maxent::Solve(problem, run_options.solver,
                        run_options.solver_options));
    }
    solve_span.AddArg("iterations",
                      static_cast<double>(analysis.solver.iterations));
    solve_span.AddArg("components",
                      static_cast<double>(analysis.decomposition.num_components));
  }

  // Evaluation. On the reduced decomposed path the solve leaves every
  // variable outside the knowledge-coupled buckets at the precomputed
  // prior, so only the touched q rows of the posterior (and their per-q
  // evaluation slices) can differ from the artifact's cached prior
  // evaluation — recompute exactly those and re-aggregate. RecomputeRow
  // and the aggregations replay the full rebuild's arithmetic, so both
  // paths agree bit for bit. The monolithic paths may move any
  // coordinate and evaluate from scratch.
  trace::TraceSpan evaluate_span("evaluate", "session");
  if (run_options.use_decomposition && !wants_monolithic) {
    analysis.posterior = artifact.prior_posterior();
    PerQEvaluation eval = artifact.prior_evaluation();
    const auto& bucket_var_begin = artifact.bucket_var_begin();
    const auto& q_offsets = artifact.q_var_offsets();
    const auto& q_vars = artifact.q_vars();
    std::vector<uint8_t> touched(artifact.table().num_qi_values(), 0);
    std::vector<uint32_t> touched_qs;
    for (const auto& comp : components.components()) {
      if (!comp.coupled) continue;
      for (const uint32_t bucket : comp.buckets) {
        for (uint32_t var = bucket_var_begin[bucket];
             var < bucket_var_begin[bucket + 1]; ++var) {
          const uint32_t q = index.TermOf(var).qi;
          if (!touched[q]) {
            touched[q] = 1;
            touched_qs.push_back(q);
          }
        }
      }
    }
    for (const uint32_t q : touched_qs) {
      analysis.posterior.RecomputeRow(q, q_vars.data() + q_offsets[q],
                                      q_offsets[q + 1] - q_offsets[q], index,
                                      analysis.solver.p);
      ReevaluateQ(artifact.ground_truth(), analysis.posterior, q, &eval);
    }
    analysis.estimation_accuracy =
        AccuracyFromPerQ(artifact.ground_truth(), eval);
    analysis.metrics = MetricsFromPerQ(analysis.posterior, eval);
  } else {
    analysis.posterior = PosteriorTable::FromSolution(artifact.table(), index,
                                                      analysis.solver.p);
    analysis.estimation_accuracy =
        EstimationAccuracy(artifact.ground_truth(), analysis.posterior);
    analysis.metrics = ComputePrivacyMetrics(analysis.posterior);
  }
  return analysis;
}

}  // namespace pme::core
