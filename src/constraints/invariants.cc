#include "constraints/invariants.h"

#include <algorithm>

namespace pme::constraints {

std::vector<LinearConstraint> GenerateInvariants(
    const anonymize::BucketizedTable& table, const TermIndex& index,
    const InvariantOptions& options) {
  std::vector<LinearConstraint> out;
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    const auto& qis = index.BucketQiList(b);
    const auto& sas = index.BucketSaList(b);
    const uint32_t h = static_cast<uint32_t>(sas.size());
    const auto [first, last] = index.BucketRange(b);
    (void)last;

    // QI-invariant (Eq. 4): for each q in the bucket, the row covers the
    // contiguous variable block [first + rank(q)*h, ... + h).
    for (uint32_t qi_rank = 0; qi_rank < qis.size(); ++qi_rank) {
      LinearConstraint c;
      c.source = ConstraintSource::kQiInvariant;
      c.rel = Relation::kEq;
      c.rhs = table.ProbQB(qis[qi_rank], b);
      c.label = "QI " + table.QiName(qis[qi_rank]) + " in b" +
                std::to_string(b + 1);
      c.vars.reserve(h);
      c.coefs.assign(h, 1.0);
      for (uint32_t sa_rank = 0; sa_rank < h; ++sa_rank) {
        c.vars.push_back(first + qi_rank * h + sa_rank);
      }
      out.push_back(std::move(c));
    }

    // SA-invariant (Eq. 5): for each s, the row strides across QI blocks.
    // Theorem 3: one row per bucket is redundant; dropping the first
    // SA-invariant leaves a minimal complete set.
    const uint32_t sa_start = options.drop_redundant_row ? 1 : 0;
    for (uint32_t sa_rank = sa_start; sa_rank < h; ++sa_rank) {
      LinearConstraint c;
      c.source = ConstraintSource::kSaInvariant;
      c.rel = Relation::kEq;
      c.rhs = table.ProbSB(sas[sa_rank], b);
      c.label = "SA " + table.SaName(sas[sa_rank]) + " in b" +
                std::to_string(b + 1);
      c.vars.reserve(qis.size());
      c.coefs.assign(qis.size(), 1.0);
      for (uint32_t qi_rank = 0; qi_rank < qis.size(); ++qi_rank) {
        c.vars.push_back(first + qi_rank * h + sa_rank);
      }
      out.push_back(std::move(c));
    }
  }
  return out;
}

linalg::DenseMatrix BucketInvariantMatrix(
    const anonymize::BucketizedTable& table, const TermIndex& index,
    uint32_t b) {
  const auto [first, last] = index.BucketRange(b);
  const size_t width = last - first;

  InvariantOptions keep_all;
  // Generate invariants for the whole table, then keep bucket b's rows.
  // (Cheap relative to test usage; avoids duplicating the emission logic.)
  auto all = GenerateInvariants(table, index, keep_all);

  linalg::DenseMatrix m(0, 0);
  for (const auto& c : all) {
    if (c.vars.empty() || c.vars.front() < first || c.vars.front() >= last) {
      continue;
    }
    std::vector<double> row(width, 0.0);
    for (size_t i = 0; i < c.vars.size(); ++i) {
      row[c.vars[i] - first] = c.coefs[i];
    }
    m.AppendRow(row);
  }
  return m;
}

double MaxInvariantViolation(const std::vector<LinearConstraint>& invariants,
                             const std::vector<double>& p) {
  double worst = 0.0;
  for (const auto& c : invariants) {
    worst = std::max(worst, c.Violation(p));
  }
  return worst;
}

bool InRowSpaceOfInvariants(const anonymize::BucketizedTable& table,
                            const TermIndex& index, uint32_t b,
                            const std::vector<double>& dense_expression) {
  linalg::DenseMatrix m = BucketInvariantMatrix(table, index, b);
  return m.RowSpaceContains(dense_expression);
}

size_t BucketInvariantRank(const anonymize::BucketizedTable& table,
                           const TermIndex& index, uint32_t b) {
  return BucketInvariantMatrix(table, index, b).Rank();
}

}  // namespace pme::constraints
