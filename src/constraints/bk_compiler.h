// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_BK_COMPILER_H_
#define PME_CONSTRAINTS_BK_COMPILER_H_

#include <vector>

#include "anonymize/bucketized_table.h"
#include "common/status.h"
#include "constraints/constraint.h"
#include "constraints/term_index.h"
#include "data/dataset.h"
#include "knowledge/knowledge_base.h"

namespace pme::constraints {

/// Result of compiling a knowledge base into ME constraints.
struct CompiledKnowledge {
  std::vector<LinearConstraint> constraints;
  /// Statements skipped because their Qv matches no QI instance in the
  /// published table (zero support — vacuous knowledge).
  size_t num_vacuous = 0;
};

/// Compiles distribution knowledge (Section 4.1) into ME constraints.
///
/// A statement P(S-set | Qv) = c expands, per the paper's derivation, to
///
///   Σ_{B} Σ_{Q−} Σ_{s ∈ S-set} P(Qv, Q−, s, B)  =  c · P(Qv),
///
/// where the sum over Q− ranges over every full-QI instance consistent
/// with Qv. In TermIndex space this is: for every QI instance q matching
/// Qv, every bucket containing q, and every s in the S-set, add the
/// materialized term P(q, s, B) with coefficient 1; terms that are
/// Zero-invariants are dropped (they are structurally zero). The RHS
/// constant c · P(Qv) uses the sample probability P(Qv) = Σ_matching P(q),
/// observable from the published table because QI values are in clear.
///
/// `qi_encoder` maps raw attribute subsets to QI instances; it may be null
/// when every statement is in abstract mode (worked examples).
///
/// Inequality statements (Section 4.5) compile to kLe/kGe rows unchanged.
/// Individual statements are NOT handled here — they need the expanded
/// pseudonym variable space of Section 6 (see core::IndividualModel).
///
/// Errors with kInfeasible when a statement asserts positive probability
/// over an empty term set (the published table flatly contradicts it).
Result<CompiledKnowledge> CompileKnowledge(
    const knowledge::KnowledgeBase& kb,
    const anonymize::BucketizedTable& table, const TermIndex& index,
    const data::TupleEncoder* qi_encoder = nullptr);

/// Resolves the QI instances matching a dataset-mode statement's Qv.
/// Exposed for tests and diagnostics.
Result<std::vector<uint32_t>> MatchQiInstances(
    const knowledge::ConditionalStatement& stmt,
    const data::TupleEncoder& qi_encoder);

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_BK_COMPILER_H_
