// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_ASSIGNMENT_H_
#define PME_CONSTRAINTS_ASSIGNMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "common/prng.h"
#include "constraints/term_index.h"

namespace pme::constraints {

/// An assignment Λ (Definitions 5.2/5.3): for every bucket, a bijection
/// between the bucket's QI occurrences and SA occurrences — one of the
/// "possible worlds" consistent with the published table. The original
/// data is one particular assignment.
///
/// Assignments exist to *test* the invariant theory: an expression is an
/// invariant iff its value is identical across all assignments, so the
/// property tests evaluate candidate expressions under many random
/// assignments.
class Assignment {
 public:
  /// The ground-truth assignment recorded in the table.
  static Assignment FromRecords(const anonymize::BucketizedTable& table);

  /// A uniformly random assignment: each bucket's SA multiset is shuffled
  /// against its QI occurrence list.
  static Assignment Random(const anonymize::BucketizedTable& table,
                           Prng& prng);

  /// The (qi, sa) pairs of bucket b, one per record.
  const std::vector<std::pair<uint32_t, uint32_t>>& BucketPairs(
      uint32_t b) const {
    return pairs_[b];
  }

  /// Swaps the SA values of two pairs within bucket b — the elementary
  /// move between assignments used in the completeness proof (Step 2).
  void SwapSa(uint32_t b, size_t i, size_t j);

  /// Term probabilities under this assignment: p[var] = (#pairs matching
  /// the term) / N, over the TermIndex numbering. Terms not realized by
  /// the assignment get 0.
  std::vector<double> TermProbabilities(const TermIndex& index) const;

  /// Total number of records.
  size_t num_records() const { return num_records_; }

 private:
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> pairs_;
  size_t num_records_ = 0;
};

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_ASSIGNMENT_H_
