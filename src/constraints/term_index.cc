#include "constraints/term_index.h"

#include <algorithm>

namespace pme::constraints {

TermIndex TermIndex::Build(const anonymize::BucketizedTable& table) {
  TermIndex index;
  const size_t m = table.num_buckets();
  index.bucket_qi_.resize(m);
  index.bucket_sa_.resize(m);
  index.bucket_offsets_.assign(m + 1, 0);

  for (uint32_t b = 0; b < m; ++b) {
    for (const auto& [q, cnt] : table.BucketQiCounts(b)) {
      index.bucket_qi_[b].push_back(q);
    }
    for (const auto& [s, cnt] : table.BucketSaCounts(b)) {
      index.bucket_sa_[b].push_back(s);
    }
    // std::map iteration is already sorted; keep the contract explicit.
    std::sort(index.bucket_qi_[b].begin(), index.bucket_qi_[b].end());
    std::sort(index.bucket_sa_[b].begin(), index.bucket_sa_[b].end());

    index.bucket_offsets_[b] = static_cast<uint32_t>(index.terms_.size());
    for (uint32_t q : index.bucket_qi_[b]) {
      for (uint32_t s : index.bucket_sa_[b]) {
        index.terms_.push_back(Term{q, s, b});
      }
    }
  }
  index.bucket_offsets_[m] = static_cast<uint32_t>(index.terms_.size());
  return index;
}

Result<uint32_t> TermIndex::VariableId(uint32_t q, uint32_t s,
                                       uint32_t b) const {
  if (b >= bucket_qi_.size()) {
    return Status::InvalidArgument("bucket index out of range");
  }
  const auto& qis = bucket_qi_[b];
  const auto& sas = bucket_sa_[b];
  auto qit = std::lower_bound(qis.begin(), qis.end(), q);
  if (qit == qis.end() || *qit != q) {
    return Status::NotFound("P(q,s,b) is a Zero-invariant: q not in bucket");
  }
  auto sit = std::lower_bound(sas.begin(), sas.end(), s);
  if (sit == sas.end() || *sit != s) {
    return Status::NotFound("P(q,s,b) is a Zero-invariant: s not in bucket");
  }
  const size_t qi_rank = static_cast<size_t>(qit - qis.begin());
  const size_t sa_rank = static_cast<size_t>(sit - sas.begin());
  return bucket_offsets_[b] +
         static_cast<uint32_t>(qi_rank * sas.size() + sa_rank);
}

bool TermIndex::IsZeroInvariant(uint32_t q, uint32_t s, uint32_t b) const {
  return !VariableId(q, s, b).ok();
}

std::string TermIndex::TermName(
    uint32_t var, const anonymize::BucketizedTable& table) const {
  const Term& t = terms_[var];
  return "P(" + table.QiName(t.qi) + "," + table.SaName(t.sa) + ",b" +
         std::to_string(t.bucket + 1) + ")";
}

}  // namespace pme::constraints
