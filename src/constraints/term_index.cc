#include "constraints/term_index.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace pme::constraints {

TermIndex TermIndex::Build(const anonymize::BucketizedTable& table,
                           size_t threads) {
  TermIndex index;
  const size_t m = table.num_buckets();
  index.bucket_qi_.resize(m);
  index.bucket_sa_.resize(m);
  index.bucket_offsets_.assign(m + 1, 0);

  // Phase 1 (parallel): per-bucket distinct instance lists. Each bucket
  // writes only its own slots; bucket_offsets_[b + 1] temporarily holds
  // the bucket's term count.
  // The shard tasks below touch only std containers and never throw in
  // practice; the ParallelFor statuses exist for callers whose tasks can
  // fail (the decomposed solver) and are vacuous here.
  const size_t workers = ThreadPool::ResolveThreads(threads);
  (void)ThreadPool::ParallelFor(workers, m, [&](size_t b) {
    auto& qis = index.bucket_qi_[b];
    auto& sas = index.bucket_sa_[b];
    for (const auto& [q, cnt] : table.BucketQiCounts(b)) qis.push_back(q);
    for (const auto& [s, cnt] : table.BucketSaCounts(b)) sas.push_back(s);
    // std::map iteration is already sorted; keep the contract explicit.
    std::sort(qis.begin(), qis.end());
    std::sort(sas.begin(), sas.end());
    index.bucket_offsets_[b + 1] =
        static_cast<uint32_t>(qis.size() * sas.size());
  });

  // Phase 2 (serial): counts -> offsets by prefix sum.
  for (size_t b = 0; b < m; ++b) {
    index.bucket_offsets_[b + 1] += index.bucket_offsets_[b];
  }

  // Phase 3 (parallel): materialize terms into disjoint slices.
  index.terms_.resize(index.bucket_offsets_[m]);
  (void)ThreadPool::ParallelFor(workers, m, [&](size_t b) {
    size_t k = index.bucket_offsets_[b];
    for (uint32_t q : index.bucket_qi_[b]) {
      for (uint32_t s : index.bucket_sa_[b]) {
        index.terms_[k++] = Term{q, s, static_cast<uint32_t>(b)};
      }
    }
  });
  return index;
}

Result<uint32_t> TermIndex::VariableId(uint32_t q, uint32_t s,
                                       uint32_t b) const {
  if (b >= bucket_qi_.size()) {
    return Status::InvalidArgument("bucket index out of range");
  }
  const auto& qis = bucket_qi_[b];
  const auto& sas = bucket_sa_[b];
  auto qit = std::lower_bound(qis.begin(), qis.end(), q);
  if (qit == qis.end() || *qit != q) {
    return Status::NotFound("P(q,s,b) is a Zero-invariant: q not in bucket");
  }
  auto sit = std::lower_bound(sas.begin(), sas.end(), s);
  if (sit == sas.end() || *sit != s) {
    return Status::NotFound("P(q,s,b) is a Zero-invariant: s not in bucket");
  }
  const size_t qi_rank = static_cast<size_t>(qit - qis.begin());
  const size_t sa_rank = static_cast<size_t>(sit - sas.begin());
  return bucket_offsets_[b] +
         static_cast<uint32_t>(qi_rank * sas.size() + sa_rank);
}

bool TermIndex::IsZeroInvariant(uint32_t q, uint32_t s, uint32_t b) const {
  return !VariableId(q, s, b).ok();
}

std::string TermIndex::TermName(
    uint32_t var, const anonymize::BucketizedTable& table) const {
  const Term& t = terms_[var];
  return "P(" + table.QiName(t.qi) + "," + table.SaName(t.sa) + ",b" +
         std::to_string(t.bucket + 1) + ")";
}

}  // namespace pme::constraints
