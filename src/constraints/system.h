// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_SYSTEM_H_
#define PME_CONSTRAINTS_SYSTEM_H_

#include <cstddef>
#include <vector>

#include "constraints/constraint.h"
#include "constraints/term_index.h"
#include "linalg/sparse_matrix.h"

namespace pme::constraints {

/// The assembled collection of ME constraints over one TermIndex variable
/// space: data invariants plus compiled background knowledge. This is the
/// direct input to the MaxEnt solver.
class ConstraintSystem {
 public:
  /// `num_variables` fixes the variable-space width.
  explicit ConstraintSystem(size_t num_variables)
      : num_variables_(num_variables) {}

  void Add(LinearConstraint constraint) {
    constraints_.push_back(std::move(constraint));
  }
  void AddAll(std::vector<LinearConstraint> constraints);

  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }
  size_t num_variables() const { return num_variables_; }
  size_t size() const { return constraints_.size(); }

  /// Count of constraints from a given source.
  size_t CountBySource(ConstraintSource source) const;

  /// Matrix form: equality rows `eq · p = eq_rhs` and inequality rows
  /// `ineq · p <= ineq_rhs` (kGe rows are negated into kLe form).
  struct Matrices {
    linalg::SparseMatrix eq;
    std::vector<double> eq_rhs;
    linalg::SparseMatrix ineq;
    std::vector<double> ineq_rhs;
  };
  Result<Matrices> ToMatrices() const;

  /// Worst violation of any constraint at `p` (the empirical counterpart
  /// of the solver's convergence measure).
  double MaxViolation(const std::vector<double>& p) const;

  /// Definition 5.6: bucket b is *irrelevant* to the background knowledge
  /// iff no background/individual constraint touches any of b's variables.
  /// Returns a bitmap over buckets (true = relevant).
  std::vector<bool> RelevantBuckets(const TermIndex& index) const;

 private:
  size_t num_variables_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_SYSTEM_H_
