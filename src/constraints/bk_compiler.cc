#include "constraints/bk_compiler.h"

#include <algorithm>
#include <set>

namespace pme::constraints {
namespace {

constexpr double kZeroTol = 1e-12;

}  // namespace

Result<std::vector<uint32_t>> MatchQiInstances(
    const knowledge::ConditionalStatement& stmt,
    const data::TupleEncoder& qi_encoder) {
  if (stmt.attrs.size() != stmt.values.size()) {
    return Status::InvalidArgument(
        "statement attrs/values arity mismatch");
  }
  // Position of each statement attribute inside the encoder's tuple.
  const auto& enc_attrs = qi_encoder.attrs();
  std::vector<size_t> positions(stmt.attrs.size());
  for (size_t i = 0; i < stmt.attrs.size(); ++i) {
    auto it = std::find(enc_attrs.begin(), enc_attrs.end(), stmt.attrs[i]);
    if (it == enc_attrs.end()) {
      return Status::InvalidArgument(
          "statement references attribute " + std::to_string(stmt.attrs[i]) +
          " which is not a quasi-identifier");
    }
    positions[i] = static_cast<size_t>(it - enc_attrs.begin());
  }
  std::vector<uint32_t> matches;
  for (uint32_t q = 0; q < qi_encoder.size(); ++q) {
    const auto& tuple = qi_encoder.Decode(q);
    bool match = true;
    for (size_t i = 0; i < positions.size(); ++i) {
      if (tuple[positions[i]] != stmt.values[i]) {
        match = false;
        break;
      }
    }
    if (match) matches.push_back(q);
  }
  return matches;
}

Result<CompiledKnowledge> CompileKnowledge(
    const knowledge::KnowledgeBase& kb,
    const anonymize::BucketizedTable& table, const TermIndex& index,
    const data::TupleEncoder* qi_encoder) {
  CompiledKnowledge out;
  size_t stmt_no = 0;
  for (const auto& stmt : kb.conditionals()) {
    ++stmt_no;
    if (stmt.probability < 0.0 || stmt.probability > 1.0 + kZeroTol) {
      return Status::InvalidArgument(
          "statement " + std::to_string(stmt_no) +
          ": probability outside [0, 1]");
    }
    // Resolve Qv to abstract QI instances.
    std::vector<uint32_t> qi_ids;
    if (stmt.abstract_qi.has_value()) {
      if (*stmt.abstract_qi >= table.num_qi_values()) {
        return Status::InvalidArgument(
            "statement " + std::to_string(stmt_no) +
            ": abstract QI instance out of range");
      }
      qi_ids.push_back(*stmt.abstract_qi);
    } else {
      if (qi_encoder == nullptr) {
        return Status::InvalidArgument(
            "statement " + std::to_string(stmt_no) +
            " is in dataset mode but no QI encoder was provided");
      }
      PME_ASSIGN_OR_RETURN(qi_ids, MatchQiInstances(stmt, *qi_encoder));
    }

    // P(Qv) from the published table.
    double prob_qv = 0.0;
    for (uint32_t q : qi_ids) prob_qv += table.ProbQ(q);
    if (prob_qv <= kZeroTol) {
      ++out.num_vacuous;  // zero support: statement constrains nothing
      continue;
    }

    // Dedupe the S-set (a repeated code must not double its coefficient).
    std::set<uint32_t> sa_set(stmt.sa_codes.begin(), stmt.sa_codes.end());

    LinearConstraint c;
    c.source = ConstraintSource::kBackground;
    c.rel = stmt.rel;
    c.rhs = stmt.probability * prob_qv;
    c.label = stmt.label.empty()
                  ? "bk#" + std::to_string(stmt_no)
                  : stmt.label;
    for (uint32_t q : qi_ids) {
      for (uint32_t b : table.BucketsWithQi(q)) {
        for (uint32_t s : sa_set) {
          auto var = index.VariableId(q, s, b);
          if (!var.ok()) continue;  // Zero-invariant: structurally zero
          c.vars.push_back(var.value());
          c.coefs.push_back(1.0);
        }
      }
    }
    if (c.vars.empty()) {
      // All terms are structurally zero, so the LHS is identically 0.
      if (c.rel != Relation::kLe && c.rhs > kZeroTol) {
        return Status::Infeasible(
            "statement '" + c.label +
            "' asserts positive probability over term combinations that "
            "never co-occur in any bucket");
      }
      continue;  // 0 = 0 (or 0 <= rhs): trivially satisfied
    }
    out.constraints.push_back(std::move(c));
  }
  return out;
}

}  // namespace pme::constraints
