#include "constraints/assignment.h"

#include <algorithm>

namespace pme::constraints {

Assignment Assignment::FromRecords(const anonymize::BucketizedTable& table) {
  Assignment a;
  a.pairs_.resize(table.num_buckets());
  for (const auto& r : table.records()) {
    a.pairs_[r.bucket].emplace_back(r.qi, r.sa);
    ++a.num_records_;
  }
  return a;
}

Assignment Assignment::Random(const anonymize::BucketizedTable& table,
                              Prng& prng) {
  Assignment a;
  a.pairs_.resize(table.num_buckets());
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    const auto& qis = table.BucketQis(b);
    std::vector<uint32_t> sas = table.BucketSas(b);
    prng.Shuffle(sas);
    auto& pairs = a.pairs_[b];
    pairs.reserve(qis.size());
    for (size_t i = 0; i < qis.size(); ++i) {
      pairs.emplace_back(qis[i], sas[i]);
    }
    a.num_records_ += qis.size();
  }
  return a;
}

void Assignment::SwapSa(uint32_t b, size_t i, size_t j) {
  std::swap(pairs_[b][i].second, pairs_[b][j].second);
}

std::vector<double> Assignment::TermProbabilities(
    const TermIndex& index) const {
  std::vector<double> p(index.num_variables(), 0.0);
  const double n = static_cast<double>(num_records_);
  for (uint32_t b = 0; b < pairs_.size(); ++b) {
    for (const auto& [q, s] : pairs_[b]) {
      auto var = index.VariableId(q, s, b);
      // Every pair of a valid assignment must be a materialized term.
      if (var.ok()) p[var.value()] += 1.0 / n;
    }
  }
  return p;
}

}  // namespace pme::constraints
