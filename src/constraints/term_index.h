// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_TERM_INDEX_H_
#define PME_CONSTRAINTS_TERM_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "common/status.h"

namespace pme::constraints {

/// A probability term P(q, s, b) (Definition 5.1).
struct Term {
  uint32_t qi = 0;
  uint32_t sa = 0;
  uint32_t bucket = 0;

  bool operator==(const Term& other) const {
    return qi == other.qi && sa == other.sa && bucket == other.bucket;
  }
};

/// Dense numbering of the *materialized* probability terms of a bucketized
/// table: P(q, s, b) for q ∈ QI(b) and s ∈ SA(b).
///
/// Terms where q or s does not occur in bucket b are exactly the paper's
/// Zero-invariants (Eq. 6); they are never materialized, so the
/// Zero-invariant equations hold structurally and the optimization never
/// spends a variable (or a constraint) on them. This mirrors how the
/// original evaluation could scale to 2,842 buckets: the joint space
/// |QI|x|SA|x|B| is astronomically larger than the materialized space
/// (~g·h per bucket, with g, h ≤ bucket size).
///
/// Variables are ordered bucket-major: all terms of bucket 0 first, then
/// bucket 1, ... Within a bucket the order is (qi-rank, sa-rank) over the
/// sorted distinct instance lists, so the id of (q, s, b) is computable as
/// offset(b) + rank_b(q)·h_b + rank_b(s).
class TermIndex {
 public:
  /// Builds the index for `table` (which must outlive the index).
  ///
  /// With `threads > 1` (or 0 = hardware concurrency) construction is
  /// sharded across common::ThreadPool: the per-bucket distinct lists
  /// are built in parallel, bucket offsets follow by prefix sum, and the
  /// term array is filled in parallel into disjoint slices. The result
  /// is byte-identical to the serial build for any thread count.
  static TermIndex Build(const anonymize::BucketizedTable& table,
                         size_t threads = 1);

  /// Number of materialized variables.
  size_t num_variables() const { return terms_.size(); }

  /// The term behind a variable id.
  const Term& TermOf(uint32_t var) const { return terms_[var]; }

  /// The variable id of P(q, s, b); kNotFound when the term is a
  /// Zero-invariant (not materialized).
  Result<uint32_t> VariableId(uint32_t q, uint32_t s, uint32_t b) const;

  /// True iff P(q, s, b) is a Zero-invariant (q or s absent from b).
  bool IsZeroInvariant(uint32_t q, uint32_t s, uint32_t b) const;

  /// Variable-id range [first, last) of bucket b.
  std::pair<uint32_t, uint32_t> BucketRange(uint32_t b) const {
    return {bucket_offsets_[b], bucket_offsets_[b + 1]};
  }

  /// Sorted distinct QI instances of bucket b.
  const std::vector<uint32_t>& BucketQiList(uint32_t b) const {
    return bucket_qi_[b];
  }
  /// Sorted distinct SA instances of bucket b.
  const std::vector<uint32_t>& BucketSaList(uint32_t b) const {
    return bucket_sa_[b];
  }

  /// Number of buckets indexed.
  size_t num_buckets() const { return bucket_qi_.size(); }

  /// Human-readable "P(q1,s2,b1)" label for diagnostics.
  std::string TermName(uint32_t var,
                       const anonymize::BucketizedTable& table) const;

 private:
  std::vector<Term> terms_;
  std::vector<uint32_t> bucket_offsets_;       // size m+1
  std::vector<std::vector<uint32_t>> bucket_qi_;  // sorted distinct per bucket
  std::vector<std::vector<uint32_t>> bucket_sa_;
};

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_TERM_INDEX_H_
