#include "constraints/system.h"

#include <algorithm>

namespace pme::constraints {

void ConstraintSystem::AddAll(std::vector<LinearConstraint> constraints) {
  for (auto& c : constraints) constraints_.push_back(std::move(c));
}

size_t ConstraintSystem::CountBySource(ConstraintSource source) const {
  size_t count = 0;
  for (const auto& c : constraints_) {
    if (c.source == source) ++count;
  }
  return count;
}

Result<ConstraintSystem::Matrices> ConstraintSystem::ToMatrices() const {
  linalg::SparseMatrixBuilder eq_builder(num_variables_);
  linalg::SparseMatrixBuilder ineq_builder(num_variables_);
  Matrices m;
  for (const auto& c : constraints_) {
    switch (c.rel) {
      case Relation::kEq: {
        PME_RETURN_IF_ERROR(eq_builder.AddRow(c.vars, c.coefs));
        m.eq_rhs.push_back(c.rhs);
        break;
      }
      case Relation::kLe: {
        PME_RETURN_IF_ERROR(ineq_builder.AddRow(c.vars, c.coefs));
        m.ineq_rhs.push_back(c.rhs);
        break;
      }
      case Relation::kGe: {
        // a·p >= r  <=>  (-a)·p <= -r
        std::vector<double> negated(c.coefs.size());
        for (size_t i = 0; i < c.coefs.size(); ++i) negated[i] = -c.coefs[i];
        PME_RETURN_IF_ERROR(ineq_builder.AddRow(c.vars, negated));
        m.ineq_rhs.push_back(-c.rhs);
        break;
      }
    }
  }
  PME_ASSIGN_OR_RETURN(m.eq, eq_builder.Build());
  PME_ASSIGN_OR_RETURN(m.ineq, ineq_builder.Build());
  return m;
}

double ConstraintSystem::MaxViolation(const std::vector<double>& p) const {
  double worst = 0.0;
  for (const auto& c : constraints_) {
    worst = std::max(worst, c.Violation(p));
  }
  return worst;
}

std::vector<bool> ConstraintSystem::RelevantBuckets(
    const TermIndex& index) const {
  std::vector<bool> relevant(index.num_buckets(), false);
  for (const auto& c : constraints_) {
    if (c.source != ConstraintSource::kBackground &&
        c.source != ConstraintSource::kIndividual) {
      continue;
    }
    for (size_t i = 0; i < c.vars.size(); ++i) {
      if (c.coefs[i] == 0.0) continue;
      relevant[index.TermOf(c.vars[i]).bucket] = true;
    }
  }
  return relevant;
}

}  // namespace pme::constraints
