#include "constraints/component_analysis.h"

#include <numeric>

namespace pme::constraints {
namespace {

/// Minimal union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

ComponentAnalysis ComponentAnalysis::Build(const TermIndex& index,
                                           const ConstraintSystem& system) {
  const size_t num_buckets = index.num_buckets();
  UnionFind uf(num_buckets);
  std::vector<bool> touched(num_buckets, false);  // by knowledge rows

  for (const auto& c : system.constraints()) {
    // Anything beyond the structural invariants (knowledge rows, but also
    // ad-hoc kOther rows) invalidates the closed form for its component.
    const bool is_knowledge = c.source != ConstraintSource::kQiInvariant &&
                              c.source != ConstraintSource::kSaInvariant;
    int64_t first_bucket = -1;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      if (c.coefs[i] == 0.0) continue;
      const uint32_t b = index.TermOf(c.vars[i]).bucket;
      if (is_knowledge) touched[b] = true;
      if (first_bucket < 0) {
        first_bucket = b;
      } else {
        uf.Union(static_cast<uint32_t>(first_bucket), b);
      }
    }
  }

  ComponentAnalysis out;
  out.bucket_component_.assign(num_buckets, 0);
  // Components numbered by first appearance in bucket order: deterministic.
  std::vector<int64_t> root_to_id(num_buckets, -1);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    const uint32_t root = uf.Find(b);
    if (root_to_id[root] < 0) {
      root_to_id[root] = static_cast<int64_t>(out.components_.size());
      out.components_.emplace_back();
    }
    const auto id = static_cast<uint32_t>(root_to_id[root]);
    out.bucket_component_[b] = id;
    Component& comp = out.components_[id];
    comp.buckets.push_back(b);
    const auto [first, last] = index.BucketRange(b);
    comp.num_variables += last - first;
    comp.coupled = comp.coupled || touched[b];
  }
  for (const Component& comp : out.components_) {
    if (comp.coupled) ++out.num_coupled_;
  }
  return out;
}

}  // namespace pme::constraints
