#include "constraints/component_analysis.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace pme::constraints {
namespace {

/// Minimal union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

ComponentAnalysis ComponentAnalysis::Build(const TermIndex& index,
                                           const ConstraintSystem& system) {
  const size_t num_buckets = index.num_buckets();
  UnionFind uf(num_buckets);
  std::vector<bool> touched(num_buckets, false);  // by knowledge rows

  for (const auto& c : system.constraints()) {
    // Anything beyond the structural invariants (knowledge rows, but also
    // ad-hoc kOther rows) invalidates the closed form for its component.
    const bool is_knowledge = c.source != ConstraintSource::kQiInvariant &&
                              c.source != ConstraintSource::kSaInvariant;
    int64_t first_bucket = -1;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      if (c.coefs[i] == 0.0) continue;
      const uint32_t b = index.TermOf(c.vars[i]).bucket;
      if (is_knowledge) touched[b] = true;
      if (first_bucket < 0) {
        first_bucket = b;
      } else {
        uf.Union(static_cast<uint32_t>(first_bucket), b);
      }
    }
  }

  ComponentAnalysis out;
  out.bucket_component_.assign(num_buckets, 0);
  // Components numbered by first appearance in bucket order: deterministic.
  std::vector<int64_t> root_to_id(num_buckets, -1);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    const uint32_t root = uf.Find(b);
    if (root_to_id[root] < 0) {
      root_to_id[root] = static_cast<int64_t>(out.components_.size());
      out.components_.emplace_back();
    }
    const auto id = static_cast<uint32_t>(root_to_id[root]);
    out.bucket_component_[b] = id;
    Component& comp = out.components_[id];
    comp.buckets.push_back(b);
    const auto [first, last] = index.BucketRange(b);
    comp.num_variables += last - first;
    comp.coupled = comp.coupled || touched[b];
  }
  for (const Component& comp : out.components_) {
    if (comp.coupled) ++out.num_coupled_;
  }
  return out;
}

ComponentAnalysis ComponentAnalysis::Extend(
    const ComponentAnalysis& base, const TermIndex& index,
    const std::vector<LinearConstraint>& extra) {
  const size_t num_buckets = index.num_buckets();
  const size_t num_base = base.num_components();
  // Union-find over *base components*: the base already merged every
  // bucket inside a component, so only component-level merges remain.
  UnionFind uf(num_base);
  std::vector<bool> touched(num_base, false);
  for (size_t k = 0; k < num_base; ++k) {
    touched[k] = base.components()[k].coupled;
  }
  for (const auto& c : extra) {
    const bool is_knowledge = c.source != ConstraintSource::kQiInvariant &&
                              c.source != ConstraintSource::kSaInvariant;
    int64_t first_comp = -1;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      if (c.coefs[i] == 0.0) continue;
      const uint32_t k = base.ComponentOf(index.TermOf(c.vars[i]).bucket);
      if (is_knowledge) touched[k] = true;
      if (first_comp < 0) {
        first_comp = k;
      } else {
        uf.Union(static_cast<uint32_t>(first_comp), k);
      }
    }
  }

  ComponentAnalysis out;
  out.bucket_component_.assign(num_buckets, 0);
  // Renumber by first appearance in bucket order — identical to Build's
  // numbering because a merged component's smallest bucket decides both.
  std::vector<int64_t> root_to_id(num_base, -1);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    const uint32_t base_comp = base.ComponentOf(b);
    const uint32_t root = uf.Find(base_comp);
    if (root_to_id[root] < 0) {
      root_to_id[root] = static_cast<int64_t>(out.components_.size());
      out.components_.emplace_back();
    }
    const auto id = static_cast<uint32_t>(root_to_id[root]);
    out.bucket_component_[b] = id;
    Component& comp = out.components_[id];
    comp.buckets.push_back(b);
    const auto [first, last] = index.BucketRange(b);
    comp.num_variables += last - first;
    comp.coupled = comp.coupled || touched[base_comp];
  }
  for (const Component& comp : out.components_) {
    if (comp.coupled) ++out.num_coupled_;
  }
  return out;
}

Hash128 ConstraintRowSignature(const LinearConstraint& constraint) {
  // Canonical support: zero coefficients dropped, duplicates summed,
  // sorted by variable id — the row's content independent of the order
  // its terms were emitted in.
  std::vector<std::pair<uint32_t, double>> support;
  support.reserve(constraint.vars.size());
  for (size_t i = 0; i < constraint.vars.size(); ++i) {
    if (constraint.coefs[i] == 0.0) continue;
    support.emplace_back(constraint.vars[i], constraint.coefs[i]);
  }
  std::sort(support.begin(), support.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t w = 0;
  for (size_t i = 0; i < support.size(); ++i) {
    if (w > 0 && support[w - 1].first == support[i].first) {
      support[w - 1].second += support[i].second;
    } else {
      support[w++] = support[i];
    }
  }
  support.resize(w);

  Hasher128 h;
  h.Update(std::string_view("pme.row.v1"));
  h.Update(static_cast<int>(constraint.rel));
  h.Update(constraint.rhs);
  h.Update(static_cast<uint64_t>(support.size()));
  for (const auto& [var, coef] : support) {
    h.Update(var);
    h.Update(coef);
  }
  return h.Finish();
}

ComponentSignatures ComputeComponentSignatures(
    const TermIndex& index, const ConstraintSystem& system,
    const ComponentAnalysis& analysis) {
  // Dense coupled-block numbering, mirroring SolveDecomposed.
  std::vector<int64_t> block_of_component(analysis.num_components(), -1);
  size_t num_blocks = 0;
  for (size_t k = 0; k < analysis.num_components(); ++k) {
    if (analysis.components()[k].coupled) {
      block_of_component[k] = static_cast<int64_t>(num_blocks++);
    }
  }

  ComponentSignatures out;
  out.rows_hash.resize(num_blocks);
  out.vars_hash.resize(num_blocks);

  // Variable-structure digest per block: index-shape guard + the
  // component's buckets with their materialized variable counts.
  for (size_t k = 0; k < analysis.num_components(); ++k) {
    const int64_t block = block_of_component[k];
    if (block < 0) continue;
    const auto& comp = analysis.components()[k];
    Hasher128 h;
    h.Update(std::string_view("pme.vars.v1"));
    h.Update(static_cast<uint64_t>(index.num_variables()));
    h.Update(static_cast<uint64_t>(index.num_buckets()));
    h.Update(static_cast<uint64_t>(comp.buckets.size()));
    for (uint32_t b : comp.buckets) {
      const auto [first, last] = index.BucketRange(b);
      h.Update(b);
      h.Update(static_cast<uint64_t>(last - first));
    }
    out.vars_hash[static_cast<size_t>(block)] = h.Finish();
  }

  // Route every constraint row to its block (same rule as the solver:
  // the first supported variable decides) and collect row signatures.
  std::vector<std::vector<Hash128>> row_sigs(num_blocks);
  for (const auto& c : system.constraints()) {
    int64_t block = -1;
    for (size_t i = 0; i < c.vars.size(); ++i) {
      if (c.coefs[i] == 0.0) continue;
      block = block_of_component[analysis.ComponentOf(
          index.TermOf(c.vars[i]).bucket)];
      break;
    }
    if (block < 0) continue;  // empty support or uncoupled component
    row_sigs[static_cast<size_t>(block)].push_back(ConstraintRowSignature(c));
  }

  // Exact digest: the structure digest plus the sorted multiset of row
  // signatures (sorted so the digest is independent of row order, which
  // the solution is too).
  for (size_t blk = 0; blk < num_blocks; ++blk) {
    std::sort(row_sigs[blk].begin(), row_sigs[blk].end());
    Hasher128 h;
    h.Update(std::string_view("pme.rows.v1"));
    h.Update(out.vars_hash[blk]);
    h.Update(static_cast<uint64_t>(row_sigs[blk].size()));
    for (const Hash128& sig : row_sigs[blk]) h.Update(sig);
    out.rows_hash[blk] = h.Finish();
  }
  return out;
}

}  // namespace pme::constraints
