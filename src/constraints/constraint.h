// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_CONSTRAINT_H_
#define PME_CONSTRAINTS_CONSTRAINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "knowledge/knowledge_base.h"

namespace pme::constraints {

using knowledge::Relation;

/// Where a constraint came from — drives the irrelevant-bucket analysis
/// (only kBackground/kIndividual rows couple buckets) and diagnostics.
enum class ConstraintSource : int {
  kQiInvariant = 0,   ///< Eq. (4): Σ_s P(q, s, b) = P(q, b)
  kSaInvariant = 1,   ///< Eq. (5): Σ_q P(q, s, b) = P(s, b)
  kBackground = 2,    ///< Section 4: knowledge about the data distribution
  kIndividual = 3,    ///< Section 6: knowledge about individuals
  kOther = 4,
};

const char* ConstraintSourceToString(ConstraintSource source);

/// One ME constraint: a linear probability expression (Definition 5.1)
/// related to a constant. Variables refer to a TermIndex numbering.
struct LinearConstraint {
  std::vector<uint32_t> vars;
  std::vector<double> coefs;
  Relation rel = Relation::kEq;
  double rhs = 0.0;
  ConstraintSource source = ConstraintSource::kOther;
  std::string label;

  /// Evaluates the left-hand side under a full variable assignment.
  double Evaluate(const std::vector<double>& p) const {
    double acc = 0.0;
    for (size_t i = 0; i < vars.size(); ++i) acc += coefs[i] * p[vars[i]];
    return acc;
  }

  /// Signed violation: 0 when satisfied (within `tol`); for kEq the
  /// absolute residual, for inequalities the amount by which the bound is
  /// exceeded.
  double Violation(const std::vector<double>& p) const;
};

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_CONSTRAINT_H_
