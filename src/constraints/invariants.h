// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_INVARIANTS_H_
#define PME_CONSTRAINTS_INVARIANTS_H_

#include <vector>

#include "anonymize/bucketized_table.h"
#include "constraints/constraint.h"
#include "constraints/term_index.h"
#include "linalg/dense_matrix.h"

namespace pme::constraints {

/// Options for invariant generation.
struct InvariantOptions {
  /// Theorem 3 (Conciseness): each bucket's g+h base invariants contain
  /// exactly one redundant row. When true, the first SA-invariant of every
  /// bucket is dropped, leaving a minimal (linearly independent) set.
  /// Redundancy is harmless for correctness (default keeps everything,
  /// like the paper's implementation), but dropping shrinks the dual.
  bool drop_redundant_row = false;
};

/// Generates the complete set of data constraints of Section 5 for every
/// bucket: QI-invariant equations (Eq. 4) and SA-invariant equations
/// (Eq. 5). Zero-invariant equations (Eq. 6) are structural — the
/// TermIndex never materializes those terms — so none are emitted.
std::vector<LinearConstraint> GenerateInvariants(
    const anonymize::BucketizedTable& table, const TermIndex& index,
    const InvariantOptions& options = {});

/// The invariant ("constraint") matrix of one bucket, as in Figure 3 of
/// the paper: one row per QI-/SA-invariant of bucket `b`, one column per
/// materialized term of the bucket. Used by the completeness/conciseness
/// verification utilities and tests.
linalg::DenseMatrix BucketInvariantMatrix(
    const anonymize::BucketizedTable& table, const TermIndex& index,
    uint32_t b);

/// Verifies Theorem 1 (Soundness) empirically for bucket `b`: every
/// generated invariant must evaluate to its RHS under the provided
/// assignment-derived term probabilities. Returns the worst violation.
double MaxInvariantViolation(const std::vector<LinearConstraint>& invariants,
                             const std::vector<double>& p);

/// Verifies Theorem 2 (Completeness) for a probability expression limited
/// to bucket `b`: true iff the expression (as a dense coefficient vector
/// over the bucket's terms) lies in the row space of the bucket's
/// invariant matrix.
bool InRowSpaceOfInvariants(const anonymize::BucketizedTable& table,
                            const TermIndex& index, uint32_t b,
                            const std::vector<double>& dense_expression);

/// Verifies Theorem 3 (Conciseness) for bucket `b`: returns the rank of
/// the bucket's invariant matrix, which must equal g + h − 1.
size_t BucketInvariantRank(const anonymize::BucketizedTable& table,
                           const TermIndex& index, uint32_t b);

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_INVARIANTS_H_
