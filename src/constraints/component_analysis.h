// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_CONSTRAINTS_COMPONENT_ANALYSIS_H_
#define PME_CONSTRAINTS_COMPONENT_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "constraints/system.h"
#include "constraints/term_index.h"

namespace pme::constraints {

/// Connected-component analysis of the bucket coupling graph.
///
/// Buckets are nodes; every constraint whose support spans multiple
/// buckets joins them into one component (union-find). Invariants
/// (Eqs. 4-5) touch exactly one bucket, so only background/individual
/// knowledge rows ever merge buckets — but the analysis unions over *all*
/// constraint support, so it stays correct if some future constraint
/// source couples buckets too.
///
/// This refines Definition 5.6: the paper splits buckets into relevant
/// vs irrelevant to the knowledge; here the relevant set decomposes
/// further into independent blocks. The full MaxEnt problem is
/// block-diagonal across components (disjoint variables, separable
/// entropy), so each coupled component can be solved as its own — much
/// smaller — dual problem, and knowledge-free components keep the
/// Theorem-5 closed form.
class ComponentAnalysis {
 public:
  struct Component {
    /// Buckets of this component, ascending.
    std::vector<uint32_t> buckets;
    /// Total materialized variables across those buckets.
    size_t num_variables = 0;
    /// True when some non-invariant constraint (background/individual
    /// knowledge, or an ad-hoc row) touches the component; false means
    /// the Theorem-5 closed form is exact here.
    bool coupled = false;
  };

  /// Builds the partition for `system` over `index`'s variable space.
  /// Components are numbered in order of their smallest bucket id, so
  /// the numbering is deterministic.
  static ComponentAnalysis Build(const TermIndex& index,
                                 const ConstraintSystem& system);

  /// Extends a prebuilt partition with additional constraint rows:
  /// unions the base components joined by each row's support and marks
  /// the touched components coupled (by the same invariant/knowledge
  /// rule Build applies). Produces exactly what Build would over the
  /// concatenation of the constraints behind `base` and `extra` — same
  /// deterministic numbering by smallest bucket id — but only scans
  /// `extra`: the per-request path reuses a table artifact's
  /// invariants-only partition and pays for the knowledge rows alone.
  static ComponentAnalysis Extend(const ComponentAnalysis& base,
                                  const TermIndex& index,
                                  const std::vector<LinearConstraint>& extra);

  const std::vector<Component>& components() const { return components_; }
  size_t num_components() const { return components_.size(); }

  /// Component id of a bucket.
  uint32_t ComponentOf(uint32_t bucket) const {
    return bucket_component_[bucket];
  }

  /// Number of components with the coupled flag set.
  size_t num_coupled() const { return num_coupled_; }

 private:
  std::vector<Component> components_;
  std::vector<uint32_t> bucket_component_;  // size num_buckets
  size_t num_coupled_ = 0;
};

/// Content signature of one constraint row: relation, bound, and the
/// sorted (variable, coefficient) support with zero coefficients dropped
/// and duplicate variables summed. Label and source are excluded — two
/// rows with identical content constrain the solve identically. The
/// digest is stable across runs and platforms (see common/hash.h), which
/// is what lets a solution cached in one process serve another.
Hash128 ConstraintRowSignature(const LinearConstraint& constraint);

/// Per-coupled-component content digests, indexed by the *dense coupled
/// block numbering* SolveDecomposed uses (components in id order,
/// skipping uncoupled ones). Two digests per block:
///
///  - `vars_hash` identifies the component's variable structure only:
///    its bucket ids and per-bucket variable counts, plus an index-shape
///    guard (total variables/buckets). Equal vars_hash ⇒ the block's
///    column selection — and therefore its posterior-slice layout and
///    the meaning of a cached dual — is identical.
///  - `rows_hash` extends vars_hash with the sorted multiset of row
///    signatures of every constraint routed to the block (content
///    including bounds). Equal rows_hash ⇒ byte-identical subproblem,
///    so a cached solution can be scattered without re-solving.
///
/// The warm-start near-miss of the solution cache is exactly
/// "vars_hash equal, rows_hash different": same variables, edited
/// constraint rows.
struct ComponentSignatures {
  std::vector<Hash128> rows_hash;
  std::vector<Hash128> vars_hash;
};

ComponentSignatures ComputeComponentSignatures(const TermIndex& index,
                                               const ConstraintSystem& system,
                                               const ComponentAnalysis& analysis);

}  // namespace pme::constraints

#endif  // PME_CONSTRAINTS_COMPONENT_ANALYSIS_H_
