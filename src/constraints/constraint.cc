#include "constraints/constraint.h"

#include <algorithm>
#include <cmath>

namespace pme::constraints {

const char* ConstraintSourceToString(ConstraintSource source) {
  switch (source) {
    case ConstraintSource::kQiInvariant:
      return "qi_invariant";
    case ConstraintSource::kSaInvariant:
      return "sa_invariant";
    case ConstraintSource::kBackground:
      return "background";
    case ConstraintSource::kIndividual:
      return "individual";
    case ConstraintSource::kOther:
      return "other";
  }
  return "unknown";
}

double LinearConstraint::Violation(const std::vector<double>& p) const {
  const double lhs = Evaluate(p);
  switch (rel) {
    case Relation::kEq:
      return std::fabs(lhs - rhs);
    case Relation::kLe:
      return std::max(0.0, lhs - rhs);
    case Relation::kGe:
      return std::max(0.0, rhs - lhs);
  }
  return 0.0;
}

}  // namespace pme::constraints
