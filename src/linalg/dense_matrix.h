// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_LINALG_DENSE_MATRIX_H_
#define PME_LINALG_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace pme::linalg {

/// Row-major dense matrix used where problems are small by construction:
/// per-bucket invariant matrices (a bucket holds ℓ records, so g+h ≤ 2ℓ
/// rows) and the Newton solver's Hessian.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  /// Zero-initialized rows x cols matrix.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// y = M x.
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// Returns M^T.
  DenseMatrix Transpose() const;

  /// Rank via Gaussian elimination with partial pivoting; entries whose
  /// magnitude falls below `tol` are treated as zero. Used to verify the
  /// paper's Conciseness theorem (rank of a bucket's invariant matrix is
  /// g + h − 1).
  size_t Rank(double tol = 1e-10) const;

  /// True iff `v` lies in the row space of this matrix: rank([M; v]) ==
  /// rank(M). Used to verify the Completeness theorem.
  bool RowSpaceContains(const std::vector<double>& v,
                        double tol = 1e-10) const;

  /// Appends a row (must match cols(); first row fixes cols for an empty
  /// matrix).
  void AppendRow(const std::vector<double>& row);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system `A x = b` via Cholesky
/// factorization (A = L Lᵀ). Returns kNumericalError if A is not SPD
/// (within `jitter` added to the diagonal for regularization).
Result<std::vector<double>> CholeskySolve(const DenseMatrix& a,
                                          const std::vector<double>& b,
                                          double jitter = 0.0);

}  // namespace pme::linalg

#endif  // PME_LINALG_DENSE_MATRIX_H_
