#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cassert>

namespace pme::linalg {

template <typename TripletVec>
Result<SparseMatrix> SparseMatrix::BuildCsr(size_t rows, size_t cols,
                                            TripletVec& triplets) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      return Status::InvalidArgument("triplet index out of bounds");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(rows + 1, 0);
  m.col_indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  size_t i = 0;
  for (size_t r = 0; r < rows; ++r) {
    m.row_offsets_[r] = m.values_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      uint32_t c = triplets[i].col;
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) {
        m.col_indices_.push_back(c);
        m.values_.push_back(v);
      }
    }
  }
  m.row_offsets_[rows] = m.values_.size();
  return m;
}

Result<SparseMatrix> SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                                std::vector<Triplet> triplets) {
  return BuildCsr(rows, cols, triplets);
}

SparseMatrix SparseMatrix::FromDense(
    const std::vector<std::vector<double>>& dense) {
  std::vector<Triplet> triplets;
  size_t cols = dense.empty() ? 0 : dense[0].size();
  for (size_t r = 0; r < dense.size(); ++r) {
    assert(dense[r].size() == cols);
    for (size_t c = 0; c < cols; ++c) {
      if (dense[r][c] != 0.0) {
        triplets.push_back({static_cast<uint32_t>(r),
                            static_cast<uint32_t>(c), dense[r][c]});
      }
    }
  }
  return std::move(FromTriplets(dense.size(), cols, std::move(triplets)))
      .value();
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
inline void PrefetchRead(const void* p) { __builtin_prefetch(p, 0, 1); }
inline void PrefetchWrite(const void* p) { __builtin_prefetch(p, 1, 1); }
#else
inline void PrefetchRead(const void*) {}
inline void PrefetchWrite(const void*) {}
#endif

/// How many nonzeros ahead the gather/scatter targets are prefetched.
/// The CSR arrays themselves stream sequentially (the hardware prefetcher
/// handles them); only the indirect x[col] / y[col] accesses need help.
constexpr size_t kPrefetchDistance = 16;

/// One CSR row's dot product against x: four independent partial sums
/// expose ILP across the FMA chain, and the gathered x entries a few
/// nonzeros ahead are prefetched. Shared by MultiplyInto and the fused
/// MultiplyMinusInto so the kernels cannot drift apart.
inline double RowDot(const uint32_t* ci, const double* va, const double* xd,
                     size_t k, size_t end, size_t nnz) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (; k + 4 <= end; k += 4) {
    if (k + kPrefetchDistance < nnz) {
      PrefetchRead(xd + ci[k + kPrefetchDistance]);
    }
    a0 += va[k] * xd[ci[k]];
    a1 += va[k + 1] * xd[ci[k + 1]];
    a2 += va[k + 2] * xd[ci[k + 2]];
    a3 += va[k + 3] * xd[ci[k + 3]];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; k < end; ++k) acc += va[k] * xd[ci[k]];
  return acc;
}

}  // namespace

void SparseMatrix::Multiply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  assert(x.size() == cols_);
  y.resize(rows_);
  MultiplyInto(kernels::ConstSpan(x), kernels::Span(y));
}

void SparseMatrix::MultiplyInto(kernels::ConstSpan x, kernels::Span y) const {
  assert(x.size == cols_);
  assert(y.size == rows_);
  const size_t* const off = row_offsets_.data();
  const uint32_t* const ci = col_indices_.data();
  const double* const va = values_.data();
  const size_t nnz = values_.size();
  for (size_t r = 0; r < rows_; ++r) {
    y.data[r] = RowDot(ci, va, x.data, off[r], off[r + 1], nnz);
  }
}

void SparseMatrix::MultiplyMinusInto(kernels::ConstSpan x, kernels::ConstSpan b,
                                     kernels::Span y) const {
  assert(x.size == cols_);
  assert(b.size == rows_ && y.size == rows_);
  const size_t* const off = row_offsets_.data();
  const uint32_t* const ci = col_indices_.data();
  const double* const va = values_.data();
  const size_t nnz = values_.size();
  for (size_t r = 0; r < rows_; ++r) {
    y.data[r] = RowDot(ci, va, x.data, off[r], off[r + 1], nnz) - b.data[r];
  }
}

void SparseMatrix::TransposeMultiply(const std::vector<double>& x,
                                     std::vector<double>& y) const {
  assert(x.size() == rows_);
  y.resize(cols_);
  TransposeMultiplyInto(kernels::ConstSpan(x), kernels::Span(y));
}

void SparseMatrix::TransposeMultiplyInto(kernels::ConstSpan x,
                                         kernels::Span y) const {
  assert(x.size == rows_);
  assert(y.size == cols_);
  std::fill(y.data, y.data + y.size, 0.0);
  const size_t* const off = row_offsets_.data();
  const uint32_t* const ci = col_indices_.data();
  const double* const va = values_.data();
  const size_t nnz = values_.size();
  double* const yd = y.data;
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x.data[r];
    if (xr == 0.0) continue;
    size_t k = off[r];
    const size_t end = off[r + 1];
    for (; k + 4 <= end; k += 4) {
      if (k + kPrefetchDistance < nnz) {
        PrefetchWrite(yd + ci[k + kPrefetchDistance]);
      }
      yd[ci[k]] += va[k] * xr;
      yd[ci[k + 1]] += va[k + 1] * xr;
      yd[ci[k + 2]] += va[k + 2] * xr;
      yd[ci[k + 3]] += va[k + 3] * xr;
    }
    for (; k < end; ++k) yd[ci[k]] += va[k] * xr;
  }
}

void SparseMatrix::TransposeMultiplyAccumulate(double alpha,
                                               const std::vector<double>& x,
                                               std::vector<double>& y) const {
  assert(x.size() == rows_);
  assert(y.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = alpha * x[r];
    if (xr == 0.0) continue;
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      y[col_indices_[k]] += values_[k] * xr;
    }
  }
}

double SparseMatrix::At(size_t row, size_t col) const {
  assert(row < rows_ && col < cols_);
  for (size_t k = row_offsets_[row]; k < row_offsets_[row + 1]; ++k) {
    if (col_indices_[k] == col) return values_[k];
  }
  return 0.0;
}

std::vector<std::vector<double>> SparseMatrix::ToDense() const {
  std::vector<std::vector<double>> dense(rows_,
                                         std::vector<double>(cols_, 0.0));
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      dense[r][col_indices_[k]] = values_[k];
    }
  }
  return dense;
}

Result<SparseMatrix> SparseMatrix::Submatrix(
    const std::vector<uint32_t>& row_ids,
    const std::vector<uint32_t>& col_ids) const {
  // Direct CSR construction: the source rows already carry unique column
  // indices, so the slice needs no triplet staging, no dedupe pass, and
  // no global sort — only a per-row ordering fix when the requested
  // column permutation is non-monotonic. All scratch and the result's
  // CSR arrays come from the ambient arena inside a block-solve scope.
  ScratchVector<int64_t> col_map(cols_, -1);
  for (size_t j = 0; j < col_ids.size(); ++j) {
    if (col_ids[j] >= cols_) {
      return Status::InvalidArgument("submatrix column out of bounds");
    }
    col_map[col_ids[j]] = static_cast<int64_t>(j);
  }
  for (const uint32_t r : row_ids) {
    if (r >= rows_) {
      return Status::InvalidArgument("submatrix row out of bounds");
    }
  }

  SparseMatrix m;
  m.rows_ = row_ids.size();
  m.cols_ = col_ids.size();
  m.row_offsets_.assign(row_ids.size() + 1, 0);

  size_t nnz = 0;
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const uint32_t r = row_ids[i];
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      if (col_map[col_indices_[k]] >= 0) ++nnz;
    }
    m.row_offsets_[i + 1] = nnz;
  }

  m.col_indices_.resize(nnz);
  m.values_.resize(nnz);
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const uint32_t r = row_ids[i];
    const size_t begin = m.row_offsets_[i];
    size_t out = begin;
    bool sorted = true;
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const int64_t c = col_map[col_indices_[k]];
      if (c < 0) continue;
      if (out > begin && m.col_indices_[out - 1] > static_cast<uint32_t>(c)) {
        sorted = false;
      }
      m.col_indices_[out] = static_cast<uint32_t>(c);
      m.values_[out] = values_[k];
      ++out;
    }
    if (!sorted) {
      // Rare (the permutation reordered this row): rows are short, so an
      // insertion sort over the paired arrays beats staging pair objects.
      for (size_t a = begin + 1; a < out; ++a) {
        const uint32_t ca = m.col_indices_[a];
        const double va = m.values_[a];
        size_t b = a;
        while (b > begin && m.col_indices_[b - 1] > ca) {
          m.col_indices_[b] = m.col_indices_[b - 1];
          m.values_[b] = m.values_[b - 1];
          --b;
        }
        m.col_indices_[b] = ca;
        m.values_[b] = va;
      }
    }
  }
  return m;
}

size_t SparseMatrixBuilder::BeginRow() {
  row_open_ = true;
  current_row_ = open_rows_;
  ++open_rows_;
  return current_row_;
}

Status SparseMatrixBuilder::Add(uint32_t col, double value) {
  if (!row_open_) {
    return Status::FailedPrecondition("Add() called before BeginRow()");
  }
  if (col >= cols_) {
    return Status::InvalidArgument("column index out of bounds");
  }
  triplets_.push_back({static_cast<uint32_t>(current_row_), col, value});
  return Status::Ok();
}

Status SparseMatrixBuilder::AddRow(const std::vector<uint32_t>& cols,
                                   const std::vector<double>& values) {
  if (cols.size() != values.size()) {
    return Status::InvalidArgument("AddRow: parallel arrays differ in size");
  }
  return AddRow(cols.data(), values.data(), cols.size());
}

Status SparseMatrixBuilder::AddRow(const uint32_t* cols, const double* values,
                                   size_t n) {
  BeginRow();
  for (size_t i = 0; i < n; ++i) {
    PME_RETURN_IF_ERROR(Add(cols[i], values[i]));
  }
  return Status::Ok();
}

Result<SparseMatrix> SparseMatrixBuilder::Build() {
  return SparseMatrix::BuildCsr(open_rows_, cols_, triplets_);
}

}  // namespace pme::linalg
