#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pme::linalg {

std::vector<double> DenseMatrix::Multiply(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

namespace {

/// In-place row echelon reduction; returns the rank.
size_t EchelonRank(std::vector<double>& m, size_t rows, size_t cols,
                   double tol) {
  size_t rank = 0;
  for (size_t col = 0; col < cols && rank < rows; ++col) {
    // Partial pivot.
    size_t pivot = rank;
    double best = std::fabs(m[rank * cols + col]);
    for (size_t r = rank + 1; r < rows; ++r) {
      double v = std::fabs(m[r * cols + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= tol) continue;
    if (pivot != rank) {
      for (size_t c = 0; c < cols; ++c) {
        std::swap(m[pivot * cols + c], m[rank * cols + c]);
      }
    }
    const double p = m[rank * cols + col];
    for (size_t r = rank + 1; r < rows; ++r) {
      const double f = m[r * cols + col] / p;
      if (f == 0.0) continue;
      for (size_t c = col; c < cols; ++c) {
        m[r * cols + c] -= f * m[rank * cols + c];
      }
    }
    ++rank;
  }
  return rank;
}

}  // namespace

size_t DenseMatrix::Rank(double tol) const {
  std::vector<double> work = data_;
  return EchelonRank(work, rows_, cols_, tol);
}

bool DenseMatrix::RowSpaceContains(const std::vector<double>& v,
                                   double tol) const {
  assert(v.size() == cols_ || rows_ == 0);
  std::vector<double> work = data_;
  const size_t base_rank = EchelonRank(work, rows_, cols_, tol);
  std::vector<double> augmented = data_;
  augmented.insert(augmented.end(), v.begin(), v.end());
  const size_t aug_rank = EchelonRank(augmented, rows_ + 1, cols_, tol);
  return aug_rank == base_rank;
}

void DenseMatrix::AppendRow(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  assert(row.size() == cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Result<std::vector<double>> CholeskySolve(const DenseMatrix& a,
                                          const std::vector<double>& b,
                                          double jitter) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("CholeskySolve: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: rhs size mismatch");
  }
  // Lower-triangular factor, row-major.
  std::vector<double> l(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      if (i == j) sum += jitter;
      for (size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 0.0) {
          return Status::NumericalError(
              "CholeskySolve: matrix not positive definite");
        }
        l[i * n + j] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l[i * n + k] * y[k];
    y[i] = sum / l[i * n + i];
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l[k * n + ii] * x[k];
    x[ii] = sum / l[ii * n + ii];
  }
  return x;
}

}  // namespace pme::linalg
