// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_LINALG_SPARSE_MATRIX_H_
#define PME_LINALG_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/vec_math.h"

namespace pme::linalg {

/// One nonzero entry during matrix assembly.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

/// Immutable sparse matrix in Compressed Sparse Row (CSR) form.
///
/// This is the workhorse of the MaxEnt solver: the constraint matrix `A`
/// (one row per ME constraint, one column per probability term) is stored
/// here, and every dual-gradient evaluation performs one `Av` and one
/// `Transpose·v` product. Both products are cache-friendly single passes
/// over the CSR arrays.
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() = default;

  /// Builds from triplets. Duplicate (row, col) entries are summed;
  /// explicit zeros are dropped. Triplets out of bounds yield an error.
  static Result<SparseMatrix> FromTriplets(size_t rows, size_t cols,
                                           std::vector<Triplet> triplets);

  /// Builds a dense row-major matrix (testing convenience).
  static SparseMatrix FromDense(const std::vector<std::vector<double>>& dense);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// y = A x. `x.size()` must equal `cols()`; `y` is resized to `rows()`.
  void Multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// y = A^T x. `x.size()` must equal `rows()`; `y` is resized to `cols()`.
  void TransposeMultiply(const std::vector<double>& x,
                         std::vector<double>& y) const;

  /// y = A x into a pre-sized buffer (`x.size == cols()`, `y.size ==
  /// rows()`). The dual hot path: no resize, no per-call bounds logic —
  /// a single unrolled, prefetch-friendly pass over the CSR arrays.
  void MultiplyInto(kernels::ConstSpan x, kernels::Span y) const;

  /// Fused gradient pass y = A x − b (`b.size == y.size == rows()`): the
  /// row product and the RHS subtraction in one sweep, saving a second
  /// pass over the gradient vector per dual evaluation.
  void MultiplyMinusInto(kernels::ConstSpan x, kernels::ConstSpan b,
                         kernels::Span y) const;

  /// y = A^T x into a pre-sized buffer (`x.size == rows()`, `y.size ==
  /// cols()`).
  void TransposeMultiplyInto(kernels::ConstSpan x, kernels::Span y) const;

  /// y += alpha * A^T x (no reallocation; `y.size()` must equal `cols()`).
  void TransposeMultiplyAccumulate(double alpha, const std::vector<double>& x,
                                   std::vector<double>& y) const;

  /// Element lookup (O(row nnz)); 0.0 for structural zeros.
  double At(size_t row, size_t col) const;

  /// Dense copy (testing / small-problem Newton solver).
  std::vector<std::vector<double>> ToDense() const;

  /// Extracts a submatrix containing the given rows and columns, in the
  /// given order. Indices must be in range and (for columns) the mapping
  /// is positional: new column j corresponds to `col_ids[j]`.
  Result<SparseMatrix> Submatrix(const std::vector<uint32_t>& row_ids,
                                 const std::vector<uint32_t>& col_ids) const;

  /// CSR internals, exposed read-only for kernels that fuse operations
  /// (e.g. the dual objective computes exp(A^T lambda) in one pass).
  const ScratchVector<size_t>& row_offsets() const { return row_offsets_; }
  const ScratchVector<uint32_t>& col_indices() const { return col_indices_; }
  const ScratchVector<double>& values() const { return values_; }

 private:
  friend class SparseMatrixBuilder;

  template <typename TripletVec>
  static Result<SparseMatrix> BuildCsr(size_t rows, size_t cols,
                                       TripletVec& triplets);

  size_t rows_ = 0;
  size_t cols_ = 0;
  // Arena-aware storage: a matrix assembled inside an ArenaScope (the
  // per-block Submatrix slices and presolve-reduced systems of
  // SolveDecomposed) bump-allocates and must not outlive its scope; one
  // built outside any scope is an ordinary heap matrix.
  ScratchVector<size_t> row_offsets_;    // size rows_+1
  ScratchVector<uint32_t> col_indices_;  // size nnz
  ScratchVector<double> values_;         // size nnz
};

/// Incremental row-by-row CSR builder. Rows are appended in order; each
/// row's entries may arrive unsorted and with duplicates (summed).
class SparseMatrixBuilder {
 public:
  /// `cols` fixes the column dimension up front.
  explicit SparseMatrixBuilder(size_t cols) : cols_(cols) {}

  /// Starts a fresh row; returns its index.
  size_t BeginRow();

  /// Adds `value` at `col` of the current row. Requires an open row.
  Status Add(uint32_t col, double value);

  /// Appends a complete row from parallel arrays.
  Status AddRow(const std::vector<uint32_t>& cols,
                const std::vector<double>& values);

  /// Pointer flavor of AddRow, for callers whose scratch lives in
  /// arena-backed containers.
  Status AddRow(const uint32_t* cols, const double* values, size_t n);

  /// Number of rows begun so far.
  size_t rows() const { return open_rows_; }

  /// Finalizes into an immutable CSR matrix.
  Result<SparseMatrix> Build();

 private:
  size_t cols_;
  size_t open_rows_ = 0;
  size_t current_row_ = 0;
  bool row_open_ = false;
  // Scratch: a builder used inside an ArenaScope (presolve's constraint
  // rebuild) assembles without touching the heap.
  ScratchVector<Triplet> triplets_;
};

}  // namespace pme::linalg

#endif  // PME_LINALG_SPARSE_MATRIX_H_
