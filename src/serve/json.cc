#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pme::serve {
namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    PME_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        PME_RETURN_IF_ERROR(ExpectLiteral("true"));
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::Ok();
      case 'f':
        PME_RETURN_IF_ERROR(ExpectLiteral("false"));
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::Ok();
      case 'n':
        PME_RETURN_IF_ERROR(ExpectLiteral("null"));
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ExpectLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("malformed literal");
    }
    pos_ += lit.size();
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = v;
    return Status::Ok();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("malformed \\u escape");
      }
    }
    *out = code;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    PME_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          PME_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pairs: a high surrogate must be chased by an
          // escaped low surrogate, and the pair combines into one
          // astral code point — emitting the halves separately would
          // produce CESU-8, which is not valid UTF-8.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            PME_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (code >> 18)));
            out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    PME_RETURN_IF_ERROR(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      PME_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) return Status::Ok();
      PME_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    PME_RETURN_IF_ERROR(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      std::string key;
      PME_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      PME_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      PME_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::Ok();
      PME_RETURN_IF_ERROR(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

}  // namespace pme::serve
