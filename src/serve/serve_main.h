// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_SERVE_SERVE_MAIN_H_
#define PME_SERVE_SERVE_MAIN_H_

#include "common/flags.h"

namespace pme::serve {

/// The `pme serve` entry point, shared by the pme_cli subcommand and the
/// standalone tools/pme_serve binary. Loads a dataset (--data=FILE with
/// --sensitive=ATTR, or a synthetic Adult-like table via --records=N),
/// bucketizes it (--ell), builds one TableArtifact, and serves
/// newline-delimited JSON analyze requests until SIGINT/SIGTERM.
///
/// Flags: --data --sensitive --id --ell --records --seed --host --port
///        --threads --deadline-ms --solver --cache --cache-mb
///        --max-connections
int ServeMain(const Flags& flags);

}  // namespace pme::serve

#endif  // PME_SERVE_SERVE_MAIN_H_
