// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_SERVE_SERVER_H_
#define PME_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/analysis_session.h"
#include "core/table_artifact.h"
#include "data/dataset.h"
#include "maxent/solution_cache.h"

namespace pme::serve {

/// Server configuration. The artifact fixes the table side; these knobs
/// fix the request defaults and the resource envelope.
struct ServeOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the bound port is readable via port() after Start).
  uint16_t port = 0;
  /// Size of the shared solver pool every request's block solves run on
  /// (0 = hardware concurrency).
  size_t solver_threads = 0;
  /// Concurrent connections beyond this are closed on accept.
  size_t max_connections = 64;
  /// Default per-request wall budget when the request carries no
  /// `deadline_ms` (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Request defaults (solver kind, tolerance, fallback, ...). The
  /// pool/cache plumbing inside solver_options is installed by the
  /// server; per-request protocol fields override solver and cache mode.
  core::AnalysisOptions analysis;
  /// Shared solution-cache budget in MiB (0 disables the cache).
  size_t cache_mb = 64;
};

/// Observability counters (monotonic; snapshot via stats()). Backed by
/// the process-wide metrics::Registry (serve.* counters): the server
/// snapshots the registry at Start() and stats() reports the deltas, so
/// per-server readings survive the counters being process-global.
struct ServeStats {
  size_t connections_accepted = 0;
  size_t connections_rejected = 0;  // over max_connections
  size_t accept_failures = 0;       // serve_accept_fail failpoint hits
  size_t requests_ok = 0;
  size_t requests_error = 0;
  size_t requests_deadline_exceeded = 0;
};

/// Blocking-socket, thread-per-connection analyze server — the MVP
/// serving layer. One immutable TableArtifact is loaded at startup;
/// each connection reads newline-delimited JSON analyze requests (see
/// serve/protocol.h) and writes one JSON response line per request.
/// Per-request solves share one common::ThreadPool (batch-scheduled, so
/// concurrent requests interleave their block solves) and one
/// SolutionCache namespaced by the artifact's content hash.
///
/// Failure semantics: a malformed line gets an {ok:false} response and
/// the connection keeps serving; a request whose deadline is already
/// spent (deadline_ms <= 0) still answers ok:true with
/// termination "deadline_exceeded" and every component degraded to its
/// closed-form prior — the library's never-empty-handed contract,
/// surfaced through the wire. Shutdown() cancels in-flight solves
/// cooperatively, closes every socket, and joins every thread.
///
/// Failpoint `serve_accept_fail`: the accept loop drops the Nth
/// accepted connection (closed before a handler spawns) and keeps
/// serving — the deterministic stand-in for transient accept-time
/// failures (EMFILE, RST before handshake).
class AnalysisServer {
 public:
  /// `dataset`, when non-null, provides the vocabulary for dataset-mode
  /// knowledge statements (attribute/value names); abstract-mode
  /// statements need none.
  AnalysisServer(std::shared_ptr<const core::TableArtifact> artifact,
                 std::shared_ptr<const data::Dataset> dataset,
                 ServeOptions options);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Binds, listens, and spawns the acceptor thread. kUnavailable-style
  /// IoError when the socket layer refuses.
  Status Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Idempotent; safe to call while requests are in flight (they finish
  /// with termination "cancelled").
  void Shutdown();

  ServeStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Connection* connection);
  /// Parses, runs, and renders one request line (never throws; every
  /// failure becomes an {ok:false} line).
  std::string HandleLine(const std::string& line);
  void ReapFinishedConnections();  // requires connections_mutex_
  size_t ActiveConnections();      // requires connections_mutex_

  std::shared_ptr<const core::TableArtifact> artifact_;
  std::shared_ptr<const data::Dataset> dataset_;
  ServeOptions options_;

  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<maxent::SolutionCache> cache_;
  std::unique_ptr<core::AnalysisSession> session_;
  CancellationSource shutdown_source_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutting_down_{false};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Registry counter values at Start(); stats() = current − baseline.
  ServeStats baseline_;
};

}  // namespace pme::serve

#endif  // PME_SERVE_SERVER_H_
