// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_SERVE_CLIENT_H_
#define PME_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pme::serve {

/// Minimal blocking client for the newline-delimited JSON protocol —
/// the test harness and the closed-loop bench. One socket per client;
/// Call() is send-one-line, read-one-line.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  static Result<ServeClient> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends `line` (newline appended when missing).
  Status Send(const std::string& line);

  /// Blocks until one full response line arrives ('\n' stripped).
  /// kIoError on EOF/reset.
  Result<std::string> ReadLine();

  /// Send + ReadLine.
  Result<std::string> Call(const std::string& line);

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace pme::serve

#endif  // PME_SERVE_CLIENT_H_
