#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pme::serve {

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(const std::string& host,
                                         uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  ServeClient client;
  client.fd_ = fd;
  return client;
}

Status ServeClient::Send(const std::string& line) {
  if (fd_ < 0) return Status::IoError("client not connected");
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ServeClient::ReadLine() {
  if (fd_ < 0) return Status::IoError("client not connected");
  char chunk[4096];
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError("connection closed before a full response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> ServeClient::Call(const std::string& line) {
  PME_RETURN_IF_ERROR(Send(line));
  return ReadLine();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace pme::serve
