#include "serve/protocol.h"

#include <cmath>

#include "common/metrics.h"
#include "common/vec_math.h"
#include "serve/json.h"

namespace pme::serve {

Result<maxent::SolverKind> ParseSolverKind(const std::string& name) {
  using maxent::SolverKind;
  if (name == "lbfgs") return SolverKind::kLbfgs;
  if (name == "gis") return SolverKind::kGis;
  if (name == "iis") return SolverKind::kIis;
  if (name == "steepest") return SolverKind::kSteepest;
  if (name == "newton") return SolverKind::kNewton;
  if (name == "projected") return SolverKind::kProjected;
  return Status::InvalidArgument("unknown solver: " + name);
}

Result<maxent::CacheMode> ParseCacheModeName(const std::string& name) {
  using maxent::CacheMode;
  if (name == "off") return CacheMode::kOff;
  if (name == "exact") return CacheMode::kExact;
  if (name == "warm") return CacheMode::kWarm;
  return Status::InvalidArgument(
      "cache must be 'off', 'exact' or 'warm', got '" + name + "'");
}

std::string TerminationToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kNotConverged:
      return "not_converged";
    case StatusCode::kNumericalError:
      return "numerical_error";
    default:
      return "error";
  }
}

Result<AnalyzeRequest> ParseAnalyzeRequest(std::string_view line) {
  PME_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  AnalyzeRequest request;
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    if (id->is_string()) {
      request.id = id->string_value;
    } else if (id->is_number()) {
      request.id = JsonNumber(id->number_value);
    } else {
      return Status::InvalidArgument("'id' must be a string or number");
    }
  }
  if (const JsonValue* kn = doc.Find("knowledge"); kn != nullptr) {
    if (!kn->is_array()) {
      return Status::InvalidArgument("'knowledge' must be an array");
    }
    request.knowledge.reserve(kn->array.size());
    for (const JsonValue& s : kn->array) {
      if (!s.is_string()) {
        return Status::InvalidArgument(
            "'knowledge' entries must be statement strings");
      }
      request.knowledge.push_back(s.string_value);
    }
  }
  if (const JsonValue* dl = doc.Find("deadline_ms"); dl != nullptr) {
    if (!dl->is_number()) {
      return Status::InvalidArgument("'deadline_ms' must be a number");
    }
    request.has_deadline = true;
    request.deadline_ms = dl->number_value;
  }
  if (const JsonValue* sv = doc.Find("solver"); sv != nullptr) {
    if (!sv->is_string()) {
      return Status::InvalidArgument("'solver' must be a string");
    }
    PME_ASSIGN_OR_RETURN(request.solver, ParseSolverKind(sv->string_value));
    request.has_solver = true;
  }
  if (const JsonValue* cm = doc.Find("cache"); cm != nullptr) {
    if (!cm->is_string()) {
      return Status::InvalidArgument("'cache' must be a string");
    }
    PME_ASSIGN_OR_RETURN(request.cache,
                         ParseCacheModeName(cm->string_value));
    request.has_cache = true;
  }
  if (const JsonValue* vb = doc.Find("verb"); vb != nullptr) {
    if (!vb->is_string()) {
      return Status::InvalidArgument("'verb' must be a string");
    }
    if (vb->string_value == "analyze") {
      request.verb = Verb::kAnalyze;
    } else if (vb->string_value == "stats") {
      request.verb = Verb::kStats;
    } else {
      return Status::InvalidArgument(
          "verb must be 'analyze' or 'stats', got '" + vb->string_value +
          "'");
    }
  }
  if (const JsonValue* tr = doc.Find("trace"); tr != nullptr) {
    if (!tr->is_bool()) {
      return Status::InvalidArgument("'trace' must be a boolean");
    }
    request.trace = tr->bool_value;
  }
  return request;
}

AnalyzeResponse MakeSuccessResponse(const std::string& id,
                                    const core::Analysis& analysis,
                                    double total_seconds) {
  AnalyzeResponse r;
  r.id = id;
  r.ok = true;
  r.estimation_accuracy = analysis.estimation_accuracy;
  r.max_disclosure = analysis.metrics.max_disclosure;
  r.expected_best_guess = analysis.metrics.expected_best_guess;
  r.min_effective_candidates = analysis.metrics.min_effective_candidates;
  r.num_background_constraints = analysis.num_background_constraints;
  r.num_vacuous_statements = analysis.num_vacuous_statements;
  r.iterations = analysis.solver.iterations;
  r.solve_seconds = analysis.solver.seconds;
  r.total_seconds = total_seconds;
  r.converged = analysis.solver.converged;
  r.degraded = analysis.solver.degraded;
  r.termination = TerminationToString(analysis.solver.termination);
  r.components_solved = analysis.solver.components_solved;
  r.components_degraded = analysis.solver.components_degraded;
  r.components_failed = analysis.solver.components_failed;
  r.cache_exact_hits = analysis.solver.cache_exact_hits;
  r.cache_warm_hits = analysis.solver.cache_warm_hits;
  r.cache_misses = analysis.solver.cache_misses;
  return r;
}

AnalyzeResponse MakeErrorResponse(const std::string& id,
                                  const Status& status) {
  AnalyzeResponse r;
  r.id = id;
  r.ok = false;
  r.error = status.ToString();
  return r;
}

std::string RenderAnalyzeResponse(const AnalyzeResponse& response) {
  std::string out = "{\"id\":\"" + EscapeJson(response.id) + "\"";
  if (!response.ok) {
    out += ",\"ok\":false,\"error\":\"" + EscapeJson(response.error) + "\"}";
    return out;
  }
  const auto num = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += JsonNumber(v);
  };
  const auto count = [&out](const char* key, size_t v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(v);
  };
  const auto flag = [&out](const char* key, bool v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += v ? "true" : "false";
  };
  out += ",\"ok\":true";
  num("estimation_accuracy", response.estimation_accuracy);
  num("max_disclosure", response.max_disclosure);
  num("expected_best_guess", response.expected_best_guess);
  num("min_effective_candidates", response.min_effective_candidates);
  count("num_background_constraints", response.num_background_constraints);
  count("num_vacuous_statements", response.num_vacuous_statements);
  count("iterations", response.iterations);
  num("solve_seconds", response.solve_seconds);
  num("total_seconds", response.total_seconds);
  flag("converged", response.converged);
  flag("degraded", response.degraded);
  out += ",\"termination\":\"" + EscapeJson(response.termination) + "\"";
  count("components_solved", response.components_solved);
  count("components_degraded", response.components_degraded);
  count("components_failed", response.components_failed);
  count("cache_exact_hits", response.cache_exact_hits);
  count("cache_warm_hits", response.cache_warm_hits);
  count("cache_misses", response.cache_misses);
  if (!response.trace_json.empty()) {
    out += ",\"trace\":" + response.trace_json;
  }
  out += "}";
  return out;
}

std::string RenderTraceSpans(const std::vector<trace::TraceEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const trace::TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + EscapeJson(e.name) + "\"";
    out += ",\"cat\":\"";
    out += e.category != nullptr ? EscapeJson(e.category) : "pme";
    out += "\",\"start_us\":" +
           JsonNumber(static_cast<double>(e.start_ns) / 1e3);
    out += ",\"dur_us\":" + JsonNumber(static_cast<double>(e.dur_ns) / 1e3);
    out += ",\"tid\":" + std::to_string(e.tid);
    for (size_t a = 0; a < 2; ++a) {
      if (e.arg_names[a] == nullptr) continue;
      out += ",\"" + EscapeJson(e.arg_names[a]) +
             "\":" + JsonNumber(e.arg_values[a]);
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string RenderStatsResponse(const std::string& id) {
  // The active kernel ISA rides along as a readable string; the numeric
  // vec_math.simd_tier gauge inside the registry snapshot says the same.
  return "{\"id\":\"" + EscapeJson(id) + "\",\"ok\":true,\"simd\":\"" +
         std::string(kernels::SimdModeName()) + "\",\"stats\":" +
         metrics::Registry::Global().RenderJson() + "}";
}

}  // namespace pme::serve
