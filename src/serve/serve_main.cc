#include "serve/serve_main.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "anonymize/anatomy.h"
#include "anonymize/bucketized_table.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "data/adult_synth.h"
#include "data/csv.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pme::serve {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<data::Dataset> LoadOrGenerate(const Flags& flags) {
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    // No CSV: serve the synthetic Adult-like benchmark table (the
    // quickstart path — no files needed).
    data::AdultSynthOptions options;
    options.num_records =
        static_cast<size_t>(flags.GetInt("records", 2000));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 20080612));
    return data::GenerateAdultLike(options);
  }
  data::CsvReadOptions options;
  const std::string sensitive = flags.GetString("sensitive", "");
  if (sensitive.empty()) {
    return Status::InvalidArgument("--sensitive=ATTR is required with --data");
  }
  options.sensitive_attributes = {sensitive};
  for (const auto& id : Split(flags.GetString("id", ""), ',')) {
    if (!id.empty()) options.identifier_attributes.emplace_back(id);
  }
  return data::ReadCsv(path, options);
}

}  // namespace

int ServeMain(const Flags& flags) {
  auto dataset_or = LoadOrGenerate(flags);
  if (!dataset_or.ok()) return Fail(dataset_or.status());
  auto dataset =
      std::make_shared<const data::Dataset>(std::move(dataset_or).value());

  anonymize::AnatomyOptions anatomy;
  anatomy.ell = static_cast<size_t>(flags.GetInt("ell", 5));
  auto partition = anonymize::AnatomyPartition(*dataset, anatomy);
  if (!partition.ok()) return Fail(partition.status());
  auto bz_or = anonymize::BucketizeDataset(*dataset, partition.value());
  if (!bz_or.ok()) return Fail(bz_or.status());
  // One shared owner for table + encoder; the artifact holds aliased
  // views into it, so everything lives exactly as long as the server.
  auto bucketization = std::make_shared<anonymize::DatasetBucketization>(
      std::move(bz_or).value());

  ServeOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 7321));
  options.solver_threads = static_cast<size_t>(flags.GetInt("threads", 0));
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 64));
  options.default_deadline_ms =
      static_cast<double>(flags.GetInt("deadline-ms", 0));
  options.cache_mb = static_cast<size_t>(flags.GetInt("cache-mb", 64));
  auto solver = ParseSolverKind(flags.GetString("solver", "lbfgs"));
  if (!solver.ok()) return Fail(solver.status());
  options.analysis.solver = solver.value();
  auto cache_mode = ParseCacheModeName(flags.GetString("cache", "warm"));
  if (!cache_mode.ok()) return Fail(cache_mode.status());
  options.analysis.solver_options.cache_mode = cache_mode.value();
  if (cache_mode.value() == maxent::CacheMode::kOff) options.cache_mb = 0;

  core::TableArtifactOptions artifact_options;
  artifact_options.threads = options.solver_threads;
  auto artifact = core::TableArtifact::Build(
      std::shared_ptr<const anonymize::BucketizedTable>(bucketization,
                                                        &bucketization->table),
      std::shared_ptr<const data::TupleEncoder>(bucketization,
                                                &bucketization->qi_encoder),
      artifact_options);
  if (!artifact.ok()) return Fail(artifact.status());

  AnalysisServer server(artifact.value(), dataset, options);
  if (Status s = server.Start(); !s.ok()) return Fail(s);
  std::printf(
      "pme serve: listening on %s:%u (%zu records, %zu buckets, %zu vars, "
      "artifact %s)\n",
      options.host.c_str(), static_cast<unsigned>(server.port()),
      bucketization->table.num_records(), bucketization->table.num_buckets(),
      artifact.value()->index().num_variables(),
      artifact.value()->content_hash().ToHex().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Shutdown();
  const ServeStats stats = server.stats();
  std::printf(
      "pme serve: shut down (%zu connections, %zu ok, %zu errors, "
      "%zu past-deadline)\n",
      stats.connections_accepted, stats.requests_ok, stats.requests_error,
      stats.requests_deadline_exceeded);
  if (const std::string path = flags.GetString("metrics-out", "");
      !path.empty()) {
    std::ofstream out(path);
    if (out) {
      out << metrics::Registry::Global().RenderJson() << "\n";
      std::printf("pme serve: metrics written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    }
  }
  if (const std::string path = flags.GetString("trace-out", "");
      !path.empty()) {
    if (trace::WriteChromeTrace(path)) {
      std::printf("pme serve: trace written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace pme::serve
