#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/timer.h"
#include "knowledge/parser.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace pme::serve {
namespace {

/// Longest accepted request line; a client that streams more without a
/// newline is protocol-broken and gets the connection closed.
constexpr size_t kMaxLineBytes = 4u << 20;

/// Full-buffer send; MSG_NOSIGNAL so a client that hung up mid-response
/// surfaces as an error return instead of SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

AnalysisServer::AnalysisServer(
    std::shared_ptr<const core::TableArtifact> artifact,
    std::shared_ptr<const data::Dataset> dataset, ServeOptions options)
    : artifact_(std::move(artifact)),
      dataset_(std::move(dataset)),
      options_(std::move(options)) {}

AnalysisServer::~AnalysisServer() { Shutdown(); }

Status AnalysisServer::Start() {
  if (artifact_ == nullptr) {
    return Status::InvalidArgument("AnalysisServer: null artifact");
  }
  if (running_.load()) {
    return Status::InvalidArgument("AnalysisServer: already started");
  }

  pool_ = std::make_unique<ThreadPool>(options_.solver_threads);
  if (options_.cache_mb > 0) {
    cache_ = std::make_unique<maxent::SolutionCache>(options_.cache_mb << 20);
  }
  core::AnalysisOptions base = options_.analysis;
  base.solver_options.pool = pool_.get();
  base.solver_options.solution_cache = cache_.get();
  if (cache_ == nullptr) {
    base.solver_options.cache_mode = maxent::CacheMode::kOff;
  }
  session_ = std::make_unique<core::AnalysisSession>(artifact_, base);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  // Recover the bound port (the ephemeral-port case: requested port 0).
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true);
  shutting_down_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void AnalysisServer::Shutdown() {
  if (!running_.exchange(false)) return;
  shutting_down_.store(true);
  // Cooperative cancel first: in-flight solves stop at their next
  // iteration check and answer with termination "cancelled".
  shutdown_source_.Cancel();
  // Wake the acceptor out of accept(2), then every handler out of recv.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
      if (connection->fd >= 0) {
        ::close(connection->fd);
        connection->fd = -1;
      }
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  session_.reset();
  cache_.reset();
  pool_.reset();
}

ServeStats AnalysisServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void AnalysisServer::ReapFinishedConnections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t AnalysisServer::ActiveConnections() {
  size_t active = 0;
  for (const auto& connection : connections_) {
    if (!connection->done.load()) ++active;
  }
  return active;
}

void AnalysisServer::AcceptLoop() {
  while (!shutting_down_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (shutting_down_.load()) return;
      // Transient accept failure (EMFILE, aborted handshake): keep
      // serving the connections we have.
      continue;
    }
    if (shutting_down_.load()) {
      ::close(fd);
      return;
    }
    // Failpoint `serve_accept_fail@N`: drop the Nth accepted connection
    // before a handler spawns — the injected stand-in for accept-time
    // failures. The server must keep serving subsequent connects.
    if (PME_FAILPOINT("serve_accept_fail")) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.accept_failures;
      continue;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    ReapFinishedConnections();
    if (ActiveConnections() >= options_.max_connections) {
      ::close(fd);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_rejected;
      continue;
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { HandleConnection(raw); });
    connections_.push_back(std::move(connection));
  }
}

void AnalysisServer::HandleConnection(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  while (!shutting_down_.load()) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: client is gone
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = HandleLine(line) + "\n";
      if (!SendAll(connection->fd, response)) {
        connection->done.store(true);
        return;
      }
    }
    if (buffer.size() > kMaxLineBytes) break;  // unframed garbage
  }
  connection->done.store(true);
}

std::string AnalysisServer::HandleLine(const std::string& line) {
  Timer timer;
  auto bump = [this](size_t ServeStats::*counter) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(stats_.*counter);
  };
  auto request_or = ParseAnalyzeRequest(line);
  if (!request_or.ok()) {
    bump(&ServeStats::requests_error);
    // Best-effort id recovery so the client can still match the error to
    // its request (the id may have parsed even when a later field did
    // not).
    std::string id;
    if (auto doc = ParseJson(line); doc.ok()) {
      if (const JsonValue* found = doc.value().Find("id"); found != nullptr) {
        if (found->is_string()) id = found->string_value;
        if (found->is_number()) id = JsonNumber(found->number_value);
      }
    }
    return RenderAnalyzeResponse(MakeErrorResponse(id, request_or.status()));
  }
  const AnalyzeRequest& request = request_or.value();

  knowledge::KnowledgeBase kb;
  if (!request.knowledge.empty()) {
    std::string text;
    for (const std::string& statement : request.knowledge) {
      text += statement;
      text += '\n';
    }
    knowledge::ParserContext context;
    context.dataset = dataset_.get();
    if (Status s = knowledge::ParseKnowledge(text, context, &kb); !s.ok()) {
      bump(&ServeStats::requests_error);
      return RenderAnalyzeResponse(MakeErrorResponse(request.id, s));
    }
  }

  core::AnalysisOptions run_options = session_->options();
  if (request.has_solver) run_options.solver = request.solver;
  if (request.has_cache) {
    run_options.solver_options.cache_mode = request.cache;
  }
  // Deadline: the request's own budget wins; otherwise the server
  // default applies (0 = unlimited). deadline_ms <= 0 is an
  // already-expired budget — every component degrades to its
  // closed-form prior and the response says so via `termination`.
  const double deadline_ms = request.has_deadline
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (request.has_deadline || options_.default_deadline_ms > 0) {
    run_options.solver_options.deadline =
        Deadline::AfterMillis(std::max(0.0, deadline_ms));
  }
  run_options.solver_options.cancel = shutdown_source_.token();

  auto analysis = session_->Run(kb, run_options);
  if (!analysis.ok()) {
    bump(&ServeStats::requests_error);
    return RenderAnalyzeResponse(
        MakeErrorResponse(request.id, analysis.status()));
  }
  bump(&ServeStats::requests_ok);
  if (analysis.value().solver.termination ==
      StatusCode::kDeadlineExceeded) {
    bump(&ServeStats::requests_deadline_exceeded);
  }
  return RenderAnalyzeResponse(MakeSuccessResponse(
      request.id, analysis.value(), timer.ElapsedSeconds()));
}

}  // namespace pme::serve
