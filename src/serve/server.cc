#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "knowledge/parser.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace pme::serve {
namespace {

/// Longest accepted request line; a client that streams more without a
/// newline is protocol-broken and gets the connection closed.
constexpr size_t kMaxLineBytes = 4u << 20;

/// Full-buffer send; MSG_NOSIGNAL so a client that hung up mid-response
/// surfaces as an error return instead of SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// serve.* registry handles. The per-server ServeStats view is derived
/// from these (baseline deltas), so there is no per-bump mutex left.
struct ServeMetrics {
  metrics::Counter* connections_accepted;
  metrics::Counter* connections_rejected;
  metrics::Counter* accept_failures;
  metrics::Counter* requests_ok;
  metrics::Counter* requests_error;
  metrics::Counter* requests_deadline_exceeded;
  metrics::Counter* requests_stats;
  metrics::Gauge* connections_active;
  metrics::Histogram* request_seconds;
};

ServeMetrics& GetServeMetrics() {
  static ServeMetrics m = [] {
    auto& registry = metrics::Registry::Global();
    ServeMetrics r;
    r.connections_accepted =
        &registry.GetCounter("serve.connections_accepted");
    r.connections_rejected =
        &registry.GetCounter("serve.connections_rejected");
    r.accept_failures = &registry.GetCounter("serve.accept_failures");
    r.requests_ok = &registry.GetCounter("serve.requests_ok");
    r.requests_error = &registry.GetCounter("serve.requests_error");
    r.requests_deadline_exceeded =
        &registry.GetCounter("serve.requests_deadline_exceeded");
    r.requests_stats = &registry.GetCounter("serve.requests_stats");
    r.connections_active = &registry.GetGauge("serve.connections_active");
    r.request_seconds = &registry.GetHistogram("serve.request_seconds");
    return r;
  }();
  return m;
}

/// Point-in-time registry values of the serve.* counters, in ServeStats
/// shape.
ServeStats ReadServeCounters() {
  const auto& registry = metrics::Registry::Global();
  ServeStats s;
  s.connections_accepted =
      registry.CounterValue("serve.connections_accepted");
  s.connections_rejected =
      registry.CounterValue("serve.connections_rejected");
  s.accept_failures = registry.CounterValue("serve.accept_failures");
  s.requests_ok = registry.CounterValue("serve.requests_ok");
  s.requests_error = registry.CounterValue("serve.requests_error");
  s.requests_deadline_exceeded =
      registry.CounterValue("serve.requests_deadline_exceeded");
  return s;
}

}  // namespace

AnalysisServer::AnalysisServer(
    std::shared_ptr<const core::TableArtifact> artifact,
    std::shared_ptr<const data::Dataset> dataset, ServeOptions options)
    : artifact_(std::move(artifact)),
      dataset_(std::move(dataset)),
      options_(std::move(options)) {}

AnalysisServer::~AnalysisServer() { Shutdown(); }

Status AnalysisServer::Start() {
  if (artifact_ == nullptr) {
    return Status::InvalidArgument("AnalysisServer: null artifact");
  }
  if (running_.load()) {
    return Status::InvalidArgument("AnalysisServer: already started");
  }

  pool_ = std::make_unique<ThreadPool>(options_.solver_threads);
  if (options_.cache_mb > 0) {
    cache_ = std::make_unique<maxent::SolutionCache>(options_.cache_mb << 20);
  }
  core::AnalysisOptions base = options_.analysis;
  base.solver_options.pool = pool_.get();
  base.solver_options.solution_cache = cache_.get();
  if (cache_ == nullptr) {
    base.solver_options.cache_mode = maxent::CacheMode::kOff;
  }
  session_ = std::make_unique<core::AnalysisSession>(artifact_, base);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  // Recover the bound port (the ephemeral-port case: requested port 0).
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  // Per-server stats are deltas against the process-global serve.*
  // counters from this point on.
  baseline_ = ReadServeCounters();
  running_.store(true);
  shutting_down_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  PME_LOG(kInfo) << "serve: listening on " << options_.host << ":" << port_;
  return Status::Ok();
}

void AnalysisServer::Shutdown() {
  if (!running_.exchange(false)) return;
  shutting_down_.store(true);
  // Cooperative cancel first: in-flight solves stop at their next
  // iteration check and answer with termination "cancelled".
  shutdown_source_.Cancel();
  // Wake the acceptor out of accept(2), then every handler out of recv.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
      if (connection->fd >= 0) {
        ::close(connection->fd);
        connection->fd = -1;
      }
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  session_.reset();
  cache_.reset();
  pool_.reset();
}

ServeStats AnalysisServer::stats() const {
  const ServeStats now = ReadServeCounters();
  ServeStats s;
  s.connections_accepted =
      now.connections_accepted - baseline_.connections_accepted;
  s.connections_rejected =
      now.connections_rejected - baseline_.connections_rejected;
  s.accept_failures = now.accept_failures - baseline_.accept_failures;
  s.requests_ok = now.requests_ok - baseline_.requests_ok;
  s.requests_error = now.requests_error - baseline_.requests_error;
  s.requests_deadline_exceeded = now.requests_deadline_exceeded -
                                 baseline_.requests_deadline_exceeded;
  return s;
}

void AnalysisServer::ReapFinishedConnections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t AnalysisServer::ActiveConnections() {
  size_t active = 0;
  for (const auto& connection : connections_) {
    if (!connection->done.load()) ++active;
  }
  return active;
}

void AnalysisServer::AcceptLoop() {
  while (!shutting_down_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (shutting_down_.load()) return;
      // Transient accept failure (EMFILE, aborted handshake): keep
      // serving the connections we have.
      continue;
    }
    if (shutting_down_.load()) {
      ::close(fd);
      return;
    }
    // Failpoint `serve_accept_fail@N`: drop the Nth accepted connection
    // before a handler spawns — the injected stand-in for accept-time
    // failures. The server must keep serving subsequent connects.
    if (PME_FAILPOINT("serve_accept_fail")) {
      ::close(fd);
      GetServeMetrics().accept_failures->Add();
      PME_LOG(kWarning) << "serve: accept failure injected, dropping "
                           "connection";
      continue;
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    ReapFinishedConnections();
    if (ActiveConnections() >= options_.max_connections) {
      ::close(fd);
      GetServeMetrics().connections_rejected->Add();
      PME_LOG(kWarning) << "serve: connection rejected, "
                        << options_.max_connections
                        << " connections already active";
      continue;
    }
    GetServeMetrics().connections_accepted->Add();
    GetServeMetrics().connections_active->Add(1);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { HandleConnection(raw); });
    connections_.push_back(std::move(connection));
  }
}

void AnalysisServer::HandleConnection(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  while (!shutting_down_.load()) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: client is gone
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = HandleLine(line) + "\n";
      if (!SendAll(connection->fd, response)) {
        PME_LOG(kWarning) << "serve: client hung up mid-response";
        connection->done.store(true);
        GetServeMetrics().connections_active->Add(-1);
        return;
      }
    }
    if (buffer.size() > kMaxLineBytes) {
      PME_LOG(kWarning) << "serve: dropping connection streaming "
                        << buffer.size() << " bytes without a newline";
      break;  // unframed garbage
    }
  }
  connection->done.store(true);
  GetServeMetrics().connections_active->Add(-1);
}

std::string AnalysisServer::HandleLine(const std::string& line) {
  Timer timer;
  ServeMetrics& sm = GetServeMetrics();
  const uint64_t parse_start_ns = trace::NowNanos();
  auto request_or = ParseAnalyzeRequest(line);
  const uint64_t parse_end_ns = trace::NowNanos();
  if (!request_or.ok()) {
    sm.requests_error->Add();
    sm.request_seconds->Observe(timer.ElapsedSeconds());
    PME_LOG(kWarning) << "serve: malformed request: "
                      << request_or.status().ToString();
    // Best-effort id recovery so the client can still match the error to
    // its request (the id may have parsed even when a later field did
    // not).
    std::string id;
    if (auto doc = ParseJson(line); doc.ok()) {
      if (const JsonValue* found = doc.value().Find("id"); found != nullptr) {
        if (found->is_string()) id = found->string_value;
        if (found->is_number()) id = JsonNumber(found->number_value);
      }
    }
    return RenderAnalyzeResponse(MakeErrorResponse(id, request_or.status()));
  }
  const AnalyzeRequest& request = request_or.value();

  if (request.verb == Verb::kStats) {
    sm.requests_stats->Add();
    sm.request_seconds->Observe(timer.ElapsedSeconds());
    return RenderStatsResponse(request.id);
  }

  // Every request runs under a fresh trace id (log lines and worker
  // spans correlate through it); `"trace": true` additionally registers
  // a capture so the finished spans ride back on the response.
  const uint64_t trace_id = trace::NewTraceId();
  trace::TraceIdScope trace_scope(trace_id);
  std::optional<trace::RequestCapture> capture;
  if (request.trace) {
    capture.emplace(trace_id);
    // The parse happened before the trace flag was known; backfill its
    // span so traced responses still show the full lifecycle.
    trace::TraceEvent parse_event;
    parse_event.name = "parse";
    parse_event.category = "serve";
    parse_event.trace_id = trace_id;
    parse_event.start_ns = parse_start_ns;
    parse_event.dur_ns = parse_end_ns - parse_start_ns;
    parse_event.tid = trace::CurrentThreadId();
    trace::RecordEvent(parse_event);
  }

  auto fail = [&](const Status& status) {
    sm.requests_error->Add();
    sm.request_seconds->Observe(timer.ElapsedSeconds());
    PME_LOG(kWarning) << "serve: request '" << request.id
                      << "' failed: " << status.ToString();
    AnalyzeResponse response = MakeErrorResponse(request.id, status);
    if (capture.has_value()) {
      response.trace_json = RenderTraceSpans(capture->TakeEvents());
    }
    return RenderAnalyzeResponse(response);
  };

  knowledge::KnowledgeBase kb;
  if (!request.knowledge.empty()) {
    std::string text;
    for (const std::string& statement : request.knowledge) {
      text += statement;
      text += '\n';
    }
    knowledge::ParserContext context;
    context.dataset = dataset_.get();
    if (Status s = knowledge::ParseKnowledge(text, context, &kb); !s.ok()) {
      return fail(s);
    }
  }

  core::AnalysisOptions run_options = session_->options();
  if (request.has_solver) run_options.solver = request.solver;
  if (request.has_cache) {
    run_options.solver_options.cache_mode = request.cache;
  }
  // Deadline: the request's own budget wins; otherwise the server
  // default applies (0 = unlimited). deadline_ms <= 0 is an
  // already-expired budget — every component degrades to its
  // closed-form prior and the response says so via `termination`.
  const double deadline_ms = request.has_deadline
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (request.has_deadline || options_.default_deadline_ms > 0) {
    run_options.solver_options.deadline =
        Deadline::AfterMillis(std::max(0.0, deadline_ms));
  }
  run_options.solver_options.cancel = shutdown_source_.token();

  auto analysis = session_->Run(kb, run_options);
  if (!analysis.ok()) {
    return fail(analysis.status());
  }
  sm.requests_ok->Add();
  if (analysis.value().solver.termination ==
      StatusCode::kDeadlineExceeded) {
    sm.requests_deadline_exceeded->Add();
  }
  AnalyzeResponse response = MakeSuccessResponse(
      request.id, analysis.value(), timer.ElapsedSeconds());
  if (capture.has_value()) {
    // Session spans (compile/solve/evaluate and the worker-side block
    // solves) have all completed by now — the solve barrier is behind
    // us — so the capture is complete.
    response.trace_json = RenderTraceSpans(capture->TakeEvents());
  }
  sm.request_seconds->Observe(timer.ElapsedSeconds());
  return RenderAnalyzeResponse(response);
}

}  // namespace pme::serve
