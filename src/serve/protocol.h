// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_SERVE_PROTOCOL_H_
#define PME_SERVE_PROTOCOL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "core/privacy_maxent.h"
#include "maxent/solver.h"

namespace pme::serve {

/// What a request line asks the server to do. `analyze` (the default)
/// runs a solve; `stats` returns the process-wide metrics registry as
/// JSON and touches no solver state.
enum class Verb { kAnalyze, kStats };

/// One analyze request, decoded from a newline-delimited JSON object:
///
///   {"id": "r1",
///    "knowledge": ["P(flu | gender=male) = 0.3", ...],
///    "deadline_ms": 250,
///    "solver": "lbfgs",
///    "cache": "warm",
///    "trace": true}
///
/// Every field is optional. `knowledge` holds statement lines in the
/// language of knowledge/parser.h (dataset-mode statements need the
/// server's artifact to carry a QI encoder). `deadline_ms <= 0` means an
/// already-expired budget: the solve degrades every component to its
/// closed-form prior immediately (the protocol-level probe for deadline
/// semantics). Absent `deadline_ms` inherits the server default.
/// `solver` / `cache` override the server defaults per request.
/// `trace: true` attaches the request's span breakdown (parse, compile,
/// solve, per-block solves, evaluate) to the response under "trace".
/// `{"verb": "stats"}` instead returns the metrics snapshot.
struct AnalyzeRequest {
  std::string id;
  Verb verb = Verb::kAnalyze;
  std::vector<std::string> knowledge;
  bool has_deadline = false;
  double deadline_ms = 0.0;
  bool has_solver = false;
  maxent::SolverKind solver = maxent::SolverKind::kLbfgs;
  bool has_cache = false;
  maxent::CacheMode cache = maxent::CacheMode::kWarm;
  bool trace = false;
};

/// Parses one request line. kInvalidArgument on malformed JSON, unknown
/// fields of the wrong type, or unknown solver/cache names.
Result<AnalyzeRequest> ParseAnalyzeRequest(std::string_view line);

/// One analyze response, encoded as a single JSON line. `ok == false`
/// carries only {id, ok, error}; success carries the privacy metrics,
/// the solve census, and the per-request cache census:
///
///   {"id":"r1","ok":true,"estimation_accuracy":…,"max_disclosure":…,
///    "expected_best_guess":…,"min_effective_candidates":…,
///    "num_background_constraints":N,"num_vacuous_statements":N,
///    "iterations":N,"solve_seconds":…,"total_seconds":…,
///    "converged":b,"degraded":b,"termination":"ok|deadline_exceeded|…",
///    "components_solved":N,"components_degraded":N,
///    "components_failed":N,
///    "cache_exact_hits":N,"cache_warm_hits":N,"cache_misses":N}
struct AnalyzeResponse {
  std::string id;
  bool ok = false;
  std::string error;  // set when !ok

  double estimation_accuracy = 0.0;
  double max_disclosure = 0.0;
  double expected_best_guess = 0.0;
  double min_effective_candidates = 0.0;
  size_t num_background_constraints = 0;
  size_t num_vacuous_statements = 0;
  size_t iterations = 0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;
  bool converged = false;
  bool degraded = false;
  std::string termination = "ok";
  size_t components_solved = 0;
  size_t components_degraded = 0;
  size_t components_failed = 0;
  size_t cache_exact_hits = 0;
  size_t cache_warm_hits = 0;
  size_t cache_misses = 0;

  /// Pre-rendered JSON array of span objects (set only for
  /// `"trace": true` requests); empty = no "trace" key in the output.
  std::string trace_json;
};

/// Fills a success response from an Analysis (id/total_seconds are the
/// caller's).
AnalyzeResponse MakeSuccessResponse(const std::string& id,
                                    const core::Analysis& analysis,
                                    double total_seconds);

/// Fills an error response.
AnalyzeResponse MakeErrorResponse(const std::string& id,
                                  const Status& status);

/// Renders the single-line JSON encoding (no trailing newline).
std::string RenderAnalyzeResponse(const AnalyzeResponse& response);

/// Renders captured spans as the protocol's "trace" array: one object
/// per span with name, category, start/duration in microseconds, the
/// worker thread id, and any numeric span args.
std::string RenderTraceSpans(const std::vector<trace::TraceEvent>& events);

/// Renders the `stats` verb's response line: {"id":…,"ok":true,
/// "stats":<metrics::Registry JSON>}.
std::string RenderStatsResponse(const std::string& id);

/// Shared spellings of the solver / cache-mode enums ("lbfgs", "warm",
/// ...), used by the protocol and the CLI flags alike.
Result<maxent::SolverKind> ParseSolverKind(const std::string& name);
Result<maxent::CacheMode> ParseCacheModeName(const std::string& name);

/// Protocol spelling of a solve's terminal status.
std::string TerminationToString(StatusCode code);

}  // namespace pme::serve

#endif  // PME_SERVE_PROTOCOL_H_
