// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_SERVE_JSON_H_
#define PME_SERVE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pme::serve {

/// Minimal JSON document model for the newline-delimited serve protocol.
/// Hand-rolled on purpose: the container bakes in no JSON dependency,
/// and the protocol needs only flat objects with string/number/bool
/// fields plus one string array. Numbers are doubles (the protocol has
/// no 64-bit-exact integers); objects preserve insertion order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member with `key`, or null when absent (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (the framing layer already split on newlines). Rejects input
/// nested deeper than 32 levels with a kInvalidArgument carrying the
/// byte offset of the problem.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string EscapeJson(std::string_view s);

/// Renders a double the way the protocol emits numbers: shortest
/// round-trippable form, with non-finite values (which JSON cannot
/// carry) clamped to null.
std::string JsonNumber(double v);

}  // namespace pme::serve

#endif  // PME_SERVE_JSON_H_
