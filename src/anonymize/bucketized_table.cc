#include "anonymize/bucketized_table.h"

#include <algorithm>

namespace pme::anonymize {

Result<BucketizedTable> BucketizedTable::Create(
    std::vector<AbstractRecord> records, std::vector<std::string> qi_names,
    std::vector<std::string> sa_names) {
  if (records.empty()) {
    return Status::InvalidArgument("bucketized table needs >= 1 record");
  }
  uint32_t max_bucket = 0, max_qi = 0, max_sa = 0;
  for (const auto& r : records) {
    max_bucket = std::max(max_bucket, r.bucket);
    max_qi = std::max(max_qi, r.qi);
    max_sa = std::max(max_sa, r.sa);
  }
  const size_t m = static_cast<size_t>(max_bucket) + 1;

  BucketizedTable t;
  t.num_qi_ = max_qi + 1;
  t.num_sa_ = max_sa + 1;
  if (!qi_names.empty() && qi_names.size() < t.num_qi_) {
    return Status::InvalidArgument("qi_names shorter than QI instance count");
  }
  if (!sa_names.empty() && sa_names.size() < t.num_sa_) {
    return Status::InvalidArgument("sa_names shorter than SA instance count");
  }
  t.qi_names_ = std::move(qi_names);
  t.sa_names_ = std::move(sa_names);
  t.bucket_qis_.resize(m);
  t.bucket_sas_.resize(m);
  t.bucket_qi_counts_.resize(m);
  t.bucket_sa_counts_.resize(m);
  t.qi_buckets_.resize(t.num_qi_);
  t.sa_buckets_.resize(t.num_sa_);
  t.qi_totals_.assign(t.num_qi_, 0);

  for (const auto& r : records) {
    t.bucket_qis_[r.bucket].push_back(r.qi);
    t.bucket_sas_[r.bucket].push_back(r.sa);
    ++t.bucket_qi_counts_[r.bucket][r.qi];
    ++t.bucket_sa_counts_[r.bucket][r.sa];
    ++t.qi_totals_[r.qi];
  }
  for (size_t b = 0; b < m; ++b) {
    if (t.bucket_qis_[b].empty()) {
      return Status::InvalidArgument("bucket indices must be dense; bucket " +
                                     std::to_string(b) + " is empty");
    }
    // Publish the SA multiset in sorted order: the original record order
    // inside a bucket must not leak the binding.
    std::sort(t.bucket_sas_[b].begin(), t.bucket_sas_[b].end());
    for (const auto& [q, cnt] : t.bucket_qi_counts_[b]) {
      t.qi_buckets_[q].push_back(static_cast<uint32_t>(b));
    }
    for (const auto& [s, cnt] : t.bucket_sa_counts_[b]) {
      t.sa_buckets_[s].push_back(static_cast<uint32_t>(b));
    }
  }
  t.records_ = std::move(records);
  return t;
}

bool BucketizedTable::QiInBucket(uint32_t q, uint32_t b) const {
  const auto& counts = bucket_qi_counts_[b];
  return counts.find(q) != counts.end();
}

bool BucketizedTable::SaInBucket(uint32_t s, uint32_t b) const {
  const auto& counts = bucket_sa_counts_[b];
  return counts.find(s) != counts.end();
}

double BucketizedTable::ProbQ(uint32_t q) const {
  return static_cast<double>(qi_totals_[q]) /
         static_cast<double>(records_.size());
}

double BucketizedTable::ProbQB(uint32_t q, uint32_t b) const {
  const auto& counts = bucket_qi_counts_[b];
  auto it = counts.find(q);
  if (it == counts.end()) return 0.0;
  return static_cast<double>(it->second) /
         static_cast<double>(records_.size());
}

double BucketizedTable::ProbSB(uint32_t s, uint32_t b) const {
  const auto& counts = bucket_sa_counts_[b];
  auto it = counts.find(s);
  if (it == counts.end()) return 0.0;
  return static_cast<double>(it->second) /
         static_cast<double>(records_.size());
}

double BucketizedTable::ProbB(uint32_t b) const {
  return static_cast<double>(bucket_qis_[b].size()) /
         static_cast<double>(records_.size());
}

double BucketizedTable::TrueConditional(uint32_t q, uint32_t s) const {
  size_t q_count = 0, qs_count = 0;
  for (const auto& r : records_) {
    if (r.qi == q) {
      ++q_count;
      if (r.sa == s) ++qs_count;
    }
  }
  if (q_count == 0) return 0.0;
  return static_cast<double>(qs_count) / static_cast<double>(q_count);
}

std::string BucketizedTable::QiName(uint32_t q) const {
  if (q < qi_names_.size()) return qi_names_[q];
  return "q" + std::to_string(q + 1);
}

std::string BucketizedTable::SaName(uint32_t s) const {
  if (s < sa_names_.size()) return sa_names_[s];
  return "s" + std::to_string(s + 1);
}

Result<DatasetBucketization> BucketizeDataset(
    const data::Dataset& dataset, const std::vector<uint32_t>& partition) {
  if (partition.size() != dataset.num_records()) {
    return Status::InvalidArgument(
        "partition size must equal the record count");
  }
  PME_ASSIGN_OR_RETURN(const size_t sa_attr,
                       dataset.schema().SoleSensitiveIndex());
  data::TupleEncoder encoder(dataset.schema().QiIndices());

  std::vector<AbstractRecord> records(dataset.num_records());
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    records[r].qi = encoder.Encode(dataset, r);
    records[r].sa = dataset.At(r, sa_attr);
    records[r].bucket = partition[r];
  }

  std::vector<std::string> qi_names(encoder.size());
  for (uint32_t q = 0; q < encoder.size(); ++q) {
    qi_names[q] = encoder.ToString(dataset, q);
  }
  const auto& sa_dict = dataset.schema().attribute(sa_attr).dictionary;
  std::vector<std::string> sa_names(sa_dict.size());
  for (uint32_t s = 0; s < sa_dict.size(); ++s) {
    sa_names[s] = sa_dict.ValueOf(s);
  }

  PME_ASSIGN_OR_RETURN(
      BucketizedTable table,
      BucketizedTable::Create(std::move(records), std::move(qi_names),
                              std::move(sa_names)));
  return DatasetBucketization{std::move(table), std::move(encoder), sa_attr};
}

}  // namespace pme::anonymize
