#include "anonymize/anatomy.h"

#include <algorithm>
#include <numeric>

#include "common/prng.h"

namespace pme::anonymize {

Result<std::vector<uint32_t>> AnatomyPartition(const data::Dataset& dataset,
                                               const AnatomyOptions& options) {
  if (options.ell == 0) {
    return Status::InvalidArgument("ell must be positive");
  }
  if (dataset.num_records() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  PME_ASSIGN_OR_RETURN(const size_t sa_attr,
                       dataset.schema().SoleSensitiveIndex());
  const uint32_t num_sa =
      dataset.schema().attribute(sa_attr).dictionary.size();

  // One queue of record indices per SA value, in random (seeded) order so
  // bucket composition is not an artifact of input order.
  std::vector<std::vector<uint32_t>> queues(num_sa);
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    queues[dataset.At(r, sa_attr)].push_back(static_cast<uint32_t>(r));
  }
  Prng prng(options.seed);
  for (auto& q : queues) prng.Shuffle(q);

  // The most frequent SA value is exempt from the distinctness rule
  // (paper footnote 3).
  int64_t exempt = -1;
  if (options.exempt_most_frequent) {
    size_t best = 0;
    for (uint32_t s = 0; s < num_sa; ++s) {
      if (queues[s].size() > best) {
        best = queues[s].size();
        exempt = static_cast<int64_t>(s);
      }
    }
  }

  std::vector<uint32_t> partition(dataset.num_records(), 0);
  size_t remaining = dataset.num_records();
  uint32_t bucket = 0;

  auto pop_record = [&](uint32_t value) {
    const uint32_t rec = queues[value].back();
    queues[value].pop_back();
    partition[rec] = bucket;
    --remaining;
  };

  while (remaining > 0) {
    const size_t slots = std::min(options.ell, remaining);

    // Values with records left, largest queue first (greedy largest-first
    // maximizes the number of future distinct choices).
    std::vector<uint32_t> order;
    for (uint32_t s = 0; s < num_sa; ++s) {
      if (!queues[s].empty()) order.push_back(s);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (queues[a].size() != queues[b].size()) {
        return queues[a].size() > queues[b].size();
      }
      return a < b;
    });

    size_t filled = 0;
    for (uint32_t s : order) {
      if (filled == slots) break;
      pop_record(s);
      ++filled;
    }
    // Shortfall: fewer distinct values than slots. Fill with exempt-value
    // records (allowed to repeat), else fail the diversity contract.
    while (filled < slots && exempt >= 0 &&
           !queues[static_cast<uint32_t>(exempt)].empty()) {
      pop_record(static_cast<uint32_t>(exempt));
      ++filled;
    }
    if (filled < slots) {
      // No exempt records left: repeating a non-exempt value would break
      // ℓ-diversity for this bucket.
      uint32_t worst = 0;
      size_t best = 0;
      for (uint32_t s = 0; s < num_sa; ++s) {
        if (queues[s].size() > best) {
          best = queues[s].size();
          worst = s;
        }
      }
      return Status::FailedPrecondition(
          "dataset cannot be partitioned into ell-diverse buckets: SA value " +
          dataset.schema().attribute(sa_attr).dictionary.ValueOf(worst) +
          " is too frequent");
    }
    ++bucket;
  }
  return partition;
}

}  // namespace pme::anonymize
