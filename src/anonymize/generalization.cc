#include "anonymize/generalization.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <unordered_map>

namespace pme::anonymize {

ValueHierarchy ValueHierarchy::Flat(uint32_t cardinality) {
  ValueHierarchy h;
  // Level 0: identity.
  std::vector<uint32_t> identity(cardinality);
  std::iota(identity.begin(), identity.end(), 0u);
  std::vector<std::string> identity_labels(cardinality);
  for (uint32_t v = 0; v < cardinality; ++v) {
    identity_labels[v] = "v" + std::to_string(v);
  }
  h.groups_.push_back(std::move(identity));
  h.labels_.push_back(std::move(identity_labels));
  h.num_groups_.push_back(cardinality);
  // Top level: everything suppressed to '*'.
  h.groups_.emplace_back(cardinality, 0u);
  h.labels_.push_back({"*"});
  h.num_groups_.push_back(1);
  return h;
}

Result<ValueHierarchy> ValueHierarchy::Create(
    uint32_t cardinality, std::vector<std::vector<uint32_t>> level_groups,
    std::vector<std::vector<std::string>> level_labels) {
  if (level_groups.size() != level_labels.size()) {
    return Status::InvalidArgument("level_groups/level_labels size mismatch");
  }
  ValueHierarchy h = Flat(cardinality);
  // Insert the intermediate levels between identity and suppression.
  std::vector<uint32_t> previous = h.groups_[0];
  for (size_t l = 0; l < level_groups.size(); ++l) {
    const auto& mapping = level_groups[l];
    if (mapping.size() != cardinality) {
      return Status::InvalidArgument("level mapping must cover every value");
    }
    uint32_t max_group = 0;
    for (uint32_t g : mapping) max_group = std::max(max_group, g);
    if (static_cast<size_t>(max_group) + 1 != level_labels[l].size()) {
      return Status::InvalidArgument(
          "level labels must match the number of groups");
    }
    // Coarsening check: values sharing a previous-level group must share
    // a group at this level too.
    std::unordered_map<uint32_t, uint32_t> coarse_of;
    for (uint32_t v = 0; v < cardinality; ++v) {
      auto [it, inserted] = coarse_of.emplace(previous[v], mapping[v]);
      if (!inserted && it->second != mapping[v]) {
        return Status::InvalidArgument(
            "level " + std::to_string(l + 1) +
            " is not a coarsening of the previous level");
      }
    }
    previous = mapping;
    h.groups_.insert(h.groups_.end() - 1, mapping);
    h.labels_.insert(h.labels_.end() - 1, level_labels[l]);
    h.num_groups_.insert(h.num_groups_.end() - 1, max_group + 1);
  }
  return h;
}

std::string GeneralizationLevels::ToString() const {
  std::ostringstream oss;
  oss << "<";
  for (size_t i = 0; i < level.size(); ++i) {
    if (i > 0) oss << ",";
    oss << level[i];
  }
  oss << ">";
  return oss.str();
}

Result<Generalizer> Generalizer::CreateFlat(const data::Dataset* dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must not be null");
  }
  std::vector<ValueHierarchy> hierarchies;
  for (size_t attr : dataset->schema().QiIndices()) {
    hierarchies.push_back(
        ValueHierarchy::Flat(dataset->schema().attribute(attr).dictionary.size()));
  }
  return Create(dataset, std::move(hierarchies));
}

Result<Generalizer> Generalizer::Create(
    const data::Dataset* dataset, std::vector<ValueHierarchy> hierarchies) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset must not be null");
  }
  Generalizer g;
  g.dataset_ = dataset;
  g.qi_attrs_ = dataset->schema().QiIndices();
  if (hierarchies.size() != g.qi_attrs_.size()) {
    return Status::InvalidArgument(
        "need exactly one hierarchy per QI attribute");
  }
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    const uint32_t card =
        dataset->schema().attribute(g.qi_attrs_[i]).dictionary.size();
    if (hierarchies[i].GroupOf(0, card - 1) != card - 1) {
      return Status::InvalidArgument(
          "hierarchy level 0 must be the identity over the dictionary");
    }
  }
  g.hierarchies_ = std::move(hierarchies);
  return g;
}

std::vector<uint32_t> Generalizer::Classes(
    const GeneralizationLevels& levels) const {
  struct VectorHash {
    size_t operator()(const std::vector<uint32_t>& v) const {
      size_t h = 1469598103934665603ULL;
      for (uint32_t x : v) {
        h ^= x;
        h *= 1099511628211ULL;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<uint32_t>, uint32_t, VectorHash> ids;
  std::vector<uint32_t> classes(dataset_->num_records());
  std::vector<uint32_t> key(qi_attrs_.size());
  for (size_t r = 0; r < dataset_->num_records(); ++r) {
    for (size_t i = 0; i < qi_attrs_.size(); ++i) {
      key[i] = hierarchies_[i].GroupOf(levels.level[i],
                                       dataset_->At(r, qi_attrs_[i]));
    }
    auto [it, inserted] =
        ids.emplace(key, static_cast<uint32_t>(ids.size()));
    classes[r] = it->second;
  }
  return classes;
}

size_t Generalizer::MinClassSize(const GeneralizationLevels& levels) const {
  auto classes = Classes(levels);
  std::vector<size_t> counts;
  for (uint32_t c : classes) {
    if (c >= counts.size()) counts.resize(c + 1, 0);
    ++counts[c];
  }
  size_t smallest = dataset_->num_records();
  for (size_t c : counts) smallest = std::min(smallest, c);
  return smallest;
}

Result<GeneralizationLevels> Generalizer::SearchKAnonymous(size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > dataset_->num_records()) {
    return Status::FailedPrecondition(
        "k exceeds the number of records; no recoding can reach it");
  }
  GeneralizationLevels levels;
  levels.level.assign(qi_attrs_.size(), 0);

  auto violating_records = [this, k](const GeneralizationLevels& l) {
    auto classes = Classes(l);
    std::vector<size_t> counts;
    for (uint32_t c : classes) {
      if (c >= counts.size()) counts.resize(c + 1, 0);
      ++counts[c];
    }
    size_t violating = 0;
    for (uint32_t c : classes) {
      if (counts[c] < k) ++violating;
    }
    return violating;
  };

  size_t current = violating_records(levels);
  while (current > 0) {
    // Promote the attribute whose single-level raise reduces violations
    // the most (ties: the one with the most remaining headroom).
    size_t best_attr = SIZE_MAX;
    size_t best_violating = current;
    for (size_t i = 0; i < qi_attrs_.size(); ++i) {
      if (levels.level[i] + 1 >= hierarchies_[i].num_levels()) continue;
      GeneralizationLevels trial = levels;
      ++trial.level[i];
      const size_t v = violating_records(trial);
      if (best_attr == SIZE_MAX || v < best_violating) {
        best_attr = i;
        best_violating = v;
      }
    }
    if (best_attr == SIZE_MAX) {
      return Status::Internal(
          "generalization lattice exhausted before reaching k-anonymity");
    }
    ++levels.level[best_attr];
    current = best_violating;
  }
  return levels;
}

Result<DatasetBucketization> Generalizer::ToBucketizedTable(
    const GeneralizationLevels& levels) const {
  if (levels.level.size() != qi_attrs_.size()) {
    return Status::InvalidArgument("levels arity mismatch");
  }
  return BucketizeDataset(*dataset_, Classes(levels));
}

}  // namespace pme::anonymize
