// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_ANONYMIZE_GENERALIZATION_H_
#define PME_ANONYMIZE_GENERALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "common/status.h"
#include "data/dataset.h"

namespace pme::anonymize {

/// A generalization taxonomy for one categorical attribute: a stack of
/// levels, where level 0 is the identity (the raw values) and each higher
/// level merges values into coarser groups, ending at the one-group
/// suppression level '*'.
///
/// This is the substrate for the paper's first future-work direction —
/// "apply the similar method to other data disguising methods, such as
/// generalization".
class ValueHierarchy {
 public:
  /// Identity-plus-suppression hierarchy (two meaningful levels) for an
  /// attribute with `cardinality` values.
  static ValueHierarchy Flat(uint32_t cardinality);

  /// Builds a hierarchy with the given intermediate levels. Each level is
  /// a vector mapping a raw value code to its group index at that level,
  /// with parallel group labels. Levels must be ordered fine-to-coarse
  /// and each must be a coarsening of the previous one (validated).
  static Result<ValueHierarchy> Create(
      uint32_t cardinality,
      std::vector<std::vector<uint32_t>> level_groups,
      std::vector<std::vector<std::string>> level_labels);

  /// Number of levels including identity (level 0) and suppression (top).
  size_t num_levels() const { return groups_.size(); }

  /// Group of raw code `value` at `level`.
  uint32_t GroupOf(size_t level, uint32_t value) const {
    return groups_[level][value];
  }
  /// Number of groups at `level`.
  uint32_t NumGroups(size_t level) const { return num_groups_[level]; }
  /// Display label of group `g` at `level`.
  const std::string& LabelOf(size_t level, uint32_t group) const {
    return labels_[level][group];
  }

 private:
  // groups_[level][code] -> group id; level 0 is identity.
  std::vector<std::vector<uint32_t>> groups_;
  std::vector<std::vector<std::string>> labels_;
  std::vector<uint32_t> num_groups_;
};

/// A full-domain global recoding: one generalization level per QI
/// attribute (the classical Incognito/Samarati search space).
struct GeneralizationLevels {
  std::vector<size_t> level;  // indexed by QI position

  std::string ToString() const;
};

/// Generalization engine for a dataset: owns one hierarchy per QI
/// attribute and evaluates/produces recodings.
class Generalizer {
 public:
  /// Uses Flat() hierarchies for every QI attribute. `dataset` must
  /// outlive the generalizer.
  static Result<Generalizer> CreateFlat(const data::Dataset* dataset);

  /// Uses caller-provided hierarchies (one per QI attribute, in QI-index
  /// order).
  static Result<Generalizer> Create(const data::Dataset* dataset,
                                    std::vector<ValueHierarchy> hierarchies);

  const std::vector<size_t>& qi_attrs() const { return qi_attrs_; }
  const ValueHierarchy& hierarchy(size_t qi_pos) const {
    return hierarchies_[qi_pos];
  }

  /// Size of the smallest equivalence class under `levels` (the
  /// k-anonymity parameter the recoding achieves).
  size_t MinClassSize(const GeneralizationLevels& levels) const;

  /// Finds a minimal-ish full-domain recoding achieving k-anonymity by
  /// greedy bottom-up search: repeatedly raise the level of the attribute
  /// whose promotion shrinks the number of records in violating classes
  /// the most. Errors if even full suppression cannot reach k (k > N).
  Result<GeneralizationLevels> SearchKAnonymous(size_t k) const;

  /// The generalized equivalence-class partition: records mapped to dense
  /// class ids under `levels`.
  std::vector<uint32_t> Classes(const GeneralizationLevels& levels) const;

  /// Bridges a generalized release to the Privacy-MaxEnt machinery: each
  /// equivalence class becomes one bucket whose SA multiset is published.
  ///
  /// MODELING NOTE: a generalized release publishes only the *generalized*
  /// QI tuple per class, not the raw tuples a bucketized release would
  /// show. Analyzing it with the Section-5 invariants therefore adopts a
  /// worst-case adversary who knows the raw QI multiset of each class
  /// (e.g. from an external identified register, the same assumption that
  /// powers linking attacks). See DESIGN.md for the discussion.
  Result<DatasetBucketization> ToBucketizedTable(
      const GeneralizationLevels& levels) const;

 private:
  Generalizer() = default;

  const data::Dataset* dataset_ = nullptr;
  std::vector<size_t> qi_attrs_;
  std::vector<ValueHierarchy> hierarchies_;
};

}  // namespace pme::anonymize

#endif  // PME_ANONYMIZE_GENERALIZATION_H_
