// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_ANONYMIZE_PSEUDONYM_H_
#define PME_ANONYMIZE_PSEUDONYM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anonymize/bucketized_table.h"
#include "common/status.h"

namespace pme::anonymize {

/// The expanded-identifier view of Section 6 / Figure 4: every record gets
/// a pseudonym; all occurrences of the same QI instance share the *set* of
/// pseudonyms assigned to that instance, reflecting that the adversary
/// cannot tell which occurrence belongs to which person.
///
/// Pseudonym ids are dense in [0, N): pseudonym k belongs to QI instance
/// `QiOf(k)`; the set of candidate (bucket, occurrence) slots for k is
/// every occurrence of that QI instance anywhere in the table.
class PseudonymTable {
 public:
  /// Builds the pseudonym expansion for `table` (which must outlive this
  /// object). Pseudonyms are numbered by QI instance in ascending order
  /// (all of q1's pseudonyms first, then q2's, ...), matching Figure 4.
  static Result<PseudonymTable> Create(const BucketizedTable* table);

  /// Total number of pseudonyms == number of records N.
  size_t num_pseudonyms() const { return qi_of_.size(); }

  /// The QI instance a pseudonym belongs to.
  uint32_t QiOf(uint32_t pseudonym) const { return qi_of_[pseudonym]; }

  /// All pseudonyms of a QI instance (Figure 4's {i1, i2, i3} for q1).
  const std::vector<uint32_t>& PseudonymsOf(uint32_t qi) const {
    return pseudonyms_of_qi_[qi];
  }

  /// Buckets in which a pseudonym may reside: all buckets containing its
  /// QI instance.
  const std::vector<uint32_t>& CandidateBuckets(uint32_t pseudonym) const;

  /// Resolves a person known to have QI instance `qi` to one of its
  /// pseudonyms (the first unclaimed one). This models the linking attack
  /// step "if we know Alice is in the data set, assign her any of the
  /// pseudonyms". Errors if more people are claimed than occurrences exist.
  Result<uint32_t> ClaimPseudonym(uint32_t qi);

  /// Display label "i{k+1}" matching the paper's notation.
  std::string Name(uint32_t pseudonym) const {
    return "i" + std::to_string(pseudonym + 1);
  }

  const BucketizedTable& table() const { return *table_; }

 private:
  PseudonymTable() = default;

  const BucketizedTable* table_ = nullptr;
  std::vector<uint32_t> qi_of_;
  std::vector<std::vector<uint32_t>> pseudonyms_of_qi_;
  std::vector<size_t> claimed_;  // per QI instance
};

}  // namespace pme::anonymize

#endif  // PME_ANONYMIZE_PSEUDONYM_H_
