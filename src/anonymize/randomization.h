// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_ANONYMIZE_RANDOMIZATION_H_
#define PME_ANONYMIZE_RANDOMIZATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pme::anonymize {

/// Randomized-response disguising of the sensitive attribute — the
/// second disguising family the paper's future work points at
/// ("randomization", citing Agrawal–Srikant and Warner-style randomized
/// response).
///
/// Each record keeps its true SA value with probability `retention` and
/// otherwise reports a value drawn uniformly from the SA domain. The
/// perturbation matrix is  M = r·I + (1−r)/m · 1  (m = domain size), so
/// observed distribution = M · true distribution, which is invertible
/// for any r > 0:  true = M⁻¹ · observed.
struct RandomizedResponseOptions {
  /// Probability of reporting the true value (Warner's p).
  double retention = 0.7;
  uint64_t seed = 99;
};

/// The perturbed release plus everything needed for reconstruction.
struct RandomizedRelease {
  /// Same schema as the input, SA column perturbed.
  data::Dataset dataset;
  double retention = 0.0;
  /// SA domain size m.
  uint32_t domain = 0;
};

/// Perturbs the sole sensitive attribute of `dataset`.
Result<RandomizedRelease> RandomizeResponse(
    const data::Dataset& dataset, const RandomizedResponseOptions& options = {});

/// Unbiased reconstruction of the true SA marginal from the perturbed
/// release:  true = M⁻¹ · observed, with
/// M⁻¹ = (I − (1−r)/m·1/ r... ) computed in closed form:
///   true_i = (observed_i − (1−r)/m) / r.
/// Entries are clipped at 0 and renormalized (finite-sample noise can
/// push raw estimates slightly negative).
Result<std::vector<double>> ReconstructSaDistribution(
    const RandomizedRelease& release);

/// The adversary's posterior over a single record's true SA value given
/// its *observed* (perturbed) value and the reconstructed prior:
///   P(true = t | obs = o) ∝ M[o][t] · prior[t],
/// where M[o][t] = r·[o==t] + (1−r)/m. This is the randomization
/// counterpart of the bucketization posterior P*(SA | QI) and plugs into
/// the same privacy metrics.
Result<std::vector<double>> RecordPosterior(const RandomizedRelease& release,
                                            uint32_t observed_sa,
                                            const std::vector<double>& prior);

}  // namespace pme::anonymize

#endif  // PME_ANONYMIZE_RANDOMIZATION_H_
