// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_ANONYMIZE_ANATOMY_H_
#define PME_ANONYMIZE_ANATOMY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pme::anonymize {

/// Options for the Anatomy-style ℓ-diversity bucketizer.
struct AnatomyOptions {
  /// Records per bucket and diversity target (paper: ℓ = 5).
  size_t ell = 5;
  /// Paper footnote 3 (after [17]): the most frequent SA value is treated
  /// as non-sensitive and exempt from the distinctness requirement, which
  /// is what makes 5-diversity achievable on Adult-like skew.
  bool exempt_most_frequent = true;
  /// Shuffle seed: ties between equal-count SA groups are broken randomly
  /// but reproducibly.
  uint64_t seed = 1;
};

/// Partitions the records of `dataset` into buckets of `ell` records such
/// that within each bucket all non-exempt SA values are distinct
/// (distinct-ℓ-diversity with the most-frequent-value exemption).
///
/// Algorithm (Xiao & Tao's Anatomy, greedy largest-group-first): maintain
/// one queue of records per SA value; repeatedly emit a bucket holding one
/// record from each of the ℓ currently largest queues. Records of the
/// exempt value may fill multiple slots of a bucket when fewer than ℓ
/// distinct values remain. Returns, for each record, its bucket index
/// (dense, starting at 0).
///
/// Errors with kFailedPrecondition if the residue cannot be placed without
/// violating diversity (e.g. one non-exempt value covers more than 1/ℓ of
/// the data).
Result<std::vector<uint32_t>> AnatomyPartition(const data::Dataset& dataset,
                                               const AnatomyOptions& options = {});

}  // namespace pme::anonymize

#endif  // PME_ANONYMIZE_ANATOMY_H_
