#include "anonymize/randomization.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/prng.h"
#include "data/stats.h"

namespace pme::anonymize {

Result<RandomizedRelease> RandomizeResponse(
    const data::Dataset& dataset, const RandomizedResponseOptions& options) {
  if (options.retention <= 0.0 || options.retention > 1.0) {
    return Status::InvalidArgument("retention must lie in (0, 1]");
  }
  PME_ASSIGN_OR_RETURN(const size_t sa_attr,
                       dataset.schema().SoleSensitiveIndex());
  const uint32_t domain =
      dataset.schema().attribute(sa_attr).dictionary.size();
  if (domain < 2) {
    return Status::FailedPrecondition(
        "randomized response needs at least two sensitive values");
  }

  RandomizedRelease release{data::Dataset(dataset.schema()),
                            options.retention, domain};
  Prng prng(options.seed);
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    std::vector<uint32_t> codes = dataset.Record(r);
    if (prng.NextDouble() >= options.retention) {
      codes[sa_attr] = static_cast<uint32_t>(prng.NextBounded(domain));
    }
    PME_RETURN_IF_ERROR(release.dataset.AppendRecord(std::move(codes)));
  }
  return release;
}

Result<std::vector<double>> ReconstructSaDistribution(
    const RandomizedRelease& release) {
  PME_ASSIGN_OR_RETURN(const size_t sa_attr,
                       release.dataset.schema().SoleSensitiveIndex());
  data::DatasetStats stats(&release.dataset);
  const std::vector<double> observed = stats.Marginal(sa_attr);

  const double r = release.retention;
  const double noise = (1.0 - r) / release.domain;
  std::vector<double> truth(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    truth[i] = std::max(0.0, (observed[i] - noise) / r);
  }
  if (!NormalizeInPlace(truth)) {
    return Status::NumericalError(
        "reconstructed distribution degenerated to zero");
  }
  return truth;
}

Result<std::vector<double>> RecordPosterior(const RandomizedRelease& release,
                                            uint32_t observed_sa,
                                            const std::vector<double>& prior) {
  if (observed_sa >= release.domain) {
    return Status::InvalidArgument("observed value out of the SA domain");
  }
  if (prior.size() != release.domain) {
    return Status::InvalidArgument("prior arity mismatch");
  }
  const double r = release.retention;
  const double noise = (1.0 - r) / release.domain;
  std::vector<double> posterior(release.domain);
  for (uint32_t t = 0; t < release.domain; ++t) {
    const double likelihood = (t == observed_sa ? r : 0.0) + noise;
    posterior[t] = likelihood * prior[t];
  }
  if (!NormalizeInPlace(posterior)) {
    return Status::NumericalError("posterior normalization failed");
  }
  return posterior;
}

}  // namespace pme::anonymize
