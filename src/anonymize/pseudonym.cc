#include "anonymize/pseudonym.h"

namespace pme::anonymize {

Result<PseudonymTable> PseudonymTable::Create(const BucketizedTable* table) {
  if (table == nullptr) {
    return Status::InvalidArgument("table must not be null");
  }
  PseudonymTable p;
  p.table_ = table;
  p.pseudonyms_of_qi_.resize(table->num_qi_values());
  p.claimed_.assign(table->num_qi_values(), 0);

  // Count occurrences of each QI instance from the published view.
  std::vector<size_t> occurrences(table->num_qi_values(), 0);
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    for (uint32_t q : table->BucketQis(b)) ++occurrences[q];
  }
  for (uint32_t q = 0; q < table->num_qi_values(); ++q) {
    for (size_t k = 0; k < occurrences[q]; ++k) {
      const uint32_t id = static_cast<uint32_t>(p.qi_of_.size());
      p.qi_of_.push_back(q);
      p.pseudonyms_of_qi_[q].push_back(id);
    }
  }
  return p;
}

const std::vector<uint32_t>& PseudonymTable::CandidateBuckets(
    uint32_t pseudonym) const {
  return table_->BucketsWithQi(qi_of_[pseudonym]);
}

Result<uint32_t> PseudonymTable::ClaimPseudonym(uint32_t qi) {
  if (qi >= pseudonyms_of_qi_.size()) {
    return Status::InvalidArgument("unknown QI instance");
  }
  if (claimed_[qi] >= pseudonyms_of_qi_[qi].size()) {
    return Status::FailedPrecondition(
        "all pseudonyms of this QI instance are already claimed");
  }
  return pseudonyms_of_qi_[qi][claimed_[qi]++];
}

}  // namespace pme::anonymize
