#include "anonymize/diversity.h"

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace pme::anonymize {

size_t DistinctDiversity(const BucketizedTable& table, uint32_t b,
                         std::optional<uint32_t> exempt_sa) {
  size_t distinct = 0;
  for (const auto& [s, cnt] : table.BucketSaCounts(b)) {
    if (exempt_sa.has_value() && s == *exempt_sa) continue;
    ++distinct;
  }
  return distinct;
}

double EntropyDiversity(const BucketizedTable& table, uint32_t b) {
  const auto& counts = table.BucketSaCounts(b);
  double total = 0.0;
  for (const auto& [s, cnt] : counts) total += cnt;
  double h = 0.0;
  for (const auto& [s, cnt] : counts) {
    const double p = cnt / total;
    h -= XLogX(p);
  }
  return std::exp(h);
}

DiversityReport MeasureDiversity(const BucketizedTable& table,
                                 std::optional<uint32_t> exempt_sa,
                                 size_t ell_target) {
  DiversityReport report;
  report.min_distinct = std::numeric_limits<size_t>::max();
  report.min_entropy_ell = std::numeric_limits<double>::max();
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    size_t d = DistinctDiversity(table, b, exempt_sa);
    const bool all_exempt = exempt_sa.has_value() && d == 0 &&
                            table.BucketSaCounts(b).size() == 1;
    if (all_exempt) d = ell_target;
    if (d < report.min_distinct) {
      report.min_distinct = d;
      report.worst_bucket = b;
    }
    report.min_entropy_ell =
        std::min(report.min_entropy_ell, EntropyDiversity(table, b));
  }
  return report;
}

bool SatisfiesDistinctDiversity(const BucketizedTable& table, size_t ell,
                                std::optional<uint32_t> exempt_sa) {
  return MeasureDiversity(table, exempt_sa, ell).min_distinct >= ell;
}

uint32_t MostFrequentSa(const BucketizedTable& table) {
  std::vector<size_t> counts(table.num_sa_values(), 0);
  for (const auto& r : table.records()) ++counts[r.sa];
  uint32_t best = 0;
  for (uint32_t s = 1; s < counts.size(); ++s) {
    if (counts[s] > counts[best]) best = s;
  }
  return best;
}

}  // namespace pme::anonymize
