// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_ANONYMIZE_BUCKETIZED_TABLE_H_
#define PME_ANONYMIZE_BUCKETIZED_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace pme::anonymize {

/// One original record in abstract form: which QI instance, which SA
/// instance, which bucket. The (qi, sa) binding is the ground truth the
/// adversary tries to reconstruct; the *published* view of a bucket is only
/// the multiset of QI instances and the multiset of SA instances.
struct AbstractRecord {
  uint32_t qi = 0;
  uint32_t sa = 0;
  uint32_t bucket = 0;
};

/// The bucketized data set D' of the paper, in the abstract form of
/// Figure 1(c): records are identified by dense QI-instance ids (q1, q2,
/// ...) and SA-instance ids (s1, s2, ...), partitioned into buckets.
///
/// The table keeps the ground-truth record bindings for evaluation (the
/// paper's "Estimation Accuracy" compares the MaxEnt posterior against the
/// original data), but every quantity a real adversary could observe —
/// bucket membership multisets, P(q), P(q,b), P(s,b) — is exposed through
/// its own accessor and derived only from the published view.
class BucketizedTable {
 public:
  /// Validates and builds a table from abstract records. Bucket indices
  /// must be dense in [0, max_bucket]. `qi_names` / `sa_names` are optional
  /// display labels (empty means synthetic "q{i}"/"s{j}" labels).
  static Result<BucketizedTable> Create(std::vector<AbstractRecord> records,
                                        std::vector<std::string> qi_names = {},
                                        std::vector<std::string> sa_names = {});

  /// Total number of records N.
  size_t num_records() const { return records_.size(); }
  /// Number of buckets m.
  size_t num_buckets() const { return bucket_qis_.size(); }
  /// Number of distinct QI instances across the table.
  uint32_t num_qi_values() const { return num_qi_; }
  /// Number of distinct SA instances across the table.
  uint32_t num_sa_values() const { return num_sa_; }

  /// Ground-truth abstract records (evaluation only).
  const std::vector<AbstractRecord>& records() const { return records_; }

  /// QI instances present in bucket `b`, one entry per occurrence
  /// (published view).
  const std::vector<uint32_t>& BucketQis(uint32_t b) const {
    return bucket_qis_[b];
  }
  /// SA instances present in bucket `b`, one entry per occurrence, sorted —
  /// the published "mixed bag" of Figure 1(b) (published view).
  const std::vector<uint32_t>& BucketSas(uint32_t b) const {
    return bucket_sas_[b];
  }

  /// Distinct QI instances in bucket `b` with multiplicities.
  const std::map<uint32_t, uint32_t>& BucketQiCounts(uint32_t b) const {
    return bucket_qi_counts_[b];
  }
  /// Distinct SA instances in bucket `b` with multiplicities.
  const std::map<uint32_t, uint32_t>& BucketSaCounts(uint32_t b) const {
    return bucket_sa_counts_[b];
  }

  /// True iff QI instance q occurs in bucket b.
  bool QiInBucket(uint32_t q, uint32_t b) const;
  /// True iff SA instance s occurs in bucket b.
  bool SaInBucket(uint32_t s, uint32_t b) const;

  /// Buckets containing QI instance q, ascending.
  const std::vector<uint32_t>& BucketsWithQi(uint32_t q) const {
    return qi_buckets_[q];
  }
  /// Buckets containing SA instance s, ascending.
  const std::vector<uint32_t>& BucketsWithSa(uint32_t s) const {
    return sa_buckets_[s];
  }

  /// P(q): fraction of records with QI instance q (observable: QI values
  /// are published in clear).
  double ProbQ(uint32_t q) const;
  /// P(q, b): fraction of records with QI instance q in bucket b.
  double ProbQB(uint32_t q, uint32_t b) const;
  /// P(s, b): fraction of records with SA instance s in bucket b
  /// (observable: the bucket's SA multiset is published).
  double ProbSB(uint32_t s, uint32_t b) const;
  /// P(b): fraction of records in bucket b.
  double ProbB(uint32_t b) const;

  /// Ground-truth conditional P(s | q) computed from the original
  /// bindings; used only for evaluation.
  double TrueConditional(uint32_t q, uint32_t s) const;

  /// Display label of a QI instance ("q3" or a caller-provided name).
  std::string QiName(uint32_t q) const;
  /// Display label of an SA instance.
  std::string SaName(uint32_t s) const;

 private:
  BucketizedTable() = default;

  std::vector<AbstractRecord> records_;
  uint32_t num_qi_ = 0;
  uint32_t num_sa_ = 0;
  std::vector<std::vector<uint32_t>> bucket_qis_;
  std::vector<std::vector<uint32_t>> bucket_sas_;
  std::vector<std::map<uint32_t, uint32_t>> bucket_qi_counts_;
  std::vector<std::map<uint32_t, uint32_t>> bucket_sa_counts_;
  std::vector<std::vector<uint32_t>> qi_buckets_;
  std::vector<std::vector<uint32_t>> sa_buckets_;
  std::vector<size_t> qi_totals_;  // occurrences of each QI instance
  std::vector<std::string> qi_names_;
  std::vector<std::string> sa_names_;
};

/// Bridges a concrete Dataset to the abstract form: encodes each record's
/// QI tuple and SA value into dense instance ids using `partition[row]` as
/// the bucket assignment. Returns the table plus the QI tuple encoder (so
/// knowledge expressed over raw attributes can be mapped to instance ids).
struct DatasetBucketization {
  BucketizedTable table;
  data::TupleEncoder qi_encoder;
  /// SA instance id == SA dictionary code (identity mapping).
  size_t sa_attr = 0;
};

Result<DatasetBucketization> BucketizeDataset(
    const data::Dataset& dataset, const std::vector<uint32_t>& partition);

}  // namespace pme::anonymize

#endif  // PME_ANONYMIZE_BUCKETIZED_TABLE_H_
