// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_ANONYMIZE_DIVERSITY_H_
#define PME_ANONYMIZE_DIVERSITY_H_

#include <cstdint>
#include <optional>

#include "anonymize/bucketized_table.h"

namespace pme::anonymize {

/// Diversity measurements over a published bucketized table. These are the
/// classical pre-background-knowledge privacy criteria the paper builds on
/// (Section 2).
struct DiversityReport {
  /// Minimum over buckets of the number of distinct SA instances
  /// (the "distinct ℓ-diversity" ℓ of the table).
  size_t min_distinct = 0;
  /// Minimum over buckets of exp(H(SA | bucket)) — entropy ℓ-diversity.
  double min_entropy_ell = 0.0;
  /// Index of the bucket realizing min_distinct.
  uint32_t worst_bucket = 0;
};

/// Number of distinct SA instances in bucket `b`, not counting
/// `exempt_sa` if provided (paper footnote 3 treats the most frequent SA
/// value as non-sensitive).
size_t DistinctDiversity(const BucketizedTable& table, uint32_t b,
                         std::optional<uint32_t> exempt_sa = std::nullopt);

/// exp of the Shannon entropy of the SA multiset of bucket `b` — the
/// "effective number" of SA values an adversary must distinguish.
double EntropyDiversity(const BucketizedTable& table, uint32_t b);

/// Whole-table diversity summary. With `exempt_sa` set, buckets consisting
/// solely of the exempt value count as diversity `ell_target` (they carry
/// no sensitive information at all).
DiversityReport MeasureDiversity(const BucketizedTable& table,
                                 std::optional<uint32_t> exempt_sa = std::nullopt,
                                 size_t ell_target = 0);

/// True iff every bucket has at least `ell` distinct non-exempt SA
/// instances (or is all-exempt).
bool SatisfiesDistinctDiversity(const BucketizedTable& table, size_t ell,
                                std::optional<uint32_t> exempt_sa = std::nullopt);

/// The most frequent SA instance of the table (the exemption candidate).
uint32_t MostFrequentSa(const BucketizedTable& table);

}  // namespace pme::anonymize

#endif  // PME_ANONYMIZE_DIVERSITY_H_
