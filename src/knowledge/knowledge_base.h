// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_KNOWLEDGE_KNOWLEDGE_BASE_H_
#define PME_KNOWLEDGE_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "knowledge/rule.h"

namespace pme::knowledge {

/// Relation of a knowledge statement to its right-hand side.
enum class Relation : int {
  kEq = 0,  ///< exact probabilistic knowledge, P(...) = rhs
  kLe = 1,  ///< vague knowledge upper bound, P(...) <= rhs (Section 4.5)
  kGe = 2,  ///< vague knowledge lower bound, P(...) >= rhs
};

/// Knowledge about the data distribution (Section 4.1): a statement about
/// `P(S-set | Qv)` where Qv is either a raw attribute/value combination of
/// the original dataset or directly an abstract QI instance id of a
/// bucketized table (used in worked examples like Figure 1(c)).
///
/// The S-set generalizes single values: "P(s1 or s2 | q3) = 0" from
/// Section 3.1 is expressed with sa_codes = {s1, s2}.
struct ConditionalStatement {
  /// Abstract mode: the QI instance id in the bucketized table. When set,
  /// `attrs`/`values` are ignored.
  std::optional<uint32_t> abstract_qi;
  /// Dataset mode: Qv as attribute indices + value codes.
  std::vector<size_t> attrs;
  std::vector<uint32_t> values;
  /// The sensitive instance ids (dataset mode: SA dictionary codes).
  std::vector<uint32_t> sa_codes;
  Relation rel = Relation::kEq;
  /// The asserted conditional probability P(S-set | Qv).
  double probability = 0.0;
  /// Optional display label for diagnostics.
  std::string label;
};

/// Kinds of knowledge about individuals (Section 6).
enum class IndividualKind : int {
  /// Type 1/2: probabilistic knowledge tying one person to one or more SA
  /// values, e.g. "P(Breast Cancer | Alice) = 0.2",
  /// "Alice has either s1 or s4" (probability 1 over the set).
  kPersonSaSet = 0,
  /// Type 3: a count over several (person, SA) pairs, e.g. "two people
  /// among {Alice⇒HIV, Bob⇒HIV, Charlie⇒HIV}".
  kGroupCount = 1,
};

/// Knowledge about individuals, phrased over pseudonyms (Figure 4): the
/// statement Σ P(i_k, q_{i_k}, s_k, ·) REL rhs_probability, where the sum
/// ranges over the listed (pseudonym, sa) pairs and all candidate buckets.
struct IndividualStatement {
  IndividualKind kind = IndividualKind::kPersonSaSet;
  /// (pseudonym id, sensitive instance id) pairs the statement covers.
  std::vector<std::pair<uint32_t, uint32_t>> terms;
  Relation rel = Relation::kEq;
  /// Right-hand side in probability units. For kPersonSaSet this is
  /// P(S-set | person) / N-normalized internally by the model; for
  /// kGroupCount it is (#people asserted) / N.
  double probability = 0.0;
  std::string label;
};

/// The adversary's assumed background knowledge: a bag of statements about
/// the data distribution plus (optionally) statements about individuals.
/// This is the object whose *size* the Top-(K+, K−) bound controls.
class KnowledgeBase {
 public:
  /// Adds one distribution statement.
  void Add(ConditionalStatement statement) {
    conditionals_.push_back(std::move(statement));
  }
  /// Adds one individual statement.
  void Add(IndividualStatement statement) {
    individuals_.push_back(std::move(statement));
  }

  /// Converts mined association rules into conditional statements
  /// (each rule asserts P(S | Qv) = data-derived conditional; Section 4.2).
  void AddRules(const std::vector<AssociationRule>& rules);

  const std::vector<ConditionalStatement>& conditionals() const {
    return conditionals_;
  }
  const std::vector<IndividualStatement>& individuals() const {
    return individuals_;
  }

  /// Total number of statements (the "amount of background knowledge" axis
  /// of Figures 5–7).
  size_t size() const { return conditionals_.size() + individuals_.size(); }
  bool empty() const { return size() == 0; }

 private:
  std::vector<ConditionalStatement> conditionals_;
  std::vector<IndividualStatement> individuals_;
};

/// Builders for the statement grammar, mirroring the paper's examples.
/// All return dataset-mode statements; abstract-mode ones are built with
/// `AbstractConditional`.
ConditionalStatement MakeConditional(std::vector<size_t> attrs,
                                     std::vector<uint32_t> values,
                                     uint32_t sa_code, double probability,
                                     Relation rel = Relation::kEq);

/// "P(s-set | q) = prob" directly over abstract instance ids.
ConditionalStatement AbstractConditional(uint32_t qi,
                                         std::vector<uint32_t> sa_codes,
                                         double probability,
                                         Relation rel = Relation::kEq);

}  // namespace pme::knowledge

#endif  // PME_KNOWLEDGE_KNOWLEDGE_BASE_H_
