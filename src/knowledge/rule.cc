#include "knowledge/rule.h"

#include <cstdio>
#include <sstream>

namespace pme::knowledge {

std::string AssociationRule::ToString(const data::Dataset& dataset) const {
  std::ostringstream oss;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) oss << ",";
    const auto& attr = dataset.schema().attribute(attrs[i]);
    oss << attr.name << "=" << attr.dictionary.ValueOf(values[i]);
  }
  oss << (positive ? " => " : " => NOT ");
  auto sa = dataset.schema().SoleSensitiveIndex();
  if (sa.ok()) {
    const auto& attr = dataset.schema().attribute(sa.value());
    oss << attr.name << "=" << attr.dictionary.ValueOf(sa_code);
  } else {
    oss << "sa#" << sa_code;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), " [conf %.4f supp %.5f]", confidence,
                support);
  oss << buf;
  return oss.str();
}

std::string AssociationRule::ToStatement(const data::Dataset& dataset) const {
  std::ostringstream oss;
  oss << "P(";
  auto sa = dataset.schema().SoleSensitiveIndex();
  if (sa.ok()) {
    oss << dataset.schema().attribute(sa.value()).dictionary.ValueOf(sa_code);
  } else {
    oss << "sa#" << sa_code;
  }
  oss << " | ";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) oss << ",";
    const auto& attr = dataset.schema().attribute(attrs[i]);
    oss << attr.name << "=" << attr.dictionary.ValueOf(values[i]);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), ") = %.17g", conditional);
  oss << buf;
  return oss.str();
}

bool RuleRankBefore(const AssociationRule& a, const AssociationRule& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.support != b.support) return a.support > b.support;
  if (a.attrs.size() != b.attrs.size()) return a.attrs.size() < b.attrs.size();
  if (a.attrs != b.attrs) return a.attrs < b.attrs;
  if (a.values != b.values) return a.values < b.values;
  return a.sa_code < b.sa_code;
}

}  // namespace pme::knowledge
