// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_KNOWLEDGE_PARSER_H_
#define PME_KNOWLEDGE_PARSER_H_

#include <optional>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"
#include "knowledge/knowledge_base.h"

namespace pme::knowledge {

/// A small text language for background-knowledge statements — the
/// paper's pitch is that *any* knowledge expressible as linear
/// (in)equalities over probabilities can be fed to the same algorithm;
/// this parser is the corresponding front door.
///
/// Grammar (one statement per line; '#' starts a comment):
///
///   conditional   := "P(" sa-set "|" condition ")" rel number
///   sa-set        := sa-term { "or" sa-term }
///   sa-term       := VALUE            (a value of the sensitive attribute)
///                  | "s" INDEX        (abstract instance, 1-based)
///   condition     := assignment { "," assignment }   (dataset mode)
///                  | "q" INDEX                        (abstract mode)
///                  | "person" "i" INDEX               (individual mode)
///   assignment    := ATTR "=" VALUE
///   rel           := "=" | "<=" | ">="
///
///   group-count   := "count(" pair { "," pair } ")" rel number
///   pair          := "i" INDEX ":" sa-term      (pseudonym carries value)
///
/// Examples, matching the paper's prose:
///   P(breast-cancer | gender=male) = 0
///   P(flu | gender=male) = 0.3
///   P(s1 or s2 | q3) = 0
///   P(s1 | q1) <= 0.35
///   P(breast-cancer | person i1) = 0.2
///   P(breast-cancer or hiv | person i1) = 1
///   count(i1:hiv, i4:hiv, i9:hiv) = 2
///
/// Dataset-mode statements (attr=value) need a Dataset to resolve names
/// and value codes; abstract/individual statements parse without one.
struct ParserContext {
  /// Required for dataset-mode statements and named SA values.
  const data::Dataset* dataset = nullptr;
};

/// One parsed statement: exactly one of the two members is set.
struct ParsedStatement {
  std::optional<ConditionalStatement> conditional;
  std::optional<IndividualStatement> individual;
};

/// Parses a single statement. Errors carry the offending token.
Result<ParsedStatement> ParseStatement(std::string_view line,
                                       const ParserContext& context = {});

/// Parses a whole document (one statement per line, blank lines and
/// '#'-comments skipped) into `kb`. Stops at the first error, reporting
/// the line number.
Status ParseKnowledge(std::string_view text, const ParserContext& context,
                      KnowledgeBase* kb);

}  // namespace pme::knowledge

#endif  // PME_KNOWLEDGE_PARSER_H_
