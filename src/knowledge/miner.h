// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_KNOWLEDGE_MINER_H_
#define PME_KNOWLEDGE_MINER_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "knowledge/rule.h"

namespace pme::knowledge {

/// Options for the association-rule miner.
struct MinerOptions {
  /// Minimum support: an association rule must be backed by at least this
  /// many records (paper: 3, i.e. min support 3/14210).
  size_t min_support_records = 3;
  /// Smallest and largest number of QI attributes (the paper's T) allowed
  /// in Qv. [1, 8] mines every non-empty subset.
  size_t min_attrs = 1;
  size_t max_attrs = 8;
  /// When true, mine positive rules Qv ⇒ S.
  bool mine_positive = true;
  /// When true, mine negative rules Qv ⇒ ¬S.
  bool mine_negative = true;
  /// Positive rules with confidence below this are dropped early (they
  /// would never be "strongest associations"); 0 keeps everything.
  double min_confidence = 0.0;
};

/// Mines all positive and negative association rules between QI-attribute
/// value combinations and the sensitive attribute (Section 4.4).
///
/// For every QI-attribute subset of allowed size, records are grouped by
/// their value tuple; each (tuple, sensitive value) pair yields a positive
/// candidate (support = #records with Qv and S) and a negative candidate
/// (support = #records with Qv but not S). Candidates below min support
/// are discarded. Negative rules include sensitive values that never
/// co-occur with the tuple (confidence 1 for ¬S — the strongest kind, e.g.
/// "male ⇒ ¬breast-cancer").
///
/// Returned rules are sorted by `RuleRankBefore` (confidence-descending)
/// within each polarity: all positive rules first, then all negative ones.
/// Use `TopK` to apply the Top-(K+, K−) bound.
Result<std::vector<AssociationRule>> MineAssociationRules(
    const data::Dataset& dataset, const MinerOptions& options = {});

/// Splits `rules` by polarity and keeps the `k_positive` strongest positive
/// and `k_negative` strongest negative rules (the paper's Top-(K+, K−)
/// bound of background knowledge). Input need not be sorted.
std::vector<AssociationRule> TopK(std::vector<AssociationRule> rules,
                                  size_t k_positive, size_t k_negative);

/// Convenience filter: keeps only rules with exactly `t` QI attributes
/// (for the Figure 6 sweep).
std::vector<AssociationRule> FilterByNumAttributes(
    const std::vector<AssociationRule>& rules, size_t t);

}  // namespace pme::knowledge

#endif  // PME_KNOWLEDGE_MINER_H_
