#include "knowledge/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace pme::knowledge {
namespace {

/// Cursor over a statement with single-token lookahead. Tokens are:
/// punctuation ( ) | , = : <= >=, the keywords "or"/"person"/"count",
/// and free-form words (attribute names, values, numbers). Words may
/// contain letters, digits, '-', '_', '.', '+' (covers "breast-cancer",
/// "22-25", "0.3", "1e-3").
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  /// Peeks the next token without consuming; empty at end.
  std::string_view Peek() {
    if (!have_token_) {
      token_ = Scan();
      have_token_ = true;
    }
    return token_;
  }

  std::string_view Next() {
    std::string_view t = Peek();
    have_token_ = false;
    return t;
  }

  bool AtEnd() { return Peek().empty(); }

  /// Consumes `expected` or fails.
  Status Expect(std::string_view expected) {
    std::string_view t = Next();
    if (t != expected) {
      return Status::InvalidArgument("expected '" + std::string(expected) +
                                     "' but found '" + std::string(t) + "'");
    }
    return Status::Ok();
  }

 private:
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == '.' || c == '+';
  }

  std::string_view Scan() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return {};
    const size_t start = pos_;
    const char c = text_[pos_];
    if (c == '<' || c == '>') {
      pos_ += (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') ? 2 : 1;
      return text_.substr(start, pos_ - start);
    }
    if (c == '(' || c == ')' || c == '|' || c == ',' || c == '=' ||
        c == ':') {
      ++pos_;
      return text_.substr(start, 1);
    }
    while (pos_ < text_.size() && IsWordChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      ++pos_;  // unknown single character; surfaces as a bad token
    }
    return text_.substr(start, pos_ - start);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string_view token_;
  bool have_token_ = false;
};

/// "q7" -> 6; "i12" -> 11. One-based in the language, zero-based in code.
Result<uint32_t> ParseIndexedName(std::string_view token, char prefix) {
  if (token.size() < 2 || token[0] != prefix) {
    return Status::InvalidArgument("expected '" + std::string(1, prefix) +
                                   "<index>' but found '" +
                                   std::string(token) + "'");
  }
  long long index = 0;
  if (!ParseInt(token.substr(1), &index) || index < 1) {
    return Status::InvalidArgument("bad index in '" + std::string(token) +
                                   "'");
  }
  return static_cast<uint32_t>(index - 1);
}

bool LooksLikeIndexedName(std::string_view token, char prefix) {
  if (token.size() < 2 || token[0] != prefix) return false;
  for (size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

/// Resolves one SA term: "s3" (abstract) or a named value of the
/// sensitive attribute.
Result<uint32_t> ResolveSaTerm(std::string_view token,
                               const ParserContext& context) {
  if (LooksLikeIndexedName(token, 's')) {
    return ParseIndexedName(token, 's');
  }
  if (context.dataset == nullptr) {
    return Status::InvalidArgument(
        "named sensitive value '" + std::string(token) +
        "' needs a dataset context (or use abstract s<k> form)");
  }
  PME_ASSIGN_OR_RETURN(const size_t sa_attr,
                       context.dataset->schema().SoleSensitiveIndex());
  return context.dataset->schema()
      .attribute(sa_attr)
      .dictionary.Lookup(std::string(token));
}

Result<std::vector<uint32_t>> ParseSaSet(Lexer& lexer,
                                         const ParserContext& context) {
  std::vector<uint32_t> sa_codes;
  for (;;) {
    PME_ASSIGN_OR_RETURN(uint32_t code,
                         ResolveSaTerm(lexer.Next(), context));
    sa_codes.push_back(code);
    if (lexer.Peek() == "or") {
      lexer.Next();
      continue;
    }
    return sa_codes;
  }
}

Result<Relation> ParseRelation(Lexer& lexer) {
  const std::string_view t = lexer.Next();
  if (t == "=") return Relation::kEq;
  if (t == "<=") return Relation::kLe;
  if (t == ">=") return Relation::kGe;
  return Status::InvalidArgument("expected '=', '<=' or '>=' but found '" +
                                 std::string(t) + "'");
}

Result<double> ParseProbability(Lexer& lexer, bool allow_above_one) {
  const std::string_view t = lexer.Next();
  double value = 0.0;
  if (!ParseDouble(t, &value)) {
    return Status::InvalidArgument("expected a number but found '" +
                                   std::string(t) + "'");
  }
  if (value < 0.0 || (!allow_above_one && value > 1.0)) {
    return Status::InvalidArgument("probability out of range: " +
                                   std::string(t));
  }
  return value;
}

/// conditional following "P(": sa-set "|" condition ")" rel number.
Result<ParsedStatement> ParseConditionalTail(Lexer& lexer,
                                             const ParserContext& context,
                                             std::string label) {
  PME_ASSIGN_OR_RETURN(auto sa_codes, ParseSaSet(lexer, context));
  PME_RETURN_IF_ERROR(lexer.Expect("|"));

  ParsedStatement out;
  const std::string_view first = lexer.Peek();

  if (first == "person") {
    lexer.Next();
    PME_ASSIGN_OR_RETURN(uint32_t pseudonym,
                         ParseIndexedName(lexer.Next(), 'i'));
    PME_RETURN_IF_ERROR(lexer.Expect(")"));
    PME_ASSIGN_OR_RETURN(Relation rel, ParseRelation(lexer));
    PME_ASSIGN_OR_RETURN(double prob, ParseProbability(lexer, false));
    IndividualStatement stmt;
    stmt.kind = IndividualKind::kPersonSaSet;
    for (uint32_t s : sa_codes) stmt.terms.push_back({pseudonym, s});
    stmt.rel = rel;
    stmt.probability = prob;
    stmt.label = std::move(label);
    out.individual = std::move(stmt);
    return out;
  }

  ConditionalStatement stmt;
  stmt.sa_codes = std::move(sa_codes);

  if (LooksLikeIndexedName(first, 'q')) {
    PME_ASSIGN_OR_RETURN(uint32_t qi, ParseIndexedName(lexer.Next(), 'q'));
    stmt.abstract_qi = qi;
  } else {
    if (context.dataset == nullptr) {
      return Status::InvalidArgument(
          "attribute conditions need a dataset context (or use abstract "
          "q<k> form)");
    }
    for (;;) {
      const std::string attr(lexer.Next());
      PME_RETURN_IF_ERROR(lexer.Expect("="));
      const std::string value(lexer.Next());
      PME_ASSIGN_OR_RETURN(size_t attr_idx,
                           context.dataset->schema().IndexOf(attr));
      const auto& attribute = context.dataset->schema().attribute(attr_idx);
      if (attribute.role != data::AttributeRole::kQuasiIdentifier) {
        return Status::InvalidArgument("attribute '" + attr +
                                       "' is not a quasi-identifier");
      }
      PME_ASSIGN_OR_RETURN(uint32_t code, attribute.dictionary.Lookup(value));
      stmt.attrs.push_back(attr_idx);
      stmt.values.push_back(code);
      if (lexer.Peek() == ",") {
        lexer.Next();
        continue;
      }
      break;
    }
  }
  PME_RETURN_IF_ERROR(lexer.Expect(")"));
  PME_ASSIGN_OR_RETURN(stmt.rel, ParseRelation(lexer));
  PME_ASSIGN_OR_RETURN(stmt.probability, ParseProbability(lexer, false));
  stmt.label = std::move(label);
  out.conditional = std::move(stmt);
  return out;
}

/// group-count following "count(": pair { "," pair } ")" rel number.
Result<ParsedStatement> ParseGroupCountTail(Lexer& lexer,
                                            const ParserContext& context,
                                            std::string label) {
  IndividualStatement stmt;
  stmt.kind = IndividualKind::kGroupCount;
  for (;;) {
    PME_ASSIGN_OR_RETURN(uint32_t pseudonym,
                         ParseIndexedName(lexer.Next(), 'i'));
    PME_RETURN_IF_ERROR(lexer.Expect(":"));
    PME_ASSIGN_OR_RETURN(uint32_t sa, ResolveSaTerm(lexer.Next(), context));
    stmt.terms.push_back({pseudonym, sa});
    if (lexer.Peek() == ",") {
      lexer.Next();
      continue;
    }
    break;
  }
  PME_RETURN_IF_ERROR(lexer.Expect(")"));
  PME_ASSIGN_OR_RETURN(stmt.rel, ParseRelation(lexer));
  PME_ASSIGN_OR_RETURN(stmt.probability, ParseProbability(lexer, true));
  if (stmt.probability > static_cast<double>(stmt.terms.size())) {
    return Status::InvalidArgument(
        "count exceeds the number of listed people");
  }
  stmt.label = std::move(label);
  ParsedStatement out;
  out.individual = std::move(stmt);
  return out;
}

}  // namespace

Result<ParsedStatement> ParseStatement(std::string_view line,
                                       const ParserContext& context) {
  std::string label(Trim(line));
  Lexer lexer(line);
  const std::string_view head = lexer.Next();
  Result<ParsedStatement> result =
      Status::InvalidArgument("statement must start with 'P(' or 'count('");
  if (head == "P") {
    PME_RETURN_IF_ERROR(lexer.Expect("("));
    result = ParseConditionalTail(lexer, context, std::move(label));
  } else if (head == "count") {
    PME_RETURN_IF_ERROR(lexer.Expect("("));
    result = ParseGroupCountTail(lexer, context, std::move(label));
  }
  if (!result.ok()) return result;
  if (!lexer.AtEnd()) {
    return Status::InvalidArgument("trailing input: '" +
                                   std::string(lexer.Peek()) + "'");
  }
  return result;
}

Status ParseKnowledge(std::string_view text, const ParserContext& context,
                      KnowledgeBase* kb) {
  if (kb == nullptr) {
    return Status::InvalidArgument("knowledge base must not be null");
  }
  size_t line_no = 0;
  size_t line_start_byte = 0;  // offset of the current line in `text`
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    const size_t this_line_start = line_start_byte;
    line_start_byte += raw_line.size() + 1;  // +1 for the '\n' delimiter
    std::string_view line = Trim(raw_line);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    auto parsed = ParseStatement(line, context);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + " (byte offset " +
          std::to_string(this_line_start) + "): " +
          parsed.status().message());
    }
    if (parsed.value().conditional.has_value()) {
      kb->Add(std::move(*parsed.value().conditional));
    } else {
      kb->Add(std::move(*parsed.value().individual));
    }
  }
  return Status::Ok();
}

}  // namespace pme::knowledge
