// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_KNOWLEDGE_RULE_H_
#define PME_KNOWLEDGE_RULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace pme::knowledge {

/// An association rule between a QI-attribute value combination Qv and a
/// sensitive value S (Section 4.4 of the paper).
///
/// Positive rules have the form `Qv ⇒ S` ("people with Qv usually have S");
/// negative rules have the form `Qv ⇒ ¬S` ("people with Qv rarely have S",
/// e.g. male ⇒ ¬breast-cancer). In both cases the knowledge the rule
/// contributes to privacy quantification is the data-derived conditional
/// `P(S = sa_code | Qv)` (Section 4.2: the best source of background
/// knowledge is the original data itself).
struct AssociationRule {
  /// Dataset attribute indices forming Qv (a subset of the QI attributes).
  std::vector<size_t> attrs;
  /// The value code of each attribute in `attrs`.
  std::vector<uint32_t> values;
  /// The sensitive value S the rule talks about.
  uint32_t sa_code = 0;
  /// True for Qv ⇒ S, false for Qv ⇒ ¬S.
  bool positive = true;
  /// Association-rule support: P(Qv, S) for positive rules,
  /// P(Qv, ¬S) for negative rules.
  double support = 0.0;
  /// Association-rule confidence: P(S | Qv) for positive rules,
  /// P(¬S | Qv) for negative rules. Rules are ranked by this value.
  double confidence = 0.0;
  /// The asserted knowledge, always P(S = sa_code | Qv), regardless of
  /// polarity (for a negative rule this equals 1 - confidence).
  double conditional = 0.0;

  /// Number of QI attributes in the rule (the paper's T).
  size_t NumQiAttributes() const { return attrs.size(); }

  /// Pretty form "age=22-25,sex=male => education=bachelors [conf 0.61]".
  std::string ToString(const data::Dataset& dataset) const;

  /// Statement form consumed by knowledge/parser.h — and therefore by the
  /// wire protocol of `pme serve`:
  /// "P(bachelors | age=22-25,sex=male) = 0.61".
  std::string ToStatement(const data::Dataset& dataset) const;
};

/// Strict weak order ranking rules by descending confidence, breaking ties
/// by descending support, then by fewer attributes, then lexicographically
/// (fully deterministic for reproducible Top-K selection).
bool RuleRankBefore(const AssociationRule& a, const AssociationRule& b);

}  // namespace pme::knowledge

#endif  // PME_KNOWLEDGE_RULE_H_
