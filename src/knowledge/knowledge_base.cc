#include "knowledge/knowledge_base.h"

#include <sstream>

namespace pme::knowledge {

void KnowledgeBase::AddRules(const std::vector<AssociationRule>& rules) {
  for (const auto& rule : rules) {
    ConditionalStatement stmt;
    stmt.attrs = rule.attrs;
    stmt.values = rule.values;
    stmt.sa_codes = {rule.sa_code};
    stmt.rel = Relation::kEq;
    stmt.probability = rule.conditional;
    std::ostringstream label;
    label << (rule.positive ? "pos-rule" : "neg-rule") << " sa#" << rule.sa_code
          << " conf " << rule.confidence;
    stmt.label = label.str();
    conditionals_.push_back(std::move(stmt));
  }
}

ConditionalStatement MakeConditional(std::vector<size_t> attrs,
                                     std::vector<uint32_t> values,
                                     uint32_t sa_code, double probability,
                                     Relation rel) {
  ConditionalStatement stmt;
  stmt.attrs = std::move(attrs);
  stmt.values = std::move(values);
  stmt.sa_codes = {sa_code};
  stmt.rel = rel;
  stmt.probability = probability;
  return stmt;
}

ConditionalStatement AbstractConditional(uint32_t qi,
                                         std::vector<uint32_t> sa_codes,
                                         double probability, Relation rel) {
  ConditionalStatement stmt;
  stmt.abstract_qi = qi;
  stmt.sa_codes = std::move(sa_codes);
  stmt.rel = rel;
  stmt.probability = probability;
  return stmt;
}

}  // namespace pme::knowledge
