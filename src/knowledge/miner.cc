#include "knowledge/miner.h"

#include <algorithm>
#include <unordered_map>

namespace pme::knowledge {
namespace {

/// Enumerates all size-k subsets of `items` in lexicographic order,
/// invoking `fn` with each subset.
template <typename Fn>
void ForEachSubset(const std::vector<size_t>& items, size_t k, Fn&& fn) {
  if (k == 0 || k > items.size()) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<size_t> subset(k);
  for (;;) {
    for (size_t i = 0; i < k; ++i) subset[i] = items[idx[i]];
    fn(subset);
    // Advance the combination.
    size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + items.size() - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

struct TupleHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace

Result<std::vector<AssociationRule>> MineAssociationRules(
    const data::Dataset& dataset, const MinerOptions& options) {
  if (options.min_attrs == 0) {
    return Status::InvalidArgument("min_attrs must be >= 1");
  }
  if (options.min_attrs > options.max_attrs) {
    return Status::InvalidArgument("min_attrs must be <= max_attrs");
  }
  PME_ASSIGN_OR_RETURN(const size_t sa_attr,
                       dataset.schema().SoleSensitiveIndex());
  const std::vector<size_t> qi = dataset.schema().QiIndices();
  const uint32_t num_sa = dataset.schema().attribute(sa_attr).dictionary.size();
  const double n = static_cast<double>(dataset.num_records());
  if (dataset.num_records() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }

  std::vector<AssociationRule> positive, negative;

  // Per (tuple) aggregation: total count + per-SA counts packed into one
  // flat array of size num_sa (index 0 reserved for the total).
  struct Group {
    size_t total = 0;
    std::vector<uint32_t> sa_counts;
  };

  const size_t max_t = std::min(options.max_attrs, qi.size());
  for (size_t t = options.min_attrs; t <= max_t; ++t) {
    ForEachSubset(qi, t, [&](const std::vector<size_t>& attrs) {
      std::unordered_map<std::vector<uint32_t>, Group, TupleHash> groups;
      std::vector<uint32_t> key(t);
      for (size_t r = 0; r < dataset.num_records(); ++r) {
        for (size_t i = 0; i < t; ++i) key[i] = dataset.At(r, attrs[i]);
        Group& g = groups[key];
        if (g.sa_counts.empty()) g.sa_counts.assign(num_sa, 0);
        ++g.total;
        ++g.sa_counts[dataset.At(r, sa_attr)];
      }
      for (const auto& [tuple, group] : groups) {
        const double p_qv = static_cast<double>(group.total) / n;
        for (uint32_t s = 0; s < num_sa; ++s) {
          const size_t with_s = group.sa_counts[s];
          const size_t without_s = group.total - with_s;
          const double conditional =
              static_cast<double>(with_s) / static_cast<double>(group.total);
          if (options.mine_positive && with_s >= options.min_support_records &&
              conditional >= options.min_confidence) {
            AssociationRule rule;
            rule.attrs = attrs;
            rule.values = tuple;
            rule.sa_code = s;
            rule.positive = true;
            rule.support = static_cast<double>(with_s) / n;
            rule.confidence = conditional;
            rule.conditional = conditional;
            positive.push_back(std::move(rule));
          }
          if (options.mine_negative &&
              without_s >= options.min_support_records) {
            AssociationRule rule;
            rule.attrs = attrs;
            rule.values = tuple;
            rule.sa_code = s;
            rule.positive = false;
            rule.support = static_cast<double>(without_s) / n;
            rule.confidence = 1.0 - conditional;
            rule.conditional = conditional;
            negative.push_back(std::move(rule));
          }
        }
        (void)p_qv;
      }
    });
  }

  std::sort(positive.begin(), positive.end(), RuleRankBefore);
  std::sort(negative.begin(), negative.end(), RuleRankBefore);
  std::vector<AssociationRule> all = std::move(positive);
  all.insert(all.end(), std::make_move_iterator(negative.begin()),
             std::make_move_iterator(negative.end()));
  return all;
}

std::vector<AssociationRule> TopK(std::vector<AssociationRule> rules,
                                  size_t k_positive, size_t k_negative) {
  std::vector<AssociationRule> positive, negative;
  for (auto& r : rules) {
    (r.positive ? positive : negative).push_back(std::move(r));
  }
  std::sort(positive.begin(), positive.end(), RuleRankBefore);
  std::sort(negative.begin(), negative.end(), RuleRankBefore);
  if (positive.size() > k_positive) positive.resize(k_positive);
  if (negative.size() > k_negative) negative.resize(k_negative);
  positive.insert(positive.end(), std::make_move_iterator(negative.begin()),
                  std::make_move_iterator(negative.end()));
  return positive;
}

std::vector<AssociationRule> FilterByNumAttributes(
    const std::vector<AssociationRule>& rules, size_t t) {
  std::vector<AssociationRule> out;
  for (const auto& r : rules) {
    if (r.NumQiAttributes() == t) out.push_back(r);
  }
  return out;
}

}  // namespace pme::knowledge
