#include <cmath>
#include <deque>
#include <limits>

#include "common/failpoint.h"
#include "common/math_util.h"
#include "common/vec_math.h"
#include "maxent/solvers_internal.h"

namespace pme::maxent::internal {
namespace {

/// Armijo backtracking. On success updates (lambda, value, grad) and
/// returns true. Every probe evaluates through the shared workspace, so
/// the line search allocates nothing.
bool Backtrack(const DualFunction& dual, const std::vector<double>& direction,
               double dir_dot_grad, double initial_step, size_t max_steps,
               std::vector<double>* lambda, double* value,
               std::vector<double>* grad, std::vector<double>* scratch_lambda,
               std::vector<double>* scratch_grad, DualWorkspace* ws) {
  const double c1 = 1e-4;
  double step = initial_step;
  for (size_t ls = 0; ls < max_steps; ++ls) {
    kernels::ScaledAdd(*lambda, step, direction, *scratch_lambda);
    const double trial_value =
        dual.EvaluateInto(*scratch_lambda, scratch_grad, ws);
    if (std::isfinite(trial_value) &&
        trial_value <= *value + c1 * step * dir_dot_grad) {
      lambda->swap(*scratch_lambda);
      grad->swap(*scratch_grad);
      *value = trial_value;
      return true;
    }
    step *= 0.5;
  }
  return false;
}

}  // namespace

Result<DualOutcome> MinimizeLbfgs(const DualFunction& dual,
                                  const SolverOptions& options) {
  const size_t m = dual.dim();
  DualOutcome out;
  InitLambda(options, m, &out.lambda);
  if (m == 0) {
    out.converged = true;
    return out;
  }
  if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
    // Budget was gone before the first evaluation: the start point is the
    // best (and only) iterate.
    out.stop = stop;
    return out;
  }

  // Failpoints, counted once per solve so a fault can be aimed at the
  // Nth component of a decomposed run: `lbfgs_nan` poisons the gradient
  // after the first evaluation (a numerical blowup), `lbfgs_spurious`
  // makes the solve give up immediately with a not-converged iterate.
  const bool inject_nan = PME_FAILPOINT("lbfgs_nan");
  const bool inject_spurious = PME_FAILPOINT("lbfgs_spurious");

  DualWorkspace ws;
  std::vector<double> grad(m, 0.0);
  double value = dual.EvaluateInto(out.lambda, &grad, &ws);
  if (inject_nan) {
    value = std::numeric_limits<double>::quiet_NaN();
    grad.assign(m, std::numeric_limits<double>::quiet_NaN());
  }

  // Correction-pair history for the two-loop recursion.
  std::deque<std::vector<double>> s_hist, y_hist;
  std::deque<double> rho_hist;

  std::vector<double> direction(m), scratch_lambda(m), scratch_grad(m);
  std::vector<double> prev_lambda(m), prev_grad(m);
  std::vector<double> alpha(options.lbfgs_history, 0.0);
  // Retired history buffers, recycled so steady state allocates nothing.
  std::vector<double> s_spare, y_spare;
  StallDetector stall(options.ftol, options.max_stall_iterations);
  bool restarted_after_stall = false;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.grad_inf = InfNorm(grad);
    if (out.grad_inf <= options.tolerance) {
      out.converged = true;
      out.iterations = iter;
      out.dual_value = value;
      return out;
    }
    if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
      out.stop = stop;
      out.iterations = iter;
      out.dual_value = value;
      return out;
    }
    if (inject_spurious) {
      // Injected non-convergence: stop here with the current iterate.
      out.iterations = iter;
      out.dual_value = value;
      return out;
    }

    // Two-loop recursion: direction = -H_k * grad.
    direction = grad;
    for (size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * Dot(s_hist[i], direction);
      Axpy(-alpha[i], y_hist[i], direction);
    }
    if (!s_hist.empty()) {
      // Initial Hessian scale gamma = sᵀy / yᵀy (Nocedal's choice).
      const auto& s = s_hist.back();
      const auto& y = y_hist.back();
      const double gamma = Dot(s, y) / Dot(y, y);
      kernels::Scale(direction, gamma);
    }
    for (size_t i = 0; i < s_hist.size(); ++i) {
      const double beta = rho_hist[i] * Dot(y_hist[i], direction);
      Axpy(alpha[i] - beta, s_hist[i], direction);
    }
    kernels::Scale(direction, -1.0);

    double dir_dot_grad = Dot(direction, grad);
    if (dir_dot_grad >= 0.0) {
      // Stale curvature produced an ascent direction: restart from
      // steepest descent.
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
      for (size_t j = 0; j < m; ++j) direction[j] = -grad[j];
      dir_dot_grad = -Dot(grad, grad);
    }

    prev_lambda = out.lambda;
    prev_grad = grad;
    const double prev_value = value;

    bool accepted =
        Backtrack(dual, direction, dir_dot_grad, 1.0,
                  options.max_line_search_steps, &out.lambda, &value, &grad,
                  &scratch_lambda, &scratch_grad, &ws);
    if (!accepted && !s_hist.empty()) {
      // The quasi-Newton direction may be badly scaled (near-degenerate
      // curvature); drop the memory and retry along the raw gradient with
      // a conservatively normalized first step.
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
      const double gnorm = TwoNorm(grad);
      for (size_t j = 0; j < m; ++j) direction[j] = -grad[j];
      accepted = Backtrack(dual, direction, -gnorm * gnorm,
                           1.0 / std::max(1.0, gnorm),
                           options.max_line_search_steps, &out.lambda, &value,
                           &grad, &scratch_lambda, &scratch_grad, &ws);
    }
    if (!accepted) {
      // Even steepest descent cannot improve: the iterate is at numerical
      // precision for this problem.
      out.iterations = iter + 1;
      out.dual_value = value;
      out.grad_inf = InfNorm(grad);
      out.converged = out.grad_inf <= options.tolerance;
      return out;
    }

    // Accepted, but did the dual value actually move? A run of
    // rounding-noise steps means this curvature memory is exhausted.
    // One restart from clean steepest descent sometimes escapes the
    // plateau; a second stall run means numerical precision is reached.
    if (stall.Update(prev_value, value)) {
      if (!restarted_after_stall && !s_hist.empty()) {
        restarted_after_stall = true;
        stall.Reset();
        s_hist.clear();
        y_hist.clear();
        rho_hist.clear();
        // Skip the history update below: pushing the stalled step's noise
        // (s, y) pair would undo the restart before it begins.
        out.iterations = iter + 1;
        continue;
      }
      out.iterations = iter + 1;
      out.dual_value = value;
      out.grad_inf = InfNorm(grad);
      out.converged = out.grad_inf <= options.tolerance;
      return out;
    }

    // Update history with the accepted move, recycling retired buffers.
    std::vector<double> s = std::move(s_spare);
    std::vector<double> y = std::move(y_spare);
    s.resize(m);
    y.resize(m);
    for (size_t j = 0; j < m; ++j) {
      s[j] = out.lambda[j] - prev_lambda[j];
      y[j] = grad[j] - prev_grad[j];
    }
    const double sy = Dot(s, y);
    if (sy > 1e-12 * TwoNorm(s) * TwoNorm(y)) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > options.lbfgs_history) {
        s_spare = std::move(s_hist.front());
        y_spare = std::move(y_hist.front());
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    } else {
      s_spare = std::move(s);
      y_spare = std::move(y);
    }
    out.iterations = iter + 1;
  }

  out.dual_value = value;
  out.grad_inf = InfNorm(grad);
  out.converged = out.grad_inf <= options.tolerance;
  return out;
}

}  // namespace pme::maxent::internal
