// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_SOLUTION_CACHE_H_
#define PME_MAXENT_SOLUTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace pme::maxent {

/// One cached coupled-component solution, content-addressed by the
/// component's rows digest (constraints::ComponentSignatures). Everything
/// needed to either scatter the answer without solving (exact hit) or to
/// warm-start a changed component from its old dual (near miss):
///
///  - `p` is the posterior slice in block-local column order (the order
///    of the component's variables, ascending by full-space id).
///  - `lambda_full` are the dual multipliers in the block's *original*
///    stacked row space — equality rows first, inequality rows after,
///    both in block row order, presolve-dropped rows at 0. Stored
///    pre-presolve so it can be re-mapped onto a *different* presolve of
///    an edited component.
///  - `eq_row_sigs` / `ineq_row_sigs` are the per-row content signatures
///    aligned with `lambda_full`: a warm start for an edited component
///    matches rows by signature and seeds unmatched (new/edited) rows
///    with 0, which is a near-feasible point when few rows changed.
struct CachedComponentSolution {
  std::vector<double> p;
  std::vector<double> lambda_full;
  std::vector<Hash128> eq_row_sigs;
  std::vector<Hash128> ineq_row_sigs;
  double dual_value = 0.0;
  size_t iterations = 0;     ///< iterations the original solve spent
  size_t presolve_fixed = 0;
  bool converged = true;

  /// Doubles resident for budget accounting (signatures count as two).
  size_t ResidentDoubles() const {
    return p.size() + lambda_full.size() +
           2 * (eq_row_sigs.size() + ineq_row_sigs.size());
  }
};

/// Monotonic census of one cache instance.
struct SolutionCacheStats {
  size_t exact_hits = 0;
  size_t warm_hits = 0;  ///< vars-key hits that produced a warm payload
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
  size_t entries = 0;           ///< currently resident entries
  size_t resident_doubles = 0;  ///< currently resident payload doubles
};

/// Sharded, LRU-evicting map from component content digests to solved
/// component solutions. Thread-safe: lookups and inserts may race from
/// concurrent analyses (the `pme serve` scenario); entries are handed
/// out as shared_ptr so eviction can never pull a solution out from
/// under a reader.
///
/// Two indexes:
///  - the exact index keys entries by the component's rows digest
///    (byte-identical subproblem → reusable solution), and
///  - the warm index maps a variables-only digest to the most recently
///    inserted exact key for that variable set (same component, edited
///    rows → warm-startable dual).
///
/// Eviction is LRU by resident doubles against `byte_budget`, applied
/// per shard (each shard owns an equal slice of the budget). Warm-index
/// entries whose exact entry was evicted are dropped lazily on lookup.
///
/// Determinism: the census (hits/misses/evictions) is a function of the
/// *order* of Lookup/Insert calls only. SolveDecomposed performs both in
/// component-id order regardless of its thread count, so repeated runs
/// produce identical censuses.
class SolutionCache {
 public:
  /// Default budget: 64 MiB of resident payload.
  static constexpr size_t kDefaultByteBudget = size_t{64} << 20;

  explicit SolutionCache(size_t byte_budget = kDefaultByteBudget);
  ~SolutionCache() = default;

  SolutionCache(const SolutionCache&) = delete;
  SolutionCache& operator=(const SolutionCache&) = delete;

  /// Exact lookup by rows digest. A hit refreshes the entry's LRU
  /// position. Counts one exact hit or one miss.
  std::shared_ptr<const CachedComponentSolution> FindExact(
      const Hash128& exact_key);

  /// Warm lookup by variables-only digest: the most recent entry whose
  /// component had the same variable structure. Does not count a miss
  /// (it runs after FindExact already did); counts a warm hit when an
  /// entry is returned.
  std::shared_ptr<const CachedComponentSolution> FindWarm(
      const Hash128& vars_key);

  /// Inserts (or replaces) the entry for `exact_key` and points the warm
  /// index for `vars_key` at it. Evicts LRU entries from the shard until
  /// its budget slice holds the new resident size.
  void Insert(const Hash128& exact_key, const Hash128& vars_key,
              CachedComponentSolution solution);

  /// Drops every entry and warm-index pointer (the census is kept).
  void Clear();

  /// Aggregated census across shards.
  SolutionCacheStats Stats() const;

  size_t byte_budget() const { return byte_budget_; }

 private:
  static constexpr size_t kNumShards = 16;

  struct Entry {
    std::shared_ptr<const CachedComponentSolution> solution;
    std::list<Hash128>::iterator lru_pos;  // into Shard::lru, MRU front
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<Hash128, Entry, Hash128Hasher> entries;
    std::list<Hash128> lru;  // front = most recently used
    size_t resident_doubles = 0;
    // Census slices (aggregated by Stats()).
    size_t exact_hits = 0;
    size_t warm_hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t evictions = 0;
    // vars digest -> exact key of the latest entry with that structure.
    std::unordered_map<Hash128, Hash128, Hash128Hasher> warm_index;
  };

  Shard& ShardOf(const Hash128& key) {
    return shards_[key.hi % kNumShards];
  }

  /// Evicts LRU entries until the shard is within `budget_doubles`.
  /// Caller holds the shard mutex.
  void EvictLocked(Shard& shard, size_t budget_doubles);

  size_t byte_budget_;
  size_t shard_budget_doubles_;
  Shard shards_[kNumShards];
};

}  // namespace pme::maxent

#endif  // PME_MAXENT_SOLUTION_CACHE_H_
