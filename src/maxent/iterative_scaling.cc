// Generalized and Improved Iterative Scaling for the MaxEnt dual.
//
// Both algorithms assume the classical MaxEnt feature setting: every
// constraint coefficient is nonnegative and every constraint expectation
// (RHS) is strictly positive. The structural presolve removes zero-RHS
// rows, so problems arriving here from Solve() satisfy the second
// condition; the first is checked explicitly.

#include <cmath>

#include "common/arena.h"
#include "common/math_util.h"
#include "common/vec_math.h"
#include "maxent/solvers_internal.h"

namespace pme::maxent::internal {
namespace {

Status CheckScalingPreconditions(const DualFunction& dual) {
  const auto& a = dual.matrix();
  for (double v : a.values()) {
    if (v < 0.0) {
      return Status::FailedPrecondition(
          "iterative scaling requires nonnegative constraint coefficients");
    }
  }
  for (double b : dual.rhs()) {
    if (b <= 0.0) {
      return Status::FailedPrecondition(
          "iterative scaling requires strictly positive RHS entries "
          "(run presolve to eliminate zero rows)");
    }
  }
  return Status::Ok();
}

/// Column sums C_i = Σ_j A_ji (the "feature count" of term i).
std::vector<double> ColumnSums(const linalg::SparseMatrix& a) {
  std::vector<double> sums(a.cols(), 0.0);
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      sums[cols[k]] += values[k];
    }
  }
  return sums;
}

}  // namespace

Result<DualOutcome> MinimizeGis(const DualFunction& dual,
                                const SolverOptions& options) {
  PME_RETURN_IF_ERROR(CheckScalingPreconditions(dual));
  const size_t m = dual.dim();
  DualOutcome out;
  InitLambda(options, m, &out.lambda);
  if (m == 0) {
    out.converged = true;
    return out;
  }
  if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
    out.stop = stop;
    return out;
  }

  const std::vector<double> col_sums = ColumnSums(dual.matrix());
  double c_max = 0.0;
  for (double c : col_sums) c_max = std::max(c_max, c);
  if (c_max <= 0.0) {
    return Status::FailedPrecondition("constraint matrix is empty");
  }

  DualWorkspace ws;
  std::vector<double> grad(m);
  ScratchVector<double> ratio(m);
  const kernels::ConstSpan b = dual.rhs();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.dual_value = dual.EvaluateInto(out.lambda, &grad, &ws);
    out.grad_inf = InfNorm(grad);
    out.iterations = iter;
    if (out.grad_inf <= options.tolerance) {
      out.converged = true;
      return out;
    }
    if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
      out.stop = stop;
      return out;
    }
    // λ_j += (1/C) ln(b_j / μ_j), with μ_j the current model expectation.
    // The ratios are staged so the logarithm runs as one batched vector
    // pass instead of m scalar std::log calls.
    for (size_t j = 0; j < m; ++j) {
      const double mu = grad[j] + b[j];
      if (mu <= 0.0) {
        return Status::NumericalError(
            "GIS: model expectation vanished for a constraint");
      }
      ratio[j] = b[j] / mu;
    }
    kernels::Ln(ratio, ratio);
    kernels::Axpy(1.0 / c_max, ratio, out.lambda);
  }
  out.dual_value = dual.EvaluateInto(out.lambda, &grad, &ws);
  out.grad_inf = InfNorm(grad);
  out.iterations = options.max_iterations;
  out.converged = out.grad_inf <= options.tolerance;
  return out;
}

Result<DualOutcome> MinimizeIis(const DualFunction& dual,
                                const SolverOptions& options) {
  PME_RETURN_IF_ERROR(CheckScalingPreconditions(dual));
  const size_t m = dual.dim();
  DualOutcome out;
  InitLambda(options, m, &out.lambda);
  if (m == 0) {
    out.converged = true;
    return out;
  }
  if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
    out.stop = stop;
    return out;
  }

  const auto& a = dual.matrix();
  const std::vector<double> col_sums = ColumnSums(a);
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();
  const auto& b = dual.rhs();

  DualWorkspace ws;
  std::vector<double> grad(m);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.dual_value = dual.EvaluateInto(out.lambda, &grad, &ws);
    out.grad_inf = InfNorm(grad);
    out.iterations = iter;
    if (out.grad_inf <= options.tolerance) {
      out.converged = true;
      return out;
    }
    if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
      out.stop = stop;
      return out;
    }
    // Per-constraint 1-D Newton solve of
    //   Σ_i A_ji p_i exp(δ_j C_i) = b_j
    // in δ_j, then apply all updates simultaneously (IIS sweep).
    for (size_t j = 0; j < m; ++j) {
      double delta = 0.0;
      for (int newton = 0; newton < 30; ++newton) {
        double f = 0.0, df = 0.0;
        for (size_t k = offsets[j]; k < offsets[j + 1]; ++k) {
          const double term =
              values[k] * ws.p[cols[k]] * SafeExp(delta * col_sums[cols[k]]);
          f += term;
          df += term * col_sums[cols[k]];
        }
        const double resid = f - b[j];
        if (std::fabs(resid) <= 1e-14 || df <= 0.0) break;
        delta -= resid / df;
      }
      out.lambda[j] += delta;
    }
  }
  out.dual_value = dual.EvaluateInto(out.lambda, &grad, &ws);
  out.grad_inf = InfNorm(grad);
  out.iterations = options.max_iterations;
  out.converged = out.grad_inf <= options.tolerance;
  return out;
}

}  // namespace pme::maxent::internal
