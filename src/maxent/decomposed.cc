#include "maxent/decomposed.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/timer.h"
#include "maxent/closed_form.h"
#include "maxent/problem.h"

namespace pme::maxent {

DecompositionStats AnalyzeDecomposition(
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system) {
  DecompositionStats stats;
  const std::vector<bool> relevant = system.RelevantBuckets(index);
  stats.total_variables = index.num_variables();
  for (uint32_t b = 0; b < index.num_buckets(); ++b) {
    const auto [first, last] = index.BucketRange(b);
    if (relevant[b]) {
      ++stats.relevant_buckets;
      stats.relevant_variables += last - first;
    } else {
      ++stats.irrelevant_buckets;
    }
  }
  return stats;
}

Result<SolverResult> SolveDecomposed(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system, SolverKind kind,
    const SolverOptions& options) {
  Timer timer;
  const std::vector<bool> relevant = system.RelevantBuckets(index);

  // Dense renumbering of the relevant buckets' variables.
  std::vector<int64_t> var_map(index.num_variables(), -1);
  size_t next = 0;
  for (uint32_t b = 0; b < index.num_buckets(); ++b) {
    if (!relevant[b]) continue;
    const auto [first, last] = index.BucketRange(b);
    for (uint32_t v = first; v < last; ++v) {
      var_map[v] = static_cast<int64_t>(next++);
    }
  }

  SolverResult result;
  result.kind = kind;

  // Closed form everywhere first; the solver overwrites relevant buckets.
  result.p = ClosedFormNoKnowledge(table, index);

  if (next > 0) {
    constraints::ConstraintSystem sub(next);
    for (const auto& c : system.constraints()) {
      // A constraint belongs to the subproblem iff it touches a relevant
      // bucket. Invariants touch exactly one bucket; background rows touch
      // only relevant buckets by Definition 5.6.
      bool touches_relevant = false;
      for (uint32_t v : c.vars) {
        if (var_map[v] >= 0) {
          touches_relevant = true;
          break;
        }
      }
      if (!touches_relevant) continue;
      constraints::LinearConstraint mapped = c;
      for (size_t i = 0; i < mapped.vars.size(); ++i) {
        if (var_map[mapped.vars[i]] < 0) {
          return Status::Internal(
              "constraint '" + c.label +
              "' spans relevant and irrelevant buckets; the relevance "
              "analysis is inconsistent");
        }
        mapped.vars[i] = static_cast<uint32_t>(var_map[mapped.vars[i]]);
      }
      sub.Add(std::move(mapped));
    }

    PME_ASSIGN_OR_RETURN(MaxEntProblem sub_problem, BuildProblem(sub));
    PME_ASSIGN_OR_RETURN(SolverResult sub_result,
                         Solve(sub_problem, kind, options));

    for (size_t v = 0; v < var_map.size(); ++v) {
      if (var_map[v] >= 0) {
        result.p[v] = sub_result.p[static_cast<size_t>(var_map[v])];
      }
    }
    result.iterations = sub_result.iterations;
    result.converged = sub_result.converged;
    result.dual_value = sub_result.dual_value;
    result.presolve_fixed = sub_result.presolve_fixed;
  } else {
    result.converged = true;
  }

  result.entropy = Entropy(result.p);
  result.max_violation = system.MaxViolation(result.p);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace pme::maxent
