#include "maxent/decomposed.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "maxent/closed_form.h"
#include "maxent/problem.h"

namespace pme::maxent {

using constraints::ComponentAnalysis;

DecompositionStats AnalyzeDecomposition(
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system) {
  DecompositionStats stats;
  stats.total_variables = index.num_variables();
  const ComponentAnalysis analysis = ComponentAnalysis::Build(index, system);
  stats.num_components = analysis.num_components();
  stats.num_coupled_components = analysis.num_coupled();
  for (const auto& comp : analysis.components()) {
    if (comp.coupled) {
      stats.relevant_buckets += comp.buckets.size();
      stats.relevant_variables += comp.num_variables;
      stats.coupled_component_variables.push_back(comp.num_variables);
    } else {
      stats.irrelevant_buckets += comp.buckets.size();
    }
  }
  return stats;
}

namespace {

/// The row/column selection of one coupled component's block.
struct BlockSelection {
  std::vector<uint32_t> cols;       // full-space variable ids, ascending
  std::vector<uint32_t> eq_rows;    // rows of the full eq matrix
  std::vector<uint32_t> ineq_rows;  // rows of the full ineq matrix
};

}  // namespace

Result<SolverResult> SolveDecomposed(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system, SolverKind kind,
    const SolverOptions& options) {
  Timer timer;
  const ComponentAnalysis analysis = ComponentAnalysis::Build(index, system);

  // Monolithic fallback: when one coupled component dominates the
  // variable space there is nothing to decompose — the closed form would
  // cover almost nothing and the Submatrix slice would copy almost
  // everything. Solving the original system directly skips that 10-40%
  // overhead.
  {
    size_t largest_coupled = 0;
    for (const auto& comp : analysis.components()) {
      if (comp.coupled) {
        largest_coupled = std::max(largest_coupled, comp.num_variables);
      }
    }
    const size_t total = index.num_variables();
    if (total > 0 &&
        static_cast<double>(largest_coupled) >
            options.monolithic_fallback_fraction * static_cast<double>(total)) {
      PME_ASSIGN_OR_RETURN(MaxEntProblem whole, BuildProblem(system));
      SolverResult mono;
      if (options.fallback) {
        PME_ASSIGN_OR_RETURN(mono, SolveWithFallback(whole, kind, options));
      } else {
        PME_ASSIGN_OR_RETURN(mono, Solve(whole, kind, options));
      }
      mono.used_monolithic_fallback = true;
      return mono;
    }
  }

  SolverResult result;
  result.kind = kind;
  result.converged = true;

  // Closed form everywhere first (exact for uncoupled components by
  // Theorem 5); the block solves overwrite the coupled ranges.
  result.p = ClosedFormNoKnowledge(table, index);

  // Dense numbering of the coupled components.
  std::vector<int64_t> block_of_component(analysis.num_components(), -1);
  std::vector<BlockSelection> blocks;
  blocks.reserve(analysis.num_coupled());
  for (size_t k = 0; k < analysis.num_components(); ++k) {
    const auto& comp = analysis.components()[k];
    if (!comp.coupled) continue;
    block_of_component[k] = static_cast<int64_t>(blocks.size());
    BlockSelection block;
    block.cols.reserve(comp.num_variables);
    for (uint32_t b : comp.buckets) {
      const auto [first, last] = index.BucketRange(b);
      for (uint32_t v = first; v < last; ++v) block.cols.push_back(v);
    }
    blocks.push_back(std::move(block));
  }

  if (blocks.empty()) {
    result.entropy = Entropy(result.p);
    result.max_violation = system.MaxViolation(result.p);
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Assemble the full constraint matrices once, then slice each block out
  // with Submatrix. Row numbering must mirror ToMatrices: equality rows in
  // constraint order, inequality rows (kLe, and kGe negated) likewise.
  PME_ASSIGN_OR_RETURN(MaxEntProblem full, BuildProblem(system));
  {
    uint32_t eq_row = 0, ineq_row = 0;
    for (const auto& c : system.constraints()) {
      const bool is_eq = c.rel == knowledge::Relation::kEq;
      const uint32_t row = is_eq ? eq_row++ : ineq_row++;
      int64_t block = -1;
      for (size_t i = 0; i < c.vars.size(); ++i) {
        if (c.coefs[i] == 0.0) continue;
        // Union-find put every bucket a constraint touches into one
        // component, so the first supported variable decides the block.
        block = block_of_component[analysis.ComponentOf(
            index.TermOf(c.vars[i]).bucket)];
        break;
      }
      if (block < 0) {
        // Either an empty row (check it is vacuously satisfiable) or a
        // constraint on an uncoupled component — which is an invariant by
        // construction, satisfied exactly by the closed form.
        const double rhs = is_eq ? full.eq_rhs[row] : full.ineq_rhs[row];
        const bool empty_support =
            c.vars.empty() ||
            std::all_of(c.coefs.begin(), c.coefs.end(),
                        [](double v) { return v == 0.0; });
        if (empty_support &&
            (is_eq ? std::fabs(rhs) > 1e-12 : rhs < -1e-12)) {
          return Status::Infeasible("constraint '" + c.label +
                                    "' has empty support and nonzero bound");
        }
        continue;
      }
      auto& sel = blocks[static_cast<size_t>(block)];
      if (is_eq) {
        sel.eq_rows.push_back(row);
      } else {
        sel.ineq_rows.push_back(row);
      }
    }
  }

  // Per-component wall-time budgets: each coupled block gets a share of
  // the remaining deadline proportional to its variable count. Blocks
  // running in parallel each consume their own share of wall time; in a
  // serial run the shares are relative to each block's own start, with
  // the request deadline as the hard cap either way.
  size_t total_block_vars = 0;
  for (const auto& block : blocks) total_block_vars += block.cols.size();
  const double remaining_at_start = options.deadline.RemainingSeconds();
  std::vector<double> budget_seconds(blocks.size(), 0.0);
  for (size_t i = 0; i < blocks.size(); ++i) {
    budget_seconds[i] = remaining_at_start *
                        static_cast<double>(blocks[i].cols.size()) /
                        static_cast<double>(std::max<size_t>(total_block_vars,
                                                             1));
  }

  // Solve every block independently — in parallel when asked to. Each
  // task only writes its own slot, and the scatter below runs after the
  // barrier in block order, so the assembly is deterministic for any
  // thread count.
  std::vector<std::optional<Result<SolverResult>>> block_results(
      blocks.size());
  std::vector<size_t> block_attempts(blocks.size(), 0);
  const size_t threads = ThreadPool::ResolveThreads(options.threads);
  const Status pool_status = ThreadPool::ParallelFor(
      threads, blocks.size(), [&](size_t i) {
        const BlockSelection& sel = blocks[i];
        SolverOptions block_options = options;
        if (!options.deadline.is_infinite()) {
          block_options.deadline = Deadline::Earlier(
              options.deadline, Deadline::AfterSeconds(budget_seconds[i]));
        }
        // Failpoint `block_deadline@N`: the Nth block solved starts with
        // an already-spent budget — the deterministic stand-in for "this
        // component's share of the deadline ran out".
        if (PME_FAILPOINT("block_deadline")) {
          block_options.deadline = Deadline::AfterSeconds(0.0);
        }
        // Failpoint `pool_task_throw@N`: the Nth block task throws,
        // exercising the pool's exception containment end to end (the
        // slot stays unset and the component degrades below).
        if (PME_FAILPOINT("pool_task_throw")) {
          throw std::runtime_error("injected pool_task_throw failpoint");
        }
        auto solve_block = [&]() -> Result<SolverResult> {
          MaxEntProblem sub;
          sub.num_vars = sel.cols.size();
          PME_ASSIGN_OR_RETURN(sub.eq,
                               full.eq.Submatrix(sel.eq_rows, sel.cols));
          PME_ASSIGN_OR_RETURN(sub.ineq,
                               full.ineq.Submatrix(sel.ineq_rows, sel.cols));
          sub.eq_rhs.reserve(sel.eq_rows.size());
          for (uint32_t r : sel.eq_rows) sub.eq_rhs.push_back(full.eq_rhs[r]);
          sub.ineq_rhs.reserve(sel.ineq_rows.size());
          for (uint32_t r : sel.ineq_rows) {
            sub.ineq_rhs.push_back(full.ineq_rhs[r]);
          }
          if (options.fallback) {
            return SolveWithFallback(sub, kind, block_options,
                                     &block_attempts[i]);
          }
          block_attempts[i] = 1;
          return Solve(sub, kind, block_options);
        };
        block_results[i] = solve_block();
      });

  // Aggregate. With the fallback ladder on, a component whose every rung
  // failed keeps its closed-form no-knowledge prior (already in
  // result.p) and is flagged — one bad component must degrade its own
  // answer, never the whole analysis. With fallback off, the historical
  // fail-fast contract stands: the first component error propagates.
  result.component_outcomes.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    ComponentOutcome outcome;
    outcome.block = static_cast<uint32_t>(i);
    outcome.num_variables = blocks[i].cols.size();
    outcome.attempts = block_attempts[i];
    outcome.solver = kind;

    Status block_error = Status::Ok();
    const SolverResult* sub = nullptr;
    if (!block_results[i].has_value()) {
      // The task never stored a result: it threw (and was contained by
      // the pool). pool_status carries the first exception message.
      block_error = pool_status.ok()
                        ? Status::Internal("block task produced no result")
                        : pool_status;
    } else if (!block_results[i]->ok()) {
      block_error = block_results[i]->status();
    } else {
      sub = &block_results[i]->value();
    }

    if (!options.fallback) {
      if (!block_error.ok()) return block_error;
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub->p[j];
      result.iterations += sub->iterations;
      result.dual_value += sub->dual_value;
      result.presolve_fixed += sub->presolve_fixed;
      result.converged = result.converged && sub->converged;
      if (result.termination == StatusCode::kOk) {
        result.termination = sub->termination;
      }
      outcome.status = sub->termination;
      outcome.solver = sub->kind;
      ++result.components_solved;
      result.component_outcomes.push_back(outcome);
      continue;
    }

    const bool usable = sub != nullptr && IsAcceptable(*sub, options);
    if (usable) {
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub->p[j];
      result.iterations += sub->iterations;
      result.dual_value += sub->dual_value;
      result.presolve_fixed += sub->presolve_fixed;
      result.converged = result.converged && sub->converged;
      outcome.solver = sub->kind;
      outcome.status = sub->termination;
      outcome.degraded = sub->degraded;
      if (sub->degraded) {
        ++result.components_degraded;
      } else {
        ++result.components_solved;
      }
    } else if (sub != nullptr && sub->iterations > 0 &&
               sub->termination != StatusCode::kNumericalError &&
               std::isfinite(sub->max_violation)) {
      // Unacceptable but finite, with real progress made: a
      // hard-to-converge or interrupted block keeps its best-so-far
      // iterate — same contract the pre-fallback solver had for
      // non-converged blocks — rather than throwing the work away. A
      // block that never got to iterate (budget spent up front) falls
      // through to the prior instead: its untouched start point is worse
      // than the closed form.
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub->p[j];
      result.iterations += sub->iterations;
      outcome.solver = sub->kind;
      outcome.status = sub->termination == StatusCode::kOk
                           ? StatusCode::kNotConverged
                           : sub->termination;
      outcome.degraded = true;
      ++result.components_degraded;
      result.converged = false;
    } else {
      // Degrade to the closed-form prior already sitting in result.p.
      outcome.degraded = true;
      outcome.used_prior = true;
      if (sub != nullptr) {
        outcome.solver = sub->kind;
        outcome.status = sub->termination == StatusCode::kOk
                             ? StatusCode::kNotConverged
                             : sub->termination;
        result.iterations += sub->iterations;
        ++result.components_degraded;
      } else {
        outcome.status = block_error.code();
        ++result.components_failed;
      }
      result.converged = false;
    }
    result.component_outcomes.push_back(outcome);
  }
  if (!options.fallback && !pool_status.ok()) return pool_status;
  result.degraded =
      result.components_degraded > 0 || result.components_failed > 0;
  // A cooperative cancel outranks per-component bookkeeping: the caller
  // asked the whole request to stop, and the aggregate says so (while
  // still carrying the partial answer). A spent request deadline
  // likewise marks the aggregate, so callers can tell "finished with
  // degraded parts" from "ran out of time".
  if (options.cancel.cancelled()) {
    result.termination = StatusCode::kCancelled;
  } else if (options.fallback && options.deadline.Expired()) {
    result.termination = StatusCode::kDeadlineExceeded;
  }

  result.entropy = Entropy(result.p);
  result.max_violation = system.MaxViolation(result.p);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace pme::maxent
