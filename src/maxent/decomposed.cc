#include "maxent/decomposed.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/arena.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/metrics.h"
#include "common/vec_math.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "maxent/closed_form.h"
#include "maxent/problem.h"
#include "maxent/solution_cache.h"

namespace pme::maxent {

using constraints::ComponentAnalysis;

DecompositionStats AnalyzeDecomposition(
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system,
    const constraints::ComponentAnalysis* precomputed) {
  DecompositionStats stats;
  stats.total_variables = index.num_variables();
  std::optional<ComponentAnalysis> local;
  if (precomputed == nullptr) local = ComponentAnalysis::Build(index, system);
  const ComponentAnalysis& analysis = precomputed ? *precomputed : *local;
  stats.num_components = analysis.num_components();
  stats.num_coupled_components = analysis.num_coupled();
  for (const auto& comp : analysis.components()) {
    if (comp.coupled) {
      stats.relevant_buckets += comp.buckets.size();
      stats.relevant_variables += comp.num_variables;
      stats.coupled_component_variables.push_back(comp.num_variables);
    } else {
      stats.irrelevant_buckets += comp.buckets.size();
    }
  }
  return stats;
}

namespace {

/// The row/column selection of one coupled component's block.
struct BlockSelection {
  std::vector<uint32_t> cols;       // full-space variable ids, ascending
  std::vector<uint32_t> eq_rows;    // rows of the full eq matrix
  std::vector<uint32_t> ineq_rows;  // rows of the full ineq matrix
  // Per-row content signatures aligned with eq_rows / ineq_rows; only
  // collected when a solution cache is consulted.
  std::vector<Hash128> eq_row_sigs;
  std::vector<Hash128> ineq_row_sigs;
};

/// The cache key of one block: its content digest plus the solve knobs
/// that change the answer (tolerance, presolve). Two analyses asking for
/// different precision must not serve each other's solutions.
Hash128 MakeExactKey(const Hash128& rows_hash, const SolverOptions& options) {
  Hasher128 h;
  h.Update(std::string_view("pme.cachekey.v2"));
  h.Update(options.cache_namespace);
  h.Update(rows_hash);
  h.Update(options.tolerance);
  h.Update(static_cast<uint64_t>(options.presolve ? 1 : 0));
  return h.Finish();
}

/// The structure (warm-start) key of one block: its variable digest
/// under the caller's cache namespace, so two artifacts sharing one
/// cache keep disjoint warm-start spaces too.
Hash128 MakeVarsKey(const Hash128& vars_hash, const SolverOptions& options) {
  Hasher128 h;
  h.Update(std::string_view("pme.varskey.v1"));
  h.Update(options.cache_namespace);
  h.Update(vars_hash);
  return h.Finish();
}

/// Builds a warm-start vector in the block's original stacked row space
/// from a cached entry: rows are matched by content signature (equality
/// and inequality rows separately — their multipliers live in different
/// sign regimes); unmatched rows — the toggled/edited statements — start
/// at 0. Returns an empty vector when nothing matched (a zero vector is
/// the cold start; passing it would only pretend to be warm).
std::vector<double> BuildWarmStart(const CachedComponentSolution& cached,
                                   const BlockSelection& sel) {
  std::unordered_map<Hash128, double, Hash128Hasher> eq_lambda;
  std::unordered_map<Hash128, double, Hash128Hasher> ineq_lambda;
  if (cached.lambda_full.size() !=
      cached.eq_row_sigs.size() + cached.ineq_row_sigs.size()) {
    return {};
  }
  for (size_t j = 0; j < cached.eq_row_sigs.size(); ++j) {
    eq_lambda.emplace(cached.eq_row_sigs[j], cached.lambda_full[j]);
  }
  for (size_t j = 0; j < cached.ineq_row_sigs.size(); ++j) {
    ineq_lambda.emplace(cached.ineq_row_sigs[j],
                        cached.lambda_full[cached.eq_row_sigs.size() + j]);
  }
  std::vector<double> warm(sel.eq_rows.size() + sel.ineq_rows.size(), 0.0);
  size_t matched = 0;
  for (size_t j = 0; j < sel.eq_row_sigs.size(); ++j) {
    auto it = eq_lambda.find(sel.eq_row_sigs[j]);
    if (it != eq_lambda.end()) {
      warm[j] = it->second;
      ++matched;
    }
  }
  for (size_t j = 0; j < sel.ineq_row_sigs.size(); ++j) {
    auto it = ineq_lambda.find(sel.ineq_row_sigs[j]);
    if (it != ineq_lambda.end()) {
      warm[sel.eq_rows.size() + j] = it->second;
      ++matched;
    }
  }
  if (matched == 0) return {};
  return warm;
}

/// Process-wide solve.* metrics, mirroring the per-run SolverResult
/// census so the `stats` verb can report fallback-ladder outcomes
/// without threading result structs through the serve layer.
struct SolveMetrics {
  metrics::Counter* runs;
  metrics::Counter* monolithic_fallbacks;
  metrics::Counter* components_solved;
  metrics::Counter* components_degraded;
  metrics::Counter* components_failed;
  metrics::Histogram* block_seconds;
  metrics::Histogram* block_iterations;
};

SolveMetrics& GetSolveMetrics() {
  static SolveMetrics m = [] {
    auto& registry = metrics::Registry::Global();
    SolveMetrics r;
    r.runs = &registry.GetCounter("solve.runs");
    r.monolithic_fallbacks =
        &registry.GetCounter("solve.monolithic_fallbacks");
    r.components_solved = &registry.GetCounter("solve.components_solved");
    r.components_degraded =
        &registry.GetCounter("solve.components_degraded");
    r.components_failed = &registry.GetCounter("solve.components_failed");
    r.block_seconds = &registry.GetHistogram("solve.block_seconds");
    // Iteration counts: buckets [0,1), [1,2), [2,4) ... cover the
    // fixed-point loop's realistic range up to ~2^30.
    metrics::HistogramOptions iter_options;
    iter_options.lowest = 1.0;
    iter_options.growth = 2.0;
    iter_options.num_buckets = 31;
    r.block_iterations =
        &registry.GetHistogram("solve.block_iterations", iter_options);
    return r;
  }();
  return m;
}

}  // namespace

Result<SolverResult> SolveDecomposed(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system, SolverKind kind,
    const SolverOptions& options,
    const constraints::ComponentAnalysis* precomputed) {
  Timer timer;
  trace::TraceSpan solve_span("solve_decomposed", "solve");
  GetSolveMetrics().runs->Add();
  std::optional<ComponentAnalysis> local_analysis;
  if (precomputed == nullptr) {
    local_analysis = ComponentAnalysis::Build(index, system);
  }
  const ComponentAnalysis& analysis =
      precomputed ? *precomputed : *local_analysis;

  // Monolithic fallback: when one coupled component dominates the
  // variable space there is nothing to decompose — the closed form would
  // cover almost nothing and the Submatrix slice would copy almost
  // everything. Solving the original system directly skips that 10-40%
  // overhead.
  {
    size_t largest_coupled = 0;
    for (const auto& comp : analysis.components()) {
      if (comp.coupled) {
        largest_coupled = std::max(largest_coupled, comp.num_variables);
      }
    }
    const size_t total = index.num_variables();
    if (total > 0 &&
        static_cast<double>(largest_coupled) >
            options.monolithic_fallback_fraction * static_cast<double>(total)) {
      PME_ASSIGN_OR_RETURN(MaxEntProblem whole, BuildProblem(system));
      SolverResult mono;
      if (options.fallback) {
        PME_ASSIGN_OR_RETURN(mono, SolveWithFallback(whole, kind, options));
      } else {
        PME_ASSIGN_OR_RETURN(mono, Solve(whole, kind, options));
      }
      mono.used_monolithic_fallback = true;
      GetSolveMetrics().monolithic_fallbacks->Add();
      solve_span.AddArg("monolithic", 1.0);
      return mono;
    }
  }

  SolverResult result;
  result.kind = kind;
  result.converged = true;

  // Closed form everywhere first (exact for uncoupled components by
  // Theorem 5); the block solves overwrite the coupled ranges. A caller
  // that precomputed the prior (the artifact-serving path) hands it in
  // through the options — a copy instead of an O(table) re-derivation.
  const bool prior_provided =
      options.closed_form_prior != nullptr &&
      options.closed_form_prior->size() == index.num_variables();
  if (prior_provided) {
    result.p = *options.closed_form_prior;
  } else {
    result.p = ClosedFormNoKnowledge(table, index);
  }
  // With a precomputed prior entropy, the final entropy is derived by
  // adjusting only the coordinates the block solves overwrite.
  const bool incremental_entropy =
      prior_provided && std::isfinite(options.closed_form_prior_entropy);

  // Dense numbering of the coupled components.
  std::vector<int64_t> block_of_component(analysis.num_components(), -1);
  std::vector<BlockSelection> blocks;
  blocks.reserve(analysis.num_coupled());
  for (size_t k = 0; k < analysis.num_components(); ++k) {
    const auto& comp = analysis.components()[k];
    if (!comp.coupled) continue;
    block_of_component[k] = static_cast<int64_t>(blocks.size());
    BlockSelection block;
    block.cols.reserve(comp.num_variables);
    for (uint32_t b : comp.buckets) {
      const auto [first, last] = index.BucketRange(b);
      for (uint32_t v = first; v < last; ++v) block.cols.push_back(v);
    }
    blocks.push_back(std::move(block));
  }

  if (blocks.empty()) {
    result.entropy = incremental_entropy
                         ? options.closed_form_prior_entropy
                         : Entropy(result.p);
    result.max_violation = system.MaxViolation(result.p);
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  SolutionCache* const cache = options.solution_cache;
  const bool cache_on =
      cache != nullptr && options.cache_mode != CacheMode::kOff;
  result.cache_enabled = cache_on;

  // Assemble the full constraint matrices once, then slice each block out
  // with Submatrix. Row numbering must mirror ToMatrices: equality rows in
  // constraint order, inequality rows (kLe, and kGe negated) likewise.
  PME_ASSIGN_OR_RETURN(MaxEntProblem full, BuildProblem(system));
  {
    uint32_t eq_row = 0, ineq_row = 0;
    for (const auto& c : system.constraints()) {
      const bool is_eq = c.rel == knowledge::Relation::kEq;
      const uint32_t row = is_eq ? eq_row++ : ineq_row++;
      int64_t block = -1;
      for (size_t i = 0; i < c.vars.size(); ++i) {
        if (c.coefs[i] == 0.0) continue;
        // Union-find put every bucket a constraint touches into one
        // component, so the first supported variable decides the block.
        block = block_of_component[analysis.ComponentOf(
            index.TermOf(c.vars[i]).bucket)];
        break;
      }
      if (block < 0) {
        // Either an empty row (check it is vacuously satisfiable) or a
        // constraint on an uncoupled component — which is an invariant by
        // construction, satisfied exactly by the closed form.
        const double rhs = is_eq ? full.eq_rhs[row] : full.ineq_rhs[row];
        const bool empty_support =
            c.vars.empty() ||
            std::all_of(c.coefs.begin(), c.coefs.end(),
                        [](double v) { return v == 0.0; });
        if (empty_support &&
            (is_eq ? std::fabs(rhs) > 1e-12 : rhs < -1e-12)) {
          return Status::Infeasible("constraint '" + c.label +
                                    "' has empty support and nonzero bound");
        }
        continue;
      }
      auto& sel = blocks[static_cast<size_t>(block)];
      if (is_eq) {
        sel.eq_rows.push_back(row);
        if (cache_on) {
          sel.eq_row_sigs.push_back(constraints::ConstraintRowSignature(c));
        }
      } else {
        sel.ineq_rows.push_back(row);
        if (cache_on) {
          sel.ineq_row_sigs.push_back(constraints::ConstraintRowSignature(c));
        }
      }
    }
  }

  // Solution-cache pre-pass: serial, in block-id order, so the census
  // (hits/misses) is identical for any thread count. An exact hit (same
  // rows digest) skips the block's solve entirely; under kWarm a
  // structure-only hit (same variable set, edited rows) yields a warm
  // dual matched row-by-row by content signature.
  std::vector<std::shared_ptr<const CachedComponentSolution>> exact_hits(
      blocks.size());
  std::vector<std::vector<double>> warm_vectors(blocks.size());
  std::vector<Hash128> exact_keys(blocks.size());
  std::vector<Hash128> vars_keys(blocks.size());
  if (cache_on) {
    const constraints::ComponentSignatures sigs =
        constraints::ComputeComponentSignatures(index, system, analysis);
    for (size_t i = 0; i < blocks.size(); ++i) {
      exact_keys[i] = MakeExactKey(sigs.rows_hash[i], options);
      vars_keys[i] = MakeVarsKey(sigs.vars_hash[i], options);
      auto hit = cache->FindExact(exact_keys[i]);
      if (hit != nullptr && hit->p.size() == blocks[i].cols.size()) {
        exact_hits[i] = std::move(hit);
        ++result.cache_exact_hits;
        continue;
      }
      ++result.cache_misses;
      if (options.cache_mode == CacheMode::kWarm) {
        auto warm = cache->FindWarm(vars_keys[i]);
        if (warm != nullptr) {
          warm_vectors[i] = BuildWarmStart(*warm, blocks[i]);
          if (!warm_vectors[i].empty()) ++result.cache_warm_hits;
        }
      }
    }
  }

  // Per-component wall-time budgets: each coupled block gets a share of
  // the remaining deadline proportional to its variable count. Blocks
  // running in parallel each consume their own share of wall time; in a
  // serial run the shares are relative to each block's own start, with
  // the request deadline as the hard cap either way.
  size_t total_block_vars = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    // Blocks answered from the cache consume no solve time; the deadline
    // budget is shared among the blocks that actually run.
    if (exact_hits[i] != nullptr) continue;
    total_block_vars += blocks[i].cols.size();
  }
  const double remaining_at_start = options.deadline.RemainingSeconds();
  std::vector<double> budget_seconds(blocks.size(), 0.0);
  for (size_t i = 0; i < blocks.size(); ++i) {
    budget_seconds[i] = remaining_at_start *
                        static_cast<double>(blocks[i].cols.size()) /
                        static_cast<double>(std::max<size_t>(total_block_vars,
                                                             1));
  }

  // Solve every block independently — in parallel when asked to. Each
  // task only writes its own slot, and the scatter below runs after the
  // barrier in block order, so the assembly is deterministic for any
  // thread count.
  std::vector<std::optional<Result<SolverResult>>> block_results(
      blocks.size());
  std::vector<size_t> block_attempts(blocks.size(), 0);
  std::vector<double> block_seconds(blocks.size(), 0.0);
  const size_t threads = ThreadPool::ResolveThreads(options.threads);
  // Pool workers carry no ambient trace id of their own; capturing the
  // requester's id here and re-installing it inside the task stitches
  // worker-thread block spans into the request's timeline.
  const uint64_t request_trace_id = trace::CurrentTraceId();
  const std::function<void(size_t)> block_task = [&](size_t i) {
        if (exact_hits[i] != nullptr) return;  // answered from the cache
        trace::TraceIdScope trace_scope(request_trace_id);
        // One arena scope per block task: the Submatrix slices, presolve
        // scratch and dual workspace below all bump-allocate from this
        // worker's thread-local arena and are released wholesale here.
        // The SolverResult stored into block_results escapes by design —
        // its payload vectors use the plain heap allocator.
        ArenaScope arena_scope;
        trace::TraceSpan block_span("solve_block", "solve");
        block_span.AddArg("block", static_cast<double>(i));
        Timer block_timer;
        const BlockSelection& sel = blocks[i];
        block_span.AddArg("vars", static_cast<double>(sel.cols.size()));
        SolverOptions block_options = options;
        if (!warm_vectors[i].empty()) {
          block_options.warm_start_original = &warm_vectors[i];
        }
        if (!options.deadline.is_infinite()) {
          block_options.deadline = Deadline::Earlier(
              options.deadline, Deadline::AfterSeconds(budget_seconds[i]));
        }
        // Failpoint `block_deadline@N`: the Nth block solved starts with
        // an already-spent budget — the deterministic stand-in for "this
        // component's share of the deadline ran out".
        if (PME_FAILPOINT("block_deadline")) {
          block_options.deadline = Deadline::AfterSeconds(0.0);
        }
        // Failpoint `pool_task_throw@N`: the Nth block task throws,
        // exercising the pool's exception containment end to end (the
        // slot stays unset and the component degrades below).
        if (PME_FAILPOINT("pool_task_throw")) {
          throw std::runtime_error("injected pool_task_throw failpoint");
        }
        auto solve_block = [&]() -> Result<SolverResult> {
          MaxEntProblem sub;
          sub.num_vars = sel.cols.size();
          PME_ASSIGN_OR_RETURN(sub.eq,
                               full.eq.Submatrix(sel.eq_rows, sel.cols));
          PME_ASSIGN_OR_RETURN(sub.ineq,
                               full.ineq.Submatrix(sel.ineq_rows, sel.cols));
          sub.eq_rhs.reserve(sel.eq_rows.size());
          for (uint32_t r : sel.eq_rows) sub.eq_rhs.push_back(full.eq_rhs[r]);
          sub.ineq_rhs.reserve(sel.ineq_rows.size());
          for (uint32_t r : sel.ineq_rows) {
            sub.ineq_rhs.push_back(full.ineq_rhs[r]);
          }
          if (options.fallback) {
            return SolveWithFallback(sub, kind, block_options,
                                     &block_attempts[i]);
          }
          block_attempts[i] = 1;
          return Solve(sub, kind, block_options);
        };
        block_results[i] = solve_block();
        block_seconds[i] = block_timer.ElapsedSeconds();
      };
  // A shared pool (the serving path) hosts the tasks as one batch —
  // only this solve's blocks are awaited; otherwise a private pool of
  // `threads` workers is spun for this call (serial inline when 1).
  const Status pool_status =
      options.pool != nullptr
          ? options.pool->RunBatch(blocks.size(), block_task)
          : ThreadPool::ParallelFor(threads, blocks.size(), block_task);

  // Aggregate. With the fallback ladder on, a component whose every rung
  // failed keeps its closed-form no-knowledge prior (already in
  // result.p) and is flagged — one bad component must degrade its own
  // answer, never the whole analysis. With fallback off, the historical
  // fail-fast contract stands: the first component error propagates.
  result.component_outcomes.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    ComponentOutcome outcome;
    outcome.block = static_cast<uint32_t>(i);
    outcome.num_variables = blocks[i].cols.size();
    outcome.attempts = block_attempts[i];
    outcome.solver = kind;
    outcome.seconds = block_seconds[i];

    if (exact_hits[i] != nullptr) {
      // Scatter the cached posterior slice; no solve ran, so this block
      // contributes zero iterations (the bench's speedup measurement)
      // while its dual value and convergence flag still count toward the
      // aggregate exactly as the original solve's did.
      const CachedComponentSolution& cached = *exact_hits[i];
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) {
        result.p[cols[j]] = cached.p[j];
      }
      result.dual_value += cached.dual_value;
      result.presolve_fixed += cached.presolve_fixed;
      result.converged = result.converged && cached.converged;
      outcome.status = StatusCode::kOk;
      outcome.cache = CacheOutcome::kExactHit;
      ++result.components_solved;
      result.component_outcomes.push_back(outcome);
      continue;
    }
    if (!warm_vectors[i].empty()) outcome.cache = CacheOutcome::kWarmStart;

    Status block_error = Status::Ok();
    const SolverResult* sub = nullptr;
    if (!block_results[i].has_value()) {
      // The task never stored a result: it threw (and was contained by
      // the pool). pool_status carries the first exception message.
      block_error = pool_status.ok()
                        ? Status::Internal("block task produced no result")
                        : pool_status;
    } else if (!block_results[i]->ok()) {
      block_error = block_results[i]->status();
    } else {
      sub = &block_results[i]->value();
    }
    if (sub != nullptr) outcome.iterations = sub->iterations;

    if (!options.fallback) {
      if (!block_error.ok()) return block_error;
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub->p[j];
      result.iterations += sub->iterations;
      result.dual_value += sub->dual_value;
      result.presolve_fixed += sub->presolve_fixed;
      result.converged = result.converged && sub->converged;
      if (result.termination == StatusCode::kOk) {
        result.termination = sub->termination;
      }
      outcome.status = sub->termination;
      outcome.solver = sub->kind;
      ++result.components_solved;
      result.component_outcomes.push_back(outcome);
      continue;
    }

    const bool usable = sub != nullptr && IsAcceptable(*sub, options);
    if (usable) {
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub->p[j];
      result.iterations += sub->iterations;
      result.dual_value += sub->dual_value;
      result.presolve_fixed += sub->presolve_fixed;
      result.converged = result.converged && sub->converged;
      outcome.solver = sub->kind;
      outcome.status = sub->termination;
      outcome.degraded = sub->degraded;
      if (sub->degraded) {
        ++result.components_degraded;
      } else {
        ++result.components_solved;
      }
    } else if (sub != nullptr && sub->iterations > 0 &&
               sub->termination != StatusCode::kNumericalError &&
               std::isfinite(sub->max_violation)) {
      // Unacceptable but finite, with real progress made: a
      // hard-to-converge or interrupted block keeps its best-so-far
      // iterate — same contract the pre-fallback solver had for
      // non-converged blocks — rather than throwing the work away. A
      // block that never got to iterate (budget spent up front) falls
      // through to the prior instead: its untouched start point is worse
      // than the closed form.
      const auto& cols = blocks[i].cols;
      for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub->p[j];
      result.iterations += sub->iterations;
      outcome.solver = sub->kind;
      outcome.status = sub->termination == StatusCode::kOk
                           ? StatusCode::kNotConverged
                           : sub->termination;
      outcome.degraded = true;
      ++result.components_degraded;
      result.converged = false;
    } else {
      // Degrade to the closed-form prior already sitting in result.p.
      outcome.degraded = true;
      outcome.used_prior = true;
      if (sub != nullptr) {
        outcome.solver = sub->kind;
        outcome.status = sub->termination == StatusCode::kOk
                             ? StatusCode::kNotConverged
                             : sub->termination;
        result.iterations += sub->iterations;
        ++result.components_degraded;
      } else {
        outcome.status = block_error.code();
        ++result.components_failed;
      }
      result.converged = false;
    }
    result.component_outcomes.push_back(outcome);
  }
  if (!options.fallback && !pool_status.ok()) return pool_status;

  {
    SolveMetrics& sm = GetSolveMetrics();
    sm.components_solved->Add(result.components_solved);
    sm.components_degraded->Add(result.components_degraded);
    sm.components_failed->Add(result.components_failed);
    for (size_t i = 0; i < blocks.size(); ++i) {
      if (exact_hits[i] != nullptr) continue;  // no solve ran
      sm.block_seconds->Observe(block_seconds[i]);
    }
    for (const ComponentOutcome& outcome : result.component_outcomes) {
      if (outcome.cache == CacheOutcome::kExactHit) continue;
      sm.block_iterations->Observe(
          static_cast<double>(outcome.iterations));
    }
    solve_span.AddArg("blocks", static_cast<double>(blocks.size()));
  }

  // Publish freshly solved, acceptable block solutions — serially and in
  // block-id order, so insertions (and therefore evictions and the whole
  // cache census) are identical for any --threads value.
  if (cache_on) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      if (exact_hits[i] != nullptr) continue;
      if (!block_results[i].has_value() || !block_results[i]->ok()) continue;
      const SolverResult& sub = block_results[i]->value();
      if (!IsAcceptable(sub, options)) continue;
      CachedComponentSolution entry;
      entry.p = sub.p;
      entry.lambda_full = sub.dual_lambda_full;
      entry.eq_row_sigs = blocks[i].eq_row_sigs;
      entry.ineq_row_sigs = blocks[i].ineq_row_sigs;
      entry.dual_value = sub.dual_value;
      entry.iterations = sub.iterations;
      entry.presolve_fixed = sub.presolve_fixed;
      entry.converged = sub.converged;
      cache->Insert(exact_keys[i], vars_keys[i], std::move(entry));
    }
    const SolutionCacheStats stats = cache->Stats();
    result.cache_entries = stats.entries;
    result.cache_evictions = stats.evictions;
    result.cache_resident_doubles = stats.resident_doubles;
  }

  result.degraded =
      result.components_degraded > 0 || result.components_failed > 0;
  // A cooperative cancel outranks per-component bookkeeping: the caller
  // asked the whole request to stop, and the aggregate says so (while
  // still carrying the partial answer). A spent request deadline
  // likewise marks the aggregate, so callers can tell "finished with
  // degraded parts" from "ran out of time".
  if (options.cancel.cancelled()) {
    result.termination = StatusCode::kCancelled;
  } else if (options.fallback && options.deadline.Expired()) {
    result.termination = StatusCode::kDeadlineExceeded;
  }

  if (incremental_entropy) {
    // -sum p ln p, starting from the prior's entropy and swapping in the
    // coupled coordinates' contributions (blocks never overlap).
    double entropy = options.closed_form_prior_entropy;
    const std::vector<double>& prior = *options.closed_form_prior;
    // Gather each block's prior/posterior slices into reused contiguous
    // buffers so both -Σ x ln x reductions run as single batched kernel
    // passes instead of per-coordinate scalar XLogX calls.
    std::vector<double> prior_slice;
    std::vector<double> post_slice;
    for (const auto& block : blocks) {
      prior_slice.resize(block.cols.size());
      post_slice.resize(block.cols.size());
      for (size_t j = 0; j < block.cols.size(); ++j) {
        prior_slice[j] = prior[block.cols[j]];
        post_slice[j] = result.p[block.cols[j]];
      }
      entropy += kernels::NegXLogXSum(kernels::ConstSpan(post_slice)) -
                 kernels::NegXLogXSum(kernels::ConstSpan(prior_slice));
    }
    result.entropy = entropy;
  } else {
    result.entropy = Entropy(result.p);
  }
  result.max_violation = system.MaxViolation(result.p);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace pme::maxent
