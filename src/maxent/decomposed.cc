#include "maxent/decomposed.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "maxent/closed_form.h"
#include "maxent/problem.h"

namespace pme::maxent {

using constraints::ComponentAnalysis;

DecompositionStats AnalyzeDecomposition(
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system) {
  DecompositionStats stats;
  stats.total_variables = index.num_variables();
  const ComponentAnalysis analysis = ComponentAnalysis::Build(index, system);
  stats.num_components = analysis.num_components();
  stats.num_coupled_components = analysis.num_coupled();
  for (const auto& comp : analysis.components()) {
    if (comp.coupled) {
      stats.relevant_buckets += comp.buckets.size();
      stats.relevant_variables += comp.num_variables;
      stats.coupled_component_variables.push_back(comp.num_variables);
    } else {
      stats.irrelevant_buckets += comp.buckets.size();
    }
  }
  return stats;
}

namespace {

/// The row/column selection of one coupled component's block.
struct BlockSelection {
  std::vector<uint32_t> cols;       // full-space variable ids, ascending
  std::vector<uint32_t> eq_rows;    // rows of the full eq matrix
  std::vector<uint32_t> ineq_rows;  // rows of the full ineq matrix
};

}  // namespace

Result<SolverResult> SolveDecomposed(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system, SolverKind kind,
    const SolverOptions& options) {
  Timer timer;
  const ComponentAnalysis analysis = ComponentAnalysis::Build(index, system);

  // Monolithic fallback: when one coupled component dominates the
  // variable space there is nothing to decompose — the closed form would
  // cover almost nothing and the Submatrix slice would copy almost
  // everything. Solving the original system directly skips that 10-40%
  // overhead.
  {
    size_t largest_coupled = 0;
    for (const auto& comp : analysis.components()) {
      if (comp.coupled) {
        largest_coupled = std::max(largest_coupled, comp.num_variables);
      }
    }
    const size_t total = index.num_variables();
    if (total > 0 &&
        static_cast<double>(largest_coupled) >
            options.monolithic_fallback_fraction * static_cast<double>(total)) {
      PME_ASSIGN_OR_RETURN(MaxEntProblem whole, BuildProblem(system));
      PME_ASSIGN_OR_RETURN(SolverResult mono, Solve(whole, kind, options));
      mono.used_monolithic_fallback = true;
      return mono;
    }
  }

  SolverResult result;
  result.kind = kind;
  result.converged = true;

  // Closed form everywhere first (exact for uncoupled components by
  // Theorem 5); the block solves overwrite the coupled ranges.
  result.p = ClosedFormNoKnowledge(table, index);

  // Dense numbering of the coupled components.
  std::vector<int64_t> block_of_component(analysis.num_components(), -1);
  std::vector<BlockSelection> blocks;
  blocks.reserve(analysis.num_coupled());
  for (size_t k = 0; k < analysis.num_components(); ++k) {
    const auto& comp = analysis.components()[k];
    if (!comp.coupled) continue;
    block_of_component[k] = static_cast<int64_t>(blocks.size());
    BlockSelection block;
    block.cols.reserve(comp.num_variables);
    for (uint32_t b : comp.buckets) {
      const auto [first, last] = index.BucketRange(b);
      for (uint32_t v = first; v < last; ++v) block.cols.push_back(v);
    }
    blocks.push_back(std::move(block));
  }

  if (blocks.empty()) {
    result.entropy = Entropy(result.p);
    result.max_violation = system.MaxViolation(result.p);
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Assemble the full constraint matrices once, then slice each block out
  // with Submatrix. Row numbering must mirror ToMatrices: equality rows in
  // constraint order, inequality rows (kLe, and kGe negated) likewise.
  PME_ASSIGN_OR_RETURN(MaxEntProblem full, BuildProblem(system));
  {
    uint32_t eq_row = 0, ineq_row = 0;
    for (const auto& c : system.constraints()) {
      const bool is_eq = c.rel == knowledge::Relation::kEq;
      const uint32_t row = is_eq ? eq_row++ : ineq_row++;
      int64_t block = -1;
      for (size_t i = 0; i < c.vars.size(); ++i) {
        if (c.coefs[i] == 0.0) continue;
        // Union-find put every bucket a constraint touches into one
        // component, so the first supported variable decides the block.
        block = block_of_component[analysis.ComponentOf(
            index.TermOf(c.vars[i]).bucket)];
        break;
      }
      if (block < 0) {
        // Either an empty row (check it is vacuously satisfiable) or a
        // constraint on an uncoupled component — which is an invariant by
        // construction, satisfied exactly by the closed form.
        const double rhs = is_eq ? full.eq_rhs[row] : full.ineq_rhs[row];
        const bool empty_support =
            c.vars.empty() ||
            std::all_of(c.coefs.begin(), c.coefs.end(),
                        [](double v) { return v == 0.0; });
        if (empty_support &&
            (is_eq ? std::fabs(rhs) > 1e-12 : rhs < -1e-12)) {
          return Status::Infeasible("constraint '" + c.label +
                                    "' has empty support and nonzero bound");
        }
        continue;
      }
      auto& sel = blocks[static_cast<size_t>(block)];
      if (is_eq) {
        sel.eq_rows.push_back(row);
      } else {
        sel.ineq_rows.push_back(row);
      }
    }
  }

  // Solve every block independently — in parallel when asked to. Each
  // task only writes its own slot, and the scatter below runs after the
  // barrier in block order, so the assembly is deterministic for any
  // thread count.
  std::vector<std::optional<Result<SolverResult>>> block_results(
      blocks.size());
  const size_t threads = ThreadPool::ResolveThreads(options.threads);
  ThreadPool::ParallelFor(threads, blocks.size(), [&](size_t i) {
    const BlockSelection& sel = blocks[i];
    auto solve_block = [&]() -> Result<SolverResult> {
      MaxEntProblem sub;
      sub.num_vars = sel.cols.size();
      PME_ASSIGN_OR_RETURN(sub.eq, full.eq.Submatrix(sel.eq_rows, sel.cols));
      PME_ASSIGN_OR_RETURN(sub.ineq,
                           full.ineq.Submatrix(sel.ineq_rows, sel.cols));
      sub.eq_rhs.reserve(sel.eq_rows.size());
      for (uint32_t r : sel.eq_rows) sub.eq_rhs.push_back(full.eq_rhs[r]);
      sub.ineq_rhs.reserve(sel.ineq_rows.size());
      for (uint32_t r : sel.ineq_rows) {
        sub.ineq_rhs.push_back(full.ineq_rhs[r]);
      }
      return Solve(sub, kind, options);
    };
    block_results[i] = solve_block();
  });

  for (size_t i = 0; i < blocks.size(); ++i) {
    Result<SolverResult>& block_result = *block_results[i];
    if (!block_result.ok()) return block_result.status();
    const SolverResult& sub = block_result.value();
    const auto& cols = blocks[i].cols;
    for (size_t j = 0; j < cols.size(); ++j) result.p[cols[j]] = sub.p[j];
    result.iterations += sub.iterations;
    result.dual_value += sub.dual_value;
    result.presolve_fixed += sub.presolve_fixed;
    result.converged = result.converged && sub.converged;
  }

  result.entropy = Entropy(result.p);
  result.max_violation = system.MaxViolation(result.p);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace pme::maxent
