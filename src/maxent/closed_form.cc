#include "maxent/closed_form.h"

namespace pme::maxent {

void ClosedFormBucket(const anonymize::BucketizedTable& table,
                      const constraints::TermIndex& index, uint32_t b,
                      std::vector<double>* p) {
  const auto& qis = index.BucketQiList(b);
  const auto& sas = index.BucketSaList(b);
  const auto [first, last] = index.BucketRange(b);
  (void)last;
  const double prob_b = table.ProbB(b);
  const uint32_t h = static_cast<uint32_t>(sas.size());
  for (uint32_t qi_rank = 0; qi_rank < qis.size(); ++qi_rank) {
    const double pq = table.ProbQB(qis[qi_rank], b);
    for (uint32_t sa_rank = 0; sa_rank < h; ++sa_rank) {
      const double ps = table.ProbSB(sas[sa_rank], b);
      (*p)[first + qi_rank * h + sa_rank] = pq * ps / prob_b;
    }
  }
}

std::vector<double> ClosedFormNoKnowledge(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index) {
  std::vector<double> p(index.num_variables(), 0.0);
  for (uint32_t b = 0; b < table.num_buckets(); ++b) {
    ClosedFormBucket(table, index, b, &p);
  }
  return p;
}

}  // namespace pme::maxent
