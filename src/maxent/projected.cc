// Projected-gradient minimizer for the inequality-extended dual
// (Kazama & Tsujii [11], Section 4.5 of the paper).
//
// The stacked dual has one multiplier per constraint row; multipliers of
// inequality rows (indices >= num_eq) must stay nonpositive. The feasible
// set is a box, so projection is a componentwise min with zero. Steps use
// the Barzilai–Borwein spectral length with projected Armijo backtracking.

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/vec_math.h"
#include "maxent/solvers_internal.h"

namespace pme::maxent::internal {
namespace {

void Project(size_t num_eq, std::vector<double>* lambda) {
  for (size_t j = num_eq; j < lambda->size(); ++j) {
    (*lambda)[j] = std::min((*lambda)[j], 0.0);
  }
}

/// Projected-gradient norm: the usual gradient for free coordinates; for
/// box coordinates at the boundary, only the infeasible-direction part.
double ProjectedGradInf(const std::vector<double>& lambda,
                        const std::vector<double>& grad, size_t num_eq) {
  double worst = 0.0;
  for (size_t j = 0; j < lambda.size(); ++j) {
    double g = grad[j];
    if (j >= num_eq && lambda[j] >= 0.0) {
      // At the boundary λ_j = 0 we can only move downward: a negative
      // gradient component (wanting λ_j to grow) is not a violation.
      g = std::max(g, 0.0);
    }
    worst = std::max(worst, std::fabs(g));
  }
  return worst;
}

}  // namespace

Result<DualOutcome> MinimizeProjected(const DualFunction& dual, size_t num_eq,
                                      const SolverOptions& options) {
  const size_t m = dual.dim();
  DualOutcome out;
  InitLambda(options, m, &out.lambda);
  Project(num_eq, &out.lambda);  // a warm start must enter the feasible box
  if (m == 0) {
    out.converged = true;
    return out;
  }
  if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
    out.stop = stop;
    return out;
  }

  DualWorkspace ws;
  std::vector<double> grad(m), prev_lambda, prev_grad;
  double value = dual.EvaluateInto(out.lambda, &grad, &ws);
  double bb_step = 1.0;

  std::vector<double> trial(m), trial_grad(m);
  StallDetector stall(options.ftol, options.max_stall_iterations);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.grad_inf = ProjectedGradInf(out.lambda, grad, num_eq);
    out.iterations = iter;
    if (out.grad_inf <= options.tolerance) {
      out.converged = true;
      out.dual_value = value;
      return out;
    }
    if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
      out.stop = stop;
      out.dual_value = value;
      return out;
    }

    // Barzilai–Borwein step length from the previous move.
    if (!prev_lambda.empty()) {
      double sy = 0.0, ss = 0.0;
      for (size_t j = 0; j < m; ++j) {
        const double s = out.lambda[j] - prev_lambda[j];
        const double y = grad[j] - prev_grad[j];
        sy += s * y;
        ss += s * s;
      }
      bb_step = (sy > 1e-16) ? ss / sy : 1.0;
      bb_step = std::clamp(bb_step, 1e-10, 1e10);
    }

    prev_lambda = out.lambda;
    prev_grad = grad;

    // Projected Armijo backtracking on the path λ(t) = P(λ − t·∇D).
    const double c1 = 1e-4;
    double step = bb_step;
    bool accepted = false;
    double accepted_value = value;
    for (size_t ls = 0; ls < options.max_line_search_steps; ++ls) {
      kernels::ScaledAdd(out.lambda, -step, grad, trial);
      Project(num_eq, &trial);
      // Differences first, then the dot: the fused form stays accurate
      // when trial − λ is tiny (a two-dot difference would cancel).
      double decrease_model = 0.0;
      for (size_t j = 0; j < m; ++j) {
        decrease_model += grad[j] * (trial[j] - out.lambda[j]);
      }
      const double trial_value = dual.EvaluateInto(trial, &trial_grad, &ws);
      if (std::isfinite(trial_value) &&
          trial_value <= value + c1 * decrease_model) {
        accepted = true;
        accepted_value = trial_value;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // stalled at numerical precision

    out.lambda.swap(trial);
    grad.swap(trial_grad);
    const double prev_value = value;
    value = accepted_value;
    out.iterations = iter + 1;
    if (stall.Update(prev_value, value)) break;
  }
  out.dual_value = value;
  out.grad_inf = ProjectedGradInf(out.lambda, grad, num_eq);
  out.converged = out.grad_inf <= options.tolerance;
  return out;
}

}  // namespace pme::maxent::internal
