// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_DUAL_H_
#define PME_MAXENT_DUAL_H_

#include <vector>

#include "common/arena.h"
#include "linalg/sparse_matrix.h"

namespace pme::maxent {

/// Caller-owned scratch for the allocation-free dual evaluation. One
/// workspace per solver run; after the first Evaluate the buffers are at
/// their final size and every subsequent call — including every
/// line-search probe — performs zero heap allocations.
struct DualWorkspace {
  /// The primal iterate p(λ) = exp(Aᵀλ − 1), size n. Valid after each
  /// EvaluateInto; the exponent Aᵀλ is computed into this same buffer
  /// and overwritten in place, so no separate `t` scratch exists.
  /// Arena-aware: a workspace created inside a block-solve ArenaScope
  /// draws from the pool worker's arena and dies with the scope.
  ScratchVector<double> p;
};

/// The Lagrange dual of the equality-constrained MaxEnt problem
/// (Section 3.3 converts the constrained problem to an unconstrained one
/// exactly this way).
///
/// For  max H(p) s.t. A p = b, p ≥ 0,  stationarity of the Lagrangian
/// L(p, λ) = H(p) + λᵀ(A p − b) gives  p_i(λ) = exp((Aᵀλ)_i − 1),  and the
/// dual objective to *minimize* over free λ is
///
///   D(λ) = Σ_i exp((Aᵀλ)_i − 1) − bᵀλ,       ∇D(λ) = A p(λ) − b.
///
/// D is smooth and convex; its gradient is the constraint residual, so the
/// solver's convergence measure ‖∇D‖∞ is exactly the worst constraint
/// violation of the current primal iterate.
///
/// The same object serves the inequality-extended problem (Kazama–Tsujii):
/// stack the inequality rows below the equality rows and constrain their
/// multipliers to λ_j ≤ 0 (handled by the projected solver).
class DualFunction {
 public:
  /// `a` (m×n) and the buffer behind `b` (size m) must outlive this
  /// object. `b` is a view, so any contiguous double container works —
  /// plain or arena-backed.
  DualFunction(const linalg::SparseMatrix* a, kernels::ConstSpan b);

  /// Dual dimension m (number of constraints).
  size_t dim() const { return b_.size; }
  /// Primal dimension n (number of probability terms).
  size_t num_vars() const { return a_->cols(); }

  /// Evaluates D(λ). When non-null, `grad` receives ∇D (size m) and `p`
  /// receives the primal iterate p(λ) (size n). Convenience wrapper over
  /// EvaluateInto; allocates a fresh workspace per call — solvers use
  /// EvaluateInto directly to keep their hot loop allocation-free.
  double Evaluate(const std::vector<double>& lambda,
                  std::vector<double>* grad, std::vector<double>* p) const;

  /// Fused evaluation of D(λ) into caller-owned scratch: the exponent
  /// Aᵀλ, the primal p(λ) and the running sum Σp are produced in a
  /// single pass over `ws->p`, then ∇D = A p − b is written into `grad`
  /// (when non-null). Buffers are grown on first use and merely reused
  /// afterwards — no per-call heap traffic.
  double EvaluateInto(const std::vector<double>& lambda,
                      std::vector<double>* grad, DualWorkspace* ws) const;

  /// The primal iterate p(λ) alone.
  std::vector<double> Primal(const std::vector<double>& lambda) const;

  /// The constraint matrix A (needed by iterative-scaling solvers for
  /// column sums) and RHS b.
  const linalg::SparseMatrix& matrix() const { return *a_; }
  kernels::ConstSpan rhs() const { return b_; }

 private:
  const linalg::SparseMatrix* a_;
  kernels::ConstSpan b_;
};

}  // namespace pme::maxent

#endif  // PME_MAXENT_DUAL_H_
