// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.
//
// Internal dual minimizers. Public entry point is maxent/solver.h.

#ifndef PME_MAXENT_SOLVERS_INTERNAL_H_
#define PME_MAXENT_SOLVERS_INTERNAL_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "maxent/dual.h"
#include "maxent/solver.h"

namespace pme::maxent::internal {

/// Starting point for a minimizer: zeros, or the caller's warm start
/// when it matches the dual dimension and is entirely finite (a poisoned
/// warm start must not propagate a fault into the recovery rung).
inline void InitLambda(const SolverOptions& options, size_t m,
                       std::vector<double>* lambda) {
  lambda->assign(m, 0.0);
  if (options.warm_start == nullptr || options.warm_start->size() != m) {
    return;
  }
  for (double v : *options.warm_start) {
    if (!std::isfinite(v)) return;
  }
  *lambda = *options.warm_start;
}

/// The once-per-iteration interrupt poll every minimizer runs: kOk to
/// keep iterating, kCancelled / kDeadlineExceeded to stop and return the
/// best iterate so far.
inline StatusCode CheckStop(const SolverOptions& options) {
  return CheckInterrupt(options.deadline, options.cancel);
}

/// Detects runs of accepted-but-worthless line-search steps: near the
/// numerical floor the Armijo test keeps accepting rounding-noise
/// improvements, and without a cutoff a solve sitting a few ulps above
/// the gradient tolerance burns its whole iteration budget. Shared by
/// every line-search minimizer so the criterion cannot drift.
class StallDetector {
 public:
  StallDetector(double ftol, size_t limit) : ftol_(ftol), limit_(limit) {}

  /// Records one accepted step; true when `limit` consecutive steps each
  /// improved the dual by no more than ftol * (|value| + 1).
  bool Update(double prev_value, double value) {
    if (prev_value - value <= ftol_ * (std::fabs(value) + 1.0)) {
      return ++stalled_ >= limit_;
    }
    stalled_ = 0;
    return false;
  }

  void Reset() { stalled_ = 0; }

 private:
  double ftol_;
  size_t limit_;
  size_t stalled_ = 0;
};

/// Result of minimizing the dual.
struct DualOutcome {
  std::vector<double> lambda;
  size_t iterations = 0;
  bool converged = false;
  double dual_value = 0.0;
  /// ‖∇D‖∞ at the final iterate == worst equality-constraint violation.
  double grad_inf = 0.0;
  /// kOk for a normal finish; kDeadlineExceeded / kCancelled when the
  /// solve was interrupted — `lambda` is still the best iterate so far.
  StatusCode stop = StatusCode::kOk;
};

/// Limited-memory BFGS with two-loop recursion and Armijo backtracking.
Result<DualOutcome> MinimizeLbfgs(const DualFunction& dual,
                                  const SolverOptions& options);

/// Generalized Iterative Scaling (Darroch & Ratcliff). Requires
/// nonnegative coefficients and strictly positive RHS entries.
Result<DualOutcome> MinimizeGis(const DualFunction& dual,
                                const SolverOptions& options);

/// Improved Iterative Scaling (Della Pietra et al.). Requires
/// nonnegative coefficients and strictly positive RHS entries; solves a
/// one-dimensional Newton problem per constraint per sweep.
Result<DualOutcome> MinimizeIis(const DualFunction& dual,
                                const SolverOptions& options);

/// Steepest descent with backtracking line search.
Result<DualOutcome> MinimizeSteepest(const DualFunction& dual,
                                     const SolverOptions& options);

/// Damped Newton with dense Cholesky on H = A diag(p) Aᵀ. Refuses duals
/// larger than options.newton_max_dim.
Result<DualOutcome> MinimizeNewton(const DualFunction& dual,
                                   const SolverOptions& options);

/// Projected gradient (Barzilai–Borwein step + projected Armijo) for the
/// stacked equality+inequality dual: multipliers with index >= num_eq are
/// constrained to λ_j ≤ 0 (Kazama–Tsujii sign condition).
Result<DualOutcome> MinimizeProjected(const DualFunction& dual, size_t num_eq,
                                      const SolverOptions& options);

}  // namespace pme::maxent::internal

#endif  // PME_MAXENT_SOLVERS_INTERNAL_H_
