#include "maxent/solver.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/math_util.h"
#include "common/timer.h"
#include "maxent/dual.h"
#include "maxent/solvers_internal.h"

namespace pme::maxent {
namespace {

/// Stacks equality rows above inequality rows into a single matrix for
/// the projected (sign-constrained) dual.
Result<linalg::SparseMatrix> StackMatrices(const linalg::SparseMatrix& eq,
                                           const linalg::SparseMatrix& ineq) {
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(eq.nnz() + ineq.nnz());
  auto append = [&triplets](const linalg::SparseMatrix& m, uint32_t row_base) {
    const auto& offsets = m.row_offsets();
    const auto& cols = m.col_indices();
    const auto& values = m.values();
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        triplets.push_back(
            {row_base + static_cast<uint32_t>(r), cols[k], values[k]});
      }
    }
  };
  append(eq, 0);
  append(ineq, static_cast<uint32_t>(eq.rows()));
  return linalg::SparseMatrix::FromTriplets(eq.rows() + ineq.rows(),
                                            eq.cols(), std::move(triplets));
}

/// Worst violation of the *original* problem at full-space solution p.
double ProblemViolation(const MaxEntProblem& problem,
                        const std::vector<double>& p) {
  double worst = 0.0;
  std::vector<double> lhs;
  problem.eq.Multiply(p, lhs);
  for (size_t j = 0; j < lhs.size(); ++j) {
    worst = std::max(worst, std::fabs(lhs[j] - problem.eq_rhs[j]));
  }
  problem.ineq.Multiply(p, lhs);
  for (size_t j = 0; j < lhs.size(); ++j) {
    worst = std::max(worst, std::max(0.0, lhs[j] - problem.ineq_rhs[j]));
  }
  return worst;
}

}  // namespace

const char* CacheModeToString(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kExact:
      return "exact";
    case CacheMode::kWarm:
      return "warm";
  }
  return "unknown";
}

const char* SolverKindToString(SolverKind kind) {
  switch (kind) {
    case SolverKind::kLbfgs:
      return "lbfgs";
    case SolverKind::kGis:
      return "gis";
    case SolverKind::kIis:
      return "iis";
    case SolverKind::kSteepest:
      return "steepest";
    case SolverKind::kNewton:
      return "newton";
    case SolverKind::kProjected:
      return "projected";
  }
  return "unknown";
}

Result<SolverResult> Solve(const MaxEntProblem& problem, SolverKind kind,
                           const SolverOptions& options) {
  Timer timer;
  SolverResult result;
  result.kind = kind;

  // Presolve (or pass-through).
  PresolvedProblem pre;
  if (options.presolve) {
    PME_ASSIGN_OR_RETURN(pre, Presolve(problem));
  } else {
    pre.reduced = problem;
    pre.var_map.resize(problem.num_vars);
    pre.fixed_values.assign(problem.num_vars, 0.0);
    for (size_t v = 0; v < problem.num_vars; ++v) {
      pre.var_map[v] = static_cast<int64_t>(v);
    }
    pre.eq_row_map.resize(problem.eq.rows());
    for (size_t r = 0; r < problem.eq.rows(); ++r) {
      pre.eq_row_map[r] = static_cast<int64_t>(r);
    }
    pre.ineq_row_map.resize(problem.ineq.rows());
    for (size_t r = 0; r < problem.ineq.rows(); ++r) {
      pre.ineq_row_map[r] = static_cast<int64_t>(r);
    }
  }
  result.presolve_fixed = pre.num_fixed;
  const MaxEntProblem& reduced = pre.reduced;

  // An original-row-space warm start (cached re-analysis) is carried
  // into the reduced dual space through the presolve row maps. The
  // reduced-space `warm_start` wins when both are set — it came from a
  // solve of this very problem (the fallback ladder) and is exact.
  SolverOptions solve_options = options;
  std::vector<double> mapped_warm;
  if (options.warm_start == nullptr &&
      options.warm_start_original != nullptr &&
      options.warm_start_original->size() ==
          problem.eq.rows() + problem.ineq.rows()) {
    bool finite = true;
    for (double v : *options.warm_start_original) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (finite) {
      mapped_warm.assign(reduced.eq.rows() + reduced.ineq.rows(), 0.0);
      const auto& w = *options.warm_start_original;
      for (size_t r = 0; r < problem.eq.rows(); ++r) {
        if (pre.eq_row_map[r] >= 0) {
          mapped_warm[static_cast<size_t>(pre.eq_row_map[r])] = w[r];
        }
      }
      for (size_t r = 0; r < problem.ineq.rows(); ++r) {
        if (pre.ineq_row_map[r] >= 0) {
          mapped_warm[reduced.eq.rows() +
                      static_cast<size_t>(pre.ineq_row_map[r])] =
              w[problem.eq.rows() + r];
        }
      }
      solve_options.warm_start = &mapped_warm;
    }
  }

  std::vector<double> reduced_p(reduced.num_vars, 0.0);
  if (reduced.num_vars > 0) {
    internal::DualOutcome outcome;
    if (reduced.has_inequalities()) {
      PME_ASSIGN_OR_RETURN(auto stacked,
                           StackMatrices(reduced.eq, reduced.ineq));
      ScratchVector<double> rhs = reduced.eq_rhs;
      rhs.insert(rhs.end(), reduced.ineq_rhs.begin(), reduced.ineq_rhs.end());
      DualFunction dual(&stacked, rhs);
      PME_ASSIGN_OR_RETURN(
          outcome,
          internal::MinimizeProjected(dual, reduced.eq.rows(),
                                      solve_options));
      reduced_p = dual.Primal(outcome.lambda);
    } else {
      DualFunction dual(&reduced.eq, reduced.eq_rhs);
      switch (kind) {
        case SolverKind::kLbfgs: {
          PME_ASSIGN_OR_RETURN(outcome,
                               internal::MinimizeLbfgs(dual, solve_options));
          break;
        }
        case SolverKind::kGis: {
          PME_ASSIGN_OR_RETURN(outcome,
                               internal::MinimizeGis(dual, solve_options));
          break;
        }
        case SolverKind::kIis: {
          PME_ASSIGN_OR_RETURN(outcome,
                               internal::MinimizeIis(dual, solve_options));
          break;
        }
        case SolverKind::kSteepest: {
          PME_ASSIGN_OR_RETURN(
              outcome, internal::MinimizeSteepest(dual, solve_options));
          break;
        }
        case SolverKind::kNewton: {
          PME_ASSIGN_OR_RETURN(outcome,
                               internal::MinimizeNewton(dual, solve_options));
          break;
        }
        case SolverKind::kProjected: {
          // No inequality rows: the box is all of R^m and this is plain
          // Barzilai–Borwein gradient descent — the fallback chain's
          // curvature-free restart rung.
          PME_ASSIGN_OR_RETURN(
              outcome, internal::MinimizeProjected(dual, reduced.eq.rows(),
                                                   solve_options));
          break;
        }
      }
      reduced_p = dual.Primal(outcome.lambda);
    }
    result.iterations = outcome.iterations;
    result.converged = outcome.converged;
    result.dual_value = outcome.dual_value;
    result.termination = outcome.stop;
    result.dual_lambda = std::move(outcome.lambda);
  } else {
    result.converged = true;
  }

  // Scatter the reduced dual back onto the original rows (dropped rows
  // at 0): the row-stable warm-start payload the solution cache stores.
  result.dual_lambda_full.assign(problem.eq.rows() + problem.ineq.rows(),
                                 0.0);
  if (!result.dual_lambda.empty()) {
    for (size_t r = 0; r < problem.eq.rows(); ++r) {
      if (pre.eq_row_map[r] >= 0) {
        result.dual_lambda_full[r] =
            result.dual_lambda[static_cast<size_t>(pre.eq_row_map[r])];
      }
    }
    for (size_t r = 0; r < problem.ineq.rows(); ++r) {
      if (pre.ineq_row_map[r] >= 0) {
        result.dual_lambda_full[problem.eq.rows() + r] =
            result.dual_lambda[reduced.eq.rows() +
                               static_cast<size_t>(pre.ineq_row_map[r])];
      }
    }
  }

  result.p = pre.Restore(reduced_p);
  if (result.termination == StatusCode::kOk) {
    // A NaN/Inf iterate (diverged multipliers, overflowed exp) is a
    // numerical failure even when the minimizer exited cleanly.
    for (double v : result.p) {
      if (!std::isfinite(v)) {
        result.termination = StatusCode::kNumericalError;
        result.converged = false;
        break;
      }
    }
  }
  result.entropy = Entropy(result.p);
  result.max_violation = ProblemViolation(problem, result.p);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

bool IsAcceptable(const SolverResult& result, const SolverOptions& options) {
  if (result.termination != StatusCode::kOk) return false;
  if (!std::isfinite(result.max_violation)) return false;
  return result.converged ||
         result.max_violation <= options.fallback_accept_violation;
}

Result<SolverResult> SolveWithFallback(const MaxEntProblem& problem,
                                       SolverKind kind,
                                       const SolverOptions& options,
                                       size_t* attempts) {
  // The ladder: requested solver, projected-gradient restart (from the
  // best dual point so far), GIS. Later rungs trade convergence speed
  // for robustness — no curvature memory to poison, monotone updates.
  std::vector<SolverKind> ladder = {kind};
  if (kind != SolverKind::kProjected) ladder.push_back(SolverKind::kProjected);
  if (kind != SolverKind::kGis) ladder.push_back(SolverKind::kGis);

  std::optional<SolverResult> best;  // finite attempt with least violation
  std::vector<double> warm;
  SolverOptions rung_options = options;
  size_t tried = 0;
  Status hard_error = Status::Ok();
  for (SolverKind rung : ladder) {
    if (tried >= options.max_fallback_attempts) break;
    if (tried > 0 && CheckInterrupt(options.deadline, options.cancel) !=
                         StatusCode::kOk) {
      break;  // no budget left to retry with
    }
    ++tried;
    auto attempt = Solve(problem, rung, rung_options);
    if (!attempt.ok()) {
      // Precondition/structural failure of this rung (e.g. GIS on
      // negative coefficients); the next rung may still apply.
      hard_error = attempt.status();
      continue;
    }
    SolverResult result = std::move(attempt).value();
    if (IsAcceptable(result, options)) {
      result.degraded = tried > 1;
      if (attempts != nullptr) *attempts = tried;
      return result;
    }
    const bool finite = result.termination != StatusCode::kNumericalError &&
                        std::isfinite(result.max_violation);
    if (finite &&
        (!best.has_value() || result.max_violation < best->max_violation)) {
      best = result;
    }
    // Restart the next rung from this rung's dual point when usable
    // (InitLambda re-checks finiteness; a shorter/poisoned lambda is
    // ignored there).
    if (!result.dual_lambda.empty()) {
      warm = std::move(result.dual_lambda);
      rung_options.warm_start = &warm;
    }
  }
  if (attempts != nullptr) *attempts = tried;
  if (best.has_value()) {
    best->degraded = tried > 1;
    return std::move(*best);
  }
  if (!hard_error.ok()) return hard_error;
  return Status::NotConverged("every fallback rung failed without an iterate");
}

}  // namespace pme::maxent
