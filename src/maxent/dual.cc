#include "maxent/dual.h"

#include <cassert>

#include "common/math_util.h"

namespace pme::maxent {

DualFunction::DualFunction(const linalg::SparseMatrix* a,
                           const std::vector<double>* b)
    : a_(a), b_(b) {
  assert(a != nullptr && b != nullptr);
  assert(a->rows() == b->size());
}

double DualFunction::Evaluate(const std::vector<double>& lambda,
                              std::vector<double>* grad,
                              std::vector<double>* p) const {
  assert(lambda.size() == dim());
  // t = Aᵀλ, p = exp(t − 1).
  std::vector<double> t;
  a_->TransposeMultiply(lambda, t);
  std::vector<double> local_p;
  std::vector<double>& pv = p != nullptr ? *p : local_p;
  pv.resize(t.size());
  double sum_p = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    pv[i] = SafeExp(t[i] - 1.0);
    sum_p += pv[i];
  }
  double value = sum_p - Dot(*b_, lambda);
  if (grad != nullptr) {
    a_->Multiply(pv, *grad);
    for (size_t j = 0; j < grad->size(); ++j) (*grad)[j] -= (*b_)[j];
  }
  return value;
}

std::vector<double> DualFunction::Primal(
    const std::vector<double>& lambda) const {
  std::vector<double> p;
  Evaluate(lambda, nullptr, &p);
  return p;
}

}  // namespace pme::maxent
