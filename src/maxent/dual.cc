#include "maxent/dual.h"

#include <cassert>

#include "common/math_util.h"

namespace pme::maxent {

DualFunction::DualFunction(const linalg::SparseMatrix* a,
                           const std::vector<double>* b)
    : a_(a), b_(b) {
  assert(a != nullptr && b != nullptr);
  assert(a->rows() == b->size());
}

double DualFunction::Evaluate(const std::vector<double>& lambda,
                              std::vector<double>* grad,
                              std::vector<double>* p) const {
  DualWorkspace ws;
  if (p != nullptr) ws.p.swap(*p);  // reuse the caller's capacity
  const double value = EvaluateInto(lambda, grad, &ws);
  if (p != nullptr) p->swap(ws.p);
  return value;
}

double DualFunction::EvaluateInto(const std::vector<double>& lambda,
                                  std::vector<double>* grad,
                                  DualWorkspace* ws) const {
  assert(ws != nullptr);
  assert(lambda.size() == dim());
  // p <- Aᵀλ, then p <- exp(p − 1) in place (single buffer, no `t`).
  if (ws->p.size() != num_vars()) ws->p.resize(num_vars());
  a_->TransposeMultiply(lambda, ws->p);
  double sum_p = 0.0;
  for (double& v : ws->p) {
    v = SafeExp(v - 1.0);
    sum_p += v;
  }
  const double value = sum_p - Dot(*b_, lambda);
  if (grad != nullptr) {
    if (grad->size() != dim()) grad->resize(dim());
    a_->Multiply(ws->p, *grad);
    for (size_t j = 0; j < grad->size(); ++j) (*grad)[j] -= (*b_)[j];
  }
  return value;
}

std::vector<double> DualFunction::Primal(
    const std::vector<double>& lambda) const {
  std::vector<double> p;
  Evaluate(lambda, nullptr, &p);
  return p;
}

}  // namespace pme::maxent
