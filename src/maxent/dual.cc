#include "maxent/dual.h"

#include <cassert>

#include "common/vec_math.h"

namespace pme::maxent {

DualFunction::DualFunction(const linalg::SparseMatrix* a, kernels::ConstSpan b)
    : a_(a), b_(b) {
  assert(a != nullptr);
  assert(a->rows() == b.size);
}

double DualFunction::Evaluate(const std::vector<double>& lambda,
                              std::vector<double>* grad,
                              std::vector<double>* p) const {
  DualWorkspace ws;
  const double value = EvaluateInto(lambda, grad, &ws);
  // ws.p may be arena-backed inside a scope, so copy rather than swap —
  // this convenience wrapper is off the hot path.
  if (p != nullptr) p->assign(ws.p.begin(), ws.p.end());
  return value;
}

double DualFunction::EvaluateInto(const std::vector<double>& lambda,
                                  std::vector<double>* grad,
                                  DualWorkspace* ws) const {
  assert(ws != nullptr);
  assert(lambda.size() == dim());
  // p <- Aᵀλ, then one fused exp-sum kernel pass turns the exponents into
  // the primal iterate and its total in place (single buffer, no `t`).
  if (ws->p.size() != num_vars()) ws->p.resize(num_vars());
  a_->TransposeMultiplyInto(kernels::ConstSpan(lambda), kernels::Span(ws->p));
  const double sum_p = kernels::ExpM1SumInPlace(kernels::Span(ws->p));
  const double value = sum_p - kernels::Dot(b_, lambda);
  if (grad != nullptr) {
    if (grad->size() != dim()) grad->resize(dim());
    // Fused CSR pass: ∇D = A p − b in a single sweep.
    a_->MultiplyMinusInto(kernels::ConstSpan(ws->p), b_,
                          kernels::Span(*grad));
  }
  return value;
}

std::vector<double> DualFunction::Primal(
    const std::vector<double>& lambda) const {
  std::vector<double> p;
  Evaluate(lambda, nullptr, &p);
  return p;
}

}  // namespace pme::maxent
