// Steepest descent and damped Newton minimizers for the MaxEnt dual.
// These exist for the solver-comparison ablation (Malouf [18]); LBFGS is
// the production solver.

#include <cmath>

#include "common/math_util.h"
#include "common/vec_math.h"
#include "linalg/dense_matrix.h"
#include "maxent/solvers_internal.h"

namespace pme::maxent::internal {
namespace {

/// Armijo backtracking shared by the two solvers. Returns true and
/// updates (lambda, value, grad) on success. Scratch buffers and the
/// dual workspace are caller-owned so probes allocate nothing.
bool ArmijoStep(const DualFunction& dual, const std::vector<double>& direction,
                double dir_dot_grad, size_t max_steps,
                std::vector<double>* lambda, double* value,
                std::vector<double>* grad, std::vector<double>* trial,
                std::vector<double>* trial_grad, DualWorkspace* ws) {
  const double c1 = 1e-4;
  double step = 1.0;
  for (size_t ls = 0; ls < max_steps; ++ls) {
    kernels::ScaledAdd(*lambda, step, direction, *trial);
    const double trial_value = dual.EvaluateInto(*trial, trial_grad, ws);
    if (std::isfinite(trial_value) &&
        trial_value <= *value + c1 * step * dir_dot_grad) {
      lambda->swap(*trial);
      grad->swap(*trial_grad);
      *value = trial_value;
      return true;
    }
    step *= 0.5;
  }
  return false;
}

}  // namespace

Result<DualOutcome> MinimizeSteepest(const DualFunction& dual,
                                     const SolverOptions& options) {
  const size_t m = dual.dim();
  DualOutcome out;
  InitLambda(options, m, &out.lambda);
  if (m == 0) {
    out.converged = true;
    return out;
  }
  if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
    out.stop = stop;
    return out;
  }
  DualWorkspace ws;
  std::vector<double> grad(m);
  double value = dual.EvaluateInto(out.lambda, &grad, &ws);
  std::vector<double> direction(m), trial(m), trial_grad(m);
  StallDetector stall(options.ftol, options.max_stall_iterations);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.grad_inf = InfNorm(grad);
    out.iterations = iter;
    if (out.grad_inf <= options.tolerance) {
      out.converged = true;
      out.dual_value = value;
      return out;
    }
    if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
      out.stop = stop;
      out.dual_value = value;
      return out;
    }
    for (size_t j = 0; j < m; ++j) direction[j] = -grad[j];
    const double dir_dot_grad = -Dot(grad, grad);
    const double prev_value = value;
    if (!ArmijoStep(dual, direction, dir_dot_grad,
                    options.max_line_search_steps, &out.lambda, &value, &grad,
                    &trial, &trial_grad, &ws)) {
      break;  // stalled at numerical precision
    }
    out.iterations = iter + 1;
    if (stall.Update(prev_value, value)) break;
  }
  out.dual_value = value;
  out.grad_inf = InfNorm(grad);
  out.converged = out.grad_inf <= options.tolerance;
  return out;
}

Result<DualOutcome> MinimizeNewton(const DualFunction& dual,
                                   const SolverOptions& options) {
  const size_t m = dual.dim();
  if (m > options.newton_max_dim) {
    return Status::InvalidArgument(
        "Newton solver: dual dimension " + std::to_string(m) +
        " exceeds newton_max_dim (" + std::to_string(options.newton_max_dim) +
        "); use LBFGS for large problems");
  }
  DualOutcome out;
  InitLambda(options, m, &out.lambda);
  if (m == 0) {
    out.converged = true;
    return out;
  }
  if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
    out.stop = stop;
    return out;
  }

  const auto& a = dual.matrix();
  const auto& offsets = a.row_offsets();
  const auto& cols = a.col_indices();
  const auto& values = a.values();

  // Column -> touching rows lists for the Hessian accumulation. The
  // structure depends only on A, so it is built once per solve.
  std::vector<std::vector<std::pair<uint32_t, double>>> col_rows(a.cols());
  for (size_t r = 0; r < m; ++r) {
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      col_rows[cols[k]].push_back({static_cast<uint32_t>(r), values[k]});
    }
  }

  DualWorkspace ws;
  std::vector<double> grad(m);
  double value = dual.EvaluateInto(out.lambda, &grad, &ws);
  std::vector<double> neg_grad(m), trial(m), trial_grad(m);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.grad_inf = InfNorm(grad);
    out.iterations = iter;
    if (out.grad_inf <= options.tolerance) {
      out.converged = true;
      out.dual_value = value;
      return out;
    }
    // Checked before the O(m²)-and-worse Hessian build, the iteration's
    // dominant cost.
    if (StatusCode stop = CheckStop(options); stop != StatusCode::kOk) {
      out.stop = stop;
      out.dual_value = value;
      return out;
    }

    // Dense Hessian H = A diag(p) Aᵀ: H_{jk} = Σ_i A_ji p_i A_ki,
    // accumulated per column through the shared-row lists. ws.p holds
    // p(λ) from the latest EvaluateInto.
    linalg::DenseMatrix h(m, m);
    for (size_t i = 0; i < col_rows.size(); ++i) {
      const auto& rows = col_rows[i];
      for (const auto& [r1, v1] : rows) {
        for (const auto& [r2, v2] : rows) {
          h.At(r1, r2) += v1 * ws.p[i] * v2;
        }
      }
    }

    for (size_t j = 0; j < m; ++j) neg_grad[j] = -grad[j];
    auto dir = linalg::CholeskySolve(h, neg_grad, options.newton_jitter);
    std::vector<double> direction;
    if (dir.ok()) {
      direction = std::move(dir).value();
    } else {
      // Singular Hessian (redundant constraints): fall back to gradient.
      direction = neg_grad;
    }
    double dir_dot_grad = Dot(direction, grad);
    if (dir_dot_grad >= 0.0) {
      direction = neg_grad;
      dir_dot_grad = -Dot(grad, grad);
    }
    if (!ArmijoStep(dual, direction, dir_dot_grad,
                    options.max_line_search_steps, &out.lambda, &value, &grad,
                    &trial, &trial_grad, &ws)) {
      break;
    }
    // ws.p already holds p(λ) at the accepted iterate: the successful
    // probe was the last evaluation, so no refresh pass is needed.
    out.iterations = iter + 1;
  }
  out.dual_value = value;
  out.grad_inf = InfNorm(grad);
  out.converged = out.grad_inf <= options.tolerance;
  return out;
}

}  // namespace pme::maxent::internal
