#include "maxent/solution_cache.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace pme::maxent {
namespace {

/// Process-wide cache.* metrics. The per-shard census fields stay the
/// per-instance source of truth for Stats(); the registry counters are
/// the cross-cutting view the `stats` serve verb and --metrics-out dump.
struct CacheMetrics {
  metrics::Counter* exact_hits;
  metrics::Counter* warm_hits;
  metrics::Counter* misses;
  metrics::Counter* insertions;
  metrics::Counter* evictions;
  metrics::Gauge* resident_doubles;
};

CacheMetrics& GetCacheMetrics() {
  static CacheMetrics m = [] {
    auto& registry = metrics::Registry::Global();
    CacheMetrics r;
    r.exact_hits = &registry.GetCounter("cache.exact_hits");
    r.warm_hits = &registry.GetCounter("cache.warm_hits");
    r.misses = &registry.GetCounter("cache.misses");
    r.insertions = &registry.GetCounter("cache.insertions");
    r.evictions = &registry.GetCounter("cache.evictions");
    r.resident_doubles = &registry.GetGauge("cache.resident_doubles");
    return r;
  }();
  return m;
}

}  // namespace

SolutionCache::SolutionCache(size_t byte_budget)
    : byte_budget_(byte_budget),
      // Each shard owns an equal slice of the budget, floored at one
      // double so a tiny budget still admits (and immediately bounds)
      // entries instead of dividing to zero.
      shard_budget_doubles_(
          std::max<size_t>(byte_budget / sizeof(double) / kNumShards, 1)) {}

std::shared_ptr<const CachedComponentSolution> SolutionCache::FindExact(
    const Hash128& exact_key) {
  Shard& shard = ShardOf(exact_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(exact_key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    GetCacheMetrics().misses->Add();
    return nullptr;
  }
  // Refresh the LRU position: a hit entry is the last to be evicted.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  ++shard.exact_hits;
  GetCacheMetrics().exact_hits->Add();
  return it->second.solution;
}

std::shared_ptr<const CachedComponentSolution> SolutionCache::FindWarm(
    const Hash128& vars_key) {
  Hash128 exact_key;
  {
    Shard& shard = ShardOf(vars_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.warm_index.find(vars_key);
    if (it == shard.warm_index.end()) return nullptr;
    exact_key = it->second;
  }
  // The entry lives in the exact key's shard; it may have been evicted
  // since the warm pointer was written — drop the stale pointer then.
  std::shared_ptr<const CachedComponentSolution> found;
  {
    Shard& shard = ShardOf(exact_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(exact_key);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      ++shard.warm_hits;
      GetCacheMetrics().warm_hits->Add();
      found = it->second.solution;
    }
  }
  if (found == nullptr) {
    Shard& shard = ShardOf(vars_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.warm_index.find(vars_key);
    if (it != shard.warm_index.end() && it->second == exact_key) {
      shard.warm_index.erase(it);
    }
  }
  return found;
}

void SolutionCache::Insert(const Hash128& exact_key, const Hash128& vars_key,
                           CachedComponentSolution solution) {
  auto shared =
      std::make_shared<const CachedComponentSolution>(std::move(solution));
  const size_t doubles = shared->ResidentDoubles();
  {
    Shard& shard = ShardOf(exact_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(exact_key);
    if (it != shard.entries.end()) {
      // Replace in place (same key, refreshed content — e.g. a tighter
      // re-solve of the same component).
      const size_t replaced = it->second.solution->ResidentDoubles();
      shard.resident_doubles -= replaced;
      shard.resident_doubles += doubles;
      GetCacheMetrics().resident_doubles->Add(
          static_cast<int64_t>(doubles) - static_cast<int64_t>(replaced));
      it->second.solution = std::move(shared);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    } else {
      shard.lru.push_front(exact_key);
      shard.entries.emplace(exact_key,
                            Entry{std::move(shared), shard.lru.begin()});
      shard.resident_doubles += doubles;
      ++shard.insertions;
      GetCacheMetrics().insertions->Add();
      GetCacheMetrics().resident_doubles->Add(static_cast<int64_t>(doubles));
    }
    EvictLocked(shard, shard_budget_doubles_);
    // Failpoint `cache_evict_race`: a deterministic stand-in for an
    // eviction storm racing concurrent lookups — every entry of this
    // shard (including the one just inserted) is thrown out, so warm
    // pointers dangle and in-flight shared_ptr handles outlive their
    // entries. Correctness must not depend on residency.
    if (PME_FAILPOINT("cache_evict_race")) {
      EvictLocked(shard, 0);
    }
  }
  {
    Shard& shard = ShardOf(vars_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.warm_index[vars_key] = exact_key;
  }
}

void SolutionCache::EvictLocked(Shard& shard, size_t budget_doubles) {
  while (shard.resident_doubles > budget_doubles && !shard.lru.empty()) {
    const Hash128 victim = shard.lru.back();
    auto it = shard.entries.find(victim);
    const size_t evicted = it->second.solution->ResidentDoubles();
    shard.resident_doubles -= evicted;
    shard.entries.erase(it);
    shard.lru.pop_back();
    ++shard.evictions;
    GetCacheMetrics().evictions->Add();
    GetCacheMetrics().resident_doubles->Add(-static_cast<int64_t>(evicted));
  }
}

void SolutionCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    GetCacheMetrics().resident_doubles->Add(
        -static_cast<int64_t>(shard.resident_doubles));
    shard.entries.clear();
    shard.lru.clear();
    shard.warm_index.clear();
    shard.resident_doubles = 0;
  }
}

SolutionCacheStats SolutionCache::Stats() const {
  SolutionCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(
        const_cast<Shard&>(shard).mutex);
    stats.exact_hits += shard.exact_hits;
    stats.warm_hits += shard.warm_hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.entries += shard.entries.size();
    stats.resident_doubles += shard.resident_doubles;
  }
  return stats;
}

}  // namespace pme::maxent
